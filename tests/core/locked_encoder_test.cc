// Tests for HDLock's privileged encoder (src/core/locked_encoder.*): Eq. 9
// materialization, equivalence with the standard encoder for plain keys, and
// the statistical properties behind the paper's "no accuracy loss" claim.

#include "core/locked_encoder.hpp"

#include <gtest/gtest.h>

#include <memory>

using hdlock::ContractViolation;
using hdlock::Deployment;
using hdlock::DeploymentConfig;
using hdlock::LockedEncoder;
using hdlock::LockKey;
using hdlock::provision;
using hdlock::PublicStore;
using hdlock::PublicStoreConfig;
using hdlock::SubKeyEntry;
using hdlock::ValueMapping;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::IntHV;

namespace {

struct StoreFixture {
    std::shared_ptr<const PublicStore> store;
    ValueMapping mapping;
};

StoreFixture make_store(std::size_t dim, std::size_t pool, std::size_t levels,
                        std::uint64_t seed) {
    PublicStoreConfig config;
    config.dim = dim;
    config.pool_size = pool;
    config.n_levels = levels;
    config.seed = seed;
    ValueMapping mapping;
    auto store = std::make_shared<const PublicStore>(PublicStore::generate(config, mapping));
    return {std::move(store), std::move(mapping)};
}

std::vector<int> random_levels(std::size_t n, std::size_t m, std::uint64_t seed) {
    hdlock::util::Xoshiro256ss rng(seed);
    std::vector<int> levels(n);
    for (auto& level : levels) level = static_cast<int>(rng.next_below(m));
    return levels;
}

}  // namespace

TEST(LockedEncoder, MaterializeSingleLayerIsRotatedBase) {
    const auto fixture = make_store(1000, 6, 2, 1);
    const SubKeyEntry entry{3, 217};
    const BinaryHV fea =
        LockedEncoder::materialize_feature(*fixture.store, std::span(&entry, 1));
    EXPECT_EQ(fea, fixture.store->base(3).rotated(217));
}

TEST(LockedEncoder, MaterializeTwoLayerProduct) {
    const auto fixture = make_store(512, 6, 2, 2);
    const std::vector<SubKeyEntry> sub_key = {{1, 10}, {4, 500}};
    const BinaryHV fea = LockedEncoder::materialize_feature(*fixture.store, sub_key);
    EXPECT_EQ(fea, fixture.store->base(1).rotated(10) * fixture.store->base(4).rotated(500));
}

TEST(LockedEncoder, LockedFeatureHVsRemainQuasiOrthogonal) {
    // The reason Fig. 8 shows no accuracy loss: Eq. 9 products of rotated
    // orthogonal bases are statistically indistinguishable from fresh random
    // hypervectors.
    const auto fixture = make_store(10000, 16, 2, 3);
    for (const std::size_t n_layers : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        const auto key = LockKey::random(24, n_layers, 16, 10000, 7 + n_layers);
        const LockedEncoder encoder(fixture.store, key.clone(), fixture.mapping, 1);
        for (std::size_t i = 0; i < 24; ++i) {
            for (std::size_t j = i + 1; j < 24; ++j) {
                ASSERT_NEAR(encoder.feature_hv(i).normalized_hamming(encoder.feature_hv(j)), 0.5,
                            0.03)
                    << "L=" << n_layers << " pair (" << i << "," << j << ")";
            }
        }
    }
}

TEST(LockedEncoder, PlainKeyMatchesRecordEncoder) {
    // With a plain key the locked module must be bit-identical to a standard
    // record encoder whose item memory is the mapped pool/value contents
    // (paper footnote 2).
    const std::size_t n_features = 10, n_levels = 4;
    const auto fixture = make_store(2048, n_features, n_levels, 5);
    const auto key = LockKey::plain_random(n_features, n_features, 9);
    const LockedEncoder locked(fixture.store, key.clone(), fixture.mapping, /*tie_seed=*/42);

    std::vector<BinaryHV> feature_hvs;
    for (std::size_t i = 0; i < n_features; ++i) {
        feature_hvs.push_back(fixture.store->base(key.entry(i, 0).base_index));
    }
    std::vector<BinaryHV> value_hvs;
    for (std::size_t level = 0; level < n_levels; ++level) {
        value_hvs.push_back(fixture.store->value_slot(fixture.mapping[level]));
    }
    auto memory = std::make_shared<const hdlock::hdc::ItemMemory>(
        hdlock::hdc::ItemMemory::from_hypervectors(feature_hvs, value_hvs));
    const hdlock::hdc::RecordEncoder record(memory, /*tie_seed=*/42);

    for (std::uint64_t trial = 0; trial < 5; ++trial) {
        const auto levels = random_levels(n_features, n_levels, 100 + trial);
        EXPECT_EQ(locked.encode(levels), record.encode(levels));
        EXPECT_EQ(locked.encode_binary(levels), record.encode_binary(levels));
    }
}

TEST(LockedEncoder, EncodeMatchesManualEq10) {
    const std::size_t n_features = 7, n_levels = 3;
    const auto fixture = make_store(1024, 9, n_levels, 11);
    const auto key = LockKey::random(n_features, 2, 9, 1024, 13);
    const LockedEncoder encoder(fixture.store, key.clone(), fixture.mapping, 1);

    const auto levels = random_levels(n_features, n_levels, 17);
    const IntHV h = encoder.encode(levels);

    IntHV expected(1024);
    for (std::size_t i = 0; i < n_features; ++i) {
        const BinaryHV fea = LockedEncoder::materialize_feature(*fixture.store, key.sub_key(i));
        const BinaryHV val =
            fixture.store->value_slot(fixture.mapping[static_cast<std::size_t>(levels[i])]);
        expected.add(fea * val);
    }
    EXPECT_EQ(h, expected);
}

TEST(LockedEncoder, DifferentKeysGiveDifferentEncodings) {
    const auto fixture = make_store(2048, 8, 2, 19);
    const auto key_a = LockKey::random(6, 2, 8, 2048, 1);
    const auto key_b = LockKey::random(6, 2, 8, 2048, 2);
    const LockedEncoder enc_a(fixture.store, key_a.clone(), fixture.mapping, 1);
    const LockedEncoder enc_b(fixture.store, key_b.clone(), fixture.mapping, 1);
    const auto levels = random_levels(6, 2, 23);
    // A wrong key yields an essentially uncorrelated encoding.
    EXPECT_NEAR(enc_a.encode_binary(levels).normalized_hamming(enc_b.encode_binary(levels)), 0.5,
                0.1);
}

TEST(LockedEncoder, ValidatesKeyAgainstStore) {
    const auto fixture = make_store(256, 4, 2, 29);
    // base_index out of pool range
    const auto bad_base = LockKey::plain({0, 5});
    EXPECT_THROW(LockedEncoder(fixture.store, bad_base.clone(), fixture.mapping, 1),
                 ContractViolation);
    // rotation >= dim
    auto key = LockKey::random(3, 1, 4, 256, 1);
    const auto bad_rotation = key.with_entry(0, 0, SubKeyEntry{0, 256});
    EXPECT_THROW(LockedEncoder(fixture.store, bad_rotation.clone(), fixture.mapping, 1),
                 ContractViolation);
    // value mapping of the wrong size
    EXPECT_THROW(LockedEncoder(fixture.store, key.clone(), ValueMapping{0}, 1), ContractViolation);
    EXPECT_THROW(LockedEncoder(nullptr, key.clone(), fixture.mapping, 1), ContractViolation);
}

// ---------------------------------------------------------------------------
// provision(): the one-call deployment entry point.
// ---------------------------------------------------------------------------

TEST(Provision, CreatesConsistentDeployment) {
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 12;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 77;
    const Deployment deployment = provision(config);

    EXPECT_EQ(deployment.store->dim(), 1024u);
    EXPECT_EQ(deployment.store->pool_size(), 12u);  // default P = N
    EXPECT_EQ(deployment.encoder->n_features(), 12u);
    EXPECT_EQ(deployment.encoder->n_levels(), 4u);
    EXPECT_EQ(deployment.secure->key().n_layers(), 2u);

    // The encoder must agree with a re-materialization from the secrets.
    const auto& key = deployment.secure->key();
    const auto& mapping = deployment.secure->value_mapping();
    const LockedEncoder rebuilt(deployment.store, key.clone(), mapping, config.tie_seed);
    const auto levels = random_levels(12, 4, 31);
    EXPECT_EQ(deployment.encoder->encode(levels), rebuilt.encode(levels));
}

TEST(Provision, ZeroLayersDeploysPlainBaseline) {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 8;
    config.n_levels = 2;
    config.n_layers = 0;
    const Deployment deployment = provision(config);
    EXPECT_TRUE(deployment.secure->key().is_plain());
    EXPECT_EQ(deployment.encoder->n_features(), 8u);
}

TEST(Provision, ExplicitPoolSizeHonored) {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 8;
    config.n_levels = 2;
    config.pool_size = 32;
    config.n_layers = 1;
    const Deployment deployment = provision(config);
    EXPECT_EQ(deployment.store->pool_size(), 32u);
}

TEST(Provision, SealedSecureStoreStopsOwnerReads) {
    DeploymentConfig config;
    config.dim = 256;
    config.n_features = 4;
    config.n_levels = 2;
    const Deployment deployment = provision(config);
    deployment.secure->seal();
    EXPECT_THROW(deployment.secure->key(), hdlock::AccessDenied);
    // The already-constructed encoder keeps working: the device holds its
    // materialized FeaHVs internally, like the hardware would.
    const auto levels = random_levels(4, 2, 37);
    EXPECT_NO_THROW(deployment.encoder->encode(levels));
}

TEST(Provision, DeterministicPerSeed) {
    DeploymentConfig config;
    config.dim = 256;
    config.n_features = 4;
    config.n_levels = 2;
    config.seed = 5;
    const auto a = provision(config);
    const auto b = provision(config);
    EXPECT_EQ(a.secure->key(), b.secure->key());
    const auto levels = random_levels(4, 2, 41);
    EXPECT_EQ(a.encoder->encode(levels), b.encoder->encode(levels));
}

TEST(Provision, RejectsEmptyFeatureCount) {
    DeploymentConfig config;
    EXPECT_THROW(provision(config), hdlock::ConfigError);
}

TEST(Provision, RejectsDegenerateConfigsWithConfigError) {
    DeploymentConfig good;
    good.dim = 256;
    good.n_features = 4;
    good.n_levels = 2;
    EXPECT_NO_THROW(provision(good));

    // Each degenerate field fails up front with ConfigError, not deep inside
    // store/key generation with a generic contract violation.
    DeploymentConfig zero_dim = good;
    zero_dim.dim = 0;
    EXPECT_THROW(provision(zero_dim), hdlock::ConfigError);

    DeploymentConfig one_level = good;
    one_level.n_levels = 1;
    EXPECT_THROW(provision(one_level), hdlock::ConfigError);

    DeploymentConfig zero_levels = good;
    zero_levels.n_levels = 0;
    EXPECT_THROW(provision(zero_levels), hdlock::ConfigError);

    // Plain baseline needs one distinct pool entry per feature.
    DeploymentConfig tiny_pool = good;
    tiny_pool.n_layers = 0;
    tiny_pool.pool_size = 2;
    EXPECT_THROW(provision(tiny_pool), hdlock::ConfigError);

    // Locked keys need a sub-key space able to keep features distinct.
    DeploymentConfig tiny_space = good;
    tiny_space.dim = 1;
    tiny_space.pool_size = 1;
    tiny_space.n_layers = 2;
    EXPECT_THROW(provision(tiny_space), hdlock::ConfigError);
}
