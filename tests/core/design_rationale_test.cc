// Executable version of the paper's §4.1 design argument — "Why Not
// Represent the Value Hypervectors?" — the ablation called out in
// DESIGN.md §4.  Two facts make locking ValHVs a bad trade:
//
//  1. Eq. 9 products of orthogonal bases are themselves quasi-orthogonal, so
//     a locked construction *cannot* produce the linearly correlated ValHV
//     chain of Eq. 1b — it would break the encoder's value semantics.
//  2. If the pool were made of correlated bases instead (to preserve the
//     chain), the correlation itself leaks: an attacker orders the pool by
//     pairwise distance from public memory alone, no oracle needed — the
//     same scan that powers value extraction in the Sec. 3.2 attack.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/locked_encoder.hpp"
#include "core/stores.hpp"
#include "hdc/item_memory.hpp"
#include "util/rng.hpp"

namespace {

using namespace hdlock;

constexpr std::size_t kDim = 4096;

}  // namespace

TEST(DesignRationale, LockedProductsAreOrthogonalNotCorrelated) {
    // Build "locked value hypervectors" the way FeaHVs are built (Eq. 9) and
    // measure the pairwise distance profile: every pair sits at ~0.5 instead
    // of Eq. 1b's proportional chain.
    PublicStoreConfig config;
    config.dim = kDim;
    config.pool_size = 16;
    config.n_levels = 2;
    config.seed = 3;
    ValueMapping unused;
    const auto store = PublicStore::generate(config, unused);

    constexpr std::size_t kLevels = 8;
    std::vector<hdc::BinaryHV> locked_values;
    for (std::size_t level = 0; level < kLevels; ++level) {
        const std::vector<SubKeyEntry> sub_key{
            {static_cast<std::uint32_t>(level % config.pool_size),
             static_cast<std::uint32_t>(level * 131)},
            {static_cast<std::uint32_t>((level + 5) % config.pool_size),
             static_cast<std::uint32_t>(level * 17 + 3)}};
        locked_values.push_back(LockedEncoder::materialize_feature(store, sub_key));
    }

    for (std::size_t a = 0; a < kLevels; ++a) {
        for (std::size_t b = a + 1; b < kLevels; ++b) {
            EXPECT_NEAR(locked_values[a].normalized_hamming(locked_values[b]), 0.5, 0.05)
                << "pair (" << a << "," << b << ")";
        }
    }
}

TEST(DesignRationale, GenuineValueChainFollowsEq1b) {
    // Control for the test above: the real (unlocked) level construction
    // does satisfy Eq. 1b — distance proportional to the level gap.
    constexpr std::size_t kLevels = 8;
    const auto values = hdc::ItemMemory::generate_level_hvs(kDim, kLevels, /*seed=*/5);
    for (std::size_t a = 0; a < kLevels; ++a) {
        for (std::size_t b = a + 1; b < kLevels; ++b) {
            const double expected =
                0.5 * static_cast<double>(b - a) / static_cast<double>(kLevels - 1);
            EXPECT_NEAR(values[a].normalized_hamming(values[b]), expected, 0.04)
                << "pair (" << a << "," << b << ")";
        }
    }
}

TEST(DesignRationale, CorrelatedPoolLeaksItsOrderWithoutAnyOracle) {
    // The other horn of the dilemma: store correlated hypervectors in the
    // public pool (shuffled), and a no-oracle attacker recovers the chain
    // order by pairwise distances alone.
    constexpr std::size_t kLevels = 9;
    const auto chain = hdc::ItemMemory::generate_level_hvs(kDim, kLevels, /*seed=*/7);

    // Secretly shuffle the chain into "pool slots".
    std::vector<std::size_t> slot_of_level(kLevels);
    std::iota(slot_of_level.begin(), slot_of_level.end(), 0u);
    util::Xoshiro256ss rng(99);
    for (std::size_t i = kLevels; i > 1; --i) {
        std::swap(slot_of_level[i - 1], slot_of_level[rng.next_below(i)]);
    }
    std::vector<hdc::BinaryHV> pool(kLevels);
    for (std::size_t level = 0; level < kLevels; ++level) {
        pool[slot_of_level[level]] = chain[level];
    }

    // Attacker: find the farthest pair (the endpoints), then sort everything
    // by distance from one endpoint.
    double farthest = -1.0;
    std::size_t end_a = 0;
    for (std::size_t a = 0; a < kLevels; ++a) {
        for (std::size_t b = a + 1; b < kLevels; ++b) {
            const double distance = pool[a].normalized_hamming(pool[b]);
            if (distance > farthest) {
                farthest = distance;
                end_a = a;
            }
        }
    }
    std::vector<std::size_t> order(kLevels);
    std::iota(order.begin(), order.end(), 0u);
    std::ranges::sort(order, [&](std::size_t x, std::size_t y) {
        return pool[end_a].normalized_hamming(pool[x]) <
               pool[end_a].normalized_hamming(pool[y]);
    });

    // The recovered order is the true chain or its mirror.
    std::vector<std::size_t> truth(kLevels);
    for (std::size_t level = 0; level < kLevels; ++level) truth[level] = slot_of_level[level];
    const bool forward = std::ranges::equal(order, truth);
    const bool backward = std::equal(order.begin(), order.end(), truth.rbegin());
    EXPECT_TRUE(forward || backward)
        << "correlated pool did not leak its order (farthest pair " << farthest << ")";
}

TEST(DesignRationale, OrthogonalPoolLeaksNothing) {
    // And the reason FeaHV locking *works*: an orthogonal pool's pairwise
    // distances are featureless (~0.5), so the same no-oracle scan learns
    // nothing — all pairs look alike.
    PublicStoreConfig config;
    config.dim = kDim;
    config.pool_size = 12;
    config.n_levels = 2;
    config.seed = 13;
    ValueMapping unused;
    const auto store = PublicStore::generate(config, unused);

    double min_distance = 1.0;
    double max_distance = 0.0;
    for (std::size_t a = 0; a < store.pool_size(); ++a) {
        for (std::size_t b = a + 1; b < store.pool_size(); ++b) {
            const double distance = store.base(a).normalized_hamming(store.base(b));
            min_distance = std::min(min_distance, distance);
            max_distance = std::max(max_distance, distance);
        }
    }
    EXPECT_GT(min_distance, 0.45);
    EXPECT_LT(max_distance, 0.55);
}
