// Tests for the HDLock key (src/core/key.*).

#include "core/key.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <type_traits>
#include <utility>

using hdlock::ContractViolation;
using hdlock::FormatError;
using hdlock::LockKey;
using hdlock::SubKeyEntry;

TEST(LockKey, RandomKeyShapeAndRanges) {
    const auto key = LockKey::random(/*n_features=*/50, /*n_layers=*/3, /*pool_size=*/16,
                                     /*dim=*/1000, /*seed=*/1);
    EXPECT_EQ(key.n_features(), 50u);
    EXPECT_EQ(key.n_layers(), 3u);
    EXPECT_EQ(key.entries_per_feature(), 3u);
    EXPECT_FALSE(key.is_plain());
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        for (const SubKeyEntry& entry : key.sub_key(i)) {
            EXPECT_LT(entry.base_index, 16u);
            EXPECT_LT(entry.rotation, 1000u);
        }
    }
}

TEST(LockKey, RandomKeySubKeysAreDistinct) {
    // Duplicate sub-keys would make two features share one FeaHV; the
    // generator must reject them even in a deliberately tight space.
    const auto key = LockKey::random(100, 1, 4, 64, 7);  // space = 256 >> 100
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        const auto& entry = key.entry(i, 0);
        EXPECT_TRUE(seen.insert({entry.base_index, entry.rotation}).second)
            << "duplicate sub-key at feature " << i;
    }
}

TEST(LockKey, RandomKeyDeterministicPerSeed) {
    const auto a = LockKey::random(20, 2, 10, 100, 5);
    const auto b = LockKey::random(20, 2, 10, 100, 5);
    const auto c = LockKey::random(20, 2, 10, 100, 6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(LockKey, PlainKeyMapsDirectly) {
    const auto key = LockKey::plain({4, 2, 0});
    EXPECT_TRUE(key.is_plain());
    EXPECT_EQ(key.n_layers(), 0u);
    EXPECT_EQ(key.entries_per_feature(), 1u);
    EXPECT_EQ(key.entry(0, 0).base_index, 4u);
    EXPECT_EQ(key.entry(1, 0).base_index, 2u);
    EXPECT_EQ(key.entry(2, 0).base_index, 0u);
    EXPECT_EQ(key.entry(2, 0).rotation, 0u);
}

TEST(LockKey, PlainKeyRequiresInjectiveMapping) {
    EXPECT_THROW(LockKey::plain({1, 1}), ContractViolation);
    EXPECT_THROW(LockKey::plain({}), ContractViolation);
}

TEST(LockKey, PlainRandomIsInjectivePermutation) {
    const auto key = LockKey::plain_random(30, 30, 9);
    std::set<std::uint32_t> seen;
    for (std::size_t i = 0; i < 30; ++i) {
        const auto& entry = key.entry(i, 0);
        EXPECT_LT(entry.base_index, 30u);
        EXPECT_EQ(entry.rotation, 0u);
        EXPECT_TRUE(seen.insert(entry.base_index).second);
    }
    EXPECT_THROW(LockKey::plain_random(10, 9, 1), ContractViolation);
}

TEST(LockKey, WithEntryReplacesOneEntry) {
    const auto key = LockKey::random(5, 2, 8, 64, 11);
    const SubKeyEntry replacement{7, 63};
    const auto modified = key.with_entry(3, 1, replacement);
    EXPECT_EQ(modified.entry(3, 1), replacement);
    EXPECT_EQ(modified.entry(3, 0), key.entry(3, 0));
    EXPECT_EQ(modified.entry(2, 1), key.entry(2, 1));
    EXPECT_NE(modified, key);
    EXPECT_THROW(key.with_entry(5, 0, replacement), ContractViolation);
    EXPECT_THROW(key.with_entry(0, 2, replacement), ContractViolation);
}

TEST(LockKey, WithEntryOnPlainKeyForbidsRotation) {
    const auto key = LockKey::plain({0, 1, 2});
    EXPECT_NO_THROW(key.with_entry(0, 0, SubKeyEntry{2, 0}));
    EXPECT_THROW(key.with_entry(0, 0, SubKeyEntry{2, 5}), ContractViolation);
}

TEST(LockKey, StorageBitsMatchPaperConfigs) {
    // MNIST with L = 2, P = 784, D = 10000: 784 features x 2 layers x
    // (ceil(log2 784) + ceil(log2 10000)) = 784 * 2 * (10 + 14) bits.
    const auto key = LockKey::random(784, 2, 784, 10000, 3);
    EXPECT_EQ(key.storage_bits(784, 10000), 784ull * 2 * (10 + 14));

    // The plain key stores only pool indices.
    const auto plain = LockKey::plain_random(784, 784, 3);
    EXPECT_EQ(plain.storage_bits(784, 10000), 784ull * 10);
}

TEST(LockKey, RandomRejectsBadArguments) {
    EXPECT_THROW(LockKey::random(0, 1, 4, 64, 1), ContractViolation);
    EXPECT_THROW(LockKey::random(10, 0, 4, 64, 1), ContractViolation);
    EXPECT_THROW(LockKey::random(10, 1, 0, 64, 1), ContractViolation);
    EXPECT_THROW(LockKey::random(10, 1, 4, 0, 1), ContractViolation);
    // Sub-key space too small for distinct sub-keys: 2 * 2 < 2 * 10.
    EXPECT_THROW(LockKey::random(10, 1, 2, 2, 1), ContractViolation);
}

TEST(LockKey, AccessorsBoundsChecked) {
    const auto key = LockKey::random(5, 2, 8, 64, 13);
    EXPECT_THROW(key.entry(5, 0), ContractViolation);
    EXPECT_THROW(key.entry(0, 2), ContractViolation);
    EXPECT_THROW(key.sub_key(5), ContractViolation);
}

TEST(LockKey, SerializationRoundTrip) {
    const auto key = LockKey::random(17, 3, 12, 256, 15);
    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    key.save(writer);
    hdlock::util::BinaryReader reader(stream);
    EXPECT_EQ(LockKey::load(reader), key);
}

TEST(LockKey, PlainSerializationRoundTrip) {
    const auto key = LockKey::plain({3, 1, 4, 0});
    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    key.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const auto loaded = LockKey::load(reader);
    EXPECT_EQ(loaded, key);
    EXPECT_TRUE(loaded.is_plain());
}

TEST(LockKey, LoadRejectsInconsistentShape) {
    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    writer.write_tag("LKEY");
    writer.write_u64(4);  // n_features
    writer.write_u64(2);  // n_layers -> expects 8 entries
    writer.write_u64(3);  // but only 3 claimed
    for (int i = 0; i < 3; ++i) {
        writer.write_u32(0);
        writer.write_u32(0);
    }
    hdlock::util::BinaryReader reader(stream);
    EXPECT_THROW(LockKey::load(reader), FormatError);
}

// ---------------------------------------------------------------------------
// Confinement surface: LockKey is move-only, duplication is the explicit
// clone(), and dead keys scrub their entry storage (PR: key-confinement
// static analysis; see DESIGN.md §7 and util/secure_mem.hpp).
// ---------------------------------------------------------------------------

static_assert(!std::is_copy_constructible_v<LockKey>,
              "LockKey must not be copyable; use the explicit clone()");
static_assert(!std::is_copy_assignable_v<LockKey>,
              "LockKey must not be copy-assignable; use the explicit clone()");
static_assert(std::is_nothrow_move_constructible_v<LockKey>);
static_assert(std::is_nothrow_move_assignable_v<LockKey>);

TEST(LockKeyConfinement, CloneIsEqualButIndependent) {
    const auto key = LockKey::random(8, 2, 16, 256, /*seed=*/11);
    LockKey copy = key.clone();
    EXPECT_EQ(copy, key);
    copy = copy.with_entry(0, 0, SubKeyEntry{1, 2});
    EXPECT_EQ(key.n_features(), 8u);  // original untouched
}

TEST(LockKeyConfinement, MoveEmptiesTheSource) {
    LockKey key = LockKey::random(8, 2, 16, 256, /*seed=*/12);
    const LockKey moved = std::move(key);
    EXPECT_EQ(moved.n_features(), 8u);
    // NOLINTNEXTLINE(bugprone-use-after-move): the post-move state is the API
    EXPECT_EQ(key.n_features(), 0u);
    EXPECT_EQ(key, LockKey{});
}

TEST(LockKeyConfinement, ScrubEmptiesTheKey) {
    LockKey key = LockKey::random(8, 2, 16, 256, /*seed=*/13);
    key.scrub();
    EXPECT_EQ(key.n_features(), 0u);
    EXPECT_EQ(key.n_layers(), 0u);
    EXPECT_EQ(key, LockKey{});
}

TEST(LockKeyConfinement, DestructionZeroesEntryStorage) {
    // SecureVector::clear() retains the allocation, so scrubbing is legally
    // observable: hold the entry storage across scrub() and read back zeros.
    LockKey key = LockKey::random(16, 3, 32, 512, /*seed=*/14);
    const SubKeyEntry* storage = key.sub_key(0).data();
    ASSERT_NE(storage, nullptr);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < 16 * 3; ++i) {
        any_nonzero |= storage[i].base_index != 0 || storage[i].rotation != 0;
    }
    ASSERT_TRUE(any_nonzero) << "a random key with live entries";

    key.scrub();  // same scrub path the destructor takes
    for (std::size_t i = 0; i < 16 * 3; ++i) {
        EXPECT_EQ(storage[i].base_index, 0u);
        EXPECT_EQ(storage[i].rotation, 0u);
    }
}
