// Tests for the key-hygiene utilities (src/core/key_tools.*): auditing,
// canonicalization, semantic key equality and post-leak re-keying.

#include "core/key_tools.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/locked_encoder.hpp"
#include "util/error.hpp"

namespace {

using namespace hdlock;

PublicStore make_store(std::size_t pool = 16, std::size_t dim = 1024, std::uint64_t seed = 3) {
    PublicStoreConfig config;
    config.dim = dim;
    config.pool_size = pool;
    config.n_levels = 4;
    config.seed = seed;
    ValueMapping unused;
    return PublicStore::generate(config, unused);
}

}  // namespace

TEST(KeyAudit, HealthyRandomKeyPasses) {
    const auto store = make_store();
    const auto key = LockKey::random(8, 2, 16, 1024, /*seed=*/7);
    const auto report = audit_key(key, store);

    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.in_bounds);
    EXPECT_TRUE(report.injective);
    EXPECT_TRUE(report.aliased_features.empty());
    EXPECT_NEAR(report.sub_key_entropy_bits, 2.0 * std::log2(1024.0 * 16.0), 1e-9);
    EXPECT_EQ(report.storage_bits, key.storage_bits(16, 1024));
    EXPECT_NE(report.summary().find("OK"), std::string::npos);
}

TEST(KeyAudit, DetectsOutOfBoundsEntries) {
    const auto store = make_store(16, 1024);
    const auto key = LockKey::random(4, 2, 16, 1024, 7);
    const auto bad_base = key.with_entry(1, 0, SubKeyEntry{999, 5});
    const auto bad_rotation = key.with_entry(1, 1, SubKeyEntry{3, 4096});

    EXPECT_FALSE(audit_key(bad_base, store).in_bounds);
    EXPECT_FALSE(audit_key(bad_rotation, store).in_bounds);
    EXPECT_NE(audit_key(bad_base, store).summary().find("FAIL"), std::string::npos);
}

TEST(KeyAudit, DetectsLayerOrderAliasing) {
    // Feature 1's sub-key is feature 0's with the layers swapped: textually
    // distinct, materializes identically — the audit must flag the pair.
    const auto store = make_store();
    auto key = LockKey::random(4, 2, 16, 1024, 11);
    const auto a0 = key.entry(0, 0);
    const auto a1 = key.entry(0, 1);
    key = key.with_entry(1, 0, a1).with_entry(1, 1, a0);

    const auto report = audit_key(key, store);
    EXPECT_TRUE(report.in_bounds);
    EXPECT_FALSE(report.injective);
    ASSERT_EQ(report.aliased_features.size(), 1u);
    EXPECT_EQ(report.aliased_features[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
}

TEST(KeyAudit, PlainKeyEntropyIsLogPool) {
    const auto store = make_store();
    const auto key = LockKey::plain_random(8, 16, /*seed=*/3);
    EXPECT_NEAR(audit_key(key, store).sub_key_entropy_bits, std::log2(16.0), 1e-9);
}

TEST(Canonicalize, SortsLayersWithoutChangingMaterialization) {
    const auto store = make_store();
    const auto key = LockKey::random(6, 3, 16, 1024, 13);
    const auto canonical = canonicalize(key);

    EXPECT_TRUE(materialize_equal(key, canonical, store));
    for (std::size_t i = 0; i < canonical.n_features(); ++i) {
        const auto sub_key = canonical.sub_key(i);
        for (std::size_t l = 1; l < sub_key.size(); ++l) {
            const auto prev = std::pair{sub_key[l - 1].base_index, sub_key[l - 1].rotation};
            const auto curr = std::pair{sub_key[l].base_index, sub_key[l].rotation};
            EXPECT_LE(prev, curr);
        }
    }
}

TEST(Canonicalize, LayerPermutedKeysShareCanonicalForm) {
    auto key = LockKey::random(2, 2, 16, 1024, 17);
    auto swapped = key.with_entry(0, 0, key.entry(0, 1)).with_entry(0, 1, key.entry(0, 0));
    EXPECT_NE(key, swapped);
    EXPECT_EQ(canonicalize(key), canonicalize(swapped));
}

TEST(Canonicalize, PlainKeyIsItsOwnCanonicalForm) {
    const auto key = LockKey::plain_random(8, 16, 3);
    EXPECT_EQ(canonicalize(key), key);
}

TEST(MaterializeEqual, DiscriminatesDifferentKeys) {
    const auto store = make_store();
    const auto key_a = LockKey::random(4, 2, 16, 1024, 19);
    const auto key_b = LockKey::random(4, 2, 16, 1024, 23);
    EXPECT_TRUE(materialize_equal(key_a, key_a, store));
    EXPECT_FALSE(materialize_equal(key_a, key_b, store));
    const auto fewer = LockKey::random(3, 2, 16, 1024, 19);
    EXPECT_FALSE(materialize_equal(key_a, fewer, store));
}

TEST(Rekey, FreshKeyAvoidsEveryLeakedLayerPair) {
    const auto store = make_store(32, 2048);
    const auto leaked = LockKey::random(8, 2, 32, 2048, 29);
    const auto fresh = rekey(leaked, store, /*seed=*/31);

    EXPECT_EQ(fresh.n_features(), leaked.n_features());
    EXPECT_EQ(fresh.n_layers(), leaked.n_layers());
    EXPECT_FALSE(materialize_equal(fresh, leaked, store));

    std::set<std::pair<std::uint32_t, std::uint32_t>> burned;
    for (std::size_t i = 0; i < leaked.n_features(); ++i) {
        for (const auto& entry : leaked.sub_key(i)) {
            burned.emplace(entry.base_index, entry.rotation);
        }
    }
    for (std::size_t i = 0; i < fresh.n_features(); ++i) {
        for (const auto& entry : fresh.sub_key(i)) {
            EXPECT_FALSE(burned.contains({entry.base_index, entry.rotation}))
                << "feature " << i << " reuses a leaked layer pair";
        }
    }
}

TEST(Rekey, RekeyedDeploymentStillClassifies) {
    // Re-provisioning end to end: materialize new FeaHVs from the fresh key
    // and check the encoder still produces valid, different encodings.
    const auto store = std::make_shared<const PublicStore>(make_store(32, 2048));
    ValueMapping mapping(4);
    for (std::uint32_t level = 0; level < 4; ++level) mapping[level] = level;

    const auto old_key = LockKey::random(8, 2, 32, 2048, 37);
    const auto new_key = rekey(old_key, *store, 41);

    const LockedEncoder old_encoder(store, old_key.clone(), mapping, 1);
    const LockedEncoder new_encoder(store, new_key.clone(), mapping, 1);
    const std::vector<int> levels(8, 2);
    const auto old_hv = old_encoder.encode_binary(levels);
    const auto new_hv = new_encoder.encode_binary(levels);
    EXPECT_EQ(new_hv.dim(), 2048u);
    EXPECT_NEAR(old_hv.normalized_hamming(new_hv), 0.5, 0.1);
}

TEST(Rekey, RefusesPlainKeysAndTinySpaces) {
    const auto store = make_store(2, 4);  // D*P = 8 < 2*N*L = 16: too small
    EXPECT_THROW(rekey(LockKey::plain_random(2, 2, 3), store, 1), ContractViolation);
    const auto key = LockKey::random(4, 2, 2, 4, 3);
    EXPECT_THROW(rekey(key, store, 1), ConfigError);
}
