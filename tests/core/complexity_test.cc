// Tests for the closed-form reasoning complexity (src/core/complexity.*)
// against every headline number the paper quotes.

#include "core/complexity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace complexity = hdlock::complexity;
using hdlock::ContractViolation;

namespace {

// The paper's MNIST validation configuration (Sec. 4.2): N = P = 784,
// D = 10000.
constexpr std::size_t kN = 784;
constexpr std::size_t kD = 10000;
constexpr std::size_t kP = 784;

}  // namespace

TEST(Complexity, BaselineIsNSquared) {
    // "6.15 x 10^5 in normal HDC models" (Sec. 5.2): 784^2 = 614656.
    const long double baseline = complexity::guesses(kN, kD, kP, 0);
    EXPECT_NEAR(static_cast<double>(baseline), 614656.0, 1.0);
    EXPECT_NEAR(complexity::log10_guesses(kN, kD, kP, 0), std::log10(614656.0), 1e-12);
}

TEST(Complexity, OneLayerMatchesPaper) {
    // "the one-layer key can provide 6.15 x 10^9 attacking complexity":
    // N * D * P = 784 * 10^4 * 784 = 6.1466e9.
    const long double one_layer = complexity::guesses(kN, kD, kP, 1);
    EXPECT_NEAR(static_cast<double>(one_layer), 6.1466e9, 0.01e9);
}

TEST(Complexity, TwoLayerMatchesPaperHeadline) {
    // "The attacker has to apply 4.81 x 10^16 tries" (Sec. 4.2):
    // N * (D*P)^2 = 784 * (7.84e6)^2 = 4.818e16.
    const long double two_layer = complexity::guesses(kN, kD, kP, 2);
    EXPECT_NEAR(static_cast<double>(two_layer), 4.818e16, 0.01e16);
}

TEST(Complexity, SecurityGainMatchesPaper) {
    // "7.82 x 10^10 times improvement" over the baseline for L = 2.
    const double gain_log10 = complexity::security_gain_log10(kN, kD, kP, 2);
    EXPECT_NEAR(std::pow(10.0, gain_log10), 7.84e10, 0.05e10);
}

TEST(Complexity, PerFeatureCounts) {
    // Reasoning a single feature: (D*P)^L guesses (Sec. 4.2), N for baseline.
    EXPECT_NEAR(complexity::log10_guesses_per_feature(kN, kD, kP, 0), std::log10(784.0), 1e-12);
    EXPECT_NEAR(complexity::log10_guesses_per_feature(kN, kD, kP, 1), std::log10(7.84e6), 1e-9);
    EXPECT_NEAR(complexity::log10_guesses_per_feature(kN, kD, kP, 2), 2 * std::log10(7.84e6),
                1e-9);
}

TEST(Complexity, GuessesGrowExponentiallyWithLayers) {
    // Fig. 7b: each extra layer multiplies the count by D*P (a constant
    // log10 increment).
    const double increment = std::log10(static_cast<double>(kD) * static_cast<double>(kP));
    for (std::size_t layers = 1; layers < 6; ++layers) {
        const double lo = complexity::log10_guesses(kN, kD, kP, layers);
        const double hi = complexity::log10_guesses(kN, kD, kP, layers + 1);
        ASSERT_NEAR(hi - lo, increment, 1e-9);
    }
}

TEST(Complexity, MonotoneInDimAndPool) {
    // Fig. 7a: the count increases monomially with D and P.
    EXPECT_LT(complexity::log10_guesses(kN, 2000, 300, 2),
              complexity::log10_guesses(kN, 4000, 300, 2));
    EXPECT_LT(complexity::log10_guesses(kN, 2000, 300, 2),
              complexity::log10_guesses(kN, 2000, 600, 2));
}

TEST(Complexity, PoolAndLayersMutuallyEnhance) {
    // The paper's observation that increasing P buys more when L is larger.
    const double small_gain = complexity::log10_guesses(kN, kD, 700, 1) -
                              complexity::log10_guesses(kN, kD, 100, 1);
    const double large_gain = complexity::log10_guesses(kN, kD, 700, 3) -
                              complexity::log10_guesses(kN, kD, 100, 3);
    EXPECT_NEAR(large_gain, 3 * small_gain, 1e-9);
}

TEST(Complexity, HugeCountsStayFiniteInLogSpace) {
    const double log_value = complexity::log10_guesses(kN, kD, kP, 6);
    EXPECT_GT(log_value, 40.0);
    EXPECT_TRUE(std::isfinite(log_value));
}

TEST(Complexity, FormatterRendersScientific) {
    EXPECT_EQ(complexity::format_log10(std::log10(4.818e16)), "4.82e+16");
    EXPECT_EQ(complexity::format_log10(std::log10(614656.0)), "6.15e+05");
}

TEST(Complexity, RejectsZeroSizes) {
    EXPECT_THROW(complexity::log10_guesses(0, kD, kP, 2), ContractViolation);
    EXPECT_THROW(complexity::log10_guesses(kN, 0, kP, 2), ContractViolation);
    EXPECT_THROW(complexity::log10_guesses(kN, kD, 0, 2), ContractViolation);
}

TEST(Footprint, MnistShapeAccounting) {
    const auto report = complexity::footprint(kN, kD, kP, 2, 16, 10);
    EXPECT_EQ(report.secure_key_bits, 784ull * 2 * (10 + 14));
    EXPECT_EQ(report.secure_mapping_bits, 16ull * 4);
    EXPECT_EQ(report.public_pool_bits, 784ull * 10000);
    EXPECT_EQ(report.public_value_bits, 16ull * 10000);
    EXPECT_EQ(report.model_bits, 10ull * 10000);
    // The threat-model premise: secrets are >100x smaller than the public
    // hypervector memory.
    EXPECT_LT(report.secure_total_bits() * 100, report.public_total_bits());
}

TEST(Footprint, PlainKeyStoresNoRotations) {
    const auto locked = complexity::footprint(100, 1024, 128, 1, 4, 2);
    const auto plain = complexity::footprint(100, 1024, 128, 0, 4, 2);
    EXPECT_EQ(locked.secure_key_bits, 100ull * (7 + 10));
    EXPECT_EQ(plain.secure_key_bits, 100ull * 7);
}
