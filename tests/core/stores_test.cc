// Tests for the public/secure memory split (src/core/stores.*): the
// simulated trust boundary of the paper's threat model (Sec. 3.1).

#include "core/stores.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

using hdlock::AccessDenied;
using hdlock::ContractViolation;
using hdlock::LockKey;
using hdlock::PublicStore;
using hdlock::PublicStoreConfig;
using hdlock::SecureStore;
using hdlock::ValueMapping;

namespace {

PublicStoreConfig small_config() {
    PublicStoreConfig config;
    config.dim = 2048;
    config.pool_size = 12;
    config.n_levels = 8;
    config.seed = 31;
    return config;
}

}  // namespace

TEST(PublicStore, GenerateShapes) {
    ValueMapping mapping;
    const auto store = PublicStore::generate(small_config(), mapping);
    EXPECT_EQ(store.dim(), 2048u);
    EXPECT_EQ(store.pool_size(), 12u);
    EXPECT_EQ(store.n_levels(), 8u);
    EXPECT_EQ(mapping.size(), 8u);
}

TEST(PublicStore, ValueMappingIsAPermutation) {
    ValueMapping mapping;
    PublicStore::generate(small_config(), mapping);
    std::set<std::uint32_t> unique(mapping.begin(), mapping.end());
    EXPECT_EQ(unique.size(), 8u);
    EXPECT_EQ(*std::max_element(mapping.begin(), mapping.end()), 7u);
}

TEST(PublicStore, MappedSlotsRecoverLinearLevelProfile) {
    // Reading the slots through the secret mapping must reproduce the
    // ordered level chain (Eq. 1b); reading them in slot order must not
    // (that's the whole point of shuffling the storage order).
    auto config = small_config();
    config.dim = 10000;
    ValueMapping mapping;
    const auto store = PublicStore::generate(config, mapping);

    const double step = 0.5 / 7.0;
    for (std::size_t a = 0; a + 1 < 8; ++a) {
        const auto& current = store.value_slot(mapping[a]);
        const auto& next = store.value_slot(mapping[a + 1]);
        EXPECT_NEAR(current.normalized_hamming(next), step, 0.02) << "level " << a;
    }
    const auto& first = store.value_slot(mapping[0]);
    const auto& last = store.value_slot(mapping[7]);
    EXPECT_NEAR(first.normalized_hamming(last), 0.5, 0.02);
}

TEST(PublicStore, BasesAreQuasiOrthogonal) {
    ValueMapping mapping;
    const auto store = PublicStore::generate(small_config(), mapping);
    for (std::size_t i = 0; i < store.pool_size(); ++i) {
        for (std::size_t j = i + 1; j < store.pool_size(); ++j) {
            ASSERT_NEAR(store.base(i).normalized_hamming(store.base(j)), 0.5, 0.06);
        }
    }
}

TEST(PublicStore, DeterministicPerSeed) {
    ValueMapping mapping_a, mapping_b;
    const auto a = PublicStore::generate(small_config(), mapping_a);
    const auto b = PublicStore::generate(small_config(), mapping_b);
    EXPECT_EQ(mapping_a, mapping_b);
    EXPECT_EQ(a.base(3), b.base(3));
    EXPECT_EQ(a.value_slot(5), b.value_slot(5));
}

TEST(PublicStore, AccessorsBoundsChecked) {
    ValueMapping mapping;
    const auto store = PublicStore::generate(small_config(), mapping);
    EXPECT_THROW(store.base(12), ContractViolation);
    EXPECT_THROW(store.value_slot(8), ContractViolation);
}

TEST(PublicStore, RejectsBadConfigs) {
    ValueMapping mapping;
    PublicStoreConfig config = small_config();
    config.dim = 0;
    EXPECT_THROW(PublicStore::generate(config, mapping), ContractViolation);
    config = small_config();
    config.pool_size = 0;
    EXPECT_THROW(PublicStore::generate(config, mapping), ContractViolation);
    config = small_config();
    config.n_levels = 1;
    EXPECT_THROW(PublicStore::generate(config, mapping), ContractViolation);
}

TEST(PublicStore, SerializationRoundTrip) {
    ValueMapping mapping;
    const auto store = PublicStore::generate(small_config(), mapping);
    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    store.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const auto loaded = PublicStore::load(reader);
    EXPECT_EQ(loaded.dim(), store.dim());
    EXPECT_EQ(loaded.pool_size(), store.pool_size());
    EXPECT_EQ(loaded.base(7), store.base(7));
    EXPECT_EQ(loaded.value_slot(2), store.value_slot(2));
}

// ---------------------------------------------------------------------------
// SecureStore
// ---------------------------------------------------------------------------

TEST(SecureStore, ReadableUntilSealed) {
    const auto key = LockKey::random(8, 2, 8, 64, 3);
    SecureStore secure(key.clone(), ValueMapping{1, 0, 2});
    EXPECT_FALSE(secure.sealed());
    EXPECT_EQ(secure.key(), key);
    EXPECT_EQ(secure.value_mapping(), (ValueMapping{1, 0, 2}));
}

TEST(SecureStore, SealBlocksAllReads) {
    SecureStore secure(LockKey::random(8, 2, 8, 64, 3), ValueMapping{0, 1});
    secure.seal();
    EXPECT_TRUE(secure.sealed());
    EXPECT_THROW(secure.key(), AccessDenied);
    EXPECT_THROW(secure.value_mapping(), AccessDenied);
}

TEST(SecureStore, StorageBitsAccountsKeyAndMapping) {
    // 8 features x 2 layers x (3 + 6) key bits, plus 4 levels x 2 bits.
    SecureStore secure(LockKey::random(8, 2, 8, 64, 3), ValueMapping{0, 1, 2, 3});
    EXPECT_EQ(secure.storage_bits(8, 64), 8ull * 2 * (3 + 6) + 4ull * 2);
}

TEST(SecureStore, SecureFootprintIsTinyComparedToModel) {
    // The threat-model premise: the key fits in a small tamper-proof memory
    // while the hypervectors do not.  MNIST shape: P = N = 784, D = 10000.
    SecureStore secure(LockKey::random(784, 2, 784, 10000, 3),
                       ValueMapping(16, 0));
    const std::uint64_t secure_bits = secure.storage_bits(784, 10000);
    const std::uint64_t public_bits = 784ull * 10000;  // pool alone
    EXPECT_LT(secure_bits * 100, public_bits);
}

TEST(SecureStore, RejectsEmptySecrets) {
    EXPECT_THROW(SecureStore(LockKey{}, ValueMapping{0}), ContractViolation);
    EXPECT_THROW(SecureStore(LockKey::plain({0}), ValueMapping{}), ContractViolation);
}
