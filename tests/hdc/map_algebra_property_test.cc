// Property suite for the MAP algebra across dimensions, including word
// boundaries (63/64/65, 127/128/129) and the paper's D = 10,000.  These are
// the invariants every layer above (encoders, attacks, HDLock) relies on:
// bind is a self-inverse commutative group action, rotation is a distance-
// preserving automorphism that distributes over bind, and the similarity
// metrics satisfy their algebraic identities exactly.

#include <gtest/gtest.h>

#include <cmath>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace {

using hdlock::hdc::BinaryHV;
using hdlock::hdc::IntHV;

class MapAlgebraTest : public ::testing::TestWithParam<std::size_t> {
protected:
    std::size_t dim() const { return GetParam(); }

    BinaryHV random_hv(std::uint64_t seed) const {
        hdlock::util::Xoshiro256ss rng(seed);
        return BinaryHV::random(dim(), rng);
    }
};

TEST_P(MapAlgebraTest, BindIsSelfInverse) {
    const auto a = random_hv(1);
    const auto b = random_hv(2);
    EXPECT_EQ((a * b) * b, a);
    EXPECT_EQ(a * a, BinaryHV(dim()));  // identity = all +1
}

TEST_P(MapAlgebraTest, BindCommutesAndAssociates) {
    const auto a = random_hv(3);
    const auto b = random_hv(4);
    const auto c = random_hv(5);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST_P(MapAlgebraTest, BindPreservesDistances) {
    // Multiplying both operands by the same vector is an isometry — the
    // algebraic fact behind Eq. 5's "move the ValHV out".
    const auto a = random_hv(6);
    const auto b = random_hv(7);
    const auto mask = random_hv(8);
    EXPECT_EQ((a * mask).hamming(b * mask), a.hamming(b));
}

TEST_P(MapAlgebraTest, RotationFormsACyclicGroup) {
    const auto a = random_hv(9);
    EXPECT_EQ(a.rotated(0), a);
    EXPECT_EQ(a.rotated(dim()), a);  // rho_D = identity
    const std::size_t j = dim() / 3;
    const std::size_t k = dim() / 2 + 1;
    EXPECT_EQ(a.rotated(j).rotated(k), a.rotated((j + k) % dim()));
}

TEST_P(MapAlgebraTest, RotationIsAnIsometry) {
    const auto a = random_hv(10);
    const auto b = random_hv(11);
    const std::size_t k = dim() * 2 / 3 + 1;
    EXPECT_EQ(a.rotated(k).hamming(b.rotated(k)), a.hamming(b));
}

TEST_P(MapAlgebraTest, RotationDistributesOverBind) {
    // rho(a * b) = rho(a) * rho(b): why Eq. 9 layers can be evaluated in
    // any rotate/bind order.
    const auto a = random_hv(12);
    const auto b = random_hv(13);
    const std::size_t k = dim() / 4 + 1;
    EXPECT_EQ((a * b).rotated(k), a.rotated(k) * b.rotated(k));
}

TEST_P(MapAlgebraTest, DotHammingIdentity) {
    const auto a = random_hv(14);
    const auto b = random_hv(15);
    const auto hamming = static_cast<std::int64_t>(a.hamming(b));
    EXPECT_EQ(a.dot(b), static_cast<std::int64_t>(dim()) - 2 * hamming);
    EXPECT_DOUBLE_EQ(a.cosine(b),
                     static_cast<double>(a.dot(b)) / static_cast<double>(dim()));
    EXPECT_EQ(a.hamming(a), 0u);
    EXPECT_DOUBLE_EQ(a.cosine(a), 1.0);
}

TEST_P(MapAlgebraTest, NormalizedHammingTriangleInequality) {
    const auto a = random_hv(16);
    const auto b = random_hv(17);
    const auto c = random_hv(18);
    EXPECT_LE(a.normalized_hamming(c),
              a.normalized_hamming(b) + b.normalized_hamming(c) + 1e-12);
}

TEST_P(MapAlgebraTest, BipolarLiftRoundTrips) {
    const auto a = random_hv(19);
    hdlock::util::Xoshiro256ss tie_rng(20);
    EXPECT_EQ(IntHV::from_binary(a).sign(tie_rng), a);
    EXPECT_EQ(IntHV::from_binary(a).zero_count(), 0u);
}

TEST_P(MapAlgebraTest, ThreeWayMajorityBundling) {
    // sign(a + a + b) = a: the majority rule that makes bundling a noisy
    // union — no ties can occur, so the result is tie-seed independent.
    const auto a = random_hv(21);
    const auto b = random_hv(22);
    IntHV sums(dim());
    sums.add(a);
    sums.add(a);
    sums.add(b);
    EXPECT_EQ(sums.zero_count(), 0u);
    hdlock::util::Xoshiro256ss tie_rng(23);
    EXPECT_EQ(sums.sign(tie_rng), a);
}

INSTANTIATE_TEST_SUITE_P(Dims, MapAlgebraTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{63},
                                           std::size_t{64}, std::size_t{65}, std::size_t{127},
                                           std::size_t{128}, std::size_t{129}, std::size_t{1000},
                                           std::size_t{4096}, std::size_t{10000}),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             // Append form: GCC 12's -Wrestrict false-positives
                             // on operator+ chains ending in a string&&.
                             std::string name = "D";
                             name += std::to_string(info.param);
                             return name;
                         });

TEST(MapAlgebraConcentration, RandomPairsConcentrateAtHalf) {
    // Eq. 1a at scale: for D >= 4096 the normalized distance of independent
    // draws concentrates within a few standard deviations of 0.5
    // (sigma = 1 / (2 sqrt(D))).
    for (const std::size_t dim : {std::size_t{4096}, std::size_t{10000}}) {
        hdlock::util::Xoshiro256ss rng(31);
        const double sigma = 0.5 / std::sqrt(static_cast<double>(dim));
        for (int pair = 0; pair < 20; ++pair) {
            const auto a = BinaryHV::random(dim, rng);
            const auto b = BinaryHV::random(dim, rng);
            EXPECT_NEAR(a.normalized_hamming(b), 0.5, 6.0 * sigma) << "D = " << dim;
        }
    }
}

}  // namespace
