// Tests for the hypervector algebra (src/hdc/hypervector.*): the MAP
// operators of Sec. 2 and the similarity metrics of Eq. 1.

#include "hdc/hypervector.hpp"

#include <gtest/gtest.h>

#include <sstream>

using hdlock::ContractViolation;
using hdlock::FormatError;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::IntHV;
using hdlock::util::BinaryReader;
using hdlock::util::BinaryWriter;
using hdlock::util::Xoshiro256ss;

namespace {

BinaryHV random_hv(std::size_t dim, std::uint64_t seed) {
    Xoshiro256ss rng(seed);
    return BinaryHV::random(dim, rng);
}

}  // namespace

TEST(BinaryHV, DefaultConstructedIsEmpty) {
    BinaryHV hv;
    EXPECT_TRUE(hv.empty());
    EXPECT_EQ(hv.dim(), 0u);
}

TEST(BinaryHV, ZeroInitializedIsAllPlusOne) {
    BinaryHV hv(100);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(hv.get(i), 1);
}

TEST(BinaryHV, GetSetRoundTrip) {
    BinaryHV hv(65);
    hv.set(0, -1);
    hv.set(64, -1);
    EXPECT_EQ(hv.get(0), -1);
    EXPECT_EQ(hv.get(1), 1);
    EXPECT_EQ(hv.get(64), -1);
    hv.set(0, 1);
    EXPECT_EQ(hv.get(0), 1);
    EXPECT_THROW(hv.set(0, 0), ContractViolation);
    EXPECT_THROW(hv.set(65, 1), ContractViolation);
    EXPECT_THROW(hv.get(65), ContractViolation);
}

TEST(BinaryHV, RandomPairsAreQuasiOrthogonal) {
    // Eq. 1a: independent random hypervectors sit at normalized Hamming
    // distance ~0.5.  At D = 10000 the standard deviation is 0.005, so
    // +-0.03 is a six-sigma band.
    const std::size_t dim = 10000;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto a = random_hv(dim, 2 * seed);
        const auto b = random_hv(dim, 2 * seed + 1);
        EXPECT_NEAR(a.normalized_hamming(b), 0.5, 0.03);
    }
}

TEST(BinaryHV, MultiplySelfGivesIdentity) {
    const auto a = random_hv(1000, 3);
    const BinaryHV identity = a * a;
    for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(identity.get(i), 1);
}

TEST(BinaryHV, MultiplyIsElementwiseBipolarProduct) {
    const auto a = random_hv(200, 4);
    const auto b = random_hv(200, 5);
    const BinaryHV c = a * b;
    for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(c.get(i), a.get(i) * b.get(i));
}

TEST(BinaryHV, MultiplyCommutesAndAssociates) {
    const auto a = random_hv(333, 6);
    const auto b = random_hv(333, 7);
    const auto c = random_hv(333, 8);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(BinaryHV, MultiplyInPlaceMatches) {
    const auto a = random_hv(150, 9);
    const auto b = random_hv(150, 10);
    BinaryHV c = a;
    c *= b;
    EXPECT_EQ(c, a * b);
}

TEST(BinaryHV, BindPreservesDistances) {
    // Binding with a common hypervector is an isometry for Hamming distance —
    // the property that makes ValHV x FeaHV products analyzable in the attack.
    const auto a = random_hv(2000, 11);
    const auto b = random_hv(2000, 12);
    const auto c = random_hv(2000, 13);
    EXPECT_EQ((a * c).hamming(b * c), a.hamming(b));
}

TEST(BinaryHV, MultiplyDimensionMismatchThrows) {
    const auto a = random_hv(100, 14);
    const auto b = random_hv(101, 15);
    EXPECT_THROW(a * b, ContractViolation);
}

TEST(BinaryHV, RotatedMatchesIndexDefinition) {
    const auto a = random_hv(1000, 16);
    const BinaryHV r = a.rotated(17);
    for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(r.get(i), a.get((i + 17) % 1000));
}

TEST(BinaryHV, RotationByDimIsIdentity) {
    const auto a = random_hv(777, 17);
    EXPECT_EQ(a.rotated(777), a);
    EXPECT_EQ(a.rotated(0), a);
    EXPECT_EQ(a.rotated(777 * 3 + 5), a.rotated(5));
}

TEST(BinaryHV, RotationDistributesOverMultiplication) {
    // rho_k(a x b) == rho_k(a) x rho_k(b): the algebraic fact behind
    // HDLock's Eq. 9 products of permuted bases.
    const auto a = random_hv(512, 18);
    const auto b = random_hv(512, 19);
    EXPECT_EQ((a * b).rotated(100), a.rotated(100) * b.rotated(100));
}

TEST(BinaryHV, DotAndCosineRelations) {
    const auto a = random_hv(1000, 20);
    const auto b = random_hv(1000, 21);
    EXPECT_EQ(a.dot(b), 1000 - 2 * static_cast<std::int64_t>(a.hamming(b)));
    EXPECT_DOUBLE_EQ(a.cosine(a), 1.0);
    EXPECT_EQ(a.hamming(a), 0u);
    const auto dim = static_cast<double>(a.dim());
    EXPECT_NEAR(a.cosine(b), 1.0 - 2.0 * a.normalized_hamming(b), 1.0 / dim);
}

TEST(BinaryHV, SerializationRoundTrip) {
    const auto a = random_hv(10000, 22);
    std::stringstream stream;
    BinaryWriter writer(stream);
    a.save(writer);
    BinaryReader reader(stream);
    EXPECT_EQ(BinaryHV::load(reader), a);
}

TEST(BinaryHV, LoadRejectsDirtyTail) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_tag("BHV1");
    writer.write_u64(10);  // 10 bits -> one word, tail must be clean
    const std::vector<std::uint64_t> words = {~0ull};
    writer.write_span(std::span<const std::uint64_t>(words));
    BinaryReader reader(stream);
    EXPECT_THROW(BinaryHV::load(reader), FormatError);
}

TEST(BinaryHV, LoadRejectsWordCountMismatch) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_tag("BHV1");
    writer.write_u64(128);
    const std::vector<std::uint64_t> words = {0};  // needs two words
    writer.write_span(std::span<const std::uint64_t>(words));
    BinaryReader reader(stream);
    EXPECT_THROW(BinaryHV::load(reader), FormatError);
}

// ---------------------------------------------------------------------------
// IntHV
// ---------------------------------------------------------------------------

TEST(IntHV, AddSubBinary) {
    const auto a = random_hv(300, 30);
    const auto b = random_hv(300, 31);
    IntHV sum(300);
    sum.add(a);
    sum.add(b);
    for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(sum[i], a.get(i) + b.get(i));
    sum.sub(b);
    for (std::size_t i = 0; i < 300; ++i) EXPECT_EQ(sum[i], a.get(i));
}

TEST(IntHV, FromBinaryLift) {
    const auto a = random_hv(100, 32);
    const IntHV lifted = IntHV::from_binary(a);
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(lifted[i], a.get(i));
}

TEST(IntHV, ArithmeticOperators) {
    IntHV a(std::vector<std::int32_t>{1, -2, 3});
    IntHV b(std::vector<std::int32_t>{4, 5, -6});
    const IntHV sum = a + b;
    const IntHV diff = a - b;
    EXPECT_EQ(sum.values()[0], 5);
    EXPECT_EQ(sum.values()[1], 3);
    EXPECT_EQ(sum.values()[2], -3);
    EXPECT_EQ(diff.values()[0], -3);
    EXPECT_EQ(diff.values()[1], -7);
    EXPECT_EQ(diff.values()[2], 9);
}

TEST(IntHV, SignWithoutZerosIsDeterministic) {
    IntHV v(std::vector<std::int32_t>{5, -3, 1, -1, 100});
    Xoshiro256ss rng1(1), rng2(999);
    const BinaryHV s1 = v.sign(rng1);
    const BinaryHV s2 = v.sign(rng2);
    EXPECT_EQ(s1, s2);  // no ties -> tie RNG must not matter
    EXPECT_EQ(s1.get(0), 1);
    EXPECT_EQ(s1.get(1), -1);
    EXPECT_EQ(s1.get(2), 1);
    EXPECT_EQ(s1.get(3), -1);
    EXPECT_EQ(s1.get(4), 1);
}

TEST(IntHV, SignBreaksTiesRandomly) {
    // The paper's Eq. 3: sign(0) is randomly assigned. Over many zero
    // entries, both signs must appear with roughly equal frequency.
    IntHV zeros(10000);
    EXPECT_EQ(zeros.zero_count(), 10000u);
    Xoshiro256ss rng(77);
    const BinaryHV s = zeros.sign(rng);
    std::size_t plus = 0;
    for (std::size_t i = 0; i < 10000; ++i) plus += s.get(i) == 1 ? 1u : 0u;
    EXPECT_NEAR(static_cast<double>(plus) / 10000.0, 0.5, 0.03);
}

TEST(IntHV, ZeroCount) {
    IntHV v(std::vector<std::int32_t>{0, 1, 0, -2, 0});
    EXPECT_EQ(v.zero_count(), 3u);
}

TEST(IntHV, DotAndNorm) {
    IntHV a(std::vector<std::int32_t>{3, 4});
    IntHV b(std::vector<std::int32_t>{4, -3});
    EXPECT_EQ(a.dot(b), 0);
    EXPECT_DOUBLE_EQ(a.norm(), 5.0);
    EXPECT_DOUBLE_EQ(a.cosine(b), 0.0);
    EXPECT_DOUBLE_EQ(a.cosine(a), 1.0);
}

TEST(IntHV, CosineOfZeroVectorIsZero) {
    IntHV zero(10);
    IntHV other(std::vector<std::int32_t>(10, 1));
    EXPECT_DOUBLE_EQ(zero.cosine(other), 0.0);
}

TEST(IntHV, DotWithBinary) {
    const auto b = random_hv(500, 33);
    IntHV v(500);
    v.add(b);
    v.add(b);
    EXPECT_EQ(v.dot(b), 1000);  // every element contributes 2 * (+-1)^2
    EXPECT_NEAR(v.cosine(b), 1.0, 1e-12);
}

TEST(IntHV, MismatchedDimensionsThrow) {
    IntHV a(10);
    IntHV b(11);
    const auto hv = random_hv(12, 34);
    EXPECT_THROW(a.add(b), ContractViolation);
    EXPECT_THROW(a.dot(b), ContractViolation);
    EXPECT_THROW(a.add(hv), ContractViolation);
    EXPECT_THROW(a.dot(hv), ContractViolation);
}

TEST(IntHV, SerializationRoundTrip) {
    IntHV v(std::vector<std::int32_t>{1, -1, 0, 42, -12345});
    std::stringstream stream;
    BinaryWriter writer(stream);
    v.save(writer);
    BinaryReader reader(stream);
    EXPECT_EQ(IntHV::load(reader), v);
}
