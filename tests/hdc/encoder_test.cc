// Tests for the record-based encoder (src/hdc/encoder.*): equivalence of the
// bit-sliced fast path with the Eq. 2 reference, and the algebraic properties
// (Eq. 5, Eq. 7) that the Sec. 3 attack exploits.

#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "util/kernels.hpp"

using hdlock::ContractViolation;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::Encoder;
using hdlock::hdc::IntHV;
using hdlock::hdc::ItemMemory;
using hdlock::hdc::ItemMemoryConfig;
using hdlock::hdc::RecordEncoder;

namespace {

std::shared_ptr<const ItemMemory> make_memory(std::size_t dim, std::size_t n_features,
                                              std::size_t n_levels, std::uint64_t seed) {
    ItemMemoryConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = n_levels;
    config.seed = seed;
    return std::make_shared<const ItemMemory>(ItemMemory::generate(config));
}

std::vector<int> random_levels(std::size_t n_features, std::size_t n_levels, std::uint64_t seed) {
    hdlock::util::Xoshiro256ss rng(seed);
    std::vector<int> levels(n_features);
    for (auto& level : levels) level = static_cast<int>(rng.next_below(n_levels));
    return levels;
}

}  // namespace

// (dim, n_features, n_levels)
class EncoderEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(EncoderEquivalence, FastPathMatchesReference) {
    const auto [dim, n_features, n_levels] = GetParam();
    const RecordEncoder encoder(make_memory(dim, n_features, n_levels, 3), /*tie_seed=*/1);
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
        const auto levels = random_levels(n_features, n_levels, 100 + trial);
        EXPECT_EQ(encoder.encode(levels), encoder.encode_reference(levels));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderEquivalence,
    ::testing::Values(std::make_tuple(64, 1, 2), std::make_tuple(64, 3, 2),
                      std::make_tuple(100, 10, 4), std::make_tuple(1000, 63, 8),
                      std::make_tuple(1000, 64, 8), std::make_tuple(1000, 65, 8),
                      std::make_tuple(4096, 128, 16), std::make_tuple(10000, 784, 2)));

TEST(RecordEncoder, OutputBoundsAndParity) {
    // Each H_nb[j] is a sum of N bipolar terms: |H[j]| <= N and H[j] == N (mod 2).
    const std::size_t n_features = 33;
    const RecordEncoder encoder(make_memory(2048, n_features, 4, 5), 1);
    const auto levels = random_levels(n_features, 4, 9);
    const IntHV h = encoder.encode(levels);
    for (std::size_t j = 0; j < h.dim(); ++j) {
        ASSERT_LE(std::abs(h[j]), static_cast<int>(n_features));
        ASSERT_EQ((h[j] + static_cast<int>(n_features)) % 2, 0);
    }
}

TEST(RecordEncoder, SingleValueInputFactorsOut) {
    // Eq. 5: when every feature carries the same level v,
    //   H_nb = ValHV_v (element-wise) * sum_i FeaHV_i.
    const std::size_t dim = 2000, n_features = 21;
    const auto memory = make_memory(dim, n_features, 4, 7);
    const RecordEncoder encoder(memory, 1);

    IntHV feature_sum(dim);
    for (std::size_t i = 0; i < n_features; ++i) feature_sum.add(memory->feature_hv(i));

    for (int v = 0; v < 4; ++v) {
        const std::vector<int> levels(n_features, v);
        const IntHV h = encoder.encode(levels);
        const BinaryHV& value_hv = memory->value_hv(static_cast<std::size_t>(v));
        for (std::size_t j = 0; j < dim; ++j) {
            ASSERT_EQ(h[j], value_hv.get(j) * feature_sum[j]) << "v=" << v << " j=" << j;
        }
    }
}

TEST(RecordEncoder, SingleFeatureDeviationIsolatesThatFeature) {
    // Eq. 7 vs. the all-minimum encoding: the difference of the two
    // non-binary outputs equals FeaHV_i * (ValHV_max - ValHV_min).
    const std::size_t dim = 2000, n_features = 17, n_levels = 8;
    const auto memory = make_memory(dim, n_features, n_levels, 11);
    const RecordEncoder encoder(memory, 1);

    const std::vector<int> all_min(n_features, 0);
    const IntHV h_min = encoder.encode(all_min);

    for (const std::size_t probe : {std::size_t{0}, std::size_t{7}, n_features - 1}) {
        std::vector<int> crafted(n_features, 0);
        crafted[probe] = static_cast<int>(n_levels) - 1;
        const IntHV h_probe = encoder.encode(crafted);
        const IntHV diff = h_probe - h_min;
        const BinaryHV& fea = memory->feature_hv(probe);
        const BinaryHV& val_min = memory->value_hv(0);
        const BinaryHV& val_max = memory->value_hv(n_levels - 1);
        for (std::size_t j = 0; j < dim; ++j) {
            ASSERT_EQ(diff[j], fea.get(j) * (val_max.get(j) - val_min.get(j)));
        }
    }
}

TEST(RecordEncoder, BinaryEncodingIsSignOfNonBinary) {
    const std::size_t n_features = 15;  // odd -> no sign(0) ties
    const RecordEncoder encoder(make_memory(1024, n_features, 4, 13), 1);
    const auto levels = random_levels(n_features, 4, 17);
    const IntHV h = encoder.encode(levels);
    ASSERT_EQ(h.zero_count(), 0u);
    const BinaryHV hb = encoder.encode_binary(levels);
    for (std::size_t j = 0; j < h.dim(); ++j) {
        ASSERT_EQ(hb.get(j), h[j] > 0 ? 1 : -1);
    }
}

TEST(RecordEncoder, BinaryEncodingDeterministicPerInput) {
    // Even with ties (even feature count), repeated queries must return the
    // identical output: the encoder is a function, like the hardware it
    // models.
    const std::size_t n_features = 16;
    const RecordEncoder encoder(make_memory(1024, n_features, 4, 15), 77);
    const auto levels = random_levels(n_features, 4, 19);
    EXPECT_GT(encoder.encode(levels).zero_count(), 0u);  // ties actually exist
    EXPECT_EQ(encoder.encode_binary(levels), encoder.encode_binary(levels));
}

TEST(RecordEncoder, TieSeedOnlyAffectsTiedElements) {
    const std::size_t n_features = 16;
    const auto memory = make_memory(1024, n_features, 4, 15);
    const RecordEncoder enc_a(memory, 1);
    const RecordEncoder enc_b(memory, 2);
    const auto levels = random_levels(n_features, 4, 23);
    const IntHV h = enc_a.encode(levels);
    const BinaryHV ha = enc_a.encode_binary(levels);
    const BinaryHV hb = enc_b.encode_binary(levels);
    std::size_t diffs = 0;
    for (std::size_t j = 0; j < h.dim(); ++j) {
        if (ha.get(j) != hb.get(j)) {
            ++diffs;
            ASSERT_EQ(h[j], 0) << "non-tied element changed with tie seed";
        }
    }
    EXPECT_GT(diffs, 0u);  // ~half the ties should differ
}

TEST(RecordEncoder, DifferentInputsGiveDistantBinaryCodes) {
    const std::size_t n_features = 64;
    const RecordEncoder encoder(make_memory(4096, n_features, 8, 17), 1);
    const auto a = encoder.encode_binary(random_levels(n_features, 8, 29));
    const auto b = encoder.encode_binary(random_levels(n_features, 8, 31));
    EXPECT_GT(a.normalized_hamming(b), 0.2);
}

TEST(RecordEncoder, RejectsBadInputs) {
    const RecordEncoder encoder(make_memory(256, 8, 4, 19), 1);
    const std::vector<int> short_levels(7, 0);
    EXPECT_THROW(encoder.encode(short_levels), ContractViolation);
    std::vector<int> bad_level(8, 0);
    bad_level[3] = 4;
    EXPECT_THROW(encoder.encode(bad_level), ContractViolation);
    bad_level[3] = -1;
    EXPECT_THROW(encoder.encode(bad_level), ContractViolation);
    EXPECT_THROW(RecordEncoder(nullptr, 1), ContractViolation);
}

TEST(RecordEncoder, RejectsMemoryWithoutFeatureHVs) {
    hdlock::hdc::ItemMemoryConfig config;
    config.dim = 64;
    config.n_features = 0;
    config.n_levels = 2;
    auto memory = std::make_shared<const ItemMemory>(ItemMemory::generate(config));
    EXPECT_THROW(RecordEncoder(memory, 1), ContractViolation);
}

// ---------------------------------------------------------------------------
// Fused encode→distance (Encoder::fused_hamming_into)
// ---------------------------------------------------------------------------

// The fused kernel path must reproduce the two-step encode_binary + hamming
// distances bit-for-bit: every backend, dimensions spanning vector-width
// tails (64 / odd / 1000 / 10000), bound-product cache on and off, and both
// feature-count parities — even N exercises the randomized tie draws, odd N
// the tie-free path.
TEST(EncoderFused, DistancesMatchTwoStepPathEverywhere) {
    namespace kernels = hdlock::util::kernels;
    for (const auto& [dim, n_features, n_levels] :
         {std::make_tuple<std::size_t, std::size_t, std::size_t>(64, 8, 4),
          std::make_tuple<std::size_t, std::size_t, std::size_t>(777, 33, 8),
          std::make_tuple<std::size_t, std::size_t, std::size_t>(1000, 64, 8),
          std::make_tuple<std::size_t, std::size_t, std::size_t>(10000, 63, 4)}) {
        const RecordEncoder encoder(make_memory(dim, n_features, n_levels, 5), /*tie_seed=*/9);
        const auto cache = encoder.make_product_cache(std::size_t{1} << 30);
        ASSERT_NE(cache, nullptr);

        const std::size_t n_classes = 5;
        hdlock::util::Xoshiro256ss rng(4242);
        std::vector<BinaryHV> class_hvs;
        for (std::size_t c = 0; c < n_classes; ++c) {
            class_hvs.push_back(BinaryHV::random(dim, rng));
        }

        for (std::uint64_t trial = 0; trial < 3; ++trial) {
            const auto levels = random_levels(n_features, n_levels, 700 + trial);
            const BinaryHV query = encoder.encode_binary(levels);
            std::vector<std::uint64_t> expected;
            for (const auto& hv : class_hvs) expected.push_back(hv.hamming(query));

            for (const auto kind : kernels::available_backends()) {
                kernels::ScopedBackend pin(kind);
                for (const bool cached : {false, true}) {
                    hdlock::hdc::EncoderScratch scratch;
                    std::vector<std::uint64_t> distances(n_classes, 0);
                    encoder.fused_hamming_into(levels, scratch, class_hvs, distances,
                                               cached ? cache.get() : nullptr);
                    EXPECT_EQ(distances, expected)
                        << kernels::backend_name(kind) << " D=" << dim << " N=" << n_features
                        << " cached=" << cached;
                }
            }
        }
    }
}

// Even feature counts tie on ~C(N, N/2)/2^N of the columns; the fused path
// must draw the identical tie stream as sign_into.  A wrong draw order (or a
// draw for a tail column) shifts every later sign, so exact distance
// equality here pins the whole RNG-parity contract.
TEST(EncoderFused, TieDrawsMatchSignIntoOnEvenFeatureCounts) {
    namespace kernels = hdlock::util::kernels;
    const std::size_t dim = 1000;
    const std::size_t n_features = 8;  // even and small: many ties per row
    const RecordEncoder encoder(make_memory(dim, n_features, 4, 21), /*tie_seed=*/77);
    const auto cache = encoder.make_product_cache(std::size_t{1} << 30);
    ASSERT_NE(cache, nullptr);

    hdlock::util::Xoshiro256ss rng(31337);
    std::vector<BinaryHV> class_hvs{BinaryHV::random(dim, rng), BinaryHV::random(dim, rng)};

    std::size_t tied_columns = 0;
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
        const auto levels = random_levels(n_features, 4, 900 + trial);
        const IntHV sums = encoder.encode(levels);
        for (std::size_t j = 0; j < dim; ++j) tied_columns += sums[j] == 0 ? 1 : 0;
        const BinaryHV query = encoder.encode_binary(levels);
        std::vector<std::uint64_t> expected;
        for (const auto& hv : class_hvs) expected.push_back(hv.hamming(query));
        for (const auto kind : kernels::available_backends()) {
            kernels::ScopedBackend pin(kind);
            for (const bool cached : {false, true}) {
                hdlock::hdc::EncoderScratch scratch;
                std::vector<std::uint64_t> distances(class_hvs.size(), 0);
                encoder.fused_hamming_into(levels, scratch, class_hvs, distances,
                                           cached ? cache.get() : nullptr);
                EXPECT_EQ(distances, expected)
                    << kernels::backend_name(kind) << " trial=" << trial
                    << " cached=" << cached;
            }
        }
    }
    EXPECT_GT(tied_columns, 0u) << "test shape never tied; tie parity untested";
}

TEST(EncoderFused, RejectsShapeMismatches) {
    const RecordEncoder encoder(make_memory(256, 8, 4, 3), 1);
    hdlock::hdc::EncoderScratch scratch;
    hdlock::util::Xoshiro256ss rng(5);
    std::vector<BinaryHV> classes{BinaryHV::random(256, rng)};
    std::vector<std::uint64_t> distances(2, 0);  // wrong: 2 distances, 1 class
    const auto levels = random_levels(8, 4, 1);
    EXPECT_THROW(encoder.fused_hamming_into(levels, scratch, classes, distances),
                 ContractViolation);
    std::vector<BinaryHV> wrong_dim{BinaryHV::random(128, rng)};
    std::vector<std::uint64_t> one(1, 0);
    EXPECT_THROW(encoder.fused_hamming_into(levels, scratch, wrong_dim, one),
                 ContractViolation);
}
