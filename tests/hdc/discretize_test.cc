// Tests for min-max discretization (src/hdc/discretize.*).

#include "hdc/discretize.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

using hdlock::ContractViolation;
using hdlock::hdc::DiscretizerMode;
using hdlock::hdc::MinMaxDiscretizer;
using hdlock::util::Matrix;

TEST(Discretizer, GlobalModeMapsRangeLinearly) {
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1.0f, 4);
    EXPECT_EQ(d.level_of(0.0f), 0);
    EXPECT_EQ(d.level_of(0.24f), 0);
    EXPECT_EQ(d.level_of(0.25f), 1);
    EXPECT_EQ(d.level_of(0.5f), 2);
    EXPECT_EQ(d.level_of(0.75f), 3);
    EXPECT_EQ(d.level_of(1.0f), 3);  // max clamps into the top level
}

TEST(Discretizer, OutOfRangeValuesClamp) {
    const auto d = MinMaxDiscretizer::with_range(0.0f, 10.0f, 8);
    EXPECT_EQ(d.level_of(-100.0f), 0);
    EXPECT_EQ(d.level_of(100.0f), 7);
}

TEST(Discretizer, NonFiniteValuesClampDeterministically) {
    // Regression: NaN reached std::floor + an integer cast, which is
    // undefined behavior ("nan" parses fine from a CSV field).  The contract
    // is now: NaN -> level 0, +inf -> top level, -inf -> level 0.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1.0f, 8);

    EXPECT_EQ(d.level_of(nan), 0);
    EXPECT_EQ(d.level_of(inf), 7);
    EXPECT_EQ(d.level_of(-inf), 0);

    // Same clamping through the row path, mixed with finite values.
    const std::vector<float> row = {nan, inf, -inf, 0.5f};
    Matrix<float> X(1, 4);
    for (std::size_t c = 0; c < row.size(); ++c) X(0, c) = row[c];
    const auto per_feature = MinMaxDiscretizer::fit(
        Matrix<float>(2, 4, 1.0f), 8, DiscretizerMode::per_feature);
    // fit on constant columns -> degenerate ranges -> all level 0, finite or not.
    for (std::size_t c = 0; c < row.size(); ++c) {
        EXPECT_EQ(per_feature.level_of(row[c], c), 0) << "col " << c;
    }
    const auto levels = d.transform_row(row);
    EXPECT_EQ(levels, (std::vector<int>{0, 7, 0, 4}));
}

TEST(Discretizer, HugeFiniteValuesClampWithoutOverflow) {
    // Values whose scaled position exceeds the int64 range used to overflow
    // in the float -> integer cast; they must clamp like any out-of-range
    // value.
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1e-30f, 4);
    EXPECT_EQ(d.level_of(3e38f), 3);
    EXPECT_EQ(d.level_of(-3e38f), 0);
}

TEST(Discretizer, DegenerateRangeMapsToZero) {
    const auto d = MinMaxDiscretizer::with_range(5.0f, 5.0f, 16);
    EXPECT_EQ(d.level_of(5.0f), 0);
    EXPECT_EQ(d.level_of(123.0f), 0);
}

TEST(Discretizer, FitGlobalUsesDatasetWideRange) {
    // The paper discretizes "based on the minimum and maximum values across
    // the entire dataset" — one range shared by all features.
    Matrix<float> X(2, 2);
    X(0, 0) = 0.0f;
    X(0, 1) = 2.0f;
    X(1, 0) = 6.0f;
    X(1, 1) = 8.0f;
    const auto d = MinMaxDiscretizer::fit(X, 4, DiscretizerMode::global);
    EXPECT_EQ(d.level_of(0.0f), 0);
    EXPECT_EQ(d.level_of(8.0f), 3);
    EXPECT_EQ(d.level_of(2.0f, /*feature=*/1), 1);  // feature ignored in global mode
    EXPECT_EQ(d.level_of(4.1f), 2);
}

TEST(Discretizer, FitPerFeatureUsesColumnRanges) {
    Matrix<float> X(2, 2);
    X(0, 0) = 0.0f;
    X(0, 1) = 100.0f;
    X(1, 0) = 1.0f;
    X(1, 1) = 200.0f;
    const auto d = MinMaxDiscretizer::fit(X, 2, DiscretizerMode::per_feature);
    EXPECT_EQ(d.level_of(0.4f, 0), 0);
    EXPECT_EQ(d.level_of(0.6f, 0), 1);
    EXPECT_EQ(d.level_of(140.0f, 1), 0);
    EXPECT_EQ(d.level_of(160.0f, 1), 1);
    EXPECT_THROW(d.level_of(0.0f, 2), ContractViolation);
}

TEST(Discretizer, TransformRowAndMatrix) {
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1.0f, 2);
    const std::vector<float> row = {0.1f, 0.9f, 0.49f, 0.51f};
    const auto levels = d.transform_row(row);
    EXPECT_EQ(levels, (std::vector<int>{0, 1, 0, 1}));

    Matrix<float> X(2, 2);
    X(0, 0) = 0.1f;
    X(0, 1) = 0.9f;
    X(1, 0) = 0.6f;
    X(1, 1) = 0.2f;
    const auto L = d.transform(X);
    EXPECT_EQ(L(0, 0), 0);
    EXPECT_EQ(L(0, 1), 1);
    EXPECT_EQ(L(1, 0), 1);
    EXPECT_EQ(L(1, 1), 0);
}

TEST(Discretizer, AllLevelsReachableOnUniformGrid) {
    const std::size_t n_levels = 16;
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1.0f, n_levels);
    std::vector<bool> seen(n_levels, false);
    for (int i = 0; i <= 1000; ++i) {
        const int level = d.level_of(static_cast<float>(i) / 1000.0f);
        ASSERT_GE(level, 0);
        ASSERT_LT(level, static_cast<int>(n_levels));
        seen[static_cast<std::size_t>(level)] = true;
    }
    for (std::size_t l = 0; l < n_levels; ++l) EXPECT_TRUE(seen[l]) << "level " << l;
}

TEST(Discretizer, InvalidConfigsThrow) {
    EXPECT_THROW(MinMaxDiscretizer::with_range(0.0f, 1.0f, 1), ContractViolation);
    EXPECT_THROW(MinMaxDiscretizer::with_range(2.0f, 1.0f, 4), ContractViolation);
    Matrix<float> empty;
    EXPECT_THROW(MinMaxDiscretizer::fit(empty, 4), ContractViolation);
    MinMaxDiscretizer unfitted;
    EXPECT_THROW(unfitted.level_of(0.0f), ContractViolation);
}

TEST(Discretizer, TransformRowSizeMismatchThrows) {
    const auto d = MinMaxDiscretizer::with_range(0.0f, 1.0f, 4);
    const std::vector<float> row = {0.1f, 0.2f};
    std::vector<int> levels(3);
    EXPECT_THROW(d.transform_row(row, levels), ContractViolation);
}

TEST(Discretizer, SerializationRoundTrip) {
    Matrix<float> X(3, 2);
    X(0, 0) = -1.0f;
    X(0, 1) = 5.0f;
    X(1, 0) = 2.0f;
    X(1, 1) = 7.5f;
    X(2, 0) = 0.0f;
    X(2, 1) = 6.0f;
    const auto d = MinMaxDiscretizer::fit(X, 8, DiscretizerMode::per_feature);

    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    d.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const auto loaded = MinMaxDiscretizer::load(reader);
    EXPECT_EQ(loaded, d);
    EXPECT_EQ(loaded.level_of(2.0f, 0), d.level_of(2.0f, 0));
}
