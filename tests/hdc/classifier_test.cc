// End-to-end tests for the HDC pipeline façade (src/hdc/classifier.*).

#include "hdc/classifier.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"

using hdlock::ContractViolation;
using hdlock::data::SyntheticSpec;
using hdlock::hdc::HdcClassifier;
using hdlock::hdc::ItemMemory;
using hdlock::hdc::ItemMemoryConfig;
using hdlock::hdc::ModelKind;
using hdlock::hdc::PipelineConfig;
using hdlock::hdc::RecordEncoder;

namespace {

SyntheticSpec easy_spec() {
    SyntheticSpec spec;
    spec.name = "easy";
    spec.n_features = 24;
    spec.n_classes = 3;
    spec.n_train = 150;
    spec.n_test = 60;
    spec.n_levels = 8;
    spec.noise = 0.08;
    spec.seed = 7;
    return spec;
}

std::shared_ptr<const RecordEncoder> make_encoder(const SyntheticSpec& spec, std::size_t dim) {
    ItemMemoryConfig config;
    config.dim = dim;
    config.n_features = spec.n_features;
    config.n_levels = spec.n_levels;
    config.seed = 11;
    auto memory = std::make_shared<const ItemMemory>(ItemMemory::generate(config));
    return std::make_shared<const RecordEncoder>(memory, /*tie_seed=*/5);
}

}  // namespace

TEST(HdcClassifier, LearnsEasyBlobsNonBinary) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    PipelineConfig config;
    config.train.kind = ModelKind::non_binary;
    config.train.retrain_epochs = 5;
    const auto classifier =
        HdcClassifier::fit(benchmark.train, make_encoder(benchmark.spec, 2048), config);
    EXPECT_GT(classifier.evaluate(benchmark.test), 0.9);
}

TEST(HdcClassifier, LearnsEasyBlobsBinary) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    PipelineConfig config;
    config.train.kind = ModelKind::binary;
    config.train.retrain_epochs = 5;
    const auto classifier =
        HdcClassifier::fit(benchmark.train, make_encoder(benchmark.spec, 2048), config);
    EXPECT_GT(classifier.evaluate(benchmark.test), 0.9);
    EXPECT_EQ(classifier.model().kind(), ModelKind::binary);
}

TEST(HdcClassifier, PredictRowMatchesBatchPredict) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    PipelineConfig config;
    config.train.retrain_epochs = 2;
    const auto classifier =
        HdcClassifier::fit(benchmark.train, make_encoder(benchmark.spec, 1024), config);

    const auto batch_predictions = classifier.predict(benchmark.test);
    for (const std::size_t s : {std::size_t{0}, std::size_t{10}, std::size_t{59}}) {
        EXPECT_EQ(classifier.predict_row(benchmark.test.X.row(s)), batch_predictions[s]);
    }
}

TEST(HdcClassifier, EncodeDatasetShapes) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    PipelineConfig config;
    config.train.kind = ModelKind::non_binary;
    const auto classifier =
        HdcClassifier::fit(benchmark.train, make_encoder(benchmark.spec, 512), config);

    const auto batch = classifier.encode_dataset(benchmark.test);
    EXPECT_EQ(batch.size(), benchmark.test.n_samples());
    EXPECT_TRUE(batch.binary.empty());  // non-binary model

    const auto with_binary = classifier.encode_dataset(benchmark.test, true);
    EXPECT_EQ(with_binary.binary.size(), benchmark.test.n_samples());
}

TEST(HdcClassifier, MismatchedFeatureCountThrows) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    auto other_spec = easy_spec();
    other_spec.n_features = 10;
    PipelineConfig config;
    EXPECT_THROW(
        HdcClassifier::fit(benchmark.train, make_encoder(other_spec, 512), config),
        ContractViolation);
}

TEST(HdcClassifier, NullEncoderAndUnfittedUseThrow) {
    const auto benchmark = hdlock::data::make_benchmark(easy_spec());
    EXPECT_THROW(HdcClassifier::fit(benchmark.train, nullptr, PipelineConfig{}),
                 ContractViolation);
    const HdcClassifier unfitted;
    EXPECT_THROW(unfitted.evaluate(benchmark.test), ContractViolation);
    const std::vector<float> row(24, 0.0f);
    EXPECT_THROW(unfitted.predict_row(row), ContractViolation);
}

TEST(HdcClassifier, PerFeatureDiscretizerModeWorks) {
    auto spec = easy_spec();
    const auto benchmark = hdlock::data::make_benchmark(spec);
    PipelineConfig config;
    config.discretizer_mode = hdlock::hdc::DiscretizerMode::per_feature;
    config.train.retrain_epochs = 3;
    const auto classifier =
        HdcClassifier::fit(benchmark.train, make_encoder(spec, 2048), config);
    EXPECT_GT(classifier.evaluate(benchmark.test), 0.85);
}
