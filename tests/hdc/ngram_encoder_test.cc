// Tests for the n-gram sequence encoder (src/hdc/ngram_encoder.*): gram
// binding semantics, order sensitivity, bag-of-symbols degeneration, locked
// symbol memories, and a small sequence-classification round trip.

#include "hdc/ngram_encoder.hpp"

#include <gtest/gtest.h>

#include "core/locked_encoder.hpp"
#include "hdc/model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace hdlock;
using hdc::NGramEncoder;

constexpr std::size_t kDim = 4096;

NGramEncoder make_encoder(std::size_t alphabet, std::size_t gram, std::uint64_t seed = 5) {
    return NGramEncoder(hdc::generate_symbol_hvs(kDim, alphabet, seed), gram, /*tie_seed=*/77);
}

/// A noisy Markov-ish sequence generator: class c prefers transitions
/// (s -> s + c + 1 mod A), which n >= 2 grams can capture but bags cannot.
std::vector<int> class_sequence(int cls, std::size_t length, std::size_t alphabet,
                                util::Xoshiro256ss& rng) {
    std::vector<int> sequence(length);
    sequence[0] = static_cast<int>(rng.next_below(alphabet));
    for (std::size_t t = 1; t < length; ++t) {
        if (rng.next_double() < 0.85) {
            sequence[t] = static_cast<int>(
                (static_cast<std::size_t>(sequence[t - 1]) + static_cast<std::size_t>(cls) + 1) %
                alphabet);
        } else {
            sequence[t] = static_cast<int>(rng.next_below(alphabet));
        }
    }
    return sequence;
}

}  // namespace

TEST(NGramEncoder, RejectsInvalidConstruction) {
    EXPECT_THROW(NGramEncoder({}, 2, 1), ContractViolation);
    EXPECT_THROW(NGramEncoder(hdc::generate_symbol_hvs(kDim, 4, 1), 0, 1), ContractViolation);
    auto mixed = hdc::generate_symbol_hvs(kDim, 2, 1);
    mixed.push_back(hdc::BinaryHV(kDim / 2));
    EXPECT_THROW(NGramEncoder(std::move(mixed), 2, 1), ContractViolation);
}

TEST(NGramEncoder, RejectsBadSequences) {
    const auto encoder = make_encoder(4, 3);
    EXPECT_THROW((void)encoder.encode(std::vector<int>{0, 1}), ContractViolation);  // too short
    EXPECT_THROW((void)encoder.encode(std::vector<int>{0, 1, 9}), ContractViolation);
    EXPECT_THROW((void)encoder.encode(std::vector<int>{0, 1, -1}), ContractViolation);
}

TEST(NGramEncoder, SingleGramIsTheBoundProduct) {
    const auto encoder = make_encoder(4, 2);
    const std::vector<int> gram{1, 3};
    // One gram: the non-binary sums are exactly the bipolar gram vector.
    const auto sums = encoder.encode(gram);
    const auto bound = encoder.gram_hv(gram);
    for (std::size_t j = 0; j < kDim; ++j) {
        EXPECT_EQ(sums[j], bound.get(j));
        if (j > 64) break;  // spot check is enough, full equality below
    }
    EXPECT_EQ(sums.zero_count(), 0u);
}

TEST(NGramEncoder, GramBindingUsesPositionPermutation) {
    const auto encoder = make_encoder(4, 2);
    const auto ab = encoder.gram_hv(std::vector<int>{0, 1});
    const auto manual = encoder.symbol_hv(0).rotated(1) * encoder.symbol_hv(1);
    EXPECT_EQ(ab, manual);
}

TEST(NGramEncoder, OrderMatters) {
    const auto encoder = make_encoder(4, 2);
    const auto ab = encoder.gram_hv(std::vector<int>{0, 1});
    const auto ba = encoder.gram_hv(std::vector<int>{1, 0});
    EXPECT_NEAR(ab.normalized_hamming(ba), 0.5, 0.05);
}

TEST(NGramEncoder, BagOfSymbolsIsOrderFree) {
    const auto encoder = make_encoder(5, 1);
    const std::vector<int> forward{0, 1, 2, 3, 4, 2, 1};
    std::vector<int> backward(forward.rbegin(), forward.rend());
    EXPECT_EQ(encoder.encode(forward), encoder.encode(backward));
}

TEST(NGramEncoder, SharedGramsKeepSequencesClose) {
    const auto encoder = make_encoder(6, 3);
    util::Xoshiro256ss rng(9);
    std::vector<int> base(64);
    for (auto& symbol : base) symbol = static_cast<int>(rng.next_below(6));
    std::vector<int> perturbed = base;
    perturbed[30] = (perturbed[30] + 1) % 6;  // disturbs only 3 grams of 62

    std::vector<int> unrelated(64);
    for (auto& symbol : unrelated) symbol = static_cast<int>(rng.next_below(6));

    const auto h_base = encoder.encode_binary(base);
    const double near = h_base.normalized_hamming(encoder.encode_binary(perturbed));
    const double far = h_base.normalized_hamming(encoder.encode_binary(unrelated));
    EXPECT_LT(near, 0.2);
    EXPECT_GT(far, 0.4);
}

TEST(NGramEncoder, BinaryEncodingIsDeterministicPerInput) {
    const auto encoder = make_encoder(4, 2);
    const std::vector<int> sequence{0, 1, 2, 3, 2, 1, 0, 2};
    EXPECT_EQ(encoder.encode_binary(sequence), encoder.encode_binary(sequence));
}

TEST(NGramEncoder, LockedSymbolMemoryIsOrthogonalAndKeyDependent) {
    PublicStoreConfig store_config;
    store_config.dim = kDim;
    store_config.pool_size = 16;
    store_config.n_levels = 2;
    store_config.seed = 21;
    ValueMapping unused;
    const auto store = PublicStore::generate(store_config, unused);

    const auto key_a = LockKey::random(/*n_features=*/8, /*n_layers=*/2, 16, kDim, /*seed=*/1);
    const auto key_b = LockKey::random(8, 2, 16, kDim, /*seed=*/2);
    const auto symbols_a = materialize_locked_symbols(store, key_a);
    const auto symbols_b = materialize_locked_symbols(store, key_b);

    ASSERT_EQ(symbols_a.size(), 8u);
    for (std::size_t x = 0; x < symbols_a.size(); ++x) {
        for (std::size_t y = x + 1; y < symbols_a.size(); ++y) {
            EXPECT_NEAR(symbols_a[x].normalized_hamming(symbols_a[y]), 0.5, 0.06);
        }
        // A different key materializes a different alphabet.
        EXPECT_NEAR(symbols_a[x].normalized_hamming(symbols_b[x]), 0.5, 0.06);
    }
}

TEST(NGramEncoder, SequenceClassificationWorksPlainAndLocked) {
    // End to end: 3-class Markov sequences, bigram encoding, HdcModel on
    // top.  The locked symbol memory must classify exactly as well as an
    // unprotected one — Fig. 8's claim carried over to the n-gram family.
    constexpr std::size_t kAlphabet = 8;
    constexpr int kClasses = 3;
    constexpr std::size_t kTrainPerClass = 30;
    constexpr std::size_t kTestPerClass = 15;

    PublicStoreConfig store_config;
    store_config.dim = kDim;
    store_config.pool_size = kAlphabet;
    store_config.n_levels = 2;
    store_config.seed = 33;
    ValueMapping unused;
    const auto store = PublicStore::generate(store_config, unused);
    const auto key = LockKey::random(kAlphabet, 2, kAlphabet, kDim, /*seed=*/4);

    const NGramEncoder plain(hdc::generate_symbol_hvs(kDim, kAlphabet, 5), 2, 77);
    const NGramEncoder locked(materialize_locked_symbols(store, key), 2, 77);

    for (const auto* encoder : {&plain, &locked}) {
        util::Xoshiro256ss rng(1234);
        hdc::EncodedBatch train_batch;
        for (std::size_t s = 0; s < kTrainPerClass * kClasses; ++s) {
            const int cls = static_cast<int>(s % kClasses);
            const auto sequence = class_sequence(cls, 48, kAlphabet, rng);
            train_batch.non_binary.push_back(encoder->encode(sequence));
            train_batch.binary.push_back(encoder->encode_binary(sequence));
            train_batch.labels.push_back(cls);
        }
        hdc::TrainConfig train_config;
        train_config.kind = hdc::ModelKind::binary;
        train_config.retrain_epochs = 5;
        const auto model = hdc::HdcModel::train(train_batch, kClasses, train_config);

        hdc::EncodedBatch test_batch;
        for (std::size_t s = 0; s < kTestPerClass * kClasses; ++s) {
            const int cls = static_cast<int>(s % kClasses);
            const auto sequence = class_sequence(cls, 48, kAlphabet, rng);
            test_batch.non_binary.push_back(encoder->encode(sequence));
            test_batch.binary.push_back(encoder->encode_binary(sequence));
            test_batch.labels.push_back(cls);
        }
        EXPECT_GT(model.evaluate(test_batch), 0.85)
            << (encoder == &plain ? "plain" : "locked");
    }
}
