// Tests for the item memory (src/hdc/item_memory.*): orthogonality of
// feature hypervectors (Eq. 1a) and the linear correlation profile of the
// value/level hypervectors (Eq. 1b).

#include "hdc/item_memory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using hdlock::ContractViolation;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::ItemMemory;
using hdlock::hdc::ItemMemoryConfig;

namespace {

ItemMemory small_memory() {
    ItemMemoryConfig config;
    config.dim = 4096;
    config.n_features = 32;
    config.n_levels = 8;
    config.seed = 99;
    return ItemMemory::generate(config);
}

}  // namespace

TEST(ItemMemory, ShapeMatchesConfig) {
    const auto memory = small_memory();
    EXPECT_EQ(memory.dim(), 4096u);
    EXPECT_EQ(memory.n_features(), 32u);
    EXPECT_EQ(memory.n_levels(), 8u);
    EXPECT_EQ(memory.feature_hv(0).dim(), 4096u);
    EXPECT_EQ(memory.value_hv(7).dim(), 4096u);
    EXPECT_THROW(memory.feature_hv(32), ContractViolation);
    EXPECT_THROW(memory.value_hv(8), ContractViolation);
}

TEST(ItemMemory, FeatureHVsAreQuasiOrthogonal) {
    const auto memory = small_memory();
    for (std::size_t i = 0; i < memory.n_features(); ++i) {
        for (std::size_t j = i + 1; j < memory.n_features(); ++j) {
            const double d = memory.feature_hv(i).normalized_hamming(memory.feature_hv(j));
            ASSERT_NEAR(d, 0.5, 0.05) << "features " << i << ", " << j;
        }
    }
}

TEST(ItemMemory, LevelHVsFollowLinearProfile) {
    // Eq. 1b with values scaled to level indices in [0, M-1]:
    //   Hamm(Val_a, Val_b) / D ~ 0.5 * |a-b| / (M-1).
    const auto memory = small_memory();
    const auto n_levels = memory.n_levels();
    const double dim = static_cast<double>(memory.dim());
    for (std::size_t a = 0; a < n_levels; ++a) {
        for (std::size_t b = 0; b < n_levels; ++b) {
            const double measured = memory.value_hv(a).normalized_hamming(memory.value_hv(b));
            const double expected = 0.5 *
                                    std::abs(static_cast<double>(a) - static_cast<double>(b)) /
                                    static_cast<double>(n_levels - 1);
            ASSERT_NEAR(measured, expected, 1.5 / std::sqrt(dim))
                << "levels " << a << ", " << b;
        }
    }
}

TEST(ItemMemory, LevelFlipSetsAreExactlyNested) {
    // Level l differs from level 0 in exactly round(l * D/2 / (M-1))
    // positions, and those positions are a superset of level l-1's.
    const std::size_t dim = 1000;
    const auto levels = ItemMemory::generate_level_hvs(dim, 5, 7);
    std::size_t previous = 0;
    for (std::size_t l = 1; l < levels.size(); ++l) {
        const std::size_t flips = levels[0].hamming(levels[l]);
        const auto expected = static_cast<std::size_t>(std::llround(
            static_cast<double>(l) * (static_cast<double>(dim) / 2.0) / 4.0));
        EXPECT_EQ(flips, expected) << "level " << l;
        // Nesting: distance(l-1, l) must equal the increment, which only
        // holds when the flip sets are nested.
        EXPECT_EQ(levels[l - 1].hamming(levels[l]), flips - previous);
        previous = flips;
    }
}

TEST(ItemMemory, EndpointLevelsAreQuasiOrthogonal) {
    // The attack's value-extraction step relies on Val_1 and Val_M being the
    // unique pair at distance ~D/2 (Sec. 3.2).
    const std::size_t dim = 10000;
    const auto levels = ItemMemory::generate_level_hvs(dim, 16, 21);
    EXPECT_EQ(levels.front().hamming(levels.back()), dim / 2);
}

TEST(ItemMemory, TwoLevelsDegenerateToOrthogonalPair) {
    const auto levels = ItemMemory::generate_level_hvs(2048, 2, 3);
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].hamming(levels[1]), 1024u);
}

TEST(ItemMemory, DeterministicPerSeed) {
    ItemMemoryConfig config;
    config.dim = 256;
    config.n_features = 4;
    config.n_levels = 4;
    config.seed = 5;
    const auto a = ItemMemory::generate(config);
    const auto b = ItemMemory::generate(config);
    EXPECT_EQ(a.feature_hv(3), b.feature_hv(3));
    EXPECT_EQ(a.value_hv(2), b.value_hv(2));

    config.seed = 6;
    const auto c = ItemMemory::generate(config);
    EXPECT_NE(a.feature_hv(3), c.feature_hv(3));
    EXPECT_NE(a.value_hv(2), c.value_hv(2));
}

TEST(ItemMemory, ZeroFeaturesAllowedForLockedEncoders) {
    ItemMemoryConfig config;
    config.dim = 128;
    config.n_features = 0;
    config.n_levels = 4;
    const auto memory = ItemMemory::generate(config);
    EXPECT_EQ(memory.n_features(), 0u);
    EXPECT_EQ(memory.n_levels(), 4u);
}

TEST(ItemMemory, RejectsBadConfigs) {
    ItemMemoryConfig config;
    config.dim = 0;
    EXPECT_THROW(ItemMemory::generate(config), ContractViolation);
    config.dim = 100;
    config.n_levels = 1;
    EXPECT_THROW(ItemMemory::generate(config), ContractViolation);
    EXPECT_THROW(ItemMemory::generate_level_hvs(100, 1, 0), ContractViolation);
    EXPECT_THROW(ItemMemory::generate_level_hvs(0, 2, 0), ContractViolation);
}

TEST(ItemMemory, FromHypervectorsValidatesDimensions) {
    hdlock::util::Xoshiro256ss rng(1);
    std::vector<BinaryHV> features = {BinaryHV::random(64, rng), BinaryHV::random(64, rng)};
    std::vector<BinaryHV> values = {BinaryHV::random(64, rng), BinaryHV::random(64, rng)};
    const auto memory = ItemMemory::from_hypervectors(features, values);
    EXPECT_EQ(memory.dim(), 64u);
    EXPECT_EQ(memory.n_features(), 2u);

    std::vector<BinaryHV> bad = {BinaryHV::random(32, rng)};
    EXPECT_THROW(ItemMemory::from_hypervectors(bad, values), ContractViolation);
    EXPECT_THROW(ItemMemory::from_hypervectors(features, {}), ContractViolation);
}

TEST(ItemMemory, SerializationRoundTrip) {
    const auto memory = small_memory();
    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    memory.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const auto loaded = ItemMemory::load(reader);
    EXPECT_EQ(loaded.dim(), memory.dim());
    EXPECT_EQ(loaded.n_features(), memory.n_features());
    EXPECT_EQ(loaded.n_levels(), memory.n_levels());
    EXPECT_EQ(loaded.feature_hv(31), memory.feature_hv(31));
    EXPECT_EQ(loaded.value_hv(7), memory.value_hv(7));
}
