// Tests for the batch-first encoding pipeline (src/hdc/encoder.*): the
// allocation-free encode_into/encode_batch paths and the opt-in
// BoundProductCache must be bit-identical to the per-row API and to the
// naive Eq. 2 reference, for every Encoder implementation (RecordEncoder,
// LockedEncoder, api::SealedEncoder), including sign(0) tie-breaking in
// encode_binary_batch.

#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "api/facades.hpp"
#include "core/locked_encoder.hpp"

using hdlock::ContractViolation;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::BoundProductCache;
using hdlock::hdc::Encoder;
using hdlock::hdc::EncoderScratch;
using hdlock::hdc::IntHV;
using hdlock::hdc::ItemMemory;
using hdlock::hdc::ItemMemoryConfig;
using hdlock::hdc::RecordEncoder;

namespace {

std::shared_ptr<const ItemMemory> make_memory(std::size_t dim, std::size_t n_features,
                                              std::size_t n_levels, std::uint64_t seed) {
    ItemMemoryConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = n_levels;
    config.seed = seed;
    return std::make_shared<const ItemMemory>(ItemMemory::generate(config));
}

/// A random level matrix (one encode input per row).
hdlock::util::Matrix<int> random_level_matrix(std::size_t rows, std::size_t n_features,
                                              std::size_t n_levels, std::uint64_t seed) {
    hdlock::util::Matrix<int> levels(rows, n_features);
    hdlock::util::Xoshiro256ss rng(seed);
    for (auto& level : levels.data()) level = static_cast<int>(rng.next_below(n_levels));
    return levels;
}

/// Asserts that batch, cached-batch and allocation-free row paths all agree
/// bit-exactly with the per-row encode()/encode_binary() API.
void expect_all_paths_identical(const Encoder& encoder,
                                const hdlock::util::Matrix<int>& levels) {
    const auto cache = encoder.make_product_cache(std::size_t{1} << 30);
    ASSERT_NE(cache, nullptr);

    EncoderScratch scratch;
    std::vector<IntHV> batch, batch_cached;
    encoder.encode_batch(levels, scratch, batch);
    encoder.encode_batch(levels, scratch, batch_cached, cache.get());

    std::vector<BinaryHV> binary_batch, binary_batch_cached;
    encoder.encode_binary_batch(levels, scratch, binary_batch);
    encoder.encode_binary_batch(levels, scratch, binary_batch_cached, cache.get());

    ASSERT_EQ(batch.size(), levels.rows());
    ASSERT_EQ(batch_cached.size(), levels.rows());
    ASSERT_EQ(binary_batch.size(), levels.rows());
    ASSERT_EQ(binary_batch_cached.size(), levels.rows());

    IntHV row_sums;
    BinaryHV row_binary;
    for (std::size_t r = 0; r < levels.rows(); ++r) {
        const auto row = levels.row(r);
        const IntHV expected = encoder.encode(row);
        EXPECT_EQ(batch[r], expected) << "row " << r;
        EXPECT_EQ(batch_cached[r], expected) << "row " << r << " (cached)";

        encoder.encode_into(row, scratch, row_sums, cache.get());
        EXPECT_EQ(row_sums, expected) << "row " << r << " (encode_into)";

        const BinaryHV expected_binary = encoder.encode_binary(row);
        EXPECT_EQ(binary_batch[r], expected_binary) << "row " << r;
        EXPECT_EQ(binary_batch_cached[r], expected_binary) << "row " << r << " (cached)";

        encoder.encode_binary_into(row, scratch, row_binary, cache.get());
        EXPECT_EQ(row_binary, expected_binary) << "row " << r << " (encode_binary_into)";
    }
}

}  // namespace

// (dim, n_features, n_levels) — even feature counts force sign(0) ties, and
// the off-by-one word widths exercise the packed tail.
class RecordEncoderBatch
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(RecordEncoderBatch, AllPathsMatchReference) {
    const auto [dim, n_features, n_levels] = GetParam();
    const RecordEncoder encoder(make_memory(dim, n_features, n_levels, 3), /*tie_seed=*/1);
    const auto levels = random_level_matrix(7, n_features, n_levels, 42);

    expect_all_paths_identical(encoder, levels);
    EncoderScratch scratch;
    std::vector<IntHV> batch;
    encoder.encode_batch(levels, scratch, batch);
    for (std::size_t r = 0; r < levels.rows(); ++r) {
        EXPECT_EQ(batch[r], encoder.encode_reference(levels.row(r))) << "row " << r;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecordEncoderBatch,
    ::testing::Values(std::make_tuple(64, 1, 2), std::make_tuple(100, 10, 4),
                      std::make_tuple(1000, 63, 8), std::make_tuple(1000, 64, 8),
                      std::make_tuple(1000, 65, 8), std::make_tuple(4096, 16, 16)));

TEST(EncoderBatch, TieBreakingMatchesPerRowEncodeBinary) {
    // Even feature count -> sign(0) ties exist; the batch path must derive
    // the identical per-input tie seed as encode_binary.
    const std::size_t n_features = 16, n_levels = 4;
    const RecordEncoder encoder(make_memory(1024, n_features, n_levels, 15), /*tie_seed=*/77);
    const auto levels = random_level_matrix(11, n_features, n_levels, 5);

    bool saw_tie = false;
    for (std::size_t r = 0; r < levels.rows(); ++r) {
        saw_tie = saw_tie || encoder.encode(levels.row(r)).zero_count() > 0;
    }
    ASSERT_TRUE(saw_tie);  // the scenario actually exercises tie-breaking

    expect_all_paths_identical(encoder, levels);
}

TEST(EncoderBatch, LockedEncoderAllPathsIdentical) {
    hdlock::DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 24;
    config.n_levels = 8;
    config.n_layers = 2;
    config.seed = 19;
    const auto deployment = hdlock::provision(config);
    const auto levels = random_level_matrix(9, config.n_features, config.n_levels, 23);
    expect_all_paths_identical(*deployment.encoder, levels);
}

TEST(EncoderBatch, SealedEncoderAllPathsIdenticalAndAgreesWithLocked) {
    hdlock::DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 24;
    config.n_levels = 8;
    config.n_layers = 2;
    config.seed = 19;
    const auto owner = hdlock::api::Owner::provision(config);
    const auto device = owner.make_device();
    const auto levels = random_level_matrix(9, config.n_features, config.n_levels, 29);

    expect_all_paths_identical(device.encoder(), levels);

    // The sealed (materialized, key-free) encoder is the same function as
    // the owner's locked encoder.
    for (std::size_t r = 0; r < levels.rows(); ++r) {
        EXPECT_EQ(device.encoder().encode(levels.row(r)),
                  owner.encoder()->encode(levels.row(r)));
    }
}

TEST(EncoderBatch, ScratchAdaptsAcrossEncoderShapes) {
    // One scratch serving encoders of different dims must not leak state
    // between them.
    const RecordEncoder small(make_memory(256, 8, 4, 1), 1);
    const RecordEncoder large(make_memory(1024, 12, 8, 2), 1);
    EncoderScratch scratch;
    IntHV out;
    const auto small_levels = random_level_matrix(1, 8, 4, 3);
    const auto large_levels = random_level_matrix(1, 12, 8, 4);

    small.encode_into(small_levels.row(0), scratch, out);
    EXPECT_EQ(out, small.encode(small_levels.row(0)));
    large.encode_into(large_levels.row(0), scratch, out);
    EXPECT_EQ(out, large.encode(large_levels.row(0)));
    small.encode_into(small_levels.row(0), scratch, out);
    EXPECT_EQ(out, small.encode(small_levels.row(0)));
}

TEST(BoundProductCache, FootprintAndCapBehavior) {
    const std::size_t dim = 1000, n_features = 10, n_levels = 4;
    const RecordEncoder encoder(make_memory(dim, n_features, n_levels, 9), 1);

    const std::size_t bytes = BoundProductCache::bytes_required(n_features, n_levels, dim);
    EXPECT_EQ(bytes, n_features * n_levels * hdlock::util::bits::word_count(dim) *
                         sizeof(hdlock::util::bits::Word));

    // Cap one byte below the requirement -> no cache; at the requirement ->
    // cache materializes with exactly that footprint.
    EXPECT_EQ(encoder.make_product_cache(bytes - 1), nullptr);
    const auto cache = encoder.make_product_cache(bytes);
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->bytes(), bytes);
    EXPECT_TRUE(cache->matches(n_features, n_levels, dim));
    EXPECT_FALSE(cache->matches(n_features, n_levels, dim + 1));
}

TEST(BoundProductCache, ProductsAreTheBoundPairs) {
    const std::size_t dim = 512, n_features = 6, n_levels = 3;
    const auto memory = make_memory(dim, n_features, n_levels, 21);
    const RecordEncoder encoder(memory, 1);
    const auto cache = encoder.make_product_cache(std::size_t{1} << 24);
    ASSERT_NE(cache, nullptr);

    for (std::size_t i = 0; i < n_features; ++i) {
        for (std::size_t m = 0; m < n_levels; ++m) {
            const BinaryHV expected = memory->feature_hv(i) * memory->value_hv(m);
            const auto product = cache->product(i, m);
            ASSERT_EQ(product.size(), expected.words().size());
            EXPECT_TRUE(hdlock::util::bits::equal(product, expected.words()))
                << "feature " << i << " level " << m;
        }
    }
}

TEST(EncoderBatch, RejectsMismatchedCacheAndShapes) {
    const RecordEncoder encoder(make_memory(256, 8, 4, 11), 1);
    const RecordEncoder other(make_memory(256, 8, 8, 11), 1);
    const auto wrong_cache = other.make_product_cache(std::size_t{1} << 24);
    ASSERT_NE(wrong_cache, nullptr);

    EncoderScratch scratch;
    IntHV out;
    const auto levels = random_level_matrix(1, 8, 4, 13);
    EXPECT_THROW(encoder.encode_into(levels.row(0), scratch, out, wrong_cache.get()),
                 ContractViolation);

    std::vector<IntHV> batch;
    EXPECT_THROW(encoder.encode_batch(random_level_matrix(2, 7, 4, 13), scratch, batch),
                 ContractViolation);
    EXPECT_THROW(encoder.encode(std::vector<int>{0, 1, 2, 3, 0, 1, 2, 4}), ContractViolation);
}

TEST(EncoderBatch, EmptyBatchYieldsEmptyOutput) {
    const RecordEncoder encoder(make_memory(256, 8, 4, 11), 1);
    EncoderScratch scratch;
    std::vector<IntHV> out(3);
    encoder.encode_batch(hdlock::util::Matrix<int>(), scratch, out);
    EXPECT_TRUE(out.empty());
}
