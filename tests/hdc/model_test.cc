// Tests for HDC model training and inference (src/hdc/model.*).

#include "hdc/model.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "hdc/encoder.hpp"
#include "util/kernels.hpp"

using hdlock::ContractViolation;
using hdlock::hdc::BinaryHV;
using hdlock::hdc::EncodedBatch;
using hdlock::hdc::HdcModel;
using hdlock::hdc::IntHV;
using hdlock::hdc::ModelKind;
using hdlock::hdc::TrainConfig;
using hdlock::util::Xoshiro256ss;

namespace {

/// Builds an encoded batch around C random class "anchors": each sample is
/// its class anchor with a fraction of elements re-randomized.  flip = 0.5
/// makes classes indistinguishable; small flip makes them trivially
/// separable.
EncodedBatch make_batch(int n_classes, std::size_t per_class, std::size_t dim, double flip,
                        std::uint64_t seed, bool with_binary) {
    Xoshiro256ss rng(seed);
    std::vector<BinaryHV> anchors;
    for (int c = 0; c < n_classes; ++c) anchors.push_back(BinaryHV::random(dim, rng));

    EncodedBatch batch;
    for (int c = 0; c < n_classes; ++c) {
        for (std::size_t s = 0; s < per_class; ++s) {
            BinaryHV sample = anchors[static_cast<std::size_t>(c)];
            for (std::size_t j = 0; j < dim; ++j) {
                if (rng.next_bool(flip)) sample.set(j, rng.next_sign());
            }
            batch.non_binary.push_back(IntHV::from_binary(sample));
            if (with_binary) batch.binary.push_back(sample);
            batch.labels.push_back(c);
        }
    }
    return batch;
}

}  // namespace

TEST(HdcModel, NonBinarySeparableDataIsLearned) {
    const auto batch = make_batch(4, 20, 2048, 0.2, 42, false);
    TrainConfig config;
    config.kind = ModelKind::non_binary;
    config.retrain_epochs = 5;
    const HdcModel model = HdcModel::train(batch, 4, config);
    EXPECT_EQ(model.n_classes(), 4);
    EXPECT_EQ(model.dim(), 2048u);
    EXPECT_GT(model.evaluate(batch), 0.95);
}

TEST(HdcModel, BinarySeparableDataIsLearned) {
    const auto batch = make_batch(4, 20, 2048, 0.2, 43, true);
    TrainConfig config;
    config.kind = ModelKind::binary;
    config.retrain_epochs = 5;
    const HdcModel model = HdcModel::train(batch, 4, config);
    EXPECT_GT(model.evaluate(batch), 0.95);
}

TEST(HdcModel, RetrainingImprovesHardData) {
    const auto batch = make_batch(6, 30, 1024, 0.42, 44, false);
    TrainConfig no_retrain;
    no_retrain.retrain_epochs = 0;
    TrainConfig retrain;
    retrain.retrain_epochs = 15;
    const double before = HdcModel::train(batch, 6, no_retrain).evaluate(batch);
    const double after = HdcModel::train(batch, 6, retrain).evaluate(batch);
    EXPECT_GE(after, before);
    EXPECT_GT(after, 0.7);
}

TEST(HdcModel, EarlyStopOnCleanEpoch) {
    const auto batch = make_batch(3, 10, 1024, 0.05, 45, false);
    TrainConfig config;
    config.retrain_epochs = 50;
    config.stop_when_clean = true;
    const HdcModel model = HdcModel::train(batch, 3, config);
    EXPECT_LT(model.epochs_run(), 50);
    EXPECT_DOUBLE_EQ(model.evaluate(batch), 1.0);
}

TEST(HdcModel, LearningRateScalesUpdates) {
    const auto batch = make_batch(3, 15, 512, 0.35, 46, false);
    TrainConfig config;
    config.retrain_epochs = 1;
    config.stop_when_clean = false;
    config.learning_rate = 3;
    const HdcModel model = HdcModel::train(batch, 3, config);
    EXPECT_GT(model.evaluate(batch), 0.5);
}

TEST(HdcModel, ClassSumsMatchBundling) {
    // With zero retraining epochs the class HVs must be the exact Eq. 4 sums.
    const auto batch = make_batch(2, 3, 256, 0.3, 47, false);
    TrainConfig config;
    config.retrain_epochs = 0;
    const HdcModel model = HdcModel::train(batch, 2, config);
    IntHV expected0(256);
    IntHV expected1(256);
    for (std::size_t s = 0; s < batch.size(); ++s) {
        (batch.labels[s] == 0 ? expected0 : expected1).add(batch.non_binary[s]);
    }
    EXPECT_EQ(model.class_sum(0), expected0);
    EXPECT_EQ(model.class_sum(1), expected1);
}

TEST(HdcModel, PredictsNearestAnchor) {
    const std::size_t dim = 1024;
    Xoshiro256ss rng(48);
    const BinaryHV anchor_a = BinaryHV::random(dim, rng);
    const BinaryHV anchor_b = BinaryHV::random(dim, rng);
    EncodedBatch batch;
    batch.non_binary = {IntHV::from_binary(anchor_a), IntHV::from_binary(anchor_b)};
    batch.labels = {0, 1};
    TrainConfig config;
    config.retrain_epochs = 0;
    const HdcModel model = HdcModel::train(batch, 2, config);
    EXPECT_EQ(model.predict(IntHV::from_binary(anchor_a)), 0);
    EXPECT_EQ(model.predict(IntHV::from_binary(anchor_b)), 1);
}

TEST(HdcModel, BinaryPredictUsesHamming) {
    const std::size_t dim = 512;
    Xoshiro256ss rng(49);
    const BinaryHV anchor_a = BinaryHV::random(dim, rng);
    const BinaryHV anchor_b = BinaryHV::random(dim, rng);
    EncodedBatch batch;
    batch.non_binary = {IntHV::from_binary(anchor_a), IntHV::from_binary(anchor_b)};
    batch.binary = {anchor_a, anchor_b};
    batch.labels = {0, 1};
    TrainConfig config;
    config.kind = ModelKind::binary;
    config.retrain_epochs = 0;
    const HdcModel model = HdcModel::train(batch, 2, config);
    EXPECT_EQ(model.predict(anchor_a), 0);
    EXPECT_EQ(model.predict(anchor_b), 1);
    EXPECT_EQ(model.class_binary(0), anchor_a);  // sums have no ties here
}

TEST(HdcModel, PredictIntoMatchesPerQueryPredict) {
    const auto batch = make_batch(4, 10, 1024, 0.25, 53, true);
    TrainConfig config;
    config.kind = ModelKind::binary;
    config.retrain_epochs = 2;
    const HdcModel model = HdcModel::train(batch, 4, config);

    std::vector<int> via_span(batch.size());
    model.predict_into(std::span<const BinaryHV>(batch.binary), via_span);
    for (std::size_t s = 0; s < batch.size(); ++s) {
        EXPECT_EQ(via_span[s], model.predict(batch.binary[s]));
    }

    TrainConfig nb_config;
    nb_config.kind = ModelKind::non_binary;
    nb_config.retrain_epochs = 2;
    const HdcModel nb_model = HdcModel::train(batch, 4, nb_config);
    nb_model.predict_into(std::span<const IntHV>(batch.non_binary), via_span);
    for (std::size_t s = 0; s < batch.size(); ++s) {
        EXPECT_EQ(via_span[s], nb_model.predict(batch.non_binary[s]));
    }
}

TEST(HdcModel, PredictionsSurviveSaveLoadRoundTrip) {
    // The class-norm cache is rebuilt on load: a round-tripped model must
    // predict identically (non-binary cosine inference included).
    const auto batch = make_batch(3, 12, 512, 0.3, 54, false);
    TrainConfig config;
    config.kind = ModelKind::non_binary;
    config.retrain_epochs = 3;
    const HdcModel model = HdcModel::train(batch, 3, config);

    std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
    hdlock::util::BinaryWriter writer(stream);
    model.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const HdcModel restored = HdcModel::load(reader);

    EXPECT_EQ(restored.predict_batch(batch), model.predict_batch(batch));
}

TEST(HdcModel, KindMismatchesThrow) {
    const auto batch = make_batch(2, 4, 128, 0.2, 50, true);
    TrainConfig nb;
    nb.kind = ModelKind::non_binary;
    const HdcModel model = HdcModel::train(batch, 2, nb);
    EXPECT_THROW(model.class_binary(0), ContractViolation);
    EXPECT_THROW(model.predict(batch.binary[0]), ContractViolation);
}

TEST(HdcModel, BinaryModelRequiresBinaryEncodings) {
    const auto batch = make_batch(2, 4, 128, 0.2, 51, false);  // no binary part
    TrainConfig config;
    config.kind = ModelKind::binary;
    EXPECT_THROW(HdcModel::train(batch, 2, config), ContractViolation);
}

TEST(HdcModel, InvalidArgumentsThrow) {
    const auto batch = make_batch(2, 4, 128, 0.2, 52, false);
    TrainConfig config;
    EXPECT_THROW(HdcModel::train(batch, 1, config), ContractViolation);
    EXPECT_THROW(HdcModel::train(EncodedBatch{}, 2, config), ContractViolation);
    config.retrain_epochs = -1;
    EXPECT_THROW(HdcModel::train(batch, 2, config), ContractViolation);
    config.retrain_epochs = 1;
    config.learning_rate = 0;
    EXPECT_THROW(HdcModel::train(batch, 2, config), ContractViolation);

    auto bad_labels = batch;
    bad_labels.labels[0] = 7;
    EXPECT_THROW(HdcModel::train(bad_labels, 2, TrainConfig{}), ContractViolation);
}

TEST(HdcModel, UntrainedModelRejectsUse) {
    const HdcModel model;
    EXPECT_THROW(model.predict(IntHV(16)), ContractViolation);
    EXPECT_THROW(model.class_sum(0), ContractViolation);
}

TEST(HdcModel, SerializationRoundTrip) {
    const auto batch = make_batch(3, 8, 512, 0.25, 53, true);
    TrainConfig config;
    config.kind = ModelKind::binary;
    config.retrain_epochs = 3;
    const HdcModel model = HdcModel::train(batch, 3, config);

    std::stringstream stream;
    hdlock::util::BinaryWriter writer(stream);
    model.save(writer);
    hdlock::util::BinaryReader reader(stream);
    const HdcModel loaded = HdcModel::load(reader);

    EXPECT_EQ(loaded.kind(), model.kind());
    EXPECT_EQ(loaded.n_classes(), model.n_classes());
    EXPECT_EQ(loaded.epochs_run(), model.epochs_run());
    EXPECT_EQ(loaded.class_sum(2), model.class_sum(2));
    EXPECT_EQ(loaded.class_binary(1), model.class_binary(1));
    EXPECT_EQ(loaded.predict_batch(batch), model.predict_batch(batch));
}

// ---------------------------------------------------------------------------
// Fused predict (HdcModel::predict_fused)
// ---------------------------------------------------------------------------

TEST(HdcModel, PredictFusedMatchesTwoStepPredict) {
    namespace kernels = hdlock::util::kernels;
    hdlock::hdc::ItemMemoryConfig memory_config;
    memory_config.dim = 1000;
    memory_config.n_features = 16;
    memory_config.n_levels = 4;
    memory_config.seed = 7;
    auto memory = std::make_shared<const hdlock::hdc::ItemMemory>(
        hdlock::hdc::ItemMemory::generate(memory_config));
    const hdlock::hdc::RecordEncoder encoder(memory, /*tie_seed=*/3);
    const auto cache = encoder.make_product_cache(std::size_t{1} << 30);
    ASSERT_NE(cache, nullptr);

    const auto batch = make_batch(4, 10, 1000, 0.2, 9, true);
    TrainConfig config;
    config.kind = ModelKind::binary;
    const HdcModel model = HdcModel::train(batch, 4, config);

    hdlock::hdc::EncoderScratch scratch;
    Xoshiro256ss rng(55);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> levels(16);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(4));
        const int expected = model.predict(encoder.encode_binary(levels));
        for (const auto kind : kernels::available_backends()) {
            kernels::ScopedBackend pin(kind);
            EXPECT_EQ(model.predict_fused(encoder, levels, scratch, nullptr), expected)
                << kernels::backend_name(kind) << " uncached, trial " << trial;
            EXPECT_EQ(model.predict_fused(encoder, levels, scratch, cache.get()), expected)
                << kernels::backend_name(kind) << " cached, trial " << trial;
        }
    }
}

TEST(HdcModel, PredictFusedRejectsNonBinaryModel) {
    hdlock::hdc::ItemMemoryConfig memory_config;
    memory_config.dim = 256;
    memory_config.n_features = 8;
    memory_config.n_levels = 4;
    memory_config.seed = 11;
    auto memory = std::make_shared<const hdlock::hdc::ItemMemory>(
        hdlock::hdc::ItemMemory::generate(memory_config));
    const hdlock::hdc::RecordEncoder encoder(memory, 1);
    const auto batch = make_batch(2, 8, 256, 0.2, 13, false);
    TrainConfig config;
    config.kind = ModelKind::non_binary;
    const HdcModel model = HdcModel::train(batch, 2, config);
    hdlock::hdc::EncoderScratch scratch;
    const std::vector<int> levels(8, 0);
    EXPECT_THROW(model.predict_fused(encoder, levels, scratch), ContractViolation);
}
