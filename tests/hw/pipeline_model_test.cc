// Tests for the FPGA encoder cycle-cost model (src/hw/pipeline_model.*):
// the three structural facts behind Fig. 9 must be emergent properties.

#include "hw/pipeline_model.hpp"

#include <gtest/gtest.h>

using hdlock::ContractViolation;
using hdlock::hw::EncoderPipelineModel;
using hdlock::hw::HwConfig;
using hdlock::hw::relative_time_curve;

namespace {

constexpr std::size_t kDim = 10000;
constexpr std::size_t kMnistFeatures = 784;

}  // namespace

TEST(PipelineModel, SingleLayerCostsExactlyBaseline) {
    // Fact 1: permutation is a shifted memory access, so an L = 1 key adds
    // zero cycles over the unprotected module (paper: "for L = 1 ... the
    // relative encoding time is 1").
    const HwConfig config;
    const EncoderPipelineModel baseline(config, kDim, kMnistFeatures, 0);
    const EncoderPipelineModel one_layer(config, kDim, kMnistFeatures, 1);
    EXPECT_EQ(baseline.cycles(), one_layer.cycles());
    EXPECT_DOUBLE_EQ(one_layer.relative_to_baseline(), 1.0);
}

TEST(PipelineModel, TwoLayerOverheadMatchesPaperHeadline) {
    // The paper's headline: L = 2 costs ~1.21x the baseline. The default
    // device calibration gives 6/5 = 1.20.
    const HwConfig config;
    const EncoderPipelineModel two_layer(config, kDim, kMnistFeatures, 2);
    EXPECT_NEAR(two_layer.relative_to_baseline(), 1.21, 0.02);
}

TEST(PipelineModel, CyclesGrowLinearlyFromLTwo) {
    // Fact 2: every extra layer streams one more operand -> constant cycle
    // increment per layer.
    const HwConfig config;
    std::uint64_t previous = EncoderPipelineModel(config, kDim, kMnistFeatures, 1).cycles();
    std::uint64_t increment = 0;
    for (std::size_t layers = 2; layers <= 6; ++layers) {
        const std::uint64_t cycles =
            EncoderPipelineModel(config, kDim, kMnistFeatures, layers).cycles();
        ASSERT_GT(cycles, previous);
        if (layers == 2) {
            increment = cycles - previous;
        } else {
            ASSERT_EQ(cycles - previous, increment) << "layers=" << layers;
        }
        previous = cycles;
    }
}

TEST(PipelineModel, RelativeCurveIsDatasetIndependent) {
    // Fact 3 / the paper's observation that all five benchmark curves
    // coincide: the ratio depends only on the device, not on N or D.
    const HwConfig config;
    const auto mnist = relative_time_curve(config, 10000, 784, 5);
    const auto pamap = relative_time_curve(config, 10000, 75, 5);
    const auto small_dim = relative_time_curve(config, 4096, 561, 5);
    ASSERT_EQ(mnist.size(), 5u);
    for (std::size_t l = 0; l < 5; ++l) {
        EXPECT_NEAR(mnist[l], pamap[l], 0.01) << "L=" << l + 1;
        EXPECT_NEAR(mnist[l], small_dim[l], 0.01) << "L=" << l + 1;
    }
}

TEST(PipelineModel, AbsoluteCyclesScaleWithShape) {
    const HwConfig config;
    const auto cycles = [&](std::size_t dim, std::size_t n) {
        return EncoderPipelineModel(config, dim, n, 2).cycles();
    };
    // Doubling N roughly doubles cycles (up to the constant fill/binarize).
    EXPECT_NEAR(static_cast<double>(cycles(10000, 1568)) /
                    static_cast<double>(cycles(10000, 784)),
                2.0, 0.01);
    // Doubling D doubles the segment count.
    EXPECT_NEAR(static_cast<double>(cycles(20000, 784)) /
                    static_cast<double>(cycles(10000, 784)),
                2.0, 0.01);
}

TEST(PipelineModel, DualPortMemoryHalvesFetchCost) {
    HwConfig dual;
    dual.memory_ports = 2;
    // L = 1: ceil(2/2) = 1 fetch beat; L = 3: ceil(4/2) = 2.
    const EncoderPipelineModel one(dual, kDim, 100, 1);
    const EncoderPipelineModel three(dual, kDim, 100, 3);
    const auto segments = (kDim + dual.datapath_width - 1) / dual.datapath_width;
    EXPECT_EQ(one.encode_cost().fetch_beats, 100 * segments * 1);
    EXPECT_EQ(three.encode_cost().fetch_beats, 100 * segments * 2);
}

TEST(PipelineModel, CostBreakdownSumsToTotal) {
    const HwConfig config;
    const auto cost = EncoderPipelineModel(config, 4096, 64, 2).encode_cost();
    EXPECT_EQ(cost.cycles,
              cost.fetch_beats + cost.accumulate_beats + cost.binarize_beats + cost.fill_beats);
    EXPECT_EQ(cost.fill_beats, config.pipeline_fill);
    EXPECT_EQ(cost.binarize_beats, (4096 + config.datapath_width - 1) / config.datapath_width);
}

TEST(PipelineModel, MicrosecondsUsesClock) {
    const HwConfig config;
    const auto cost = EncoderPipelineModel(config, 4096, 64, 1).encode_cost();
    EXPECT_DOUBLE_EQ(cost.microseconds(200.0), static_cast<double>(cost.cycles) / 200.0);
    EXPECT_GT(cost.microseconds(100.0), cost.microseconds(200.0));
    EXPECT_THROW(cost.microseconds(0.0), ContractViolation);
}

TEST(PipelineModel, NarrowDatapathRoundsSegmentsUp) {
    HwConfig config;
    config.datapath_width = 64;
    const EncoderPipelineModel model(config, 65, 1, 1);  // 65 bits -> 2 segments
    EXPECT_EQ(model.encode_cost().binarize_beats, 2u);
}

TEST(PipelineModel, RejectsInvalidConfigs) {
    HwConfig config;
    config.datapath_width = 0;
    EXPECT_THROW(EncoderPipelineModel(config, 100, 10, 1), ContractViolation);
    config = HwConfig{};
    config.memory_ports = 0;
    EXPECT_THROW(EncoderPipelineModel(config, 100, 10, 1), ContractViolation);
    config = HwConfig{};
    config.accumulate_beats = 0;
    EXPECT_THROW(EncoderPipelineModel(config, 100, 10, 1), ContractViolation);
    config = HwConfig{};
    EXPECT_THROW(EncoderPipelineModel(config, 0, 10, 1), ContractViolation);
    EXPECT_THROW(EncoderPipelineModel(config, 100, 0, 1), ContractViolation);
    EXPECT_THROW(relative_time_curve(config, 100, 10, 0), ContractViolation);
}
