// Tests for the persistent worker pool (src/util/thread_pool.*): slot ID
// contracts, full coverage of parallel_for ranges, exception transport out
// of workers, reuse across many dispatches, and concurrent callers sharing
// one pool.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"
#include "util/sync.hpp"

namespace {

using namespace hdlock;

TEST(ThreadPool, RunsSubmittedTasksWithValidSlotIds) {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    util::Mutex mutex;
    std::set<std::size_t> slots;
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&](std::size_t slot) {
            {
                const util::MutexLock lock(mutex);
                slots.insert(slot);
            }
            done.fetch_add(1);
        });
    }
    while (done.load() < 64) util::yield_now();
    for (const auto slot : slots) EXPECT_LT(slot, pool.size());
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
    util::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&](std::size_t) { ran.store(true); });
    while (!ran.load()) util::yield_now();
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    util::ThreadPool pool(3);
    for (std::size_t n = 1; n <= 40; ++n) {
        for (std::size_t chunks = 1; chunks <= 9; ++chunks) {
            std::vector<std::atomic<int>> hits(n);
            util::parallel_for(pool, n, chunks,
                               [&](std::size_t begin, std::size_t end, std::size_t slot) {
                                   ASSERT_LT(begin, end);
                                   ASSERT_LT(slot, pool.size());
                                   for (std::size_t i = begin; i < end; ++i) {
                                       hits[i].fetch_add(1);
                                   }
                               });
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " chunks=" << chunks;
            }
        }
    }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
    util::ThreadPool pool(2);
    bool ran = false;
    util::parallel_for(pool, 0, 4, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleChunkRunsInline) {
    // The degenerate fan-out must not pay dispatch: it runs on the calling
    // thread (observable through thread identity).
    util::ThreadPool pool(2);
    const auto caller = util::this_thread_id();
    util::ThreadId executed;
    util::parallel_for(pool, 5, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 5u);
        executed = util::this_thread_id();
    });
    EXPECT_EQ(executed, caller);
}

TEST(ParallelFor, PropagatesTheFirstWorkerException) {
    util::ThreadPool pool(4);
    EXPECT_THROW(util::parallel_for(pool, 32, 4,
                                    [](std::size_t begin, std::size_t, std::size_t) {
                                        if (begin >= 8) throw std::runtime_error("worker boom");
                                    }),
                 std::runtime_error);

    // The pool survives the exception and keeps serving.
    std::atomic<int> sum{0};
    util::parallel_for(pool, 10, 4, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, ConcurrentCallersShareOnePool) {
    util::ThreadPool pool(4);
    constexpr std::size_t kCallers = 6;
    constexpr std::size_t kN = 512;
    std::vector<util::Thread> callers;
    std::vector<std::uint64_t> totals(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back(util::Thread([&pool, &totals, c] {
            std::vector<std::atomic<std::uint32_t>> hits(kN);
            for (int round = 0; round < 10; ++round) {
                util::parallel_for(pool, kN, 4,
                                   [&](std::size_t begin, std::size_t end, std::size_t) {
                                       for (std::size_t i = begin; i < end; ++i) {
                                           hits[i].fetch_add(1);
                                       }
                                   });
            }
            std::uint64_t total = 0;
            for (auto& hit : hits) total += hit.load();
            totals[c] = total;
        }));
    }
    for (auto& caller : callers) caller.join();
    for (const auto total : totals) EXPECT_EQ(total, kN * 10);
}

TEST(ThreadPool, SubmitAfterUseKeepsWorkingAcrossManyDispatches) {
    // Pool reuse is the whole point: thousands of dispatches, zero spawns.
    util::ThreadPool pool(2);
    std::uint64_t total = 0;
    for (int round = 0; round < 2000; ++round) {
        std::atomic<std::uint64_t> sum{0};
        util::parallel_for(pool, 8, 2, [&](std::size_t begin, std::size_t end, std::size_t) {
            for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
        });
        total += sum.load();
    }
    EXPECT_EQ(total, 2000u * 28u);
}

}  // namespace
