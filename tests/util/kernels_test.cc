// Cross-backend bit-equality tests for the runtime-dispatched SIMD kernel
// layer (src/util/kernels.*).  Every ISA backend must agree with portable on
// every input — including odd tail lengths (word counts that are not a
// multiple of the vector width) and every supported plane count — and the
// selection machinery (parse / choose / set / scoped restore) must behave.
// Backends the host cannot run are skipped cleanly, so the suite is green on
// any machine.

#include "util/kernels.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bitslice.hpp"
#include "util/bitvec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace kernels = hdlock::util::kernels;
namespace bits = hdlock::util::bits;
using hdlock::ConfigError;
using hdlock::util::ColumnCounter;
using hdlock::util::Xoshiro256ss;
using kernels::Backend;
using kernels::KernelBackend;
using Word = kernels::Word;

namespace {

/// The ISA backends runnable on this host (excludes portable).
std::vector<const KernelBackend*> simd_backends() {
    std::vector<const KernelBackend*> backends;
    if (kernels::available(Backend::neon)) backends.push_back(kernels::neon_backend());
    if (kernels::available(Backend::avx2)) backends.push_back(kernels::avx2_backend());
    if (kernels::available(Backend::avx512)) backends.push_back(kernels::avx512_backend());
    return backends;
}

std::vector<Word> random_words(std::size_t n, Xoshiro256ss& rng) {
    std::vector<Word> words(n);
    for (auto& word : words) word = rng();
    return words;
}

// Word counts around every vector-width boundary: scalar-only, exactly one
// AVX2 vector (4), one AVX-512 vector (8), multiples, and odd tails.
const std::size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 13, 15, 16, 17, 31, 157};

}  // namespace

TEST(Kernels, ParseAndNames) {
    EXPECT_EQ(kernels::parse_backend("portable"), Backend::portable);
    EXPECT_EQ(kernels::parse_backend("neon"), Backend::neon);
    EXPECT_EQ(kernels::parse_backend("avx2"), Backend::avx2);
    EXPECT_EQ(kernels::parse_backend("avx512"), Backend::avx512);
    EXPECT_EQ(kernels::parse_backend("AVX2"), std::nullopt);
    EXPECT_EQ(kernels::parse_backend(""), std::nullopt);
    for (const Backend kind : kernels::all_backends()) {
        EXPECT_EQ(kernels::parse_backend(kernels::backend_name(kind)), kind);
    }
}

TEST(Kernels, AllBackendsRosterAndCompiled) {
    const auto all = kernels::all_backends();
    EXPECT_EQ(all.size(), 4u);
    EXPECT_TRUE(kernels::compiled(Backend::portable));
    // available == compiled into this binary AND runnable on this CPU.
    for (const Backend kind : kernels::available_backends()) {
        EXPECT_TRUE(kernels::compiled(kind)) << kernels::backend_name(kind);
        EXPECT_TRUE(kernels::cpu_supports(kind)) << kernels::backend_name(kind);
    }
#if defined(__aarch64__) && defined(__ARM_NEON)
    EXPECT_TRUE(kernels::compiled(Backend::neon));
    EXPECT_TRUE(kernels::available(Backend::neon));
#else
    EXPECT_FALSE(kernels::compiled(Backend::neon));
    EXPECT_FALSE(kernels::available(Backend::neon));
#endif
}

TEST(Kernels, PortableAlwaysAvailable) {
    EXPECT_TRUE(kernels::available(Backend::portable));
    ASSERT_FALSE(kernels::available_backends().empty());
    EXPECT_EQ(kernels::available_backends().front(), Backend::portable);
}

TEST(Kernels, ChooseBackendHonorsRequestAndDegrades) {
    const Backend best = kernels::available_backends().back();
    // Unset / unknown values degrade to the best available, never throw.
    EXPECT_EQ(kernels::choose_backend(""), best);
    EXPECT_EQ(kernels::choose_backend("bogus"), best);
    // An available explicit request is honored.
    EXPECT_EQ(kernels::choose_backend("portable"), Backend::portable);
    for (const Backend kind : kernels::available_backends()) {
        EXPECT_EQ(kernels::choose_backend(kernels::backend_name(kind)), kind);
    }
    // An unavailable explicit request degrades instead of failing startup.
    if (!kernels::available(Backend::avx512)) {
        EXPECT_EQ(kernels::choose_backend("avx512"), best);
    }
}

TEST(Kernels, SetBackendPinsAndRestores) {
    const Backend original = kernels::active_kind();
    {
        kernels::ScopedBackend pin(Backend::portable);
        EXPECT_EQ(kernels::active_kind(), Backend::portable);
        EXPECT_STREQ(kernels::active_name(), "portable");
    }
    EXPECT_EQ(kernels::active_kind(), original);
}

TEST(Kernels, ScopedBackendReleaseDismissesRestore) {
    const Backend original = kernels::active_kind();
    Backend restore_to = original;
    {
        kernels::ScopedBackend pin(Backend::portable);
        restore_to = pin.release();
        EXPECT_EQ(restore_to, original);
    }
    // release() dismissed the destructor's restore: the pin outlives scope.
    EXPECT_EQ(kernels::active_kind(), Backend::portable);
    kernels::set_backend(restore_to);
    EXPECT_EQ(kernels::active_kind(), original);
}

TEST(Kernels, SetBackendReturnsActualPreviousWhenNested) {
    const Backend original = kernels::active_kind();
    {
        kernels::ScopedBackend outer(Backend::portable);
        const Backend best = kernels::available_backends().back();
        {
            kernels::ScopedBackend inner(best);
            EXPECT_EQ(kernels::active_kind(), best);
        }
        // The inner pin's exchange saw the *outer* pin, not a stale default.
        EXPECT_EQ(kernels::active_kind(), Backend::portable);
    }
    EXPECT_EQ(kernels::active_kind(), original);
}

TEST(Kernels, SetBackendRejectsUnavailable) {
    bool tested = false;
    for (const Backend kind : {Backend::neon, Backend::avx2, Backend::avx512}) {
        if (kernels::available(kind)) continue;
        EXPECT_THROW(kernels::set_backend(kind), ConfigError) << kernels::backend_name(kind);
        tested = true;
    }
    if (!tested) {
        GTEST_SKIP() << "every backend available on this host; rejection untestable";
    }
}

TEST(Kernels, XorPopcountHammingAgreeAcrossBackends) {
    const auto backends = simd_backends();
    if (backends.empty()) GTEST_SKIP() << "no SIMD backend available on this host";
    const KernelBackend& portable = kernels::portable_backend();
    Xoshiro256ss rng(42);
    for (const std::size_t n : kWordCounts) {
        const auto a = random_words(n, rng);
        const auto b = random_words(n, rng);
        std::vector<Word> expected(n, 0);
        portable.xor_into(expected.data(), a.data(), b.data(), n);
        const std::size_t expected_pop = portable.popcount(a.data(), n);
        const std::size_t expected_ham = portable.hamming(a.data(), b.data(), n);
        for (const KernelBackend* backend : backends) {
            std::vector<Word> actual(n, 0);
            backend->xor_into(actual.data(), a.data(), b.data(), n);
            EXPECT_EQ(actual, expected) << backend->name << " n=" << n;
            EXPECT_EQ(backend->popcount(a.data(), n), expected_pop)
                << backend->name << " n=" << n;
            EXPECT_EQ(backend->hamming(a.data(), b.data(), n), expected_ham)
                << backend->name << " n=" << n;
        }
    }
}

TEST(Kernels, CsaStepsAgreeAcrossBackends) {
    const auto backends = simd_backends();
    if (backends.empty()) GTEST_SKIP() << "no SIMD backend available on this host";
    const KernelBackend& portable = kernels::portable_backend();
    Xoshiro256ss rng(7);
    for (const std::size_t n : kWordCounts) {
        const auto x = random_words(n, rng);
        const auto ya = random_words(n, rng);
        const auto yb = random_words(n, rng);
        const auto ones0 = random_words(n, rng);
        const auto twos0 = random_words(n, rng);
        const auto twos_a = random_words(n, rng);
        const auto fours0 = random_words(n, rng);
        const auto fours_a = random_words(n, rng);
        for (const Word* yb_ptr : {static_cast<const Word*>(nullptr), yb.data()}) {
            // csa_pair
            auto ones_p = ones0;
            std::vector<Word> carry_p(n, 0);
            portable.csa_pair(ones_p.data(), carry_p.data(), x.data(), ya.data(), yb_ptr, n);
            // csa_quad
            auto ones_q = ones0;
            auto twos_q = twos0;
            std::vector<Word> fours_a_q(n, 0);
            portable.csa_quad(ones_q.data(), twos_q.data(), twos_a.data(), fours_a_q.data(),
                              x.data(), ya.data(), yb_ptr, n);
            // csa_oct
            auto ones_o = ones0;
            auto twos_o = twos0;
            auto fours_o = fours0;
            std::vector<Word> carry_o(n, 0);
            portable.csa_oct(ones_o.data(), twos_o.data(), twos_a.data(), fours_o.data(),
                             fours_a.data(), carry_o.data(), x.data(), ya.data(), yb_ptr, n);
            for (const KernelBackend* backend : backends) {
                auto b_ones = ones0;
                std::vector<Word> b_carry(n, 0);
                backend->csa_pair(b_ones.data(), b_carry.data(), x.data(), ya.data(), yb_ptr, n);
                EXPECT_EQ(b_ones, ones_p) << backend->name << " n=" << n;
                EXPECT_EQ(b_carry, carry_p) << backend->name << " n=" << n;

                b_ones = ones0;
                auto b_twos = twos0;
                std::vector<Word> b_fours_a(n, 0);
                backend->csa_quad(b_ones.data(), b_twos.data(), twos_a.data(), b_fours_a.data(),
                                  x.data(), ya.data(), yb_ptr, n);
                EXPECT_EQ(b_ones, ones_q) << backend->name << " n=" << n;
                EXPECT_EQ(b_twos, twos_q) << backend->name << " n=" << n;
                EXPECT_EQ(b_fours_a, fours_a_q) << backend->name << " n=" << n;

                b_ones = ones0;
                b_twos = twos0;
                auto b_fours = fours0;
                std::vector<Word> b_carry_o(n, 0);
                backend->csa_oct(b_ones.data(), b_twos.data(), twos_a.data(), b_fours.data(),
                                 fours_a.data(), b_carry_o.data(), x.data(), ya.data(), yb_ptr,
                                 n);
                EXPECT_EQ(b_ones, ones_o) << backend->name << " n=" << n;
                EXPECT_EQ(b_twos, twos_o) << backend->name << " n=" << n;
                EXPECT_EQ(b_fours, fours_o) << backend->name << " n=" << n;
                EXPECT_EQ(b_carry_o, carry_o) << backend->name << " n=" << n;
            }
        }
    }
}

TEST(Kernels, UnpackPlanesAgreesAcrossBackends) {
    const auto backends = simd_backends();
    if (backends.empty()) GTEST_SKIP() << "no SIMD backend available on this host";
    const KernelBackend& portable = kernels::portable_backend();
    Xoshiro256ss rng(19);
    for (const std::size_t n_words : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
        for (std::size_t n_planes = 1; n_planes <= 16; ++n_planes) {
            const auto planes = random_words(n_words * n_planes, rng);
            // Non-zero initial accumulator: the kernel must *add*.
            std::vector<std::int32_t> expected(n_words * 64);
            for (std::size_t j = 0; j < expected.size(); ++j) {
                expected[j] = static_cast<std::int32_t>(j % 37);
            }
            auto seed = expected;
            portable.unpack_planes(planes.data(), n_words, n_planes, expected.data());
            for (const KernelBackend* backend : backends) {
                auto actual = seed;
                backend->unpack_planes(planes.data(), n_words, n_planes, actual.data());
                EXPECT_EQ(actual, expected)
                    << backend->name << " words=" << n_words << " planes=" << n_planes;
            }
        }
    }
}

// End-to-end: a ColumnCounter driven through set_backend must produce
// identical counts and bipolar sums on every backend, over odd tail lengths
// (D not a multiple of 256/512) and all plane regimes (ripple and grouped).
TEST(Kernels, ColumnCounterBitIdenticalAcrossBackends) {
    const auto available = kernels::available_backends();
    if (available.size() < 2) GTEST_SKIP() << "only portable available on this host";

    for (const std::size_t n_bits : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                                     std::size_t{65}, std::size_t{200}, std::size_t{257},
                                     std::size_t{300}, std::size_t{511}, std::size_t{513},
                                     std::size_t{1000}}) {
        for (const std::size_t n_planes :
             {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{6}, std::size_t{8},
              std::size_t{16}}) {
            // Same row stream for every backend: mixed add / add_xor, enough
            // rows to cross group and flush boundaries.
            std::vector<std::vector<Word>> rows;
            Xoshiro256ss rng(1000 + n_bits * 31 + n_planes);
            const std::size_t n_words = bits::word_count(n_bits);
            for (std::size_t r = 0; r < 37; ++r) {
                auto row = random_words(n_words, rng);
                if (!row.empty()) row.back() &= bits::tail_mask(n_bits);
                rows.push_back(std::move(row));
            }

            std::vector<std::int32_t> reference_counts;
            std::vector<std::int32_t> reference_sums;
            for (const Backend kind : available) {
                kernels::ScopedBackend pin(kind);
                ColumnCounter counter(n_bits, n_planes);
                for (std::size_t r = 0; r < rows.size(); ++r) {
                    if (r % 3 == 1) {
                        counter.add_xor(rows[r], rows[(r + 1) % rows.size()]);
                    } else {
                        counter.add(rows[r]);
                    }
                }
                std::vector<std::int32_t> counts(n_bits, 0);
                counter.counts_into(counts);
                std::vector<std::int32_t> sums(n_bits, 0);
                counter.bipolar_sums_into(sums);
                if (kind == Backend::portable) {
                    reference_counts = counts;
                    reference_sums = sums;
                } else {
                    EXPECT_EQ(counts, reference_counts)
                        << kernels::backend_name(kind) << " D=" << n_bits
                        << " planes=" << n_planes;
                    EXPECT_EQ(sums, reference_sums)
                        << kernels::backend_name(kind) << " D=" << n_bits
                        << " planes=" << n_planes;
                }
            }
        }
    }
}

// csa_rows semantics: folding 8 rows into zeroed residues must leave a
// per-column binary decomposition of the exact column count —
//   count(j) = ones(j) + 2*twos(j) + 4*fours(j) + 8*carry(j)
// — and every backend must produce bit-identical residue planes.
TEST(Kernels, CsaRowsDecomposesColumnCountsAndAgreesAcrossBackends) {
    const KernelBackend& portable = kernels::portable_backend();
    Xoshiro256ss rng(61);
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{5},
                                std::size_t{8}, std::size_t{9}, std::size_t{13}}) {
        std::vector<std::vector<Word>> rows;
        std::vector<const Word*> row_ptrs;
        for (std::size_t r = 0; r < 8; ++r) {
            rows.push_back(random_words(n, rng));
            row_ptrs.push_back(rows.back().data());
        }
        // Non-zero initial residues: csa_rows folds *into* live state.
        const auto ones0 = random_words(n, rng);
        const auto twos0 = random_words(n, rng);
        const auto fours0 = random_words(n, rng);

        auto p_ones = ones0;
        auto p_twos = twos0;
        auto p_fours = fours0;
        std::vector<Word> p_carry(n, 0);
        portable.csa_rows(p_ones.data(), p_twos.data(), p_fours.data(), p_carry.data(),
                          row_ptrs.data(), n);

        // Absolute check against per-column arithmetic, zero initial state.
        std::vector<Word> z_ones(n, 0), z_twos(n, 0), z_fours(n, 0), z_carry(n, 0);
        portable.csa_rows(z_ones.data(), z_twos.data(), z_fours.data(), z_carry.data(),
                          row_ptrs.data(), n);
        for (std::size_t w = 0; w < n; ++w) {
            for (std::size_t bit = 0; bit < 64; ++bit) {
                std::size_t count = 0;
                for (const auto& row : rows) count += (row[w] >> bit) & 1u;
                const std::size_t decomposed = ((z_ones[w] >> bit) & 1u) +
                                               2 * ((z_twos[w] >> bit) & 1u) +
                                               4 * ((z_fours[w] >> bit) & 1u) +
                                               8 * ((z_carry[w] >> bit) & 1u);
                ASSERT_EQ(decomposed, count) << "word " << w << " bit " << bit;
            }
        }

        for (const KernelBackend* backend : simd_backends()) {
            auto b_ones = ones0;
            auto b_twos = twos0;
            auto b_fours = fours0;
            std::vector<Word> b_carry(n, 0);
            backend->csa_rows(b_ones.data(), b_twos.data(), b_fours.data(), b_carry.data(),
                              row_ptrs.data(), n);
            EXPECT_EQ(b_ones, p_ones) << backend->name << " n=" << n;
            EXPECT_EQ(b_twos, p_twos) << backend->name << " n=" << n;
            EXPECT_EQ(b_fours, p_fours) << backend->name << " n=" << n;
            EXPECT_EQ(b_carry, p_carry) << backend->name << " n=" << n;
        }
    }
}

namespace {

/// Deterministic TieResolver: a fixed per-word pattern, so every backend
/// (and the reference below) resolves identical ties identically without
/// shared state.
Word pattern_ties(void* /*ctx*/, Word eq_mask, std::size_t word_index) noexcept {
    return eq_mask & (Word{0x9E3779B97F4A7C15ULL} * static_cast<Word>(word_index + 3));
}

/// Stateful TieResolver drawing one Xoshiro sign per tied column (the
/// production resolver's shape).  Cross-backend distance equality with this
/// resolver proves every backend calls it in the identical (word-ascending,
/// at-most-once-per-word) order with identical eq masks.
Word rng_ties(void* ctx, Word eq_mask, std::size_t /*word_index*/) noexcept {
    auto& rng = *static_cast<Xoshiro256ss*>(ctx);
    Word negatives = 0;
    while (eq_mask != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(eq_mask));
        if (rng.next_sign() < 0) negatives |= Word{1} << bit;
        eq_mask &= eq_mask - 1;
    }
    return negatives;
}

/// Independent scalar re-implementation of the fused contract: majority of
/// per-column counts (ties at exactly n/2 for even n resolved by `ties`),
/// then per-class Hamming against the implied query.
std::vector<std::uint64_t> fused_reference(const std::vector<std::vector<Word>>& rows_a,
                                           const std::vector<std::vector<Word>>& rows_b,
                                           const std::vector<std::vector<Word>>& classes,
                                           std::size_t n_words, kernels::TieResolver ties,
                                           void* tie_ctx) {
    const std::size_t n = rows_a.size();
    std::vector<std::uint64_t> distances(classes.size(), 0);
    for (std::size_t w = 0; w < n_words; ++w) {
        Word query = 0;
        Word eq = 0;
        for (std::size_t bit = 0; bit < 64; ++bit) {
            std::size_t count = 0;
            for (std::size_t r = 0; r < n; ++r) {
                Word x = rows_a[r][w];
                if (!rows_b.empty()) x ^= rows_b[r][w];
                count += (x >> bit) & 1u;
            }
            if (count > n / 2) {
                query |= Word{1} << bit;
            } else if (n % 2 == 0 && count == n / 2) {
                eq |= Word{1} << bit;
            }
        }
        if (eq != 0 && ties != nullptr) query |= ties(tie_ctx, eq, w) & eq;
        for (std::size_t c = 0; c < classes.size(); ++c) {
            distances[c] += static_cast<std::uint64_t>(std::popcount(query ^ classes[c][w]));
        }
    }
    return distances;
}

}  // namespace

// The fused encode→distance kernel vs the scalar reference and across
// backends: row counts spanning the 8-row groups and every leftover shape,
// word counts spanning vector-width tails, cached (rows_b == nullptr) and
// uncached (XOR-on-load) forms, with and without a tie resolver.
TEST(Kernels, FusedHammingScoresMatchesReferenceAcrossBackends) {
    Xoshiro256ss rng(83);
    const KernelBackend& portable = kernels::portable_backend();
    const std::size_t n_classes = 3;
    for (const std::size_t n_rows : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                     std::size_t{7}, std::size_t{8}, std::size_t{9},
                                     std::size_t{16}, std::size_t{17}, std::size_t{33}}) {
        for (const std::size_t n_words : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                                          std::size_t{8}, std::size_t{9}, std::size_t{13}}) {
            std::vector<std::vector<Word>> rows_a, rows_b, classes;
            std::vector<const Word*> ptrs_a, ptrs_b, class_ptrs;
            for (std::size_t r = 0; r < n_rows; ++r) {
                rows_a.push_back(random_words(n_words, rng));
                rows_b.push_back(random_words(n_words, rng));
                ptrs_a.push_back(rows_a.back().data());
                ptrs_b.push_back(rows_b.back().data());
            }
            for (std::size_t c = 0; c < n_classes; ++c) {
                classes.push_back(random_words(n_words, rng));
                class_ptrs.push_back(classes.back().data());
            }

            for (const bool cached : {true, false}) {
                for (const bool with_ties : {true, false}) {
                    const kernels::TieResolver ties = with_ties ? &pattern_ties : nullptr;
                    const auto expected =
                        fused_reference(rows_a,
                                        cached ? std::vector<std::vector<Word>>{} : rows_b,
                                        classes, n_words, ties, nullptr);
                    std::vector<std::uint64_t> actual(n_classes, ~std::uint64_t{0});
                    portable.fused_hamming_scores(ptrs_a.data(),
                                                  cached ? nullptr : ptrs_b.data(), n_rows,
                                                  class_ptrs.data(), n_classes, n_words, ties,
                                                  nullptr, actual.data());
                    EXPECT_EQ(actual, expected) << "portable rows=" << n_rows
                                                << " words=" << n_words << " cached=" << cached
                                                << " ties=" << with_ties;
                    for (const KernelBackend* backend : simd_backends()) {
                        std::vector<std::uint64_t> simd(n_classes, ~std::uint64_t{0});
                        backend->fused_hamming_scores(ptrs_a.data(),
                                                      cached ? nullptr : ptrs_b.data(), n_rows,
                                                      class_ptrs.data(), n_classes, n_words,
                                                      ties, nullptr, simd.data());
                        EXPECT_EQ(simd, expected)
                            << backend->name << " rows=" << n_rows << " words=" << n_words
                            << " cached=" << cached << " ties=" << with_ties;
                    }
                }
            }
        }
    }
}

// The production tie resolver is stateful (one PRNG draw per tied column),
// so identical distances across backends require identical resolver call
// order and identical eq masks — this is the RNG-parity contract the
// encoder's fused path relies on.
TEST(Kernels, FusedHammingScoresDrawsStatefulTiesIdentically) {
    Xoshiro256ss rng(97);
    const std::size_t n_rows = 8;  // even: ~27% tie probability per column
    const std::size_t n_words = 11;
    const std::size_t n_classes = 4;
    std::vector<std::vector<Word>> rows, classes;
    std::vector<const Word*> row_ptrs, class_ptrs;
    for (std::size_t r = 0; r < n_rows; ++r) {
        rows.push_back(random_words(n_words, rng));
        row_ptrs.push_back(rows.back().data());
    }
    for (std::size_t c = 0; c < n_classes; ++c) {
        classes.push_back(random_words(n_words, rng));
        class_ptrs.push_back(classes.back().data());
    }

    Xoshiro256ss reference_rng(1234);
    std::vector<std::uint64_t> expected(n_classes, 0);
    kernels::portable_backend().fused_hamming_scores(row_ptrs.data(), nullptr, n_rows,
                                                     class_ptrs.data(), n_classes, n_words,
                                                     &rng_ties, &reference_rng, expected.data());
    for (const KernelBackend* backend : simd_backends()) {
        Xoshiro256ss backend_rng(1234);
        std::vector<std::uint64_t> actual(n_classes, 0);
        backend->fused_hamming_scores(row_ptrs.data(), nullptr, n_rows, class_ptrs.data(),
                                      n_classes, n_words, &rng_ties, &backend_rng, actual.data());
        EXPECT_EQ(actual, expected) << backend->name;
    }
}

TEST(Kernels, FusedHammingScoresZeroRowsZeroesDistances) {
    Xoshiro256ss rng(11);
    const auto cls = random_words(5, rng);
    const Word* class_ptrs[] = {cls.data()};
    std::vector<std::uint64_t> distances(1, ~std::uint64_t{0});
    kernels::active().fused_hamming_scores(nullptr, nullptr, 0, class_ptrs, 1, 5, nullptr,
                                           nullptr, distances.data());
    EXPECT_EQ(distances[0], 0u);
}

// ColumnCounter::add_rows must be exactly add() per row — plane-identical
// counts on every backend, at odd dimensions (tail words) and from
// mid-group entry points.
TEST(Kernels, ColumnCounterAddRowsMatchesSequentialAdds) {
    for (const Backend kind : kernels::available_backends()) {
        kernels::ScopedBackend pin(kind);
        for (const std::size_t n_bits :
             {std::size_t{63}, std::size_t{65}, std::size_t{513}, std::size_t{777},
              std::size_t{1000}}) {
            for (const std::size_t n_planes : {std::size_t{3}, std::size_t{4}, std::size_t{6},
                                               std::size_t{16}}) {
                for (const std::size_t misalign : {std::size_t{0}, std::size_t{3}}) {
                    Xoshiro256ss rng(500 + n_bits + n_planes * 7 + misalign);
                    const std::size_t n_words = bits::word_count(n_bits);
                    std::vector<std::vector<Word>> rows;
                    std::vector<const Word*> row_ptrs;
                    for (std::size_t r = 0; r < 37; ++r) {
                        auto row = random_words(n_words, rng);
                        row.back() &= bits::tail_mask(n_bits);
                        rows.push_back(std::move(row));
                    }
                    for (const auto& row : rows) row_ptrs.push_back(row.data());

                    ColumnCounter sequential(n_bits, n_planes);
                    ColumnCounter batched(n_bits, n_planes);
                    for (std::size_t r = 0; r < misalign; ++r) {
                        sequential.add(rows[r]);
                        batched.add(rows[r]);  // enter add_rows mid-group
                    }
                    for (std::size_t r = misalign; r < rows.size(); ++r) sequential.add(rows[r]);
                    batched.add_rows(std::span<const Word* const>(row_ptrs).subspan(misalign));
                    EXPECT_EQ(batched.rows_added(), sequential.rows_added());

                    std::vector<std::int32_t> expected(n_bits, 0), actual(n_bits, 0);
                    sequential.counts_into(expected);
                    batched.counts_into(actual);
                    EXPECT_EQ(actual, expected)
                        << kernels::backend_name(kind) << " D=" << n_bits
                        << " planes=" << n_planes << " misalign=" << misalign;
                }
            }
        }
    }
}

// TSan coverage for the process-global dispatch slot: reader threads hammer
// active() + a kernel call while writer threads churn ScopedBackend pins.
// set_backend is a single atomic exchange, so the slot is never torn, every
// reader always sees *some* fully-formed backend, and — because all backends
// are bit-identical — every kernel result is the same no matter which pin
// won.  (The old read-then-store set_backend let a racing pin restore a
// stale snapshot; the per-thread nested-pin chain below plus this churn runs
// under the tsan-serving-core CI job.)
TEST(KernelsBackendConcurrency, SetBackendVsActiveIsRaceFree) {
    const Backend original = kernels::active_kind();
    const auto kinds = kernels::available_backends();

    Xoshiro256ss rng(23);
    const auto words = random_words(157, rng);
    const std::size_t expected_pop = kernels::portable_backend().popcount(words.data(),
                                                                          words.size());

    std::atomic<bool> stop{false};
    std::vector<hdlock::util::Thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back(hdlock::util::Thread([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const KernelBackend& backend = kernels::active();
                ASSERT_NE(backend.name, nullptr);
                ASSERT_EQ(backend.popcount(words.data(), words.size()), expected_pop)
                    << backend.name;
            }
        }));
    }

    std::vector<hdlock::util::Thread> writers;
    for (std::size_t w = 0; w < 2; ++w) {
        writers.emplace_back(hdlock::util::Thread([&kinds, w] {
            for (int i = 0; i < 500; ++i) {
                kernels::ScopedBackend outer(kinds[(w + i) % kinds.size()]);
                kernels::ScopedBackend inner(kinds[i % kinds.size()]);
            }
        }));
    }
    for (auto& writer : writers) writer.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto& reader : readers) reader.join();

    // Concurrent pins unwind in an arbitrary global order, so re-pin
    // explicitly rather than asserting which racer's restore landed last.
    kernels::set_backend(original);
    EXPECT_EQ(kernels::active_kind(), original);
}

// The bitvec span wrappers dispatch to whatever backend is pinned.
TEST(Kernels, BitvecRoutesThroughActiveBackend) {
    Xoshiro256ss rng(5);
    const std::size_t n_bits = 777;  // odd tail
    std::vector<Word> a(bits::word_count(n_bits));
    std::vector<Word> b(bits::word_count(n_bits));
    bits::fill_random(a, n_bits, rng);
    bits::fill_random(b, n_bits, rng);

    std::size_t expected_pop = 0;
    std::size_t expected_ham = 0;
    std::vector<Word> expected_xor(a.size());
    {
        kernels::ScopedBackend pin(Backend::portable);
        expected_pop = bits::popcount(a);
        expected_ham = bits::hamming(a, b);
        bits::xor_into(expected_xor, a, b);
    }
    for (const Backend kind : kernels::available_backends()) {
        kernels::ScopedBackend pin(kind);
        EXPECT_EQ(bits::popcount(a), expected_pop) << kernels::backend_name(kind);
        EXPECT_EQ(bits::hamming(a, b), expected_ham) << kernels::backend_name(kind);
        std::vector<Word> actual(a.size());
        bits::xor_into(actual, a, b);
        EXPECT_EQ(actual, expected_xor) << kernels::backend_name(kind);
    }
}
