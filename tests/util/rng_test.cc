// Tests for the deterministic PRNG layer (src/util/rng.*).

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>
#include <vector>

using hdlock::util::fnv1a;
using hdlock::util::hash_mix;
using hdlock::util::SplitMix64;
using hdlock::util::Xoshiro256ss;

TEST(SplitMix, KnownSequenceIsStable) {
    // Golden values locked in once; any change to the generator would
    // silently invalidate every recorded experiment, so fail loudly instead.
    SplitMix64 sm(0);
    const std::uint64_t first = sm.next();
    SplitMix64 sm2(0);
    EXPECT_EQ(first, sm2.next());
    EXPECT_EQ(first, 0xe220a8397b1dcdafULL);  // published splitmix64 test vector
}

TEST(Xoshiro, DeterministicPerSeed) {
    Xoshiro256ss a(1234), b(1234), c(1235);
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        any_diff = any_diff || (va != c());
    }
    EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, NextBelowStaysInRange) {
    Xoshiro256ss rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 784ull, 10000ull}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(rng.next_below(bound), bound);
        }
    }
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
    Xoshiro256ss rng(8);
    constexpr std::uint64_t kBins = 16;
    constexpr int kDraws = 160000;
    std::array<int, kBins> histogram{};
    for (int i = 0; i < kDraws; ++i) ++histogram[rng.next_below(kBins)];
    const double expected = static_cast<double>(kDraws) / kBins;
    for (const int count : histogram) {
        EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.05);
    }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
    Xoshiro256ss rng(9);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, NormalHasExpectedMoments) {
    Xoshiro256ss rng(10);
    double sum = 0.0, sum_sq = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
        const double x = rng.next_normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum_sq / kDraws - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro, NormalScalesMeanAndStddev) {
    Xoshiro256ss rng(11);
    double sum = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) sum += rng.next_normal(5.0, 0.5);
    EXPECT_NEAR(sum / kDraws, 5.0, 0.02);
}

TEST(Xoshiro, NextSignIsBalanced) {
    Xoshiro256ss rng(12);
    int plus = 0;
    for (int i = 0; i < 100000; ++i) {
        const int s = rng.next_sign();
        ASSERT_TRUE(s == 1 || s == -1);
        plus += s == 1 ? 1 : 0;
    }
    EXPECT_NEAR(plus / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, ShuffleIsAPermutation) {
    Xoshiro256ss rng(13);
    std::vector<int> values(100);
    std::iota(values.begin(), values.end(), 0);
    const auto original = values;
    rng.shuffle(std::span<int>(values));
    EXPECT_NE(values, original);  // astronomically unlikely to be identity
    auto sorted = values;
    std::ranges::sort(sorted);
    EXPECT_EQ(sorted, original);
}

TEST(Xoshiro, ShuffleDeterministicPerSeed) {
    std::vector<int> a(50), b(50);
    std::iota(a.begin(), a.end(), 0);
    std::iota(b.begin(), b.end(), 0);
    Xoshiro256ss r1(77), r2(77);
    r1.shuffle(std::span<int>(a));
    r2.shuffle(std::span<int>(b));
    EXPECT_EQ(a, b);
}

TEST(Fnv1a, MatchesPublishedVectors) {
    EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
    const char a = 'a';
    EXPECT_EQ(fnv1a(std::as_bytes(std::span<const char>(&a, 1))), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, SensitiveToEveryByte) {
    std::array<std::uint8_t, 8> buf{1, 2, 3, 4, 5, 6, 7, 8};
    const auto base = fnv1a(std::as_bytes(std::span<const std::uint8_t>(buf)));
    for (std::size_t i = 0; i < buf.size(); ++i) {
        auto mutated = buf;
        mutated[i] ^= 1;
        EXPECT_NE(base, fnv1a(std::as_bytes(std::span<const std::uint8_t>(mutated))));
    }
}

TEST(HashMix, OrderSensitive) {
    EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
    EXPECT_EQ(hash_mix(1, 2), hash_mix(1, 2));
}
