// Tests for the text-table renderer (src/util/table.*).

#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

using hdlock::util::format_bits;
using hdlock::util::format_fixed;
using hdlock::util::format_pow10;
using hdlock::util::format_sci;
using hdlock::util::TextTable;

TEST(TextTable, RendersAlignedColumns) {
    TextTable table({"name", "value"});
    table.add_row({"a", "1"});
    table.add_row({"longer", "22"});
    const std::string text = table.to_string();

    EXPECT_NE(text.find("name    value"), std::string::npos);
    EXPECT_NE(text.find("a       1"), std::string::npos);
    EXPECT_NE(text.find("longer  22"), std::string::npos);
    EXPECT_NE(text.find("-------------"), std::string::npos);
}

TEST(TextTable, LastColumnIsNotPadded) {
    TextTable table({"k", "v"});
    table.add_row({"x", "1"});
    for (const auto& line : {std::string("k  v\n"), std::string("x  1\n")}) {
        EXPECT_NE(table.to_string().find(line), std::string::npos) << line;
    }
}

TEST(TextTable, CsvEscapesDelimiterAndQuotes) {
    TextTable table({"a", "b"});
    table.add_row({"plain", "with,comma"});
    table.add_row({"has\"quote", "line\nbreak"});
    const std::string csv = table.to_csv();

    EXPECT_NE(csv.find("a,b\n"), std::string::npos);
    EXPECT_NE(csv.find("plain,\"with,comma\"\n"), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
    EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(TextTable, CustomDelimiter) {
    TextTable table({"a", "b"});
    table.add_row({"1", "2"});
    EXPECT_NE(table.to_csv(';').find("1;2"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
    TextTable table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), hdlock::ContractViolation);
}

TEST(TextTable, RejectsEmptyHeader) {
    EXPECT_THROW(TextTable({}), hdlock::ContractViolation);
}

TEST(TableFormat, Fixed) {
    EXPECT_EQ(format_fixed(0.81764, 4), "0.8176");
    EXPECT_EQ(format_fixed(2.0, 1), "2.0");
    EXPECT_THROW(format_fixed(1.0, -1), hdlock::ContractViolation);
}

TEST(TableFormat, Scientific) { EXPECT_EQ(format_sci(48100000000000000.0), "4.81e+16"); }

TEST(TableFormat, Pow10RendersWithoutOverflow) {
    // log10(4.81e16) without ever materializing the count.
    EXPECT_EQ(format_pow10(16.682145), "4.81e+16");
    // Far beyond double range: Fig. 7b's top-left corner is ~1e40.
    EXPECT_EQ(format_pow10(40.0), "1.00e+40");
}

TEST(TableFormat, Bits) {
    EXPECT_EQ(format_bits(800), "100 B");
    EXPECT_EQ(format_bits(16 * 1024 * 8), "16.0 KiB");
    EXPECT_EQ(format_bits(std::uint64_t{10} * 1024 * 1024 * 8), "10.0 MiB");
}
