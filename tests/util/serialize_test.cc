// Tests for tagged binary serialization (src/util/serialize.*).

#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

using hdlock::FormatError;
using hdlock::IoError;
using hdlock::util::BinaryReader;
using hdlock::util::BinaryWriter;

TEST(Serialize, ScalarRoundTrip) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_tag("HDLK");
    writer.write_u8(200);
    writer.write_u32(0xDEADBEEFu);
    writer.write_u64(0x0123456789ABCDEFull);
    writer.write_i32(-42);
    writer.write_i64(-(1ll << 40));
    writer.write_f64(3.14159);
    writer.write_string("hypervector");

    BinaryReader reader(stream);
    reader.expect_tag("HDLK");
    EXPECT_EQ(reader.read_u8(), 200);
    EXPECT_EQ(reader.read_u32(), 0xDEADBEEFu);
    EXPECT_EQ(reader.read_u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(reader.read_i32(), -42);
    EXPECT_EQ(reader.read_i64(), -(1ll << 40));
    EXPECT_DOUBLE_EQ(reader.read_f64(), 3.14159);
    EXPECT_EQ(reader.read_string(), "hypervector");
}

TEST(Serialize, VectorRoundTrip) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    const std::vector<std::uint64_t> words = {1, 2, 3, ~0ull};
    const std::vector<std::int32_t> counts = {-5, 0, 5};
    writer.write_span(std::span<const std::uint64_t>(words));
    writer.write_span(std::span<const std::int32_t>(counts));

    BinaryReader reader(stream);
    EXPECT_EQ(reader.read_vector<std::uint64_t>(), words);
    EXPECT_EQ(reader.read_vector<std::int32_t>(), counts);
}

TEST(Serialize, EmptyVectorAndString) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_span(std::span<const double>{});
    writer.write_string("");
    BinaryReader reader(stream);
    EXPECT_TRUE(reader.read_vector<double>().empty());
    EXPECT_TRUE(reader.read_string().empty());
}

TEST(Serialize, TagMismatchThrows) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_tag("AAAA");
    BinaryReader reader(stream);
    EXPECT_THROW(reader.expect_tag("BBBB"), FormatError);
}

TEST(Serialize, TruncatedStreamThrows) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_u32(7);
    BinaryReader reader(stream);
    EXPECT_EQ(reader.read_u32(), 7u);
    EXPECT_THROW(reader.read_u32(), FormatError);
}

TEST(Serialize, VectorLengthLimitEnforced) {
    std::stringstream stream;
    BinaryWriter writer(stream);
    writer.write_u64(1000);  // claimed length with no payload
    BinaryReader reader(stream);
    EXPECT_THROW(reader.read_vector<std::uint64_t>(10), FormatError);
}

namespace {

/// Minimal serializable object for save_file/load_file round-trips.
struct Blob {
    std::vector<std::int32_t> payload;

    void save(BinaryWriter& writer) const {
        writer.write_tag("BLOB");
        writer.write_span(std::span<const std::int32_t>(payload));
    }

    static Blob load(BinaryReader& reader) {
        reader.expect_tag("BLOB");
        return Blob{reader.read_vector<std::int32_t>()};
    }
};

}  // namespace

TEST(Serialize, FileRoundTrip) {
    const auto path = std::filesystem::temp_directory_path() / "hdlock_serialize_test.bin";
    const Blob blob{{1, -2, 3, -4}};
    hdlock::util::save_file(blob, path);
    const Blob loaded = hdlock::util::load_file<Blob>(path);
    EXPECT_EQ(loaded.payload, blob.payload);
    std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrowsIoError) {
    EXPECT_THROW(hdlock::util::load_file<Blob>("/nonexistent/dir/file.bin"), IoError);
    EXPECT_THROW(hdlock::util::save_file(Blob{}, "/nonexistent/dir/file.bin"), IoError);
}
