// Tests for the statistics helpers (src/util/stats.*).

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

using hdlock::ContractViolation;
using hdlock::util::ConfusionMatrix;
using hdlock::util::OnlineStats;

TEST(OnlineStats, MatchesDirectComputation) {
    OnlineStats stats;
    const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (const double v : values) stats.add(v);
    EXPECT_EQ(stats.count(), values.size());
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, EmptyAndSingle) {
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(ConfusionMatrix, AccuracyAndRecall) {
    ConfusionMatrix cm(3);
    cm.add(0, 0);
    cm.add(0, 0);
    cm.add(0, 1);
    cm.add(1, 1);
    cm.add(2, 0);
    EXPECT_EQ(cm.total(), 5);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);
    EXPECT_EQ(cm.at(0, 1), 1);
    EXPECT_EQ(cm.at(2, 0), 1);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
    ConfusionMatrix cm(2);
    EXPECT_THROW(cm.add(-1, 0), ContractViolation);
    EXPECT_THROW(cm.add(0, 2), ContractViolation);
    EXPECT_THROW(cm.at(2, 0), ContractViolation);
    EXPECT_THROW(ConfusionMatrix(0), ContractViolation);
}

TEST(Agreement, CountsMatchingPositions) {
    const std::vector<int> a = {1, 2, 3, 4};
    const std::vector<int> b = {1, 0, 3, 0};
    EXPECT_DOUBLE_EQ(hdlock::util::agreement(a, b), 0.5);
    EXPECT_DOUBLE_EQ(hdlock::util::agreement(a, a), 1.0);
    const std::vector<int> shorter = {1};
    EXPECT_THROW(hdlock::util::agreement(a, shorter), ContractViolation);
}

TEST(Median, OddAndEven) {
    EXPECT_DOUBLE_EQ(hdlock::util::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(hdlock::util::median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(hdlock::util::median({}), 0.0);
    EXPECT_DOUBLE_EQ(hdlock::util::median({7.0}), 7.0);
}

TEST(MeanStddev, SpanHelpers) {
    const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(hdlock::util::mean(values), 2.5);
    EXPECT_NEAR(hdlock::util::stddev(values), 1.2909944487, 1e-9);
    EXPECT_DOUBLE_EQ(hdlock::util::mean({}), 0.0);
}
