// Tests for the monotonic request deadline (src/util/deadline.hpp): the
// never/armed split, expiry against the live clock and against a
// caller-sampled "now", and the value-type contract the serving tier
// relies on (copyable, comparable via expired_at with one clock read).

#include "util/deadline.hpp"

#include <gtest/gtest.h>

#include <chrono>

using hdlock::util::Deadline;
using hdlock::util::SteadyTime;
using hdlock::util::steady_now;
using namespace std::chrono_literals;

TEST(Deadline, DefaultConstructedNeverExpires) {
    const Deadline deadline;
    EXPECT_TRUE(deadline.is_never());
    EXPECT_FALSE(deadline.expired());
    EXPECT_FALSE(deadline.expired_at(steady_now() + 24h));
}

TEST(Deadline, NeverFactoryMatchesDefault) {
    const Deadline deadline = Deadline::never();
    EXPECT_TRUE(deadline.is_never());
    EXPECT_FALSE(deadline.expired_at(SteadyTime::max()));
}

TEST(Deadline, SpentBudgetIsExpiredImmediately) {
    EXPECT_TRUE(Deadline::after(0ns).expired());
    EXPECT_TRUE(Deadline::after(-5ms).expired());
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
    const Deadline deadline = Deadline::after(1h);
    EXPECT_FALSE(deadline.is_never());
    EXPECT_FALSE(deadline.expired());
    EXPECT_GT(deadline.when(), steady_now());
}

TEST(Deadline, ExpiredAtUsesTheSampledClockOnly) {
    const SteadyTime now = steady_now();
    const Deadline deadline = Deadline::at(now + 10ms);
    // Strictly before: live.  At and after the expiry point: expired.  The
    // sampled-now form lets a dispatcher test a whole batch against one
    // consistent clock read.
    EXPECT_FALSE(deadline.expired_at(now));
    EXPECT_FALSE(deadline.expired_at(now + 10ms - 1ns));
    EXPECT_TRUE(deadline.expired_at(now + 10ms));
    EXPECT_TRUE(deadline.expired_at(now + 1h));
    EXPECT_EQ(deadline.when(), now + 10ms);
}

TEST(Deadline, CopiesPreserveTheExpiryPoint) {
    const Deadline original = Deadline::at(steady_now() + 5s);
    const Deadline copy = original;
    EXPECT_EQ(copy.when(), original.when());
    EXPECT_FALSE(copy.is_never());
}
