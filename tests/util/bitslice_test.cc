// Tests for the bit-sliced column accumulator (src/util/bitslice.*) against
// the naive reference, including flush-boundary row counts.

#include "util/bitslice.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace bits = hdlock::util::bits;
using hdlock::ConfigError;
using hdlock::ContractViolation;
using hdlock::util::ColumnCounter;
using hdlock::util::Xoshiro256ss;
using bits::Word;

namespace {

std::vector<Word> random_row(std::size_t n_bits, Xoshiro256ss& rng) {
    std::vector<Word> row(bits::word_count(n_bits));
    bits::fill_random(row, n_bits, rng);
    return row;
}

}  // namespace

// (n_bits, n_planes, n_rows)
class ColumnCounterTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(ColumnCounterTest, MatchesNaiveAccumulation) {
    const auto [n_bits, n_planes, n_rows] = GetParam();
    Xoshiro256ss rng(991);

    ColumnCounter counter(n_bits, n_planes);
    std::vector<std::int32_t> naive(n_bits, 0);
    for (std::size_t r = 0; r < n_rows; ++r) {
        const auto row = random_row(n_bits, rng);
        counter.add(row);
        hdlock::util::naive_accumulate(row, n_bits, naive);
    }
    EXPECT_EQ(counter.rows_added(), n_rows);

    std::vector<std::int32_t> counts(n_bits, 0);
    counter.counts_into(counts);
    EXPECT_EQ(counts, naive);

    std::vector<std::int32_t> sums(n_bits, 0);
    counter.bipolar_sums_into(sums);
    for (std::size_t j = 0; j < n_bits; ++j) {
        EXPECT_EQ(sums[j], static_cast<std::int32_t>(n_rows) - 2 * naive[j]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ColumnCounterTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 64, 65, 1000, 10000),
                       // 1/3: classic row-at-a-time rippling; 4/6/8: the
                       // Harley-Seal 8-row pipeline at several capacities.
                       ::testing::Values<std::size_t>(1, 3, 4, 6, 8),
                       // Around flush and 8-row group boundaries for every
                       // plane count:
                       ::testing::Values<std::size_t>(0, 1, 2, 7, 8, 9, 15, 16, 17, 62, 63, 64,
                                                      127, 200)));

TEST(ColumnCounter, AddXorMatchesMaterializedXor) {
    // The fused encoder kernel: add_xor(a, b) must be exactly add(a ^ b),
    // across flush boundaries and for widths with a partial tail word.
    for (const std::size_t n_bits : {std::size_t{1}, std::size_t{64}, std::size_t{65},
                                     std::size_t{1000}, std::size_t{4096}}) {
        Xoshiro256ss rng(1234 + n_bits);
        ColumnCounter fused(n_bits);
        ColumnCounter materialized(n_bits);
        std::vector<Word> product(bits::word_count(n_bits));
        for (std::size_t r = 0; r < 130; ++r) {  // crosses the 63-row flush
            const auto a = random_row(n_bits, rng);
            const auto b = random_row(n_bits, rng);
            fused.add_xor(a, b);
            bits::xor_into(product, a, b);
            materialized.add(product);
        }
        EXPECT_EQ(fused.rows_added(), 130u);

        std::vector<std::int32_t> fused_counts(n_bits, 0);
        std::vector<std::int32_t> materialized_counts(n_bits, 0);
        fused.counts_into(fused_counts);
        materialized.counts_into(materialized_counts);
        EXPECT_EQ(fused_counts, materialized_counts) << "n_bits=" << n_bits;
    }
}

TEST(ColumnCounter, AddXorInterleavesWithAdd) {
    const std::size_t n_bits = 200;
    Xoshiro256ss rng(77);
    ColumnCounter counter(n_bits);
    std::vector<std::int32_t> naive(n_bits, 0);
    std::vector<Word> product(bits::word_count(n_bits));
    for (std::size_t r = 0; r < 70; ++r) {
        const auto a = random_row(n_bits, rng);
        if (r % 3 == 0) {
            const auto b = random_row(n_bits, rng);
            counter.add_xor(a, b);
            bits::xor_into(product, a, b);
            hdlock::util::naive_accumulate(product, n_bits, naive);
        } else {
            counter.add(a);
            hdlock::util::naive_accumulate(a, n_bits, naive);
        }
    }
    std::vector<std::int32_t> counts(n_bits, 0);
    counter.counts_into(counts);
    EXPECT_EQ(counts, naive);
}

TEST(ColumnCounter, AddXorRejectsWidthMismatch) {
    ColumnCounter counter(100);
    const std::vector<Word> good(bits::word_count(100), 0);
    const std::vector<Word> bad(5, 0);
    EXPECT_THROW(counter.add_xor(bad, good), ContractViolation);
    EXPECT_THROW(counter.add_xor(good, bad), ContractViolation);
}

TEST(ColumnCounter, UsableAfterCountsInto) {
    // counts_into() flushes but must not lose state: adding more rows after a
    // read continues the same accumulation.
    const std::size_t n_bits = 300;
    Xoshiro256ss rng(5);
    ColumnCounter counter(n_bits);
    std::vector<std::int32_t> naive(n_bits, 0);

    for (int r = 0; r < 10; ++r) {
        const auto row = random_row(n_bits, rng);
        counter.add(row);
        hdlock::util::naive_accumulate(row, n_bits, naive);
    }
    std::vector<std::int32_t> counts(n_bits, 0);
    counter.counts_into(counts);
    EXPECT_EQ(counts, naive);

    for (int r = 0; r < 75; ++r) {
        const auto row = random_row(n_bits, rng);
        counter.add(row);
        hdlock::util::naive_accumulate(row, n_bits, naive);
    }
    counter.counts_into(counts);
    EXPECT_EQ(counts, naive);
    EXPECT_EQ(counter.rows_added(), 85u);
}

TEST(ColumnCounter, ResetClearsEverything) {
    const std::size_t n_bits = 128;
    Xoshiro256ss rng(6);
    ColumnCounter counter(n_bits);
    for (int r = 0; r < 20; ++r) counter.add(random_row(n_bits, rng));
    counter.reset();
    EXPECT_EQ(counter.rows_added(), 0u);

    std::vector<std::int32_t> counts(n_bits, -1);
    counter.counts_into(counts);
    for (const auto c : counts) EXPECT_EQ(c, 0);
}

TEST(ColumnCounter, AllOnesAndAllZeros) {
    const std::size_t n_bits = 100;
    ColumnCounter counter(n_bits);
    std::vector<Word> ones(bits::word_count(n_bits), ~Word{0});
    ones.back() &= bits::tail_mask(n_bits);
    std::vector<Word> zeros(bits::word_count(n_bits), 0);

    for (int r = 0; r < 130; ++r) counter.add(ones);   // crosses a flush boundary
    for (int r = 0; r < 5; ++r) counter.add(zeros);

    std::vector<std::int32_t> counts(n_bits, 0);
    counter.counts_into(counts);
    for (const auto c : counts) EXPECT_EQ(c, 130);
}

TEST(ColumnCounter, ContractViolations) {
    EXPECT_THROW(ColumnCounter(0), ContractViolation);
    // Plane counts are a user-facing configuration knob, so an out-of-range
    // value (0 especially) is a named ConfigError, not a contract macro.
    EXPECT_THROW(ColumnCounter(10, 0), ConfigError);
    EXPECT_THROW(ColumnCounter(10, 17), ConfigError);

    ColumnCounter counter(100);
    std::vector<Word> wrong_width(5, 0);
    EXPECT_THROW(counter.add(wrong_width), ContractViolation);
    std::vector<std::int32_t> wrong_counts(50, 0);
    EXPECT_THROW(counter.counts_into(wrong_counts), ContractViolation);
}
