// Tests for the failpoint registry (src/util/fault_inject.*): the enable
// gates, arm/skip/count accounting, ScopedFault hygiene, and the crash-safe
// atomic_file_write seam the bundle failpoints hook into.

#include "util/fault_inject.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace {

using namespace hdlock;
namespace fault = util::fault;

std::filesystem::path temp_path(const std::string& name) {
    return std::filesystem::temp_directory_path() / name;
}

std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Each test leaves the process-global registry exactly as it found it.
class FaultInject : public ::testing::Test {
protected:
    void TearDown() override {
        fault::reset();
        fault::force_enable(false);
    }
};

TEST_F(FaultInject, DisarmedPointsNeverFire) {
    EXPECT_FALSE(fault::should_fail("nothing.armed.here"));
    fault::force_enable(true);
    EXPECT_TRUE(fault::enabled());
    EXPECT_FALSE(fault::should_fail("nothing.armed.here"));
}

TEST_F(FaultInject, ArmedPointNeedsTheEnableGate) {
    // arm() without the env/force gate: the probe must stay cold — a stray
    // armed name cannot perturb a production process.
    fault::arm("gate.test", 1);
    if (!fault::enabled()) {
        EXPECT_FALSE(fault::should_fail("gate.test"));
        fault::force_enable(true);
    }
    EXPECT_TRUE(fault::should_fail("gate.test"));
}

TEST_F(FaultInject, CountAndSkipBudgetsAreExact) {
    fault::force_enable(true);
    fault::arm("budget.test", /*count=*/2, /*skip=*/3);
    // Three skipped hits, two failures, then permanently exhausted.
    for (int i = 0; i < 3; ++i) EXPECT_FALSE(fault::should_fail("budget.test"));
    EXPECT_TRUE(fault::should_fail("budget.test"));
    EXPECT_TRUE(fault::should_fail("budget.test"));
    EXPECT_FALSE(fault::should_fail("budget.test"));
    EXPECT_EQ(fault::hit_count("budget.test"), 2u);
}

TEST_F(FaultInject, ScopedFaultDisarmsOnExit) {
    {
        fault::ScopedFault guard(fault::kSwapValidate);
        EXPECT_TRUE(fault::enabled());
        EXPECT_TRUE(fault::should_fail(fault::kSwapValidate));
        EXPECT_EQ(guard.hits(), 1u);
    }
    EXPECT_FALSE(fault::should_fail(fault::kSwapValidate));
}

// ---------------------------------------------------------------------------
// The atomic_file_write seam: every injected filesystem failure must leave
// the previous file intact and no temp debris behind.
// ---------------------------------------------------------------------------

class AtomicFileWrite : public FaultInject {};

TEST_F(AtomicFileWrite, WritesAndRenamesOnTheHappyPath) {
    const auto path = temp_path("hdlock_atomic_write_ok.bin");
    util::atomic_file_write(path, [](util::BinaryWriter& writer) {
        writer.write_tag("GOOD");
        writer.write_u64(42);
    });
    EXPECT_EQ(read_file(path).substr(0, 4), "GOOD");
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
    std::filesystem::remove(path);
}

TEST_F(AtomicFileWrite, EveryInjectedFaultPreservesThePreviousFile) {
    const auto path = temp_path("hdlock_atomic_write_fault.bin");
    util::atomic_file_write(path, [](util::BinaryWriter& writer) { writer.write_tag("OLD1"); });
    const std::string before = read_file(path);

    for (const auto point :
         {fault::kBundleShortWrite, fault::kBundleFsync, fault::kBundleRename}) {
        fault::ScopedFault guard(point);
        EXPECT_THROW(util::atomic_file_write(
                         path, [](util::BinaryWriter& writer) { writer.write_tag("NEW1"); }),
                     IoError)
            << "failpoint " << point;
        EXPECT_EQ(guard.hits(), 1u) << "failpoint " << point;
        // The previous artifact is untouched and the temp was cleaned up.
        EXPECT_EQ(read_file(path), before) << "failpoint " << point;
        EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp")) << "failpoint " << point;
    }

    // With the faults gone the same write goes through.
    util::atomic_file_write(path, [](util::BinaryWriter& writer) { writer.write_tag("NEW1"); });
    EXPECT_EQ(read_file(path).substr(0, 4), "NEW1");
    std::filesystem::remove(path);
}

TEST_F(AtomicFileWrite, BareFilenameTargetsTheWorkingDirectory) {
    // The parent-directory fsync must cope with a path that has no parent.
    const std::string name = "hdlock_atomic_write_bare.bin";
    util::atomic_file_write(name, [](util::BinaryWriter& writer) { writer.write_tag("BARE"); });
    EXPECT_EQ(read_file(name).substr(0, 4), "BARE");
    std::filesystem::remove(name);
}

}  // namespace
