// Tests for the scrubbing primitives behind the move-only LockKey:
// secure_zero and SecureVector.  The central claim — bytes are gone after
// clear()/move-out — is observable without UB because SecureVector::clear()
// retains the allocation: data() stays valid at size() == 0.

#include "util/secure_mem.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <utility>

namespace {

using hdlock::util::secure_zero;
using hdlock::util::SecureVector;

struct Record {
    std::uint32_t a = 0;
    std::uint32_t b = 0;

    bool operator==(const Record& other) const = default;
};

TEST(SecureZero, OverwritesEveryByte) {
    std::array<unsigned char, 64> buffer;
    buffer.fill(0xAB);
    secure_zero(buffer.data(), buffer.size());
    for (unsigned char byte : buffer) EXPECT_EQ(byte, 0);
}

TEST(SecureZero, ZeroBytesIsANoOp) {
    unsigned char sentinel = 0x5C;
    secure_zero(&sentinel, 0);
    EXPECT_EQ(sentinel, 0x5C);
}

TEST(SecureVector, PushBackIndexIterate) {
    SecureVector<Record> v;
    EXPECT_TRUE(v.empty());
    for (std::uint32_t i = 0; i < 20; ++i) v.push_back({i, i * 2});
    ASSERT_EQ(v.size(), 20u);
    EXPECT_EQ(v[7].b, 14u);
    std::uint32_t sum = 0;
    for (const Record& r : v) sum += r.a;
    EXPECT_EQ(sum, 190u);
}

TEST(SecureVector, ResizeValueInitializesAndShrinkScrubs) {
    SecureVector<Record> v;
    v.resize(4);
    for (const Record& r : v) EXPECT_EQ(r, Record{});
    v[3] = {9, 9};
    v.resize(2);
    ASSERT_GE(v.capacity(), 4u);
    // The shrunk-away slots were scrubbed in place.
    EXPECT_EQ(v.data()[3], Record{});
    v.resize(4);
    EXPECT_EQ(v[3], Record{});
}

TEST(SecureVector, ClearScrubsButKeepsAllocationObservable) {
    SecureVector<Record> v;
    for (std::uint32_t i = 1; i <= 8; ++i) v.push_back({i, ~i});
    const Record* storage = v.data();
    ASSERT_NE(storage, nullptr);

    v.clear();
    EXPECT_EQ(v.size(), 0u);
    EXPECT_GE(v.capacity(), 8u);
    // Same allocation, now all-zero: the wipe is legally observable.
    ASSERT_EQ(v.data(), storage);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(storage[i], Record{});
}

TEST(SecureVector, MoveTransfersStorageAndEmptiesSource) {
    SecureVector<Record> source;
    source.push_back({1, 2});
    source.push_back({3, 4});
    const Record* storage = source.data();

    SecureVector<Record> target(std::move(source));
    EXPECT_EQ(target.data(), storage);  // no copy: same allocation
    ASSERT_EQ(target.size(), 2u);
    EXPECT_EQ(target[1], (Record{3, 4}));
    EXPECT_EQ(source.size(), 0u);       // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(source.data(), nullptr);  // nothing left behind to leak

    SecureVector<Record> assigned;
    assigned.push_back({9, 9});
    assigned = std::move(target);
    ASSERT_EQ(assigned.size(), 2u);
    EXPECT_EQ(assigned[0], (Record{1, 2}));
}

TEST(SecureVector, CopyIsIndependent) {
    SecureVector<Record> a;
    a.push_back({5, 6});
    SecureVector<Record> b(a);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_NE(b.data(), a.data());
    b[0] = {7, 8};
    EXPECT_EQ(a[0], (Record{5, 6}));
    EXPECT_FALSE(a == b);
    b = a;
    EXPECT_TRUE(a == b);
}

TEST(SecureVector, RegrowPreservesContents) {
    SecureVector<Record> v;
    for (std::uint32_t i = 0; i < 100; ++i) v.push_back({i, i});
    ASSERT_EQ(v.size(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], (Record{i, i}));
}

}  // namespace
