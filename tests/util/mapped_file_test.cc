// Tests for util::MappedFile (src/util/mapped_file.*) and the span-backed
// BinaryReader it feeds: byte-for-byte agreement between the mmap and the
// buffered-read fallback, the 64-byte alignment contract, and the
// view/align primitives of the serialization layer.

#include "util/mapped_file.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace {

using namespace hdlock;

std::filesystem::path temp_path(const std::string& name) {
    return std::filesystem::temp_directory_path() / name;
}

void write_file(const std::filesystem::path& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

TEST(MappedFile, MappedAndBufferedAgreeByteForByte) {
    const auto path = temp_path("hdlock_mapped_file_test.bin");
    std::string contents(100000, '\0');
    for (std::size_t i = 0; i < contents.size(); ++i) {
        contents[i] = static_cast<char>((i * 31 + 7) & 0xFF);
    }
    write_file(path, contents);

    const auto mapped = util::MappedFile::open(path);
    const auto buffered = util::MappedFile::open_buffered(path);
    EXPECT_FALSE(buffered.is_mapped());
    ASSERT_EQ(mapped.size(), contents.size());
    ASSERT_EQ(buffered.size(), contents.size());
    EXPECT_EQ(std::memcmp(mapped.bytes().data(), contents.data(), contents.size()), 0);
    EXPECT_EQ(std::memcmp(buffered.bytes().data(), contents.data(), contents.size()), 0);

    // The alignment contract both modes promise (the v2 word sections
    // reinterpret offsets inside this buffer as 64-bit words).
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(mapped.bytes().data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffered.bytes().data()) % 64, 0u);

    std::filesystem::remove(path);
}

TEST(MappedFile, WillneedAdviceReturnsIdenticalBytes) {
    // MADV_WILLNEED is a pure prefetch hint: the mapping's contents,
    // size, and mode must be indistinguishable from an unadvised open.
    const auto path = temp_path("hdlock_mapped_file_advise_test.bin");
    std::string contents(4096 * 3 + 17, '\0');
    for (std::size_t i = 0; i < contents.size(); ++i) {
        contents[i] = static_cast<char>((i * 131 + 5) & 0xFF);
    }
    write_file(path, contents);

    const auto plain = util::MappedFile::open(path);
    const auto advised = util::MappedFile::open(path, util::MappedFile::Advice::willneed);
    EXPECT_EQ(advised.is_mapped(), plain.is_mapped());
    ASSERT_EQ(advised.size(), contents.size());
    EXPECT_EQ(std::memcmp(advised.bytes().data(), contents.data(), contents.size()), 0);

    std::filesystem::remove(path);
}

TEST(MappedFile, EmptyFileAndMissingFile) {
    const auto path = temp_path("hdlock_mapped_file_empty_test.bin");
    write_file(path, "");
    const auto empty = util::MappedFile::open(path);
    EXPECT_EQ(empty.size(), 0u);
    std::filesystem::remove(path);

    EXPECT_THROW(util::MappedFile::open(temp_path("hdlock_no_such_file.bin")), IoError);
    EXPECT_THROW(util::MappedFile::open_buffered(temp_path("hdlock_no_such_file.bin")), IoError);
}

TEST(MappedFile, MissingFileErrorNamesThePathAndErrno) {
    // Ops triage lives and dies on this message: which file, and why.
    const auto path = temp_path("hdlock_mapped_file_enoent_test.bin");
    for (const bool buffered : {false, true}) {
        try {
            if (buffered) {
                (void)util::MappedFile::open_buffered(path);
            } else {
                (void)util::MappedFile::open(path);
            }
            FAIL() << "open of a missing file must throw (buffered=" << buffered << ")";
        } catch (const IoError& error) {
            const std::string what = error.what();
            EXPECT_NE(what.find(path.string()), std::string::npos) << what;
            EXPECT_NE(what.find("errno"), std::string::npos) << what;
            EXPECT_NE(what.find("No such file"), std::string::npos) << what;
        }
    }
}

TEST(MappedFile, UnreadableFileErrorCarriesPermissionDetail) {
#if defined(__unix__) || defined(__APPLE__)
    if (::geteuid() == 0) {
        GTEST_SKIP() << "running as root: chmod 000 does not make files unreadable";
    }
    const auto path = temp_path("hdlock_mapped_file_unreadable_test.bin");
    write_file(path, "secret");
    std::filesystem::permissions(path, std::filesystem::perms::none);
    try {
        (void)util::MappedFile::open(path);
        FAIL() << "open of an unreadable file must throw";
    } catch (const IoError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find(path.string()), std::string::npos) << what;
        EXPECT_NE(what.find("errno"), std::string::npos) << what;
    }
    std::filesystem::permissions(path, std::filesystem::perms::owner_all);
    std::filesystem::remove(path);
#else
    GTEST_SKIP() << "permission-bit semantics are POSIX-specific";
#endif
}

TEST(MappedFile, ZeroLengthFileRoundTripsThroughBothModes) {
    const auto path = temp_path("hdlock_mapped_file_zero_test.bin");
    write_file(path, "");
    // mmap rejects zero-length mappings, so open() must take the buffered
    // fallback — and both modes must agree on the (empty) contents.
    const auto mapped = util::MappedFile::open(path);
    const auto buffered = util::MappedFile::open_buffered(path);
    EXPECT_EQ(mapped.size(), 0u);
    EXPECT_EQ(buffered.size(), 0u);
    EXPECT_TRUE(mapped.bytes().empty());
    // A reader over the empty mapping reports clean truncation, not UB.
    util::BinaryReader reader(mapped.bytes());
    EXPECT_THROW(reader.read_u32(), FormatError);
    std::filesystem::remove(path);
}

TEST(MappedFile, MoveTransfersOwnership) {
    const auto path = temp_path("hdlock_mapped_file_move_test.bin");
    write_file(path, "hello, mapping");
    auto first = util::MappedFile::open(path);
    const auto* data = first.bytes().data();
    util::MappedFile second(std::move(first));
    EXPECT_EQ(second.bytes().data(), data);
    EXPECT_EQ(first.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from is empty
    util::MappedFile third;
    third = std::move(second);
    EXPECT_EQ(third.size(), 14u);
    std::filesystem::remove(path);
}

TEST(SpanReader, ReadsTheSameValuesAsTheStreamReader) {
    std::ostringstream out(std::ios::binary);
    util::BinaryWriter writer(out);
    writer.write_tag("TST1");
    writer.write_u32(42);
    writer.align_to(64);
    writer.write_u64(0xDEADBEEFCAFEBABEULL);
    const std::string bytes = out.str();
    EXPECT_EQ(bytes.size(), 64u + 8u);  // header padded to one alignment unit

    std::istringstream in(bytes, std::ios::binary);
    util::BinaryReader stream_reader(in);
    util::BinaryReader span_reader(
        std::as_bytes(std::span<const char>(bytes.data(), bytes.size())));
    EXPECT_FALSE(stream_reader.mapped());
    EXPECT_TRUE(span_reader.mapped());

    for (util::BinaryReader* reader : {&stream_reader, &span_reader}) {
        reader->expect_tag("TST1");
        EXPECT_EQ(reader->read_u32(), 42u);
        reader->align_to(64);
        EXPECT_EQ(reader->offset(), 64u);
        EXPECT_EQ(reader->read_u64(), 0xDEADBEEFCAFEBABEULL);
    }
}

TEST(SpanReader, ViewBytesAliasesTheBufferAndChecksBounds) {
    const std::string bytes = "0123456789";
    util::BinaryReader reader(std::as_bytes(std::span<const char>(bytes.data(), bytes.size())));
    const std::byte* view = reader.view_bytes(4);
    EXPECT_EQ(static_cast<const void*>(view), static_cast<const void*>(bytes.data()));
    EXPECT_EQ(reader.offset(), 4u);
    EXPECT_THROW(reader.view_bytes(100), FormatError);

    std::istringstream in(bytes, std::ios::binary);
    util::BinaryReader stream_reader(in);
    EXPECT_THROW(stream_reader.view_bytes(2), ContractViolation);
}

TEST(SpanReader, RejectsNonZeroPaddingAndShortBuffers) {
    std::string padded(64, '\0');
    padded[0] = 'A';  // one payload byte, 63 pad bytes
    padded[10] = 'X';  // corrupt pad
    util::BinaryReader reader(
        std::as_bytes(std::span<const char>(padded.data(), padded.size())));
    reader.view_bytes(1);
    EXPECT_THROW(reader.align_to(64), FormatError);

    util::BinaryReader short_reader(std::as_bytes(std::span<const char>(padded.data(), 3)));
    short_reader.view_bytes(1);
    EXPECT_THROW(short_reader.align_to(64), FormatError);
}

}  // namespace
