// Tests for the packed-bit kernels (src/util/bitvec.*).
//
// rotate() and copy_bits() are the foundation of the paper's permutation
// operator rho_k (Sec. 2), so they are tested exhaustively against naive
// per-bit reference implementations across word-boundary edge cases.

#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bits = hdlock::util::bits;
using hdlock::ContractViolation;
using hdlock::util::Xoshiro256ss;
using bits::Word;

namespace {

std::vector<Word> random_vec(std::size_t n_bits, std::uint64_t seed) {
    std::vector<Word> v(bits::word_count(n_bits));
    Xoshiro256ss rng(seed);
    bits::fill_random(v, n_bits, rng);
    return v;
}

std::vector<bool> unpack(std::span<const Word> words, std::size_t n_bits) {
    std::vector<bool> out(n_bits);
    for (std::size_t i = 0; i < n_bits; ++i) out[i] = bits::get_bit(words, i);
    return out;
}

}  // namespace

TEST(BitVec, WordCount) {
    EXPECT_EQ(bits::word_count(0), 0u);
    EXPECT_EQ(bits::word_count(1), 1u);
    EXPECT_EQ(bits::word_count(64), 1u);
    EXPECT_EQ(bits::word_count(65), 2u);
    EXPECT_EQ(bits::word_count(10000), 157u);
}

TEST(BitVec, TailMask) {
    EXPECT_EQ(bits::tail_mask(64), ~Word{0});
    EXPECT_EQ(bits::tail_mask(128), ~Word{0});
    EXPECT_EQ(bits::tail_mask(1), Word{1});
    EXPECT_EQ(bits::tail_mask(65), Word{1});
    EXPECT_EQ(bits::tail_mask(10), Word{0x3FF});
}

TEST(BitVec, GetSetBit) {
    std::vector<Word> v(3, 0);
    bits::set_bit(v, 0, true);
    bits::set_bit(v, 63, true);
    bits::set_bit(v, 64, true);
    bits::set_bit(v, 191, true);
    EXPECT_TRUE(bits::get_bit(v, 0));
    EXPECT_TRUE(bits::get_bit(v, 63));
    EXPECT_TRUE(bits::get_bit(v, 64));
    EXPECT_TRUE(bits::get_bit(v, 191));
    EXPECT_FALSE(bits::get_bit(v, 1));
    EXPECT_FALSE(bits::get_bit(v, 100));
    bits::set_bit(v, 63, false);
    EXPECT_FALSE(bits::get_bit(v, 63));
    EXPECT_EQ(bits::popcount(v), 3u);
}

TEST(BitVec, FillRandomMasksTail) {
    for (const std::size_t n_bits : {1u, 7u, 63u, 64u, 65u, 100u, 10000u}) {
        const auto v = random_vec(n_bits, 42);
        EXPECT_EQ(v.back() & ~bits::tail_mask(n_bits), Word{0}) << "n_bits=" << n_bits;
    }
}

TEST(BitVec, FillRandomIsBalanced) {
    const std::size_t n_bits = 100000;
    const auto v = random_vec(n_bits, 7);
    const double density = static_cast<double>(bits::popcount(v)) / static_cast<double>(n_bits);
    EXPECT_NEAR(density, 0.5, 0.01);
}

TEST(BitVec, XorMatchesPerBit) {
    const std::size_t n_bits = 517;
    const auto a = random_vec(n_bits, 1);
    const auto b = random_vec(n_bits, 2);
    std::vector<Word> c(a.size());
    bits::xor_into(c, a, b);
    for (std::size_t i = 0; i < n_bits; ++i) {
        EXPECT_EQ(bits::get_bit(c, i), bits::get_bit(a, i) != bits::get_bit(b, i));
    }
}

TEST(BitVec, XorAliasingAllowed) {
    const std::size_t n_bits = 130;
    auto a = random_vec(n_bits, 3);
    const auto b = random_vec(n_bits, 4);
    const auto a_copy = a;
    bits::xor_into(a, a, b);
    std::vector<Word> expect(a.size());
    bits::xor_into(expect, a_copy, b);
    EXPECT_TRUE(bits::equal(a, expect));
}

TEST(BitVec, XorSelfIsZero) {
    const auto a = random_vec(999, 5);
    std::vector<Word> c(a.size());
    bits::xor_into(c, a, a);
    EXPECT_EQ(bits::popcount(c), 0u);
}

TEST(BitVec, NotMasksTail) {
    const std::size_t n_bits = 70;
    const auto a = random_vec(n_bits, 6);
    std::vector<Word> c(a.size());
    bits::not_into(c, a, n_bits);
    for (std::size_t i = 0; i < n_bits; ++i) {
        EXPECT_EQ(bits::get_bit(c, i), !bits::get_bit(a, i));
    }
    EXPECT_EQ(c.back() & ~bits::tail_mask(n_bits), Word{0});
    EXPECT_EQ(bits::popcount(a) + bits::popcount(c), n_bits);
}

TEST(BitVec, HammingMatchesNaive) {
    const std::size_t n_bits = 1000;
    const auto a = random_vec(n_bits, 8);
    const auto b = random_vec(n_bits, 9);
    std::size_t naive = 0;
    for (std::size_t i = 0; i < n_bits; ++i) {
        naive += bits::get_bit(a, i) != bits::get_bit(b, i) ? 1u : 0u;
    }
    EXPECT_EQ(bits::hamming(a, b), naive);
    EXPECT_EQ(bits::hamming(a, a), 0u);
}

TEST(BitVec, CollectSetBits) {
    std::vector<Word> v(2, 0);
    bits::set_bit(v, 3, true);
    bits::set_bit(v, 64, true);
    bits::set_bit(v, 99, true);
    std::vector<std::uint32_t> out;
    bits::collect_set_bits(v, 100, out);
    EXPECT_EQ(out, (std::vector<std::uint32_t>{3, 64, 99}));
}

TEST(BitVec, CollectSetBitsRespectsNBits) {
    std::vector<Word> v(2, ~Word{0});  // deliberately dirty tail
    std::vector<std::uint32_t> out;
    bits::collect_set_bits(v, 70, out);
    EXPECT_EQ(out.size(), 70u);
    EXPECT_EQ(out.front(), 0u);
    EXPECT_EQ(out.back(), 69u);
}

// ---------------------------------------------------------------------------
// copy_bits: compare against a per-bit reference over randomized offsets.
// ---------------------------------------------------------------------------

struct CopyCase {
    std::size_t dst_bits;
    std::size_t src_bits;
    std::size_t dst_off;
    std::size_t src_off;
    std::size_t len;
};

class CopyBitsTest : public ::testing::TestWithParam<CopyCase> {};

TEST_P(CopyBitsTest, MatchesPerBitReference) {
    const auto& c = GetParam();
    const auto src = random_vec(c.src_bits, 11);
    auto dst = random_vec(c.dst_bits, 12);
    auto expect = unpack(dst, c.dst_bits);
    const auto src_bits_v = unpack(src, c.src_bits);
    for (std::size_t i = 0; i < c.len; ++i) expect[c.dst_off + i] = src_bits_v[c.src_off + i];

    bits::copy_bits(dst, c.dst_off, src, c.src_off, c.len);
    EXPECT_EQ(unpack(dst, c.dst_bits), expect);
}

INSTANTIATE_TEST_SUITE_P(
    EdgeCases, CopyBitsTest,
    ::testing::Values(CopyCase{128, 128, 0, 0, 128},    // full aligned copy
                      CopyCase{128, 128, 1, 0, 127},    // dst shifted
                      CopyCase{128, 128, 0, 1, 127},    // src shifted
                      CopyCase{200, 200, 13, 57, 100},  // both misaligned
                      CopyCase{200, 200, 63, 64, 65},   // word boundary straddles
                      CopyCase{64, 64, 10, 20, 1},      // single bit
                      CopyCase{64, 64, 0, 0, 64},       // exactly one word
                      CopyCase{70, 70, 5, 0, 65},       // crosses into tail word
                      CopyCase{300, 150, 150, 3, 140},  // different sizes
                      CopyCase{100, 100, 99, 0, 1}));   // last bit

TEST(CopyBits, RandomizedAgainstReference) {
    Xoshiro256ss rng(123);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.next_below(300);
        const auto src = random_vec(n, 1000 + static_cast<std::uint64_t>(trial));
        auto dst = random_vec(n, 2000 + static_cast<std::uint64_t>(trial));
        const std::size_t len = rng.next_below(n + 1);
        const std::size_t src_off = len == n ? 0 : rng.next_below(n - len + 1);
        const std::size_t dst_off = len == n ? 0 : rng.next_below(n - len + 1);

        auto expect = unpack(dst, n);
        const auto src_v = unpack(src, n);
        for (std::size_t i = 0; i < len; ++i) expect[dst_off + i] = src_v[src_off + i];

        if (len > 0) bits::copy_bits(dst, dst_off, src, src_off, len);
        EXPECT_EQ(unpack(dst, n), expect) << "trial=" << trial << " n=" << n;
    }
}

TEST(CopyBits, ContractViolations) {
    std::vector<Word> a(2), b(2);
    EXPECT_THROW(bits::copy_bits(a, 100, b, 0, 64), ContractViolation);
    EXPECT_THROW(bits::copy_bits(a, 0, b, 100, 64), ContractViolation);
    EXPECT_THROW(bits::copy_bits(a, 0, a, 64, 64), ContractViolation);
}

// ---------------------------------------------------------------------------
// rotate: the paper's rho_k permutation.
// ---------------------------------------------------------------------------

class RotateTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RotateTest, MatchesNaiveForManyShifts) {
    const std::size_t n_bits = GetParam();
    const auto src = random_vec(n_bits, 21);
    const auto src_v = unpack(src, n_bits);
    std::vector<Word> dst(src.size());

    std::vector<std::size_t> shifts = {0, 1, n_bits / 2, n_bits - 1, n_bits, n_bits + 5, 3 * n_bits + 7};
    if (n_bits > 64) {
        shifts.push_back(63);
        shifts.push_back(64);
        shifts.push_back(65);
    }
    for (const std::size_t k : shifts) {
        bits::rotate(dst, src, n_bits, k);
        for (std::size_t i = 0; i < n_bits; ++i) {
            ASSERT_EQ(bits::get_bit(dst, i), src_v[(i + k) % n_bits])
                << "n_bits=" << n_bits << " k=" << k << " i=" << i;
        }
        EXPECT_EQ(dst.back() & ~bits::tail_mask(n_bits), Word{0});
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RotateTest,
                         ::testing::Values(1, 2, 63, 64, 65, 100, 128, 1000, 10000));

TEST(Rotate, ComposesAdditively) {
    const std::size_t n = 777;
    const auto src = random_vec(n, 31);
    std::vector<Word> once(src.size()), twice(src.size()), direct(src.size());
    bits::rotate(once, src, n, 123);
    bits::rotate(twice, once, n, 456);
    bits::rotate(direct, src, n, 579);
    EXPECT_TRUE(bits::equal(twice, direct));
}

TEST(Rotate, FullRotationIsIdentity) {
    const std::size_t n = 10000;
    const auto src = random_vec(n, 32);
    std::vector<Word> dst(src.size());
    bits::rotate(dst, src, n, n);
    EXPECT_TRUE(bits::equal(dst, src));
}

TEST(Rotate, InverseRestoresOriginal) {
    const std::size_t n = 999;
    const auto src = random_vec(n, 33);
    std::vector<Word> fwd(src.size()), back(src.size());
    bits::rotate(fwd, src, n, 217);
    bits::rotate(back, fwd, n, n - 217);
    EXPECT_TRUE(bits::equal(back, src));
}

TEST(Rotate, PreservesPopcount) {
    const std::size_t n = 4097;
    const auto src = random_vec(n, 34);
    std::vector<Word> dst(src.size());
    bits::rotate(dst, src, n, 1234);
    EXPECT_EQ(bits::popcount(dst), bits::popcount(src));
}

TEST(Rotate, PreservesPairwiseHamming) {
    // rho_k applied to both vectors must preserve the Hamming distance: this
    // is what makes permuted base hypervectors behave like fresh random HVs.
    const std::size_t n = 2048;
    const auto a = random_vec(n, 35);
    const auto b = random_vec(n, 36);
    std::vector<Word> ra(a.size()), rb(b.size());
    bits::rotate(ra, a, n, 500);
    bits::rotate(rb, b, n, 500);
    EXPECT_EQ(bits::hamming(ra, rb), bits::hamming(a, b));
}

TEST(Rotate, ContractViolations) {
    std::vector<Word> a(2), b(2);
    EXPECT_THROW(bits::rotate(a, a, 100, 3), ContractViolation);
    EXPECT_THROW(bits::rotate(a, b, 0, 3), ContractViolation);
    EXPECT_THROW(bits::rotate(a, b, 1000, 3), ContractViolation);
}
