// Tests for the in-process shard router (src/api/shard_router.*): placement
// parsing and option clamping, bit-identity across shard counts and
// placement policies, admission control past the watermark, deadline and
// cancellation outcomes, and construction from copied and mapped bundles.
// Suite names all start with Router so the TSan CI job's gtest filter
// (InferenceSession*:SubmitQueue*:Router*) picks them up.

#include "api/shard_router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <future>
#include <optional>
#include <vector>

#include "api/facades.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace hdlock;

struct Fixture {
    data::SyntheticBenchmark data;
    api::Owner owner;
};

Fixture make_fixture() {
    data::SyntheticSpec spec;
    spec.name = "router";
    spec.n_features = 24;
    spec.n_classes = 4;
    spec.n_train = 160;
    spec.n_test = 96;
    spec.n_levels = 8;
    spec.noise = 0.1;
    spec.seed = 5;
    auto data = data::make_benchmark(spec);

    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = spec.n_features;
    config.n_levels = spec.n_levels;
    config.n_layers = 2;
    config.seed = 23;
    api::Owner owner = api::Owner::provision(config);
    owner.train(data.train);
    return Fixture{std::move(data), std::move(owner)};
}

/// `n` rows of the test pool starting at `begin` (wrapping), as one request.
util::Matrix<float> slice_rows(const util::Matrix<float>& pool, std::size_t begin,
                               std::size_t n) {
    util::Matrix<float> rows(n, pool.cols());
    for (std::size_t r = 0; r < n; ++r) {
        const auto source = pool.row((begin + r) % pool.rows());
        std::copy(source.begin(), source.end(), rows.row(r).begin());
    }
    return rows;
}

}  // namespace

TEST(RouterOptions, PlacementNamesRoundTrip) {
    for (const api::Placement placement :
         {api::Placement::round_robin, api::Placement::least_loaded,
          api::Placement::consistent_hash}) {
        const auto parsed = api::parse_placement(api::placement_name(placement));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, placement);
    }
    EXPECT_EQ(api::parse_placement("tarot-cards"), std::nullopt);
    EXPECT_EQ(api::parse_placement(""), std::nullopt);
}

TEST(RouterOptions, ShardCountAndWatermarkClampToSaneDefaults) {
    const Fixture fixture = make_fixture();
    api::RouterOptions options;
    options.n_shards = 0;  // clamped to one shard
    options.session.max_queue_rows = 32;
    const api::ShardRouter router = fixture.owner.open_router(options);
    EXPECT_EQ(router.n_shards(), 1u);
    // Unset watermark defaults to the fleet's total queue capacity.
    EXPECT_EQ(router.shed_watermark_rows(), 32u);
}

TEST(RouterBitIdentity, ShardCountAndPlacementNeverChangeLabels) {
    const Fixture fixture = make_fixture();
    const util::Matrix<float>& pool = fixture.data.test.X;
    const std::vector<int> expected = fixture.owner.open_session().predict(pool);
    constexpr std::size_t kRowsPerRequest = 8;
    constexpr std::size_t kRequests = 24;

    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        for (const api::Placement placement :
             {api::Placement::round_robin, api::Placement::least_loaded,
              api::Placement::consistent_hash}) {
            api::RouterOptions options;
            options.n_shards = shards;
            options.placement = placement;
            const api::ShardRouter router = fixture.owner.open_router(options);

            std::vector<std::future<api::Response>> inflight;
            inflight.reserve(kRequests);
            for (std::size_t i = 0; i < kRequests; ++i) {
                api::Request request;
                request.rows = slice_rows(pool, i * kRowsPerRequest, kRowsPerRequest);
                if (placement == api::Placement::consistent_hash) {
                    request.shard_key = i % 6;
                }
                inflight.push_back(router.submit(std::move(request)));
            }
            for (std::size_t i = 0; i < inflight.size(); ++i) {
                const api::Response response = inflight[i].get();
                ASSERT_EQ(response.status, api::Status::ok)
                    << shards << " shard(s), " << api::placement_name(placement);
                EXPECT_LT(response.shard_id, shards);
                for (std::size_t r = 0; r < response.labels.size(); ++r) {
                    EXPECT_EQ(response.labels[r],
                              expected[(i * kRowsPerRequest + r) % pool.rows()])
                        << "request " << i << " row " << r << " at " << shards
                        << " shard(s), " << api::placement_name(placement);
                }
            }
            EXPECT_EQ(router.stats().accepted, kRequests);
            EXPECT_EQ(router.stats().shed, 0u);
        }
    }
}

TEST(RouterAdmission, ShedsPastTheWatermarkAndAccountsEveryRequest) {
    const Fixture fixture = make_fixture();
    const util::Matrix<float>& pool = fixture.data.test.X;
    const std::vector<int> expected = fixture.owner.open_session().predict(pool);

    api::RouterOptions options;
    options.n_shards = 1;
    options.session.max_batch = 16;
    options.session.max_queue_rows = 64;
    options.shed_watermark_rows = 16;  // two 8-row requests in flight, tops
    const api::ShardRouter router = fixture.owner.open_router(options);

    constexpr std::size_t kRowsPerRequest = 8;
    constexpr std::size_t kRequests = 200;
    std::vector<std::future<api::Response>> inflight;
    inflight.reserve(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        api::Request request;
        request.rows = slice_rows(pool, i * kRowsPerRequest, kRowsPerRequest);
        inflight.push_back(router.submit(std::move(request)));
    }

    std::size_t ok = 0;
    std::size_t shed = 0;
    for (std::size_t i = 0; i < inflight.size(); ++i) {
        const api::Response response = inflight[i].get();
        if (response.status == api::Status::ok) {
            ++ok;
            for (std::size_t r = 0; r < response.labels.size(); ++r) {
                EXPECT_EQ(response.labels[r],
                          expected[(i * kRowsPerRequest + r) % pool.rows()]);
            }
        } else {
            ASSERT_EQ(response.status, api::Status::overloaded);
            EXPECT_TRUE(response.labels.empty());
            ++shed;
        }
    }
    // Firing 200 requests without harvesting against a 16-row watermark must
    // shed (serving 8 rows is far slower than the submit loop), and every
    // request resolves exactly once as ok or overloaded.
    EXPECT_EQ(ok + shed, kRequests);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(shed, 1u);
    const api::RouterStats stats = router.stats();
    EXPECT_EQ(stats.accepted, ok);
    EXPECT_EQ(stats.shed, shed);
    EXPECT_EQ(router.inflight_rows(), 0u);
}

TEST(RouterDeadlines, QueuedRequestBehindASlowBatchExceedsItsDeadline) {
    const Fixture fixture = make_fixture();
    const util::Matrix<float>& pool = fixture.data.test.X;

    api::RouterOptions options;
    options.n_shards = 1;
    options.session.n_threads = 1;
    options.session.max_batch = 64;          // the plug is popped alone...
    options.session.max_queue_rows = 16384;  // ...and both requests queue freely
    const api::ShardRouter router = fixture.owner.open_router(options);

    // A large plug occupies the single dispatcher for milliseconds; the
    // request queued behind it carries a microsecond budget, so by the time
    // the dispatcher reaches it the deadline has passed and it is dropped
    // before encode.  (If the submit itself outlives the budget, the
    // submit-time check fires instead — same observable outcome.)
    api::Request plug;
    plug.rows = slice_rows(pool, 0, 4096);
    auto plug_future = router.submit(std::move(plug));

    api::Request hurried;
    hurried.rows = slice_rows(pool, 0, 8);
    hurried.deadline = util::Deadline::after(std::chrono::microseconds{1});
    const api::Response late = router.submit(std::move(hurried)).get();
    EXPECT_EQ(late.status, api::Status::deadline_exceeded);
    EXPECT_TRUE(late.labels.empty());

    EXPECT_EQ(plug_future.get().status, api::Status::ok);
}

TEST(RouterCancellation, CancelBeforeDispatchResolvesWithoutServing) {
    const Fixture fixture = make_fixture();
    const util::Matrix<float>& pool = fixture.data.test.X;

    api::RouterOptions options;
    options.n_shards = 1;
    options.session.n_threads = 1;
    options.session.max_batch = 64;
    options.session.max_queue_rows = 16384;
    const api::ShardRouter router = fixture.owner.open_router(options);

    // Cancel fired before submit: short-circuits at admission.
    api::CancelSource early;
    early.request_cancel();
    api::Request never_queued;
    never_queued.rows = slice_rows(pool, 0, 8);
    never_queued.cancel = early.token();
    const api::Response gone = router.submit(std::move(never_queued)).get();
    EXPECT_EQ(gone.status, api::Status::cancelled);
    EXPECT_TRUE(gone.labels.empty());

    // Cancel fired while queued behind a slow plug: the dispatcher drops it
    // before encode.
    api::Request plug;
    plug.rows = slice_rows(pool, 0, 4096);
    auto plug_future = router.submit(std::move(plug));

    api::CancelSource source;
    api::Request queued;
    queued.rows = slice_rows(pool, 0, 8);
    queued.cancel = source.token();
    auto queued_future = router.submit(std::move(queued));
    source.request_cancel();

    EXPECT_EQ(queued_future.get().status, api::Status::cancelled);
    EXPECT_EQ(plug_future.get().status, api::Status::ok);
}

TEST(RouterBundles, ServesFromCopiedAndMappedBundles) {
    const Fixture fixture = make_fixture();
    const util::Matrix<float>& pool = fixture.data.test.X;
    const std::vector<int> expected = fixture.owner.open_session().predict(pool);
    const auto path =
        std::filesystem::temp_directory_path() / "hdlock_router_bundle_test.hdlk";
    fixture.owner.export_device(path);

    const auto roundtrip = [&](const api::ShardRouter& router) {
        std::vector<std::future<api::Response>> inflight;
        for (std::size_t i = 0; i < 12; ++i) {
            api::Request request;
            request.rows = slice_rows(pool, i * 8, 8);
            inflight.push_back(router.submit(std::move(request)));
        }
        for (std::size_t i = 0; i < inflight.size(); ++i) {
            const api::Response response = inflight[i].get();
            ASSERT_EQ(response.status, api::Status::ok);
            for (std::size_t r = 0; r < response.labels.size(); ++r) {
                EXPECT_EQ(response.labels[r], expected[(i * 8 + r) % pool.rows()]);
            }
        }
    };

    {
        // Copying load: each shard copies discretizer + model, shares the
        // sealed encoder.
        const api::Device device = api::Device::load(path);
        roundtrip(device.open_router({.n_shards = 2}));
    }
    {
        // Mapped load: all shards serve out of one shared mapping, and the
        // sessions anchor it even after the Device goes out of scope.
        const api::ShardRouter router =
            api::Device::open_mapped(path).open_router({.n_shards = 2});
        roundtrip(router);
    }
    std::filesystem::remove(path);
}
