// Tests for the privilege-separated facades (src/api/facades.*): Owner
// lifecycle (provision/train/save/load/audit/rotate/export) and the Device's
// key-free surface.

#include "api/facades.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <type_traits>

#include "data/synthetic.hpp"

namespace {

using namespace hdlock;

data::SyntheticBenchmark benchmark() {
    data::SyntheticSpec spec;
    spec.name = "facades";
    spec.n_features = 20;
    spec.n_classes = 3;
    spec.n_train = 150;
    spec.n_test = 60;
    spec.n_levels = 4;
    spec.noise = 0.12;
    spec.seed = 19;
    return data::make_benchmark(spec);
}

api::Owner trained_owner() {
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 20;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 23;
    api::Owner owner = api::Owner::provision(config);
    owner.train(benchmark().train);
    return owner;
}

}  // namespace

// The type-level boundary: a SealedEncoder handed out by a Device exposes
// only the hdc::Encoder interface — no key(), store() or feature_hv()
// members exist on it (LockedEncoder has all three).
static_assert(!std::is_base_of_v<LockedEncoder, api::SealedEncoder>,
              "the device encoder must not inherit the privileged accessors");

TEST(OwnerFacade, ProvisionTrainEvaluate) {
    const auto data = benchmark();
    api::Owner owner = api::Owner::provision([] {
        DeploymentConfig config;
        config.dim = 1024;
        config.n_features = 20;
        config.n_levels = 4;
        config.n_layers = 2;
        config.seed = 23;
        return config;
    }());
    EXPECT_FALSE(owner.trained());
    EXPECT_THROW(owner.model(), ContractViolation);

    const double train_accuracy = owner.train(data.train);
    EXPECT_TRUE(owner.trained());
    EXPECT_GT(train_accuracy, 0.8);
    EXPECT_GT(owner.evaluate(data.test), 0.8);
    EXPECT_TRUE(owner.audit().ok());
}

TEST(OwnerFacade, SaveLoadRoundTripPreservesBehaviour) {
    const auto data = benchmark();
    const api::Owner owner = trained_owner();
    const auto path = std::filesystem::temp_directory_path() / "hdlock_facade_owner.hdlk";
    owner.save(path);
    const api::Owner restored = api::Owner::load(path);
    std::filesystem::remove(path);

    EXPECT_EQ(restored.key(), owner.key());
    EXPECT_EQ(restored.value_mapping(), owner.value_mapping());
    EXPECT_TRUE(restored.trained());
    for (std::size_t s = 0; s < data.test.n_samples(); ++s) {
        EXPECT_EQ(restored.predict_row(data.test.X.row(s)), owner.predict_row(data.test.X.row(s)));
    }
}

TEST(OwnerFacade, DeviceMatchesOwnerPredictions) {
    const auto data = benchmark();
    const api::Owner owner = trained_owner();
    const api::Device device = owner.make_device();

    ASSERT_TRUE(device.can_serve());
    const auto batch = device.predict(data.test.X);
    for (std::size_t s = 0; s < data.test.n_samples(); ++s) {
        EXPECT_EQ(batch[s], owner.predict_row(data.test.X.row(s)));
    }
    EXPECT_DOUBLE_EQ(device.evaluate(data.test), owner.evaluate(data.test));
}

TEST(OwnerFacade, ExportedDeviceFileRoundTrips) {
    const auto data = benchmark();
    const api::Owner owner = trained_owner();
    const auto path = std::filesystem::temp_directory_path() / "hdlock_facade_device.hdlk";
    owner.export_device(path);
    const api::Device device = api::Device::load(path);

    // The same path must refuse to masquerade as an owner.
    EXPECT_THROW(api::Owner::load(path), FormatError);
    std::filesystem::remove(path);

    EXPECT_DOUBLE_EQ(device.evaluate(data.test), owner.evaluate(data.test));
}

TEST(OwnerFacade, RotateKeyChangesEncodingsAndDropsModel) {
    api::Owner owner = trained_owner();
    const LockKey before = owner.key().clone();
    const std::vector<int> probe(20, 1);
    const auto encoding_before = owner.encoder()->encode(probe);

    owner.rotate_key(/*seed=*/777);
    EXPECT_NE(owner.key(), before);
    EXPECT_TRUE(owner.audit().ok());
    EXPECT_NE(owner.encoder()->encode(probe), encoding_before);
    // The old model was fitted against the old feature hypervectors.
    EXPECT_FALSE(owner.trained());

    // Retraining restores a servable deployment.
    const auto data = benchmark();
    owner.train(data.train);
    EXPECT_GT(owner.evaluate(data.test), 0.8);
}

TEST(DeviceFacade, UntrainedExportCannotServeButStillEncodes) {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 10;
    config.n_levels = 4;
    config.n_layers = 1;
    const api::Owner owner = api::Owner::provision(config);
    const api::Device device = owner.make_device();

    EXPECT_FALSE(device.can_serve());
    EXPECT_THROW(device.open_session(), ContractViolation);
    // Encoding (the attack surface) still works without a model.
    const std::vector<int> levels(10, 0);
    EXPECT_EQ(device.encoder().encode(levels), owner.encoder()->encode(levels));
}

TEST(DeviceFacade, EncoderIsTheSealedBaseInterface) {
    const api::Owner owner = trained_owner();
    const api::Device device = owner.make_device();
    // The exposed encoder is an hdc::Encoder; dynamic_cast back to the
    // privileged owner-side type must fail — there is no LockedEncoder (and
    // hence no key) anywhere behind the device facade.
    const hdc::Encoder* encoder = &device.encoder();
    EXPECT_EQ(dynamic_cast<const LockedEncoder*>(encoder), nullptr);
    EXPECT_NE(dynamic_cast<const api::SealedEncoder*>(encoder), nullptr);
}
