// Tests for epoch-versioned key rotation: api::Owner::rotate, the
// epoch-carrying `.hdlk` v3 header, crash-safe save_atomic under injected
// filesystem faults, and the RCU hot swap (InferenceSession::swap_bundle /
// ShardRouter::swap_all) with its rollback and keep-serving guarantees.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/bundle.hpp"
#include "api/facades.hpp"
#include "api/inference_session.hpp"
#include "api/shard_router.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/fault_inject.hpp"

namespace {

using namespace hdlock;
namespace fault = util::fault;

DeploymentConfig small_config() {
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 16;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 31;
    return config;
}

data::SyntheticBenchmark small_benchmark() {
    data::SyntheticSpec spec;
    spec.name = "rotation";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 60;
    spec.n_levels = 4;
    spec.seed = 8;
    return data::make_benchmark(spec);
}

api::Owner trained_owner() {
    api::Owner owner = api::Owner::provision(small_config());
    owner.train(small_benchmark().train);
    return owner;
}

std::filesystem::path temp_path(const std::string& name) {
    return std::filesystem::temp_directory_path() / name;
}

std::string read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Failpoint hygiene: no test leaves the process-global registry armed.
class Rotation : public ::testing::Test {
protected:
    void TearDown() override {
        fault::reset();
        fault::force_enable(false);
    }
};

TEST_F(Rotation, RotateBumpsEpochAndRetrains) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    ASSERT_EQ(owner.epoch(), 0u);
    const std::vector<int> before = owner.predict(benchmark.test.X);

    api::RotateOptions options;
    options.seed = 77;
    const api::RotationReport report = owner.rotate(benchmark.train, options);
    EXPECT_EQ(report.previous_epoch, 0u);
    EXPECT_EQ(report.epoch, 1u);
    EXPECT_EQ(owner.epoch(), 1u);
    EXPECT_GT(report.train_accuracy, 0.5);
    ASSERT_TRUE(owner.trained());

    // The rotated deployment serves, and serves comparably: same synthetic
    // task, fresh key, retrained model.
    const std::vector<int> after = owner.predict(benchmark.test.X);
    EXPECT_EQ(after.size(), before.size());

    // A second rotation keeps counting.
    EXPECT_EQ(owner.rotate(benchmark.train, options).epoch, 2u);
}

TEST_F(Rotation, RotateKeyAloneAlsoBumpsTheEpoch) {
    api::Owner owner = trained_owner();
    owner.rotate_key(99);
    EXPECT_EQ(owner.epoch(), 1u);
    EXPECT_FALSE(owner.trained());  // model discarded; retrain before serving
}

TEST_F(Rotation, EpochRoundTripsThroughV3AndDefaultsToZeroForV2) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    owner.rotate(benchmark.train);
    ASSERT_EQ(owner.epoch(), 1u);

    // v3 (current) round-trip keeps the epoch, for both bundle kinds.
    const auto owner_path = temp_path("hdlock_rotation_owner_v3.hdlk");
    const auto device_path = temp_path("hdlock_rotation_device_v3.hdlk");
    owner.save_atomic(owner_path);
    owner.export_device_atomic(device_path);
    EXPECT_EQ(api::Owner::load(owner_path).epoch(), 1u);
    EXPECT_EQ(api::Device::load(device_path).epoch(), 1u);
    EXPECT_EQ(api::Device::open_mapped(device_path).epoch(), 1u);

    // A v2 writer cannot represent the epoch: the compat path loads it as
    // epoch 0 (pre-rotation artifacts are generation zero by definition).
    const auto v2_path = temp_path("hdlock_rotation_owner_v2.hdlk");
    {
        std::ofstream out(v2_path, std::ios::binary);
        util::BinaryWriter writer(out);
        owner.to_bundle().save_v2(writer);
    }
    EXPECT_EQ(api::DeploymentBundle::load_any(v2_path).epoch, 0u);
    EXPECT_EQ(api::Owner::load(v2_path).epoch(), 0u);

    std::filesystem::remove(owner_path);
    std::filesystem::remove(device_path);
    std::filesystem::remove(v2_path);
}

TEST_F(Rotation, ResponsesCarryTheSessionEpoch) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    owner.rotate(benchmark.train);

    const api::InferenceSession session = owner.open_session();
    EXPECT_EQ(session.epoch(), 1u);
    api::Request request;
    request.rows = benchmark.test.X;
    const api::Response response = session.predict_async(std::move(request)).get();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.epoch, 1u);

    const api::ShardRouter router = owner.open_router();
    api::Request routed;
    routed.rows = benchmark.test.X;
    EXPECT_EQ(router.submit(std::move(routed)).get().epoch, 1u);
}

// ---------------------------------------------------------------------------
// Crash-safe persistence: every injected filesystem fault leaves the
// previous artifact intact and loadable.
// ---------------------------------------------------------------------------

TEST_F(Rotation, SaveAtomicFaultsPreserveThePreviousBundle) {
    const auto benchmark = small_benchmark();
    const auto path = temp_path("hdlock_rotation_atomic.hdlk");
    api::Owner owner = trained_owner();
    owner.save_atomic(path);
    const std::string epoch0_bytes = read_file(path);

    owner.rotate(benchmark.train);
    for (const auto point :
         {fault::kBundleShortWrite, fault::kBundleFsync, fault::kBundleRename}) {
        fault::ScopedFault guard(point);
        EXPECT_THROW(owner.save_atomic(path), IoError) << "failpoint " << point;
        // Byte-identical old artifact, still a valid epoch-0 owner bundle,
        // and no temp debris.
        EXPECT_EQ(read_file(path), epoch0_bytes) << "failpoint " << point;
        EXPECT_EQ(api::Owner::load(path).epoch(), 0u) << "failpoint " << point;
        EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp")) << "failpoint " << point;
    }

    // Fault cleared: the rotation lands.
    owner.save_atomic(path);
    EXPECT_EQ(api::Owner::load(path).epoch(), 1u);
    std::filesystem::remove(path);
}

TEST_F(Rotation, CorruptHeaderFailpointRaisesTypedFormatError) {
    const auto path = temp_path("hdlock_rotation_corrupt.hdlk");
    trained_owner().save_atomic(path);
    {
        fault::ScopedFault guard(fault::kBundleCorruptHeader);
        EXPECT_THROW(api::Owner::load(path), FormatError);
        EXPECT_EQ(guard.hits(), 1u);
    }
    // The file itself was never harmed — only the load was poisoned.
    EXPECT_EQ(api::Owner::load(path).epoch(), 0u);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// The RCU hot swap: swap_bundle / swap_all and their failure paths.
// ---------------------------------------------------------------------------

TEST_F(Rotation, SwapBundleInstallsTheNewEpoch) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    const api::InferenceSession session = owner.open_session();
    const std::vector<int> before = session.predict(benchmark.test.X);

    owner.rotate(benchmark.train);
    const std::vector<int> expected_after = owner.predict(benchmark.test.X);
    EXPECT_EQ(session.swap_bundle(owner.to_device_bundle().make_snapshot()), 1u);
    EXPECT_EQ(session.epoch(), 1u);
    EXPECT_EQ(session.predict(benchmark.test.X), expected_after);
    EXPECT_EQ(before.size(), expected_after.size());
}

TEST_F(Rotation, InvalidSnapshotsAreRefusedAndOldEpochKeepsServing) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    const api::InferenceSession session = owner.open_session();
    const std::vector<int> expected = session.predict(benchmark.test.X);

    // Null encoder.
    EXPECT_THROW(session.swap_bundle(api::BundleSnapshot{}), RotationError);

    // Feature-count mismatch against the serving encoder.
    DeploymentConfig wrong = small_config();
    wrong.n_features = 17;
    api::Owner mismatched = api::Owner::provision(wrong);
    data::SyntheticSpec spec;
    spec.name = "rotation-wrong";
    spec.n_features = 17;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 30;
    spec.n_levels = 4;
    spec.seed = 9;
    mismatched.train(data::make_benchmark(spec).train);
    EXPECT_THROW(session.swap_bundle(mismatched.to_device_bundle().make_snapshot()),
                 RotationError);

    // Snapshot without a servable model.
    api::BundleSnapshot no_model = owner.to_device_bundle().make_snapshot();
    no_model.model.reset();
    EXPECT_THROW(session.swap_bundle(no_model), RotationError);

    // Every refusal left the original epoch serving, bit-identically.
    EXPECT_EQ(session.epoch(), 0u);
    EXPECT_EQ(session.predict(benchmark.test.X), expected);
}

TEST_F(Rotation, SwapValidationFaultKeepsOldEpochServing) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    const api::InferenceSession session = owner.open_session();
    const std::vector<int> expected = session.predict(benchmark.test.X);

    owner.rotate(benchmark.train);
    const api::BundleSnapshot snapshot = owner.to_device_bundle().make_snapshot();
    {
        fault::ScopedFault guard(fault::kSwapValidate);
        EXPECT_THROW(session.swap_bundle(snapshot), RotationError);
        EXPECT_EQ(guard.hits(), 1u);
    }
    EXPECT_EQ(session.epoch(), 0u);
    EXPECT_EQ(session.predict(benchmark.test.X), expected);

    // Fault cleared: the very same snapshot installs.
    EXPECT_EQ(session.swap_bundle(snapshot), 1u);
    EXPECT_EQ(session.epoch(), 1u);
}

TEST_F(Rotation, SwapAllRollsBackWhenAMidFleetShardRefuses) {
    const auto benchmark = small_benchmark();
    api::Owner owner = trained_owner();
    api::RouterOptions options;
    options.n_shards = 3;
    const api::ShardRouter router = owner.open_router(options);
    const std::vector<int> expected = router.predict(benchmark.test.X);

    owner.rotate(benchmark.train);
    const api::BundleSnapshot snapshot = owner.to_device_bundle().make_snapshot();
    {
        // skip=1: shard 0 swaps cleanly, shard 1 refuses — the rollback has
        // real work to undo, the partial-swap case a first-shard failure
        // never exercises.
        fault::ScopedFault guard(fault::kSwapValidate, /*count=*/1, /*skip=*/1);
        EXPECT_THROW(router.swap_all(snapshot), RotationError);
        EXPECT_EQ(guard.hits(), 1u);
    }
    // The whole fleet is back on the old epoch and still serving it.
    for (std::size_t s = 0; s < router.n_shards(); ++s) {
        EXPECT_EQ(router.shard(s).epoch(), 0u) << "shard " << s;
    }
    EXPECT_EQ(router.predict(benchmark.test.X), expected);

    // Fault cleared: the same snapshot rolls through the whole fleet.
    EXPECT_EQ(router.swap_all(snapshot), 1u);
    for (std::size_t s = 0; s < router.n_shards(); ++s) {
        EXPECT_EQ(router.shard(s).epoch(), 1u) << "shard " << s;
    }
    EXPECT_EQ(router.predict(benchmark.test.X), owner.predict(benchmark.test.X));
}

TEST_F(Rotation, SwapAllErrorNamesTheFailingShard) {
    api::Owner owner = trained_owner();
    api::RouterOptions options;
    options.n_shards = 2;
    const api::ShardRouter router = owner.open_router(options);
    fault::ScopedFault guard(fault::kSwapValidate, /*count=*/1, /*skip=*/1);
    try {
        router.swap_all(owner.to_device_bundle().make_snapshot());
        FAIL() << "swap_all should have thrown";
    } catch (const RotationError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
        EXPECT_NE(what.find("rolled"), std::string::npos) << what;
    }
}

}  // namespace
