// Tests for batched serving (src/api/inference_session.*): bit-identity with
// the sequential per-row path at several thread counts, input validation,
// and the served-rows counter.

#include "api/inference_session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

#include "api/facades.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"

namespace {

using namespace hdlock;

struct Pipeline {
    data::SyntheticBenchmark data;
    api::Owner owner;
    hdc::HdcClassifier classifier;  // the legacy per-row reference path
};

Pipeline make_pipeline(hdc::ModelKind kind) {
    data::SyntheticSpec spec;
    spec.name = "session";
    spec.n_features = 32;
    spec.n_classes = 4;
    spec.n_train = 200;
    spec.n_test = 140;
    spec.n_levels = 8;
    spec.noise = 0.15;
    spec.seed = 3;
    auto data = data::make_benchmark(spec);

    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = spec.n_features;
    config.n_levels = spec.n_levels;
    config.n_layers = 2;
    config.seed = 41;
    api::Owner owner = api::Owner::provision(config);
    api::TrainOptions options;
    options.kind = kind;
    owner.train(data.train, options);

    // The pre-api reference pipeline over the *same* encoder and data: its
    // predict_row is the ground truth the batched path must reproduce.
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = kind;
    auto classifier = hdc::HdcClassifier::fit(data.train, owner.encoder(), pipeline);
    return Pipeline{std::move(data), std::move(owner), std::move(classifier)};
}

}  // namespace

class InferenceSessionThreads
    : public ::testing::TestWithParam<std::tuple<hdc::ModelKind, std::size_t>> {};

TEST_P(InferenceSessionThreads, BatchMatchesPerRowPredictRowBitExactly) {
    const auto [kind, n_threads] = GetParam();
    const Pipeline pipeline = make_pipeline(kind);

    api::SessionOptions options;
    options.n_threads = n_threads;
    options.min_rows_per_thread = 1;  // force the full worker fan-out
    const auto session = pipeline.owner.open_session(options);
    EXPECT_EQ(session.n_threads(), n_threads);

    const auto batch = session.predict(pipeline.data.test.X);
    ASSERT_EQ(batch.size(), pipeline.data.test.n_samples());
    for (std::size_t s = 0; s < batch.size(); ++s) {
        EXPECT_EQ(batch[s], pipeline.classifier.predict_row(pipeline.data.test.X.row(s)))
            << "row " << s << " at " << n_threads << " thread(s)";
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndThreads, InferenceSessionThreads,
    ::testing::Combine(::testing::Values(hdc::ModelKind::binary, hdc::ModelKind::non_binary),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<hdc::ModelKind, std::size_t>>& info) {
        const bool binary = std::get<0>(info.param) == hdc::ModelKind::binary;
        return std::string(binary ? "binary" : "nonbinary") + "_T" +
               std::to_string(std::get<1>(info.param));
    });

TEST(InferenceSession, KernelBackendPinIsBitIdentical) {
    // Pinning any available SIMD kernel backend through SessionOptions must
    // not change a single prediction; an unavailable backend is a named
    // ConfigError at construction.  The pin is process-global, so restore
    // the original backend when done.
    namespace kernels = util::kernels;
    const kernels::ScopedBackend restore(kernels::active_kind());
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);

    std::vector<int> reference;
    for (const kernels::Backend kind : kernels::available_backends()) {
        api::SessionOptions options;
        options.kernel_backend = kind;
        const auto session = pipeline.owner.open_session(options);
        EXPECT_EQ(kernels::active_kind(), kind);
        const auto predictions = session.predict(pipeline.data.test.X);
        if (reference.empty()) {
            reference = predictions;
        } else {
            EXPECT_EQ(predictions, reference) << kernels::backend_name(kind);
        }
    }

    for (const kernels::Backend kind : {kernels::Backend::avx2, kernels::Backend::avx512}) {
        if (kernels::available(kind)) continue;
        api::SessionOptions options;
        options.kernel_backend = kind;
        EXPECT_THROW(pipeline.owner.open_session(options), ConfigError)
            << kernels::backend_name(kind);
    }
}

TEST(InferenceSession, ThreadCountsAgreeWithEachOther) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    std::vector<int> reference;
    for (const std::size_t n_threads : {1u, 2u, 8u}) {
        api::SessionOptions options;
        options.n_threads = n_threads;
        options.min_rows_per_thread = 1;
        const auto predictions =
            pipeline.owner.open_session(options).predict(pipeline.data.test.X);
        if (reference.empty()) {
            reference = predictions;
        } else {
            EXPECT_EQ(predictions, reference) << n_threads << " threads";
        }
    }
}

TEST(InferenceSession, EmptyBatchAndShapeValidation) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    const auto session = pipeline.owner.open_session();

    EXPECT_TRUE(session.predict(util::Matrix<float>()).empty());
    // Wrong column count is a contract violation, not silent garbage.
    EXPECT_THROW(session.predict(util::Matrix<float>(3, 7)), ContractViolation);
    EXPECT_THROW(session.predict_row(std::vector<float>(7)), ContractViolation);
}

TEST(InferenceSession, CountsServedRows) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    const auto session = pipeline.owner.open_session(options);

    EXPECT_EQ(session.rows_served(), 0u);
    session.predict(pipeline.data.test.X);
    EXPECT_EQ(session.rows_served(), pipeline.data.test.n_samples());
    session.predict_row(pipeline.data.test.X.row(0));
    EXPECT_EQ(session.rows_served(), pipeline.data.test.n_samples() + 1);
}

TEST(InferenceSession, SmallBatchStaysSequentialButIdentical) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.n_threads = 8;
    options.min_rows_per_thread = 1000;  // batches below 8000 rows stay inline
    const auto session = pipeline.owner.open_session(options);
    const auto predictions = session.predict(pipeline.data.test.X);
    for (std::size_t s = 0; s < predictions.size(); ++s) {
        EXPECT_EQ(predictions[s], pipeline.classifier.predict_row(pipeline.data.test.X.row(s)));
    }
}

TEST(InferenceSession, PlannedWorkersNeverReceiveEmptyRanges) {
    // Regression: chunk = ceil(n/workers) can strand trailing workers past
    // the end of the batch (n=13, 6 threads -> chunk 3 -> worker 5 would
    // start at row 15).  The spawn count is clamped to ceil(n/chunk).
    EXPECT_EQ(api::planned_workers(13, 6, 1), 5u);
    EXPECT_EQ(api::planned_workers(10, 4, 1), 4u);   // 10/4 -> chunk 3 -> 4 workers
    EXPECT_EQ(api::planned_workers(9, 4, 1), 3u);    // chunk 3 -> exactly 3
    EXPECT_EQ(api::planned_workers(1, 8, 1), 1u);
    EXPECT_EQ(api::planned_workers(0, 8, 1), 1u);
    EXPECT_EQ(api::planned_workers(1000, 4, 16), 4u);
    EXPECT_EQ(api::planned_workers(32, 8, 16), 2u);  // min-rows cap first

    // Every (n, threads) combination must cover [0, n) exactly once with no
    // empty ranges.
    for (std::size_t n = 1; n <= 40; ++n) {
        for (std::size_t threads = 1; threads <= 9; ++threads) {
            const std::size_t workers = api::planned_workers(n, threads, 1);
            const std::size_t chunk = (n + workers - 1) / workers;
            std::size_t covered = 0;
            for (std::size_t w = 0; w < workers; ++w) {
                const std::size_t begin = w * chunk;
                const std::size_t end = std::min(begin + chunk, n);
                ASSERT_LT(begin, end) << "empty range: n=" << n << " threads=" << threads
                                      << " worker=" << w;
                covered += end - begin;
            }
            ASSERT_EQ(covered, n) << "n=" << n << " threads=" << threads;
        }
    }
}

TEST(InferenceSession, AwkwardBatchSizesStayBitIdentical) {
    // The shapes from the empty-range regression, end to end.
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    for (const std::size_t rows : {std::size_t{10}, std::size_t{13}}) {
        util::Matrix<float> batch(rows, pipeline.data.test.n_features());
        for (std::size_t r = 0; r < rows; ++r) {
            const auto source = pipeline.data.test.X.row(r);
            std::copy(source.begin(), source.end(), batch.row(r).begin());
        }
        api::SessionOptions options;
        options.n_threads = rows == 10 ? 4 : 6;
        options.min_rows_per_thread = 1;
        const auto predictions = pipeline.owner.open_session(options).predict(batch);
        ASSERT_EQ(predictions.size(), rows);
        for (std::size_t r = 0; r < rows; ++r) {
            EXPECT_EQ(predictions[r], pipeline.classifier.predict_row(batch.row(r)));
        }
    }
}

class InferenceSessionCache : public ::testing::TestWithParam<hdc::ModelKind> {};

TEST_P(InferenceSessionCache, ProductCacheIsBitIdenticalToFusedPath) {
    const Pipeline pipeline = make_pipeline(GetParam());

    api::SessionOptions plain;
    const auto baseline = pipeline.owner.open_session(plain);
    EXPECT_FALSE(baseline.product_cache_active());

    api::SessionOptions cached = plain;
    cached.use_product_cache = true;
    const auto session = pipeline.owner.open_session(cached);
    ASSERT_TRUE(session.product_cache_active());

    EXPECT_EQ(session.predict(pipeline.data.test.X), baseline.predict(pipeline.data.test.X));
    for (std::size_t s = 0; s < 5; ++s) {
        EXPECT_EQ(session.predict_row(pipeline.data.test.X.row(s)),
                  pipeline.classifier.predict_row(pipeline.data.test.X.row(s)));
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, InferenceSessionCache,
                         ::testing::Values(hdc::ModelKind::binary, hdc::ModelKind::non_binary),
                         [](const ::testing::TestParamInfo<hdc::ModelKind>& info) {
                             return info.param == hdc::ModelKind::binary ? "binary" : "nonbinary";
                         });

TEST(InferenceSession, ProductCacheFallsBackWhenOverBudget) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.use_product_cache = true;
    options.product_cache_max_bytes = 1;  // nothing fits
    const auto session = pipeline.owner.open_session(options);
    EXPECT_FALSE(session.product_cache_active());

    // Still serves, still bit-identical.
    const auto predictions = session.predict(pipeline.data.test.X);
    for (std::size_t s = 0; s < predictions.size(); ++s) {
        EXPECT_EQ(predictions[s], pipeline.classifier.predict_row(pipeline.data.test.X.row(s)));
    }
}

TEST(InferenceSession, RejectsMismatchedComponents) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    // Discretizer with the wrong level count for the encoder.
    const auto bad_disc = hdc::MinMaxDiscretizer::with_range(0.0f, 1.0f, 3);
    EXPECT_THROW(api::InferenceSession(pipeline.owner.encoder(), bad_disc,
                                       pipeline.owner.model()),
                 ContractViolation);
}

// ---------------------------------------------------------------------------
// The persistent serving core: pooled dispatch, the async micro-batching
// front door, and the SubmitQueue underneath it.
// ---------------------------------------------------------------------------

TEST(InferenceSession, PooledAndSpawnDispatchAreBitIdentical) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    std::vector<int> reference;
    for (const api::DispatchMode mode : {api::DispatchMode::pooled, api::DispatchMode::spawn}) {
        for (const std::size_t n_threads : {1u, 2u, 4u}) {
            api::SessionOptions options;
            options.dispatch = mode;
            options.n_threads = n_threads;
            options.min_rows_per_thread = 1;
            const auto session = pipeline.owner.open_session(options);
            EXPECT_EQ(session.dispatch_mode(), mode);
            const auto predictions = session.predict(pipeline.data.test.X);
            if (reference.empty()) {
                reference = predictions;
            } else {
                EXPECT_EQ(predictions, reference)
                    << (mode == api::DispatchMode::pooled ? "pooled" : "spawn") << " T"
                    << n_threads;
            }
        }
    }
}

TEST(InferenceSession, PoolIsReusedAcrossManyBatches) {
    // The tentpole claim: many dispatches, one persistent pool, results
    // identical every round (slot-pinned scratch carries no row state over).
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::non_binary);
    api::SessionOptions options;
    options.n_threads = 4;
    options.min_rows_per_thread = 1;
    const auto session = pipeline.owner.open_session(options);
    const auto reference = session.predict(pipeline.data.test.X);
    for (int round = 0; round < 50; ++round) {
        ASSERT_EQ(session.predict(pipeline.data.test.X), reference) << "round " << round;
    }
    EXPECT_EQ(session.rows_served(), 51 * pipeline.data.test.n_samples());
}

TEST(InferenceSession, PredictAsyncMatchesPredictBitExactly) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    const auto session = pipeline.owner.open_session(options);
    const auto reference = session.predict(pipeline.data.test.X);

    // Zero-row: a ready, empty future without touching the queue.
    auto empty = session.predict_async(util::Matrix<float>());
    EXPECT_TRUE(empty.get().empty());

    // Whole batch through the async path.
    auto whole = session.predict_async(pipeline.data.test.X);
    EXPECT_EQ(whole.get(), reference);

    // Row-at-a-time through the async path: micro-batching must not change
    // a single label.
    std::vector<std::future<std::vector<int>>> futures;
    for (std::size_t r = 0; r < pipeline.data.test.n_samples(); ++r) {
        util::Matrix<float> row(1, pipeline.data.test.n_features());
        const auto source = pipeline.data.test.X.row(r);
        std::copy(source.begin(), source.end(), row.row(0).begin());
        futures.push_back(session.predict_async(std::move(row)));
    }
    for (std::size_t r = 0; r < futures.size(); ++r) {
        const auto labels = futures[r].get();
        ASSERT_EQ(labels.size(), 1u);
        EXPECT_EQ(labels[0], reference[r]) << "row " << r;
    }

    // Shape violations surface in the caller, not in the dispatcher.
    EXPECT_THROW(session.predict_async(util::Matrix<float>(2, 5)), ContractViolation);

    // And the async path agrees at every thread count (1 worker, many, and
    // the spawn dispatch), not just the one above.
    for (const std::size_t n_threads : {1u, 4u}) {
        api::SessionOptions other;
        other.n_threads = n_threads;
        other.min_rows_per_thread = 1;
        const auto other_session = pipeline.owner.open_session(other);
        EXPECT_EQ(other_session.predict_async(pipeline.data.test.X).get(), reference)
            << n_threads << " threads";
    }
}

TEST(InferenceSession, ConcurrentSubmittersUnderStress) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    options.max_batch = 32;
    options.max_queue_rows = 64;  // small queue: exercises backpressure
    const auto session = pipeline.owner.open_session(options);
    const auto reference = session.predict(pipeline.data.test.X);
    const std::size_t n_rows = pipeline.data.test.n_samples();

    constexpr std::size_t kSubmitters = 6;
    std::vector<util::Thread> submitters;
    std::vector<std::vector<int>> results(kSubmitters);
    for (std::size_t t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back(util::Thread([&, t] {
            std::vector<std::future<std::vector<int>>> futures;
            for (std::size_t r = 0; r < n_rows; ++r) {
                util::Matrix<float> row(1, pipeline.data.test.n_features());
                const auto source = pipeline.data.test.X.row(r);
                std::copy(source.begin(), source.end(), row.row(0).begin());
                futures.push_back(session.predict_async(std::move(row)));
            }
            for (auto& future : futures) {
                const auto labels = future.get();
                results[t].push_back(labels.at(0));
            }
        }));
    }
    for (auto& submitter : submitters) submitter.join();
    for (std::size_t t = 0; t < kSubmitters; ++t) {
        EXPECT_EQ(results[t], reference) << "submitter " << t;
    }
    EXPECT_EQ(session.rows_served(), (kSubmitters + 1) * n_rows);
}

TEST(InferenceSession, ConcurrentPredictCallersShareThePoolSafely) {
    // Plain predict() from many caller threads on one shared session — the
    // TSan job drives this test to prove slot-pinned scratch stays private.
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::non_binary);
    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    const auto session = pipeline.owner.open_session(options);
    const auto reference = session.predict(pipeline.data.test.X);

    std::vector<util::Thread> callers;
    // Not vector<bool>: adjacent packed bits written from different threads
    // would be a (test-side) data race.
    std::array<std::atomic<bool>, 4> agree{};
    for (std::size_t t = 0; t < agree.size(); ++t) {
        callers.emplace_back(util::Thread([&, t] {
            bool all = true;
            for (int round = 0; round < 5; ++round) {
                all = all && session.predict(pipeline.data.test.X) == reference;
            }
            agree[t].store(all);
        }));
    }
    for (auto& caller : callers) caller.join();
    for (std::size_t t = 0; t < agree.size(); ++t) {
        EXPECT_TRUE(agree[t].load()) << "caller " << t;
    }
}

TEST(SubmitQueue, CoalescesQueuedRequestsIntoOneMicroBatch) {
    api::SubmitQueue queue(/*max_rows=*/1024);
    for (int i = 0; i < 3; ++i) {
        queue.push(api::AsyncRequest{.rows = util::Matrix<float>(2, 4), .promise = {}});
    }
    EXPECT_EQ(queue.queued_rows(), 6u);
    const auto batch = queue.pop_batch(/*max_batch=*/256, std::chrono::microseconds(0));
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(queue.queued_rows(), 0u);
}

TEST(SubmitQueue, RespectsMaxBatchAndTakesWholeRequests) {
    api::SubmitQueue queue(/*max_rows=*/1024);
    for (int i = 0; i < 4; ++i) {
        queue.push(api::AsyncRequest{.rows = util::Matrix<float>(3, 4), .promise = {}});
    }
    // 3 + 3 = 6 <= 7, adding the third request would exceed max_batch.
    const auto batch = queue.pop_batch(/*max_batch=*/7, std::chrono::microseconds(0));
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_EQ(queue.queued_rows(), 6u);
}

TEST(SubmitQueue, OversizedRequestIsAdmittedAloneAndCloseWakesProducers) {
    api::SubmitQueue queue(/*max_rows=*/4);
    // Larger than the whole queue: admitted when the queue is empty.
    queue.push(api::AsyncRequest{.rows = util::Matrix<float>(9, 2), .promise = {}});
    EXPECT_EQ(queue.queued_rows(), 9u);
    const auto batch = queue.pop_batch(/*max_batch=*/4, std::chrono::microseconds(0));
    ASSERT_EQ(batch.size(), 1u);  // whole requests are never split
    EXPECT_EQ(batch.front().rows.rows(), 9u);

    queue.close();
    EXPECT_THROW(queue.push(api::AsyncRequest{.rows = util::Matrix<float>(1, 2), .promise = {}}),
                 Error);
    EXPECT_TRUE(queue.pop_batch(4, std::chrono::microseconds(0)).empty());
}

TEST(SubmitQueue, TrySubmitRefusesWhenFullWithoutConsumingTheRequest) {
    api::SubmitQueue queue(/*max_rows=*/4);
    api::AsyncRequest first;
    first.rows = util::Matrix<float>(3, 2);
    EXPECT_EQ(queue.try_submit(std::move(first)), api::Status::ok);
    EXPECT_EQ(queue.queued_rows(), 3u);

    api::AsyncRequest second;
    second.rows = util::Matrix<float>(2, 2);
    second.typed = true;
    auto future = second.typed_promise.get_future();
    // 3 + 2 > 4 and the queue is non-empty: refused, and — unlike push(),
    // which would block — the caller gets the request back untouched
    // (try_submit only moves from its argument on acceptance).
    EXPECT_EQ(queue.try_submit(std::move(second)), api::Status::overloaded);
    EXPECT_EQ(second.rows.rows(), 2u);
    api::Response shed;
    shed.status = api::Status::overloaded;
    second.typed_promise.set_value(std::move(shed));
    EXPECT_EQ(future.get().status, api::Status::overloaded);

    api::AsyncRequest third;
    third.rows = util::Matrix<float>(1, 2);
    EXPECT_EQ(queue.try_submit(std::move(third)), api::Status::ok);
    EXPECT_EQ(queue.queued_rows(), 4u);

    queue.close();
    api::AsyncRequest late;
    late.rows = util::Matrix<float>(1, 2);
    EXPECT_THROW(queue.try_submit(std::move(late)), Error);
}

TEST(SubmitQueue, TrySubmitIsSafeUnderConcurrentProducers) {
    // TSan coverage for the non-blocking admission path: producers hammer
    // try_submit while a consumer drains; the counts must reconcile and the
    // queue's invariants hold under the annotated lock discipline.
    api::SubmitQueue queue(/*max_rows=*/8);
    std::atomic<int> accepted{0};
    std::atomic<int> refused{0};
    util::Thread consumer([&] {
        while (true) {
            const auto batch = queue.pop_batch(/*max_batch=*/4, std::chrono::microseconds(0));
            if (batch.empty()) break;  // closed and drained
        }
    });

    constexpr int kProducers = 4;
    constexpr int kTries = 64;
    std::vector<util::Thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back(util::Thread([&] {
            for (int i = 0; i < kTries; ++i) {
                api::AsyncRequest request;
                request.rows = util::Matrix<float>(1, 2);
                if (queue.try_submit(std::move(request)) == api::Status::ok) {
                    accepted.fetch_add(1);
                } else {
                    refused.fetch_add(1);
                }
            }
        }));
    }
    for (auto& producer : producers) producer.join();
    queue.close();
    consumer.join();

    EXPECT_EQ(accepted.load() + refused.load(), kProducers * kTries);
    EXPECT_GE(accepted.load(), 1);
    EXPECT_EQ(queue.queued_rows(), 0u);
}

TEST(InferenceSession, TypedRequestMatchesPredictBitExactly) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    const auto session = pipeline.owner.open_session();
    const auto& X = pipeline.data.test.X;
    const std::vector<int> expected = session.predict(X);

    api::Request request;
    request.rows = X;
    api::Response response = session.predict_async(std::move(request), /*shard_id=*/7).get();
    EXPECT_EQ(response.status, api::Status::ok);
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.labels, expected);
    EXPECT_EQ(response.shard_id, 7u);
    EXPECT_GE(response.queue_time.count(), 0);

    // An empty typed request resolves Ok with no labels, without serving.
    api::Request empty;
    api::Response none = session.predict_async(std::move(empty)).get();
    EXPECT_EQ(none.status, api::Status::ok);
    EXPECT_TRUE(none.labels.empty());
}

TEST(InferenceSession, DoomedTypedRequestsResolveWithoutServing) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    const auto session = pipeline.owner.open_session();
    const std::uint64_t served_before = session.rows_served();

    // Already-expired deadline: resolved at submit, never encoded.
    api::Request expired;
    expired.rows = util::Matrix<float>(pipeline.data.test.X);
    expired.deadline = util::Deadline::after(std::chrono::nanoseconds{0});
    api::Response late = session.predict_async(std::move(expired)).get();
    EXPECT_EQ(late.status, api::Status::deadline_exceeded);
    EXPECT_TRUE(late.labels.empty());
    EXPECT_FALSE(late.ok());

    // Cancellation requested before dispatch: same short-circuit.
    api::CancelSource source;
    source.request_cancel();
    api::Request cancelled;
    cancelled.rows = util::Matrix<float>(pipeline.data.test.X);
    cancelled.cancel = source.token();
    api::Response gone = session.predict_async(std::move(cancelled)).get();
    EXPECT_EQ(gone.status, api::Status::cancelled);
    EXPECT_TRUE(gone.labels.empty());

    EXPECT_EQ(session.rows_served(), served_before);
}

namespace {

/// Bit-identical to a RecordEncoder over the same ItemMemory and tie seed,
/// but throws on an armed set of encode calls.  The shared kernel reads
/// feature_hv_array() exactly once per row encode, so with a
/// single-threaded session the call counter enumerates encoded rows in
/// dispatch order — which lets a test poison "the second fused row, and the
/// same request's solo retry" deterministically.
class PoisonEncoder final : public hdc::Encoder {
public:
    PoisonEncoder(std::shared_ptr<const hdc::ItemMemory> memory, std::uint64_t tie_seed)
        : Encoder(tie_seed), memory_(std::move(memory)) {}

    std::size_t dim() const override { return memory_->dim(); }
    std::size_t n_features() const override { return memory_->n_features(); }
    std::size_t n_levels() const override { return memory_->n_levels(); }

    void arm(std::vector<int> fail_on) {
        fail_on_ = std::move(fail_on);
        calls_.store(0);
    }

protected:
    std::span<const hdc::BinaryHV> feature_hv_array() const override {
        const int index = calls_.fetch_add(1);
        for (const int fail : fail_on_) {
            if (fail == index) throw std::runtime_error("poisoned encode");
        }
        return memory_->feature_hvs();
    }
    std::span<const hdc::BinaryHV> value_hv_array() const override {
        return memory_->value_hvs();
    }

private:
    std::shared_ptr<const hdc::ItemMemory> memory_;
    std::vector<int> fail_on_;
    mutable std::atomic<int> calls_{0};
};

}  // namespace

TEST(InferenceSession, FusedBatchExceptionIsScopedToTheOffendingRequest) {
    // Regression for the fused-batch failure path: an exception inside a
    // fused micro-batch used to fan out to every request's promise.  Now
    // the dispatcher retries the not-yet-resolved requests one by one, so
    // only the request that fails on its own sees the exception.
    data::SyntheticSpec spec;
    spec.name = "poison";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 12;
    spec.n_levels = 4;
    spec.seed = 11;
    const auto data = data::make_benchmark(spec);

    hdc::ItemMemoryConfig memory_config;
    memory_config.dim = 512;
    memory_config.n_features = spec.n_features;
    memory_config.n_levels = spec.n_levels;
    memory_config.seed = 17;
    const auto memory =
        std::make_shared<const hdc::ItemMemory>(hdc::ItemMemory::generate(memory_config));
    const auto clean = std::make_shared<hdc::RecordEncoder>(memory, /*tie_seed=*/99);
    const auto poison = std::make_shared<PoisonEncoder>(memory, /*tie_seed=*/99);
    const auto classifier = hdc::HdcClassifier::fit(data.train, clean, hdc::PipelineConfig{});

    api::SessionOptions options;
    options.n_threads = 1;           // sequential encode: rows 0..n in order
    options.use_product_cache = false;
    options.max_batch = 3;           // pop_batch waits for all three rows...
    options.max_queue_delay = std::chrono::microseconds(2'000'000);  // ...for up to 2 s
    const api::InferenceSession session(poison, classifier.discretizer(), classifier.model(),
                                        options);
    const api::InferenceSession reference(clean, classifier.discretizer(), classifier.model());

    std::array<util::Matrix<float>, 3> rows;
    std::array<std::vector<int>, 3> expected;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = util::Matrix<float>(1, spec.n_features);
        const auto source = data.test.X.row(i);
        std::copy(source.begin(), source.end(), rows[i].row(0).begin());
        expected[i] = reference.predict(rows[i]);
    }

    // Encode call sequence: fused batch encodes rows 0,1 (call #1 throws,
    // row 2 is never reached), then the per-request retries encode calls
    // #2 (request 0), #3 (request 1, throws again), #4 (request 2).
    poison->arm({1, 3});
    auto f0 = session.predict_async(util::Matrix<float>(rows[0]));
    auto f1 = session.predict_async(util::Matrix<float>(rows[1]));
    auto f2 = session.predict_async(util::Matrix<float>(rows[2]));

    EXPECT_EQ(f0.get(), expected[0]);
    EXPECT_THROW(f1.get(), std::runtime_error);
    EXPECT_EQ(f2.get(), expected[2]);
}

// ---------------------------------------------------------------------------
// Fused encode→distance predict (SessionOptions::fused_predict)
// ---------------------------------------------------------------------------

TEST(InferenceSession, FusedPredictAutoDetectsBinaryModelsOnly) {
    const Pipeline binary = make_pipeline(hdc::ModelKind::binary);
    EXPECT_TRUE(binary.owner.open_session().fused_predict_active())
        << "binary models within the row cap must auto-enable the fused path";

    const Pipeline non_binary = make_pipeline(hdc::ModelKind::non_binary);
    EXPECT_FALSE(non_binary.owner.open_session().fused_predict_active());

    api::SessionOptions off;
    off.fused_predict = api::FusedPredict::off;
    EXPECT_FALSE(binary.owner.open_session(off).fused_predict_active());

    api::SessionOptions on;
    on.fused_predict = api::FusedPredict::on;
    EXPECT_TRUE(binary.owner.open_session(on).fused_predict_active());
    EXPECT_THROW(non_binary.owner.open_session(on), ConfigError)
        << "forcing fusion on a non-binary model must fail loudly at open";
}

TEST(InferenceSession, FusedPredictLabelsMatchTwoStepPathBitExactly) {
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions off;
    off.fused_predict = api::FusedPredict::off;
    const auto unfused = pipeline.owner.open_session(off);
    ASSERT_FALSE(unfused.fused_predict_active());
    const auto reference = unfused.predict(pipeline.data.test.X);

    for (const bool cached : {false, true}) {
        for (const std::size_t n_threads : {1u, 4u}) {
            api::SessionOptions options;
            options.fused_predict = api::FusedPredict::on;
            options.use_product_cache = cached;
            options.n_threads = n_threads;
            options.min_rows_per_thread = 1;
            const auto fused = pipeline.owner.open_session(options);
            EXPECT_EQ(fused.predict(pipeline.data.test.X), reference)
                << "cached=" << cached << " T" << n_threads;
        }
    }
}

TEST(InferenceSession, ConcurrentFusedPredictCallersStayBitIdentical) {
    // The fused-path sibling of ConcurrentPredictCallersShareThePoolSafely:
    // many caller threads share one fused session; the TSan job drives this
    // to prove the fused scratch (pointer tables, tie RNG) stays slot-private.
    const Pipeline pipeline = make_pipeline(hdc::ModelKind::binary);
    api::SessionOptions options;
    options.fused_predict = api::FusedPredict::on;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    const auto session = pipeline.owner.open_session(options);
    ASSERT_TRUE(session.fused_predict_active());
    const auto reference = session.predict(pipeline.data.test.X);

    std::vector<util::Thread> callers;
    std::array<std::atomic<bool>, 4> agree{};
    for (std::size_t t = 0; t < agree.size(); ++t) {
        callers.emplace_back(util::Thread([&, t] {
            bool all = true;
            for (int round = 0; round < 5; ++round) {
                all = all && session.predict(pipeline.data.test.X) == reference;
            }
            agree[t].store(all);
        }));
    }
    for (auto& caller : callers) caller.join();
    for (std::size_t t = 0; t < agree.size(); ++t) {
        EXPECT_TRUE(agree[t].load()) << "caller " << t;
    }
}
