// Concurrency tests for the RCU epoch swap and queue shutdown (driven under
// TSan by CI's tsan-serving-core job — suite names must keep matching its
// `InferenceSession*:SubmitQueue*` filter):
//
//   - predict/predict_async callers race swap_bundle through >= 3 epochs;
//     every response must be bit-identical to exactly one epoch's reference
//     and carry an epoch that was active while the request was in flight —
//     never a torn mix of one epoch's encoder and another's model.
//   - a session destroyed with queued work fails every pending future with
//     a typed ShutdownError; nothing hangs, nothing is silently dropped.

#include "api/inference_session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "api/bundle.hpp"
#include "api/facades.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"

namespace {

using namespace hdlock;

data::SyntheticBenchmark swap_benchmark() {
    data::SyntheticSpec spec;
    spec.name = "swap";
    spec.n_features = 16;
    spec.n_classes = 4;
    spec.n_train = 160;
    spec.n_test = 48;
    spec.n_levels = 4;
    spec.seed = 12;
    return data::make_benchmark(spec);
}

api::Owner swap_owner(const data::SyntheticBenchmark& benchmark) {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 16;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 5;
    api::Owner owner = api::Owner::provision(config);
    owner.train(benchmark.train);
    return owner;
}

/// The training set with labels cyclically shifted by `shift`: each rotation
/// retrains against a different labeling, so the per-epoch references are
/// pairwise distinct and a torn response cannot masquerade as either epoch.
data::Dataset shifted_labels(const data::Dataset& train, int shift, int n_classes) {
    data::Dataset shifted = train;
    for (auto& label : shifted.y) label = (label + shift) % n_classes;
    return shifted;
}

TEST(InferenceSessionSwap, ConcurrentPredictAsyncAcrossThreeEpochSwaps) {
    const auto benchmark = swap_benchmark();
    api::Owner owner = swap_owner(benchmark);
    const data::Dataset& pool = benchmark.test;

    api::SessionOptions options;
    options.n_threads = 2;
    options.max_batch = 16;
    options.max_queue_rows = 64;
    const api::InferenceSession session = owner.open_session(options);

    // Epoch 0 reference, then three rotations, each retrained on a
    // different label shift so the references are pairwise distinct.
    constexpr std::uint64_t kEpochs = 4;  // 0 plus three swaps
    std::vector<std::vector<int>> expected;
    std::vector<api::BundleSnapshot> snapshots;
    expected.push_back(owner.predict(pool.X));
    for (int shift = 1; shift < static_cast<int>(kEpochs); ++shift) {
        owner.rotate(shifted_labels(benchmark.train, shift, 4));
        expected.push_back(owner.predict(pool.X));
        snapshots.push_back(owner.to_device_bundle().make_snapshot());
    }
    for (std::size_t a = 0; a < expected.size(); ++a) {
        for (std::size_t b = a + 1; b < expected.size(); ++b) {
            ASSERT_NE(expected[a], expected[b]) << "epochs " << a << "/" << b
                                                << " must be distinguishable";
        }
    }

    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kRequestsPerCaller = 120;
    std::atomic<std::size_t> torn{0};
    std::atomic<std::size_t> lost{0};
    std::atomic<std::size_t> resolved{0};
    std::vector<util::Thread> callers;
    for (std::size_t t = 0; t < kCallers; ++t) {
        callers.emplace_back(util::Thread([&, t] {
            for (std::size_t i = 0; i < kRequestsPerCaller; ++i) {
                const std::size_t row = (t * kRequestsPerCaller + i) % pool.X.rows();
                api::Request request;
                request.rows = util::Matrix<float>(1, pool.X.cols());
                const auto source = pool.X.row(row);
                std::copy(source.begin(), source.end(), request.rows.row(0).begin());

                // Epoch window: anything the session served between these
                // two reads was active while the request was in flight.
                const std::uint64_t epoch_low = session.epoch();
                std::future<api::Response> future = session.predict_async(std::move(request));
                const api::Response response = future.get();
                const std::uint64_t epoch_high = session.epoch();
                ++resolved;
                if (!response.ok() || response.labels.size() != 1) {
                    ++lost;
                    continue;
                }
                const bool epoch_in_window =
                    response.epoch >= epoch_low && response.epoch <= epoch_high;
                const bool labels_match_epoch =
                    response.epoch < kEpochs &&
                    response.labels[0] == expected[response.epoch][row];
                if (!epoch_in_window || !labels_match_epoch) ++torn;
            }
        }));
    }

    // Roll through the three new epochs while the callers hammer the queue.
    for (const auto& snapshot : snapshots) {
        util::sleep_for(std::chrono::milliseconds(3));
        session.swap_bundle(snapshot);
    }
    for (auto& caller : callers) caller.join();

    EXPECT_EQ(resolved.load(), kCallers * kRequestsPerCaller);  // no request lost
    EXPECT_EQ(lost.load(), 0u);
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(session.epoch(), kEpochs - 1);
}

TEST(InferenceSessionSwap, SynchronousPredictRacesSwapsBitIdentically) {
    // Plain predict() snapshots the serving state once per call: under
    // racing swaps each call must match exactly one epoch's reference.
    const auto benchmark = swap_benchmark();
    api::Owner owner = swap_owner(benchmark);
    const data::Dataset& pool = benchmark.test;

    api::SessionOptions options;
    options.n_threads = 2;
    options.min_rows_per_thread = 1;
    const api::InferenceSession session = owner.open_session(options);

    std::vector<std::vector<int>> expected;
    std::vector<api::BundleSnapshot> snapshots;
    expected.push_back(owner.predict(pool.X));
    for (int shift = 1; shift <= 3; ++shift) {
        owner.rotate(shifted_labels(benchmark.train, shift, 4));
        expected.push_back(owner.predict(pool.X));
        snapshots.push_back(owner.to_device_bundle().make_snapshot());
    }

    std::atomic<std::size_t> torn{0};
    std::vector<util::Thread> callers;
    for (std::size_t t = 0; t < 4; ++t) {
        callers.emplace_back(util::Thread([&] {
            for (int round = 0; round < 40; ++round) {
                const std::vector<int> labels = session.predict(pool.X);
                if (std::none_of(expected.begin(), expected.end(),
                                 [&](const std::vector<int>& e) { return e == labels; })) {
                    ++torn;
                }
            }
        }));
    }
    for (const auto& snapshot : snapshots) {
        util::sleep_for(std::chrono::milliseconds(2));
        session.swap_bundle(snapshot);
    }
    for (auto& caller : callers) caller.join();
    EXPECT_EQ(torn.load(), 0u);
}

// ---------------------------------------------------------------------------
// Shutdown with pending work.
// ---------------------------------------------------------------------------

TEST(SubmitQueueShutdown, CloseFailsProducersWithTypedShutdownError) {
    api::SubmitQueue queue(64);
    queue.close();
    EXPECT_TRUE(queue.closed());
    api::AsyncRequest request;
    request.rows = util::Matrix<float>(1, 4);
    EXPECT_THROW(queue.push(std::move(request)), ShutdownError);
    api::AsyncRequest retry;
    retry.rows = util::Matrix<float>(1, 4);
    EXPECT_THROW((void)queue.try_submit(std::move(retry)), ShutdownError);
}

TEST(SubmitQueueShutdown, DestroyedSessionFailsQueuedFuturesNotHangs) {
    const auto benchmark = swap_benchmark();
    const api::Owner owner = swap_owner(benchmark);

    // A long coalescing window and a huge batch target keep submitted work
    // sitting in the queue; destroying the session then closes the queue
    // with that work still pending — the dispatcher must fail it, typed.
    api::SessionOptions options;
    options.n_threads = 1;
    options.max_batch = 1 << 20;
    options.max_queue_rows = 1 << 20;
    options.max_queue_delay = std::chrono::microseconds(2'000'000);
    options.adaptive_queue_delay = false;

    std::vector<std::future<api::Response>> typed;
    std::vector<std::future<std::vector<int>>> legacy;
    {
        const api::InferenceSession session = owner.open_session(options);
        for (int i = 0; i < 8; ++i) {
            api::Request request;
            request.rows = benchmark.test.X;
            typed.push_back(session.predict_async(std::move(request)));
            legacy.push_back(session.predict_async(benchmark.test.X));
        }
        // Session dies here with (almost certainly) everything still queued.
    }

    std::size_t shutdown_errors = 0;
    for (auto& future : typed) {
        try {
            const api::Response response = future.get();  // must not hang
            EXPECT_TRUE(response.ok());
        } catch (const ShutdownError&) {
            ++shutdown_errors;
        }
    }
    for (auto& future : legacy) {
        try {
            (void)future.get();
        } catch (const ShutdownError&) {
            ++shutdown_errors;
        }
    }
    // The 2-second coalescing window makes "served before close" a losing
    // race: at least the tail of the queue must have been failed, and every
    // future resolved one way or the other (reaching here proves no hang).
    EXPECT_GT(shutdown_errors, 0u);
}

}  // namespace
