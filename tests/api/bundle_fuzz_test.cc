// Fuzz-style robustness tests for the `.hdlk` loader (src/api/bundle.*):
// systematic truncation sweeps and header/byte corruption over both bundle
// kinds and both reader transports (stream and span/mmap).  The contract
// under attack: a hostile or damaged artifact may only ever produce a typed
// hdlock::Error (FormatError for malformed bytes) — never a crash, an OOB
// read, an unbounded allocation, or a silently wrong bundle.

#include "api/bundle.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "api/facades.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

namespace {

using namespace hdlock;

api::Owner trained_owner() {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 12;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 31;
    data::SyntheticSpec spec;
    spec.name = "fuzz";
    spec.n_features = 12;
    spec.n_classes = 3;
    spec.n_train = 90;
    spec.n_test = 30;
    spec.n_levels = 4;
    spec.seed = 8;
    api::Owner owner = api::Owner::provision(config);
    owner.train(data::make_benchmark(spec).train);
    return owner;
}

std::string serialize(const api::DeploymentBundle& bundle) {
    std::ostringstream out(std::ios::binary);
    util::BinaryWriter writer(out);
    bundle.save(writer);
    return out.str();
}

/// Outcome of one hostile-load attempt.
enum class LoadOutcome { loaded, typed_error, wrong_exception };

LoadOutcome try_load_stream(const std::string& bytes) {
    try {
        std::istringstream in(bytes, std::ios::binary);
        util::BinaryReader reader(in);
        (void)api::DeploymentBundle::load(reader);
        return LoadOutcome::loaded;
    } catch (const Error&) {
        return LoadOutcome::typed_error;
    } catch (...) {
        return LoadOutcome::wrong_exception;
    }
}

LoadOutcome try_load_span(const std::string& bytes) {
    try {
        util::BinaryReader reader(std::as_bytes(std::span<const char>(bytes)));
        (void)api::DeploymentBundle::load(reader);
        return LoadOutcome::loaded;
    } catch (const Error&) {
        return LoadOutcome::typed_error;
    } catch (...) {
        return LoadOutcome::wrong_exception;
    }
}

/// The two serialized corpora every sweep runs against.
std::vector<std::pair<std::string, std::string>> corpora() {
    const api::Owner owner = trained_owner();
    return {{"owner", serialize(owner.to_bundle())},
            {"device", serialize(owner.to_device_bundle())}};
}

TEST(BundleFuzz, EveryTruncationRaisesATypedError) {
    for (const auto& [kind, bytes] : corpora()) {
        // Every length in the header region, then a stride through the bulk
        // sections: cheap enough to run exhaustively where structure is
        // dense, sampled where it is a flat word array.
        std::vector<std::size_t> lengths;
        for (std::size_t n = 0; n < std::min<std::size_t>(bytes.size(), 96); ++n) {
            lengths.push_back(n);
        }
        for (std::size_t n = 96; n < bytes.size(); n += 101) lengths.push_back(n);
        lengths.push_back(bytes.size() - 1);

        for (const std::size_t n : lengths) {
            const std::string truncated = bytes.substr(0, n);
            EXPECT_EQ(try_load_stream(truncated), LoadOutcome::typed_error)
                << kind << " truncated to " << n << " of " << bytes.size() << " bytes (stream)";
            EXPECT_EQ(try_load_span(truncated), LoadOutcome::typed_error)
                << kind << " truncated to " << n << " of " << bytes.size() << " bytes (span)";
        }
        // Sanity: the untruncated corpus loads on both transports.
        EXPECT_EQ(try_load_stream(bytes), LoadOutcome::loaded) << kind;
        EXPECT_EQ(try_load_span(bytes), LoadOutcome::loaded) << kind;
    }
}

TEST(BundleFuzz, TrailingGarbageAfterHendIsHarmless) {
    // load() consumes through HEND; bytes past it belong to the caller
    // (bundles embed in larger files).  Nothing to reject, nothing to read.
    for (const auto& [kind, bytes] : corpora()) {
        EXPECT_EQ(try_load_stream(bytes + std::string(64, '\xee')), LoadOutcome::loaded) << kind;
    }
}

TEST(BundleFuzz, HeaderByteFlipsNeverEscapeTheTypedErrorContract) {
    // Flip every byte of the structured prefix (tag, version, kind,
    // tie_seed, flags, epoch, first section header) through hostile values.
    // Any outcome is acceptable except a non-hdlock exception or a crash:
    // some flips are benign (tie_seed, epoch), the rest must be FormatError.
    for (const auto& [kind, bytes] : corpora()) {
        const std::size_t prefix = std::min<std::size_t>(bytes.size(), 64);
        for (std::size_t i = 0; i < prefix; ++i) {
            for (const unsigned char value : {0x00, 0xFF, 0x80, 0x01}) {
                std::string mutated = bytes;
                if (static_cast<unsigned char>(mutated[i]) == value) continue;
                mutated[i] = static_cast<char>(value);
                EXPECT_NE(try_load_stream(mutated), LoadOutcome::wrong_exception)
                    << kind << ": byte " << i << " set to " << static_cast<int>(value)
                    << " (stream)";
                EXPECT_NE(try_load_span(mutated), LoadOutcome::wrong_exception)
                    << kind << ": byte " << i << " set to " << static_cast<int>(value)
                    << " (span)";
            }
        }
    }
}

TEST(BundleFuzz, OversizedCountsAreRejectedNotAllocated) {
    // Hand-build a header whose section count field claims 2^60 entries: the
    // loader must reject it as FormatError without attempting the
    // allocation.  (The count caps in bundle.cpp / serialize.hpp are the
    // fix this test pins.)
    const auto corpus = corpora();
    const auto& [kind, bytes] = corpus.front();
    for (const std::size_t offset : {std::size_t{9}, std::size_t{17}, std::size_t{25}}) {
        std::string mutated = bytes;
        if (mutated.size() < offset + 8) continue;
        const std::uint64_t absurd = 1ULL << 60;
        std::memcpy(mutated.data() + offset, &absurd, sizeof(absurd));
        const LoadOutcome outcome = try_load_stream(mutated);
        EXPECT_NE(outcome, LoadOutcome::wrong_exception)
            << kind << ": u64 at offset " << offset << " set to 2^60";
    }
}

TEST(BundleFuzz, AbsurdVersionIsNamedInTheError) {
    std::string mutated = corpora().front().second;
    mutated[4] = '\x2a';  // version 42
    mutated[5] = mutated[6] = mutated[7] = '\x00';
    try {
        std::istringstream in(mutated, std::ios::binary);
        util::BinaryReader reader(in);
        (void)api::DeploymentBundle::load(reader);
        FAIL() << "version 42 should not load";
    } catch (const FormatError& error) {
        EXPECT_NE(std::string(error.what()).find("42"), std::string::npos) << error.what();
    }
}

}  // namespace
