// Tests for the `.hdlk` deployment bundle (src/api/bundle.*): round-trips of
// both variants, corrupt/short-file rejection, and the key-stripping
// guarantee of export_device().

#include "api/bundle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>

#include "api/facades.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace hdlock;

DeploymentConfig small_config() {
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 16;
    config.n_levels = 4;
    config.n_layers = 2;
    config.seed = 31;
    return config;
}

/// A trained owner bundle (discretizer + model populated).
api::DeploymentBundle trained_owner_bundle() {
    data::SyntheticSpec spec;
    spec.name = "bundle";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 60;
    spec.n_levels = 4;
    spec.seed = 8;
    const auto benchmark = data::make_benchmark(spec);
    api::Owner owner = api::Owner::provision(small_config());
    owner.train(benchmark.train);
    return owner.to_bundle();
}

std::string serialize(const api::DeploymentBundle& bundle) {
    std::ostringstream out(std::ios::binary);
    util::BinaryWriter writer(out);
    bundle.save(writer);
    return out.str();
}

api::DeploymentBundle deserialize(const std::string& bytes) {
    std::istringstream in(bytes, std::ios::binary);
    util::BinaryReader reader(in);
    return api::DeploymentBundle::load(reader);
}

std::filesystem::path temp_path(const std::string& name) {
    return std::filesystem::temp_directory_path() / name;
}

}  // namespace

TEST(DeploymentBundle, OwnerRoundTripPreservesEverySection) {
    const auto bundle = trained_owner_bundle();
    const auto restored = deserialize(serialize(bundle));

    EXPECT_EQ(restored.kind, api::BundleKind::owner);
    EXPECT_EQ(restored.tie_seed, bundle.tie_seed);
    EXPECT_TRUE(restored.has_key());
    EXPECT_EQ(*restored.key, *bundle.key);
    EXPECT_EQ(*restored.value_mapping, *bundle.value_mapping);
    EXPECT_EQ(restored.store->pool_size(), bundle.store->pool_size());
    for (std::size_t p = 0; p < bundle.store->pool_size(); ++p) {
        EXPECT_EQ(restored.store->base(p), bundle.store->base(p));
    }
    ASSERT_TRUE(restored.has_discretizer());
    EXPECT_EQ(*restored.discretizer, *bundle.discretizer);
    ASSERT_TRUE(restored.has_model());
    EXPECT_EQ(restored.model->n_classes(), bundle.model->n_classes());
}

TEST(DeploymentBundle, UntrainedOwnerRoundTripsWithoutOptionalSections) {
    const auto bundle =
        api::DeploymentBundle::from_deployment(provision(small_config()));
    const auto restored = deserialize(serialize(bundle));
    EXPECT_TRUE(restored.has_key());
    EXPECT_FALSE(restored.has_discretizer());
    EXPECT_FALSE(restored.has_model());
}

TEST(DeploymentBundle, DeviceRoundTripReproducesEncodings) {
    const auto owner = trained_owner_bundle();
    const auto device = deserialize(serialize(owner.export_device()));

    EXPECT_EQ(device.kind, api::BundleKind::device);
    EXPECT_FALSE(device.has_key());
    const auto owner_encoder = owner.make_encoder();
    const auto device_encoder = device.make_encoder();
    util::Xoshiro256ss rng(55);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<int> levels(16);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(4));
        EXPECT_EQ(device_encoder->encode(levels), owner_encoder->encode(levels));
        EXPECT_EQ(device_encoder->encode_binary(levels), owner_encoder->encode_binary(levels));
    }
}

TEST(DeploymentBundle, ExportedDeviceFileContainsNoKeyBytes) {
    const auto owner = trained_owner_bundle();
    const std::string owner_bytes = serialize(owner);
    const std::string device_bytes = serialize(owner.export_device());

    // The owner artifact carries the tagged secret section; the device
    // artifact must not contain those section tags anywhere in the file.
    EXPECT_NE(owner_bytes.find("SECR"), std::string::npos);
    EXPECT_NE(owner_bytes.find("LKEY"), std::string::npos);
    EXPECT_EQ(device_bytes.find("SECR"), std::string::npos);
    EXPECT_EQ(device_bytes.find("LKEY"), std::string::npos);
    EXPECT_EQ(device_bytes.find("VMAP"), std::string::npos);
}

TEST(DeploymentBundle, LoadOwnerRefusesDeviceFileAndViceVersa) {
    const auto owner = trained_owner_bundle();
    const auto owner_path = temp_path("hdlock_bundle_owner_test.hdlk");
    const auto device_path = temp_path("hdlock_bundle_device_test.hdlk");
    owner.save_owner(owner_path);
    owner.export_device(device_path);

    EXPECT_NO_THROW(api::DeploymentBundle::load_owner(owner_path));
    EXPECT_NO_THROW(api::DeploymentBundle::load_device(device_path));
    EXPECT_THROW(api::DeploymentBundle::load_owner(device_path), FormatError);
    EXPECT_THROW(api::DeploymentBundle::load_device(owner_path), FormatError);

    std::filesystem::remove(owner_path);
    std::filesystem::remove(device_path);
}

TEST(DeploymentBundle, RejectsWrongMagicAndVersion) {
    std::string bytes = serialize(trained_owner_bundle());
    {
        std::string bad = bytes;
        bad[0] = 'X';  // corrupt the magic
        EXPECT_THROW(deserialize(bad), FormatError);
    }
    {
        std::string bad = bytes;
        bad[4] = char(0xFF);  // absurd version
        EXPECT_THROW(deserialize(bad), FormatError);
    }
}

TEST(DeploymentBundle, RejectsTruncatedFiles) {
    const std::string bytes = serialize(trained_owner_bundle());
    // Cutting the file anywhere — from the header through one byte short of
    // the HEND trailer — must throw FormatError, never return a bundle.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
        EXPECT_THROW(deserialize(bytes.substr(0, keep)), FormatError) << "kept " << keep;
    }
}

TEST(DeploymentBundle, RejectsUnknownSectionFlags) {
    std::string bytes = serialize(trained_owner_bundle());
    // Flags byte sits after "HDLK" + u32 version + u8 kind + u64 tie_seed.
    bytes[4 + 4 + 1 + 8] = char(0x80);
    EXPECT_THROW(deserialize(bytes), FormatError);
}

TEST(DeploymentBundle, RejectsDeviceStateInconsistentWithStore) {
    // Regression: a corrupt/hand-edited device artifact whose materialized
    // hypervectors disagree with the embedded store used to load fine and
    // fail only deep inside encode (or not at all).  In the v2 format the
    // count mismatch is named at load time; dimension mismatches cannot even
    // be *written* (the aligned block writer enforces a uniform dimension).
    const auto owner = trained_owner_bundle();

    {
        // One value hypervector dropped: count no longer matches the store.
        auto device = owner.export_device();
        device.value_hvs.pop_back();
        try {
            deserialize(serialize(device));
            FAIL() << "expected FormatError";
        } catch (const FormatError& error) {
            EXPECT_NE(std::string(error.what()).find("value hypervectors"), std::string::npos)
                << error.what();
        }
    }
    {
        // A hypervector of the wrong dimensionality is a save-side contract
        // violation: the v2 block layout has one dim for the whole section.
        auto device = owner.export_device();
        hdlock::util::Xoshiro256ss rng(99);
        device.feature_hvs[1] = hdc::BinaryHV::random(64, rng);
        EXPECT_THROW(serialize(device), ContractViolation);
    }
    {
        // Same mismatch through the legacy v1 writer: v1 can serialize it,
        // so the v1 *load* path must keep naming the bad hypervector.
        auto device = owner.export_device();
        hdlock::util::Xoshiro256ss rng(100);
        device.value_hvs[0] = hdc::BinaryHV::random(128, rng);
        std::ostringstream out(std::ios::binary);
        util::BinaryWriter writer(out);
        device.save_v1(writer);
        try {
            deserialize(out.str());
            FAIL() << "expected FormatError";
        } catch (const FormatError& error) {
            EXPECT_NE(std::string(error.what()).find("value hypervector 0"), std::string::npos)
                << error.what();
        }
    }

    // The untampered device bundle still round-trips.
    EXPECT_NO_THROW(deserialize(serialize(owner.export_device())));
}

TEST(DeploymentBundle, RejectsFeatureCountInconsistentWithPerFeatureDiscretizer) {
    // The store carries no feature count, but a per-feature discretizer
    // pins it: a device bundle whose materialized FeaHV array was truncated
    // must fail at load, not serve a model trained on more features.
    data::SyntheticSpec spec;
    spec.name = "bundle_pf";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 90;
    spec.n_test = 30;
    spec.n_levels = 4;
    spec.seed = 9;
    const auto benchmark = data::make_benchmark(spec);
    api::Owner owner = api::Owner::provision(small_config());
    api::TrainOptions options;
    options.discretizer_mode = hdc::DiscretizerMode::per_feature;
    owner.train(benchmark.train, options);

    auto device = owner.to_device_bundle();
    EXPECT_NO_THROW(deserialize(serialize(device)));
    device.feature_hvs.pop_back();
    try {
        deserialize(serialize(device));
        FAIL() << "expected FormatError";
    } catch (const FormatError& error) {
        EXPECT_NE(std::string(error.what()).find("per-feature discretizer"), std::string::npos)
            << error.what();
    }
}

TEST(DeploymentBundle, SerializedBytesMatchesFileSize) {
    const auto bundle = trained_owner_bundle();
    const auto path = temp_path("hdlock_bundle_size_test.hdlk");
    bundle.save_owner(path);
    EXPECT_EQ(bundle.serialized_bytes(), std::filesystem::file_size(path));
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// `.hdlk` v2: alignment, the mapped zero-copy load, and v1 compatibility.
// ---------------------------------------------------------------------------

namespace {

/// Byte offset of the first occurrence of `tag`, or npos.
std::size_t find_tag(const std::string& bytes, std::string_view tag) {
    return bytes.find(tag);
}

}  // namespace

TEST(DeploymentBundleV2, WritesVersion3WithAlignedSections) {
    const std::string bytes = serialize(trained_owner_bundle().export_device());
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes.substr(0, 4), "HDLK");
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 4, sizeof(version));
    EXPECT_EQ(version, 3u);
    // The bulk sections live behind "PUB2"/"SEN2"/"MDL2" headers.
    EXPECT_NE(find_tag(bytes, "PUB2"), std::string::npos);
    EXPECT_NE(find_tag(bytes, "SEN2"), std::string::npos);
    EXPECT_NE(find_tag(bytes, "MDL2"), std::string::npos);
    EXPECT_EQ(find_tag(bytes, "PUBS"), std::string::npos);
}

TEST(DeploymentBundleV2, LegacyV1ArtifactStillLoads) {
    const auto owner = trained_owner_bundle();
    const auto device = owner.export_device();

    for (const auto* bundle : {&owner, &device}) {
        std::ostringstream out(std::ios::binary);
        util::BinaryWriter writer(out);
        bundle->save_v1(writer);
        const auto restored = deserialize(out.str());
        EXPECT_EQ(restored.kind, bundle->kind);
        EXPECT_EQ(restored.tie_seed, bundle->tie_seed);
        ASSERT_TRUE(restored.has_model());
        // v1 and v2 restores describe the same encoder bit for bit.
        const auto v1_encoder = restored.make_encoder();
        const auto v2_encoder = deserialize(serialize(*bundle)).make_encoder();
        util::Xoshiro256ss rng(77);
        for (int trial = 0; trial < 4; ++trial) {
            std::vector<int> levels(16);
            for (auto& level : levels) level = static_cast<int>(rng.next_below(4));
            EXPECT_EQ(v1_encoder->encode(levels), v2_encoder->encode(levels));
        }
    }
}

TEST(DeploymentBundleV2, OpenMappedAliasesTheMappingInsteadOfCopying) {
    const auto owner = trained_owner_bundle();
    const auto path = temp_path("hdlock_bundle_mmap_test.hdlk");
    owner.export_device(path);

    const auto mapped = api::DeploymentBundle::open_mapped(path);
    ASSERT_TRUE(mapped.is_mapped());
    ASSERT_NE(mapped.backing, nullptr);

    // The zero-copy claim, checked directly: every bulk hypervector is a
    // view whose words point inside the mapping.
    const auto bytes = mapped.backing->bytes();
    const auto* begin = bytes.data();
    const auto* end = begin + bytes.size();
    auto inside = [&](const void* p) {
        return p >= static_cast<const void*>(begin) && p < static_cast<const void*>(end);
    };
    for (const auto& hv : mapped.feature_hvs) {
        EXPECT_TRUE(hv.is_view());
        EXPECT_TRUE(inside(hv.words().data()));
    }
    for (const auto& hv : mapped.store->bases()) {
        EXPECT_TRUE(hv.is_view());
        EXPECT_TRUE(inside(hv.words().data()));
    }
    ASSERT_TRUE(mapped.has_model());
    for (int cls = 0; cls < mapped.model->n_classes(); ++cls) {
        EXPECT_TRUE(mapped.model->class_sum(cls).is_view());
        EXPECT_TRUE(inside(mapped.model->class_sum(cls).values().data()));
    }

    // And it serves the same encodings as the copying load.
    const auto copied = api::DeploymentBundle::load_device(path);
    const auto mapped_encoder = mapped.make_encoder();
    const auto copied_encoder = copied.make_encoder();
    util::Xoshiro256ss rng(91);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<int> levels(16);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(4));
        EXPECT_EQ(mapped_encoder->encode_binary(levels), copied_encoder->encode_binary(levels));
    }
    std::filesystem::remove(path);
}

TEST(DeploymentBundleV2, MappedDeviceServesAfterBundleAndDeviceAreGone) {
    // The lifetime contract: sessions and encoders anchor the mapping, so a
    // temporary Device (the CLI idiom) cannot leave them dangling.
    data::SyntheticSpec spec;
    spec.name = "bundle_mmap_serve";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 40;
    spec.n_levels = 4;
    spec.seed = 8;
    const auto benchmark = data::make_benchmark(spec);
    api::Owner owner = api::Owner::provision(small_config());
    owner.train(benchmark.train);
    const auto path = temp_path("hdlock_bundle_mmap_serve_test.hdlk");
    owner.export_device(path);

    const auto reference = owner.make_device().predict(benchmark.test.X);
    // Session minted from a *temporary* mapped Device.
    const auto session = api::Device::open_mapped(path).open_session({.n_threads = 2});
    EXPECT_EQ(session.predict(benchmark.test.X), reference);

    // Owner bundles refuse the device-side mapped entry point.
    const auto owner_path = temp_path("hdlock_bundle_mmap_owner_test.hdlk");
    owner.save(owner_path);
    EXPECT_THROW(api::Device::open_mapped(owner_path), FormatError);

    std::filesystem::remove(path);
    std::filesystem::remove(owner_path);
}

TEST(DeploymentBundleV2, WillneedAdviceServesBitIdentically) {
    // Device::open_mapped(path, willneed) is the cold-start prefetch knob:
    // it may only change page-in timing, never bytes or labels.
    data::SyntheticSpec spec;
    spec.name = "bundle_mmap_advise";
    spec.n_features = 16;
    spec.n_classes = 3;
    spec.n_train = 120;
    spec.n_test = 40;
    spec.n_levels = 4;
    spec.seed = 8;
    const auto benchmark = data::make_benchmark(spec);
    api::Owner owner = api::Owner::provision(small_config());
    owner.train(benchmark.train);
    const auto path = temp_path("hdlock_bundle_mmap_advise_test.hdlk");
    owner.export_device(path);

    const auto plain = api::Device::open_mapped(path).predict(benchmark.test.X);
    const auto advised =
        api::Device::open_mapped(path, util::MappedFile::Advice::willneed)
            .predict(benchmark.test.X);
    EXPECT_EQ(advised, plain);

    std::filesystem::remove(path);
}

TEST(DeploymentBundleV2, MutatingAMappedModelDetachesCopyOnWrite) {
    const auto owner = trained_owner_bundle();
    const auto path = temp_path("hdlock_bundle_mmap_cow_test.hdlk");
    owner.export_device(path);

    auto mapped = api::DeploymentBundle::open_mapped(path);
    ASSERT_TRUE(mapped.has_model());
    hdc::HdcModel model = *mapped.model;
    hdc::IntHV sum = model.class_sum(0);
    ASSERT_TRUE(sum.is_view());
    const std::int32_t before = sum[0];
    sum.values()[0] = before + 7;  // mutation detaches...
    EXPECT_FALSE(sum.is_view());
    EXPECT_EQ(sum[0], before + 7);
    // ...and the mapping (and every other view) is untouched.
    EXPECT_EQ(mapped.model->class_sum(0)[0], before);
    std::filesystem::remove(path);
}

TEST(DeploymentBundleV2, RejectsTruncatedAndCorruptPadding) {
    const auto device = trained_owner_bundle().export_device();
    const std::string bytes = serialize(device);

    // Truncation anywhere must throw, on the stream and the mapped reader.
    for (const std::size_t keep :
         {std::size_t{16}, bytes.size() / 3, bytes.size() / 2, bytes.size() - 1}) {
        const std::string cut = bytes.substr(0, keep);
        EXPECT_THROW(deserialize(cut), FormatError) << "stream, kept " << keep;
        util::BinaryReader reader(
            std::as_bytes(std::span<const char>(cut.data(), cut.size())));
        EXPECT_THROW(api::DeploymentBundle::load(reader), FormatError)
            << "mapped, kept " << keep;
    }

    // Non-zero bytes inside a section's alignment padding mean the section
    // offsets are off (a corrupt or hand-spliced artifact): named rejection
    // instead of interpreting misaligned words.
    const std::size_t pub2 = bytes.find("PUB2");
    ASSERT_NE(pub2, std::string::npos);
    const std::size_t header_end = pub2 + 4 + 3 * 8;  // tag + dim/pool/levels
    const std::size_t padded_to = (header_end + 63) / 64 * 64;
    ASSERT_GT(padded_to, header_end) << "fixture layout: header must need padding";
    std::string corrupt = bytes;
    corrupt[header_end] = 'X';
    try {
        deserialize(corrupt);
        FAIL() << "expected FormatError";
    } catch (const FormatError& error) {
        EXPECT_NE(std::string(error.what()).find("padding"), std::string::npos) << error.what();
    }
}
