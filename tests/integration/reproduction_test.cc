// Integration: small-scale executable versions of every paper claim — each
// test is one table/figure's qualitative statement, so a green run certifies
// the reproduction end to end (the bench binaries then regenerate the full
// rows at paper scale).

#include <gtest/gtest.h>

#include <cmath>

#include "attack/feature_attack.hpp"
#include "attack/ip_theft.hpp"
#include "attack/lock_attack.hpp"
#include "attack/locked_theft.hpp"
#include "attack/value_attack.hpp"
#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "hw/pipeline_model.hpp"

namespace {

using namespace hdlock;

Deployment deploy(std::size_t n_layers, std::size_t n_features = 48, std::size_t dim = 2048,
                  std::uint64_t seed = 11) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = 8;
    config.n_layers = n_layers;
    config.seed = seed;
    return provision(config);
}

}  // namespace

TEST(PaperClaims, Fig3_CorrectGuessIsUniqueMinimum) {
    const auto deployment = deploy(0);
    const attack::EncodingOracle oracle(deployment.encoder);
    const auto& mapping = deployment.secure->value_mapping();
    const std::size_t correct = deployment.secure->key().entry(0, 0).base_index;

    for (const bool binary : {true, false}) {
        const auto curve =
            attack::feature_guess_curve(*deployment.store, oracle, mapping, 0, binary);
        EXPECT_EQ(curve.best_candidate, correct) << (binary ? "binary" : "non-binary");
        EXPECT_LT(curve.best_distance, curve.runner_up_distance);
    }
}

TEST(PaperClaims, Table1_FullMappingLeaksAndCloneMatches) {
    data::SyntheticSpec spec;
    spec.name = "t1";
    spec.n_features = 48;
    spec.n_classes = 4;
    spec.n_train = 240;
    spec.n_test = 120;
    spec.n_levels = 8;
    spec.noise = 0.14;
    spec.seed = 31;
    const auto data = make_benchmark(spec);

    attack::IpTheftConfig config;
    config.kind = hdc::ModelKind::binary;
    config.dim = 2048;
    config.n_levels = 8;
    config.seed = 13;
    const auto report = attack::steal_model(data.train, data.test, config);

    EXPECT_DOUBLE_EQ(report.value_mapping_accuracy, 1.0);
    EXPECT_DOUBLE_EQ(report.feature_mapping_accuracy, 1.0);
    EXPECT_NEAR(report.recovered_accuracy, report.original_accuracy, 0.06);
}

TEST(PaperClaims, Fig5_SingleParameterSweepsIdentifyTruthOnBinary) {
    const auto deployment = deploy(2);
    const attack::EncodingOracle oracle(deployment.encoder);
    const auto& key = deployment.secure->key();
    const auto& mapping = deployment.secure->value_mapping();

    for (const auto parameter :
         {attack::LockParameter::rotation, attack::LockParameter::base_index}) {
        for (const std::size_t layer : {std::size_t{0}, std::size_t{1}}) {
            attack::LockSweepConfig config;
            config.layer = layer;
            config.parameter = parameter;
            config.binary_oracle = true;
            const auto sweep = attack::sweep_lock_parameter(*deployment.store, oracle, key,
                                                            mapping, config);
            const auto& truth = key.entry(0, layer);
            const std::size_t correct = parameter == attack::LockParameter::rotation
                                            ? truth.rotation
                                            : truth.base_index;
            EXPECT_EQ(sweep.best_guess, correct);
            EXPECT_LT(sweep.best_score, sweep.runner_up_score);
        }
    }
}

TEST(PaperClaims, Fig6_NonBinarySweepReachesCosineOne) {
    const auto deployment = deploy(2);
    const attack::EncodingOracle oracle(deployment.encoder);
    attack::LockSweepConfig config;
    config.parameter = attack::LockParameter::base_index;
    config.binary_oracle = false;
    const auto sweep =
        attack::sweep_lock_parameter(*deployment.store, oracle, deployment.secure->key(),
                                     deployment.secure->value_mapping(), config);
    // Score is 1 - cosine: exactly 0 for the correct guess.
    EXPECT_DOUBLE_EQ(sweep.best_score, 0.0);
    EXPECT_GT(sweep.runner_up_score, 0.5);
}

TEST(PaperClaims, Fig7_ComplexityHeadlines) {
    EXPECT_NEAR(complexity::log10_guesses(784, 10000, 784, 0), std::log10(784.0 * 784.0), 1e-12);
    EXPECT_NEAR(complexity::log10_guesses(784, 10000, 784, 1),
                std::log10(784.0) + std::log10(10000.0 * 784.0), 1e-9);
    // 4.81e16 and the 7.82e10 gain, as quoted in Sec. 4.2 / 5.2.
    EXPECT_NEAR(complexity::log10_guesses(784, 10000, 784, 2), 16.683, 0.002);
    EXPECT_NEAR(complexity::security_gain_log10(784, 10000, 784, 2), 10.894, 0.002);
}

TEST(PaperClaims, Fig8_LockingCostsNoAccuracy) {
    data::SyntheticSpec spec;
    spec.name = "f8";
    spec.n_features = 48;
    spec.n_classes = 4;
    spec.n_train = 240;
    spec.n_test = 120;
    spec.n_levels = 8;
    spec.noise = 0.14;
    spec.seed = 41;
    const auto data = make_benchmark(spec);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::non_binary;
    double baseline = 0.0;
    for (const std::size_t layers : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
        const auto deployment = deploy(layers);
        const auto classifier =
            hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline);
        const double accuracy = classifier.evaluate(data.test);
        if (layers == 0) {
            baseline = accuracy;
        } else {
            EXPECT_NEAR(accuracy, baseline, 0.06) << "L = " << layers;
        }
    }
}

TEST(PaperClaims, Fig9_RelativeTimeStructure) {
    const hw::HwConfig config;
    const auto mnist = hw::relative_time_curve(config, 10000, 784, 5);
    ASSERT_EQ(mnist.size(), 5u);
    EXPECT_DOUBLE_EQ(mnist[0], 1.0);          // L=1: permutation is free
    EXPECT_NEAR(mnist[1], 1.21, 0.02);        // the headline 21% overhead
    EXPECT_NEAR(mnist[2] - mnist[1], mnist[1] - mnist[0], 0.01);  // linear
    // Dataset independence: PAMAP's curve coincides with MNIST's.
    const auto pamap = hw::relative_time_curve(config, 10000, 75, 5);
    for (std::size_t l = 0; l < 5; ++l) EXPECT_NEAR(mnist[l], pamap[l], 0.02);
}

TEST(PaperClaims, Defense_NaiveTheftCollapsesOnLockedDevice) {
    data::SyntheticSpec spec;
    spec.name = "def";
    spec.n_features = 48;
    spec.n_classes = 4;
    spec.n_train = 240;
    spec.n_test = 120;
    spec.n_levels = 8;
    spec.noise = 0.14;
    spec.seed = 51;
    const auto data = make_benchmark(spec);

    attack::LockedTheftConfig config;
    config.kind = hdc::ModelKind::binary;
    config.dim = 2048;
    config.n_levels = 8;
    config.n_layers = 2;
    config.seed = 17;
    const auto report = attack::steal_locked_model(data.train, data.test, config);

    EXPECT_GT(report.original_accuracy, 0.8);
    EXPECT_EQ(report.feature_hv_recovery, 0.0);
    // At N = 48 / D = 2048 a sliver of value-structure correlation survives
    // binarization (see locked_theft_test for the full phenomenon), so the
    // bound here is "most of the accuracy is gone", not exact chance.
    EXPECT_LT(report.transfer_accuracy, report.original_accuracy - 0.35);
    EXPECT_LT(report.transfer_accuracy, 2.0 * report.chance_accuracy);
    EXPECT_GT(report.log10_guesses_required, report.log10_guesses_baseline + 8.0);
}
