// Integration: the full owner-side pipeline across module boundaries —
// provisioning, training, serialization round-trips of every artifact, and
// restored-state equivalence.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/locked_encoder.hpp"
#include "data/loaders.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "util/serialize.hpp"

namespace {

using namespace hdlock;

data::SyntheticBenchmark benchmark() {
    data::SyntheticSpec spec;
    spec.name = "e2e";
    spec.n_features = 40;
    spec.n_classes = 3;
    spec.n_train = 210;
    spec.n_test = 90;
    spec.n_levels = 8;
    spec.noise = 0.12;
    spec.seed = 77;
    return data::make_benchmark(spec);
}

Deployment deploy(std::size_t n_layers, std::uint64_t seed = 9) {
    DeploymentConfig config;
    config.dim = 2048;
    config.n_features = 40;
    config.n_levels = 8;
    config.n_layers = n_layers;
    config.seed = seed;
    return provision(config);
}

template <typename T>
T round_trip(const T& object) {
    std::stringstream stream;
    util::BinaryWriter writer(stream);
    object.save(writer);
    util::BinaryReader reader(stream);
    return T::load(reader);
}

}  // namespace

class EndToEndTest : public ::testing::TestWithParam<std::tuple<hdc::ModelKind, std::size_t>> {};

TEST_P(EndToEndTest, TrainedPipelinePredictsAboveChanceAndIsDeterministic) {
    const auto [kind, n_layers] = GetParam();
    const auto data = benchmark();
    const auto deployment = deploy(n_layers);

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = kind;
    pipeline.train.retrain_epochs = 5;
    const auto first = hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline);
    const auto second = hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline);

    EXPECT_GT(first.evaluate(data.test), 0.8);
    // Same encoder, same config, same data: training is fully deterministic.
    EXPECT_EQ(first.predict(data.test), second.predict(data.test));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLayers, EndToEndTest,
    ::testing::Combine(::testing::Values(hdc::ModelKind::binary, hdc::ModelKind::non_binary),
                       ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{3})),
    [](const ::testing::TestParamInfo<std::tuple<hdc::ModelKind, std::size_t>>& info) {
        const bool binary = std::get<0>(info.param) == hdc::ModelKind::binary;
        return std::string(binary ? "binary" : "nonbinary") + "_L" +
               std::to_string(std::get<1>(info.param));
    });

TEST(EndToEnd, EveryDeploymentArtifactSurvivesSerialization) {
    const auto deployment = deploy(2);

    const auto restored_store = round_trip(*deployment.store);
    const auto restored_key = round_trip(deployment.secure->key());

    EXPECT_EQ(restored_key, deployment.secure->key());
    EXPECT_EQ(restored_store.pool_size(), deployment.store->pool_size());
    for (std::size_t p = 0; p < restored_store.pool_size(); ++p) {
        EXPECT_EQ(restored_store.base(p), deployment.store->base(p));
    }
    for (std::size_t s = 0; s < restored_store.n_levels(); ++s) {
        EXPECT_EQ(restored_store.value_slot(s), deployment.store->value_slot(s));
    }
}

TEST(EndToEnd, RestoredEncoderReproducesEncodingsBitExactly) {
    const auto deployment = deploy(2);
    const auto restored_store = std::make_shared<const PublicStore>(round_trip(*deployment.store));
    const LockedEncoder restored(restored_store, round_trip(deployment.secure->key()),
                                 deployment.secure->value_mapping(),
                                 deployment.encoder->tie_seed());

    util::Xoshiro256ss rng(123);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<int> levels(40);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(8));
        EXPECT_EQ(restored.encode(levels), deployment.encoder->encode(levels));
        EXPECT_EQ(restored.encode_binary(levels), deployment.encoder->encode_binary(levels));
    }
}

TEST(EndToEnd, RestoredModelPredictsIdentically) {
    const auto data = benchmark();
    const auto deployment = deploy(1);
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    const auto classifier = hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline);

    const auto restored_model = round_trip(classifier.model());
    const auto batch = classifier.encode_dataset(data.test);
    EXPECT_EQ(restored_model.predict_batch(batch), classifier.model().predict_batch(batch));
}

TEST(EndToEnd, LockedAndPlainPipelinesAgreeOnDifficulty) {
    // Fig. 8's core claim at integration level: locking does not change what
    // the model can learn.  Train the same data through L=0 and L=3 devices
    // and compare accuracies.
    const auto data = benchmark();
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::non_binary;

    const auto plain = hdc::HdcClassifier::fit(data.train, deploy(0).encoder, pipeline);
    const auto locked = hdc::HdcClassifier::fit(data.train, deploy(3).encoder, pipeline);
    EXPECT_NEAR(plain.evaluate(data.test), locked.evaluate(data.test), 0.06);
}

TEST(EndToEnd, DatasetCsvRoundTripPreservesPredictions) {
    const auto data = benchmark();
    const auto deployment = deploy(2);
    hdc::PipelineConfig pipeline;
    pipeline.train.kind = hdc::ModelKind::binary;
    const auto classifier = hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline);

    const auto tmp = std::filesystem::temp_directory_path() / "hdlock_e2e_test.csv";
    data::save_csv(data.test, tmp);
    const auto loaded = data::load_csv(tmp);
    std::filesystem::remove(tmp);

    EXPECT_EQ(classifier.predict(loaded), classifier.predict(data.test));
}
