// Integration: failure injection across artifact boundaries — corrupted,
// truncated, mistyped and missing files must fail loudly with the library's
// error types, never crash or silently misload; API misuse across modules
// must be caught by contract checks.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "attack/ip_theft.hpp"
#include "attack/locked_theft.hpp"
#include "core/locked_encoder.hpp"
#include "data/synthetic.hpp"
#include "hdc/classifier.hpp"
#include "util/serialize.hpp"

namespace {

using namespace hdlock;
namespace fs = std::filesystem;

class ScratchDir {
public:
    ScratchDir() : dir_(fs::temp_directory_path() / "hdlock_failure_injection") {
        fs::create_directories(dir_);
    }
    ~ScratchDir() { fs::remove_all(dir_); }
    fs::path operator/(const std::string& name) const { return dir_ / name; }

private:
    fs::path dir_;
};

Deployment small_deployment(std::size_t n_layers = 2) {
    DeploymentConfig config;
    config.dim = 512;
    config.n_features = 8;
    config.n_levels = 4;
    config.n_layers = n_layers;
    config.seed = 3;
    return provision(config);
}

void truncate_file(const fs::path& path, std::uintmax_t keep) {
    fs::resize_file(path, keep);
}

void flip_byte(const fs::path& path, std::uintmax_t offset) {
    std::fstream stream(path, std::ios::in | std::ios::out | std::ios::binary);
    stream.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    stream.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    stream.seekp(static_cast<std::streamoff>(offset));
    stream.write(&byte, 1);
}

}  // namespace

TEST(FailureInjection, MissingFileThrowsIoError) {
    EXPECT_THROW(util::load_file<LockKey>("/nonexistent/dir/key.bin"), IoError);
    EXPECT_THROW(util::save_file(LockKey::plain_random(4, 4, 1), "/nonexistent/dir/key.bin"),
                 IoError);
}

TEST(FailureInjection, TruncatedStoreThrowsFormatError) {
    const ScratchDir scratch;
    const auto deployment = small_deployment();
    const auto path = scratch / "store.bin";
    util::save_file(*deployment.store, path);

    const auto full_size = fs::file_size(path);
    for (const auto keep : {full_size / 2, full_size / 8, std::uintmax_t{5}}) {
        truncate_file(path, keep);
        EXPECT_THROW(util::load_file<PublicStore>(path), FormatError) << "kept " << keep;
    }
}

TEST(FailureInjection, WrongArtifactTypeIsRejectedByTag) {
    const ScratchDir scratch;
    const auto deployment = small_deployment();
    const auto path = scratch / "store.bin";
    util::save_file(*deployment.store, path);
    // A PublicStore file is not a LockKey, a model, or a discretizer.
    EXPECT_THROW(util::load_file<LockKey>(path), FormatError);
    EXPECT_THROW(util::load_file<hdc::HdcModel>(path), FormatError);
    EXPECT_THROW(util::load_file<hdc::MinMaxDiscretizer>(path), FormatError);
}

TEST(FailureInjection, CorruptedHeaderIsDetected) {
    const ScratchDir scratch;
    const auto path = scratch / "key.bin";
    util::save_file(LockKey::random(8, 2, 16, 512, 7), path);
    flip_byte(path, 0);  // first tag byte
    EXPECT_THROW(util::load_file<LockKey>(path), FormatError);
}

TEST(FailureInjection, CorruptedLengthFieldCannotAllocateAbsurdly) {
    // Flip a byte inside the length region: the reader must throw (length
    // check or premature EOF) instead of attempting a hundred-GiB resize.
    const ScratchDir scratch;
    const auto path = scratch / "key.bin";
    util::save_file(LockKey::random(8, 2, 16, 512, 7), path);
    for (const std::uintmax_t offset : {5u, 6u, 9u, 12u}) {
        auto copy = scratch / ("key_" + std::to_string(offset) + ".bin");
        fs::copy_file(path, copy);
        flip_byte(copy, offset);
        EXPECT_THROW((void)util::load_file<LockKey>(copy), Error) << "offset " << offset;
    }
}

TEST(FailureInjection, EncoderRejectsMalformedInputs) {
    const auto deployment = small_deployment();
    EXPECT_THROW((void)deployment.encoder->encode(std::vector<int>(7, 0)), ContractViolation);
    EXPECT_THROW((void)deployment.encoder->encode(std::vector<int>(9, 0)), ContractViolation);
    EXPECT_THROW((void)deployment.encoder->encode(std::vector<int>(8, 4)), ContractViolation);
    EXPECT_THROW((void)deployment.encoder->encode(std::vector<int>(8, -1)), ContractViolation);
}

TEST(FailureInjection, TheftExperimentsRejectMismatchedDeployments) {
    data::SyntheticSpec spec;
    spec.n_features = 8;
    spec.n_classes = 2;
    spec.n_train = 40;
    spec.n_test = 20;
    spec.n_levels = 4;
    spec.seed = 9;
    const auto data = data::make_benchmark(spec);

    // A locked deployment fed to the unprotected experiment and vice versa.
    attack::IpTheftConfig plain_config;
    plain_config.dim = 512;
    plain_config.n_levels = 4;
    EXPECT_THROW(
        attack::steal_model(small_deployment(2), data.train, data.test, plain_config),
        ContractViolation);

    attack::LockedTheftConfig locked_config;
    locked_config.dim = 512;
    locked_config.n_levels = 4;
    locked_config.n_layers = 1;
    EXPECT_THROW(attack::steal_locked_model(small_deployment(0), data.train, data.test,
                                            locked_config),
                 ContractViolation);
}

TEST(FailureInjection, ClassifierRejectsShapeMismatches) {
    data::SyntheticSpec spec;
    spec.n_features = 12;  // != deployment's 8
    spec.n_classes = 2;
    spec.n_train = 40;
    spec.n_test = 20;
    spec.n_levels = 4;
    spec.seed = 9;
    const auto data = data::make_benchmark(spec);
    const auto deployment = small_deployment();

    hdc::PipelineConfig pipeline;
    EXPECT_THROW(hdc::HdcClassifier::fit(data.train, deployment.encoder, pipeline),
                 ContractViolation);
}

TEST(FailureInjection, RoundTrippedDeploymentAttacksIdentically) {
    // Control: after a full save/load cycle the reassembled deployment is
    // attack-equivalent to the original (same recovered mapping).
    const ScratchDir scratch;
    const auto deployment = small_deployment(0);
    util::save_file(*deployment.store, scratch / "store.bin");
    util::save_file(deployment.secure->key(), scratch / "key.bin");

    Deployment restored;
    restored.store = std::make_shared<const PublicStore>(
        util::load_file<PublicStore>(scratch / "store.bin"));
    auto key = util::load_file<LockKey>(scratch / "key.bin");
    auto mapping = deployment.secure->value_mapping();
    restored.encoder = std::make_shared<const LockedEncoder>(
        restored.store, key.clone(), mapping, deployment.encoder->tie_seed());
    restored.secure = std::make_shared<SecureStore>(std::move(key), std::move(mapping));

    const attack::EncodingOracle original_oracle(deployment.encoder);
    const attack::EncodingOracle restored_oracle(restored.encoder);
    const auto original = attack::extract_value_mapping(*deployment.store, original_oracle, true);
    const auto again = attack::extract_value_mapping(*restored.store, restored_oracle, true);
    EXPECT_EQ(original.level_to_slot, again.level_to_slot);
}
