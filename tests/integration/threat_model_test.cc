// Integration: the Sec. 3.1 threat model as enforced by the library's
// architecture — what the attacker can and cannot reach, and how the attack
// degrades when its assumptions are violated.

#include <gtest/gtest.h>

#include "attack/feature_attack.hpp"
#include "attack/oracle.hpp"
#include "attack/value_attack.hpp"
#include "core/locked_encoder.hpp"
#include "util/error.hpp"

namespace {

using namespace hdlock;

Deployment deploy(std::size_t n_layers, std::uint64_t seed = 3) {
    DeploymentConfig config;
    config.dim = 2048;
    config.n_features = 48;
    config.n_levels = 8;
    config.n_layers = n_layers;
    config.seed = seed;
    return provision(config);
}

}  // namespace

TEST(ThreatModel, SealedSecureStoreDeniesEveryRead) {
    const auto deployment = deploy(2);
    EXPECT_NO_THROW((void)deployment.secure->key());
    EXPECT_NO_THROW((void)deployment.secure->value_mapping());

    deployment.secure->seal();
    EXPECT_TRUE(deployment.secure->sealed());
    EXPECT_THROW((void)deployment.secure->key(), AccessDenied);
    EXPECT_THROW((void)deployment.secure->value_mapping(), AccessDenied);
    // Sealing is one-way and footprint accounting stays available (it leaks
    // only sizes, which the threat model treats as public).
    EXPECT_NO_THROW((void)deployment.secure->storage_bits(48, 2048));
}

TEST(ThreatModel, EncoderKeepsWorkingAfterSeal) {
    const auto deployment = deploy(2);
    const std::vector<int> levels(48, 1);
    const auto before = deployment.encoder->encode(levels);
    deployment.secure->seal();
    EXPECT_EQ(deployment.encoder->encode(levels), before);
}

TEST(ThreatModel, OracleCountsEveryObservation) {
    const auto deployment = deploy(0);
    const attack::EncodingOracle oracle(deployment.encoder);
    const std::vector<int> levels(48, 0);

    EXPECT_EQ(oracle.query_count(), 0u);
    (void)oracle.query(levels);
    (void)oracle.query_binary(levels);
    (void)oracle.query_binary(levels);
    EXPECT_EQ(oracle.query_count(), 3u);
}

TEST(ThreatModel, ValueAttackNeedsOnlyPublicMemoryAndOracle) {
    // The attack signature *is* the threat model: the value extraction runs
    // to completion given nothing but (PublicStore, EncodingOracle), with
    // the secure store sealed the whole time.
    const auto deployment = deploy(0);
    deployment.secure->seal();

    const attack::EncodingOracle oracle(deployment.encoder);
    const auto result = attack::extract_value_mapping(*deployment.store, oracle,
                                                      /*binary_oracle=*/true);
    EXPECT_EQ(result.level_to_slot.size(), 8u);
    EXPECT_GT(result.oracle_queries, 0u);
    EXPECT_NEAR(result.endpoint_distance, 0.5, 0.1);
}

TEST(ThreatModel, FeatureAttackFailsClosedOnShapeMismatch) {
    // P != N breaks the baseline threat model's precondition (the pool
    // entries are the feature hypervectors); the attack must refuse loudly
    // rather than return garbage.
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 16;
    config.n_levels = 4;
    config.pool_size = 24;  // P > N
    config.n_layers = 1;
    config.seed = 5;
    const auto deployment = provision(config);

    const attack::EncodingOracle oracle(deployment.encoder);
    const std::vector<std::uint32_t> fake_mapping{0, 1, 2, 3};
    EXPECT_THROW(attack::extract_feature_mapping(*deployment.store, oracle, fake_mapping,
                                                 attack::FeatureAttackConfig{}),
                 ContractViolation);
}

TEST(ThreatModel, WrongValueMappingPoisonsFeatureRecovery) {
    // Sec. 3.2's step order matters: feature extraction consumes the value
    // mapping.  Feed it a reversed (wrong-orientation) mapping and the
    // recovered permutation must degrade measurably versus the true one.
    const auto deployment = deploy(0);
    const attack::EncodingOracle oracle(deployment.encoder);

    const auto& truth = deployment.secure->value_mapping();
    std::vector<std::uint32_t> reversed(truth.rbegin(), truth.rend());

    attack::FeatureAttackConfig config;
    const auto good =
        attack::extract_feature_mapping(*deployment.store, oracle, truth, config);
    const auto bad =
        attack::extract_feature_mapping(*deployment.store, oracle, reversed, config);

    const auto& key = deployment.secure->key();
    const auto hits = [&](const attack::FeatureExtractionResult& result) {
        std::size_t count = 0;
        for (std::size_t i = 0; i < 48; ++i) {
            count += result.feature_to_slot[i] == key.entry(i, 0).base_index ? 1u : 0u;
        }
        return count;
    };
    EXPECT_EQ(hits(good), 48u);
    // With Val_1 and Val_M swapped the crafted probe's interpretation is
    // inverted; the margin collapses and recovery is no better than chance.
    EXPECT_LT(hits(bad), 8u);
    EXPECT_LT(bad.mean_margin, good.mean_margin);
}

TEST(ThreatModel, QueryBudgetOfFullTheftIsLinearInFeatures) {
    // The attack's practicality claim: O(N) crafted inputs suffice (1 for
    // the value step with P == N, then one probe per feature).
    for (const std::size_t n_features : {16u, 32u, 64u}) {
        DeploymentConfig config;
        config.dim = 1024;
        config.n_features = n_features;
        config.n_levels = 4;
        config.n_layers = 0;
        config.seed = 7;
        const auto deployment = provision(config);
        const attack::EncodingOracle oracle(deployment.encoder);

        const auto values = attack::extract_value_mapping(*deployment.store, oracle, true);
        (void)attack::extract_feature_mapping(*deployment.store, oracle, values.level_to_slot,
                                              attack::FeatureAttackConfig{});
        EXPECT_LE(oracle.query_count(), 2 * n_features + 8) << "N = " << n_features;
    }
}
