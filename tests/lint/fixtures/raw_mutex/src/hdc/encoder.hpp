#pragma once
#include <mutex>

#include "util/sync.hpp"

struct Encoder {
    std::mutex guard;
    // hdlock-lint: allow(raw-sync-primitive) — fixture-sanctioned legacy field
    std::thread* legacy;
};
