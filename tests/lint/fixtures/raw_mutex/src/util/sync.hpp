#pragma once
#include <mutex>

struct Wrapper {
    std::mutex raw;  // fine: util is a raw layer
};
