#pragma once
#include "util/rng.hpp"
struct Encoder {
    virtual ~Encoder() = default;
    virtual unsigned encode(unsigned x) const = 0;
};
