#pragma once
// hdlock-lint: secret-header
#include "util/rng.hpp"
struct SubKeyEntry {
    unsigned base_index = 0;
    unsigned rotation = 0;
};
struct LockKey {
    SubKeyEntry entry;
};
