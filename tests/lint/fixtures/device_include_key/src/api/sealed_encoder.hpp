#pragma once
#include "hdc/encoder.hpp"
#include "core/key.hpp"
struct SealedEncoder : Encoder {
    unsigned encode(unsigned x) const override { return mix(x); }
};
