#include "api/sealed_encoder.hpp"
unsigned device_entry(unsigned x) { return SealedEncoder{}.encode(x); }
