#pragma once
inline unsigned mix(unsigned x) { return x * 2654435761u; }
