#pragma once
// hdlock-lint: secret-header
#include "util/common.hpp"
struct LockKey {
    int seed = common_answer();
};
