#pragma once
inline int common_answer() { return 42; }
