#include "device/encoder.hpp"
int device_entry() { return device_encode(1); }
