#pragma once
#include "util/common.hpp"
// A comment naming LockKey is fine: taint matching ignores comments.
inline int device_encode(int x) { return x + common_answer(); }
