#pragma once
// hdlock-lint: secret-header
struct LockKey {
    int value_mapping = 0;
};
