#include "core/key.hpp"

// Owner half: naming secrets here is legal.
int owner_save(const LockKey& key) { return key.value_mapping; }

// hdlock-lint: device-begin  (SEN2 device serialization)
int device_save_sen2(int payload) {
    int value_mapping = payload;                // must be flagged (line 8)
    int vm2 = value_mapping;                    // hdlock-lint: allow(secret-taint) — justified suppression
    return vm2 + payload;
}
// hdlock-lint: device-end

// Owner half again: back out of the region, legal once more.
int owner_restore(LockKey key) { return key.value_mapping; }
