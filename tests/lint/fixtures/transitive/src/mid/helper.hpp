#pragma once
#include "core/key.hpp"
#include "util/common.hpp"
inline int helper_seed(const LockKey& key) { return ident(key.seed); }
