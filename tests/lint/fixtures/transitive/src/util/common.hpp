#pragma once
inline int ident(int x) { return x; }
