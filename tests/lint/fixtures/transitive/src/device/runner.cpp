#include "util/common.hpp"

#include "mid/helper.hpp"

int device_run() { return ident(3); }
