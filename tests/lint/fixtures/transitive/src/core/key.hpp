#pragma once
// hdlock-lint: secret-header
struct LockKey {
    int seed = 7;
};
