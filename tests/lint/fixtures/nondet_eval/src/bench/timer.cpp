long bench_now() {
    return time(0);  // bench is not deterministic: not flagged
}

// hdlock-lint: allow(nondeterminism)
long bare() {
    return time(0);
}
