long to_time_t(long x);
long now_ticks();

long stamp() {
    return time(0);
}

long not_flagged() {
    return to_time_t(7);
}

long ok_timing() {
    // hdlock-lint: allow(nondeterminism) — fixture-sanctioned timing context,
    // justification continuing over a second comment line.
    return now_ticks() + time(0);
}
