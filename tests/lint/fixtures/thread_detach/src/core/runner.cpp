struct T {
    void detach();
    void join();
};

void bad(T& t) {
    t.detach();
}

void ok(T& t) {
    t.join();
}
