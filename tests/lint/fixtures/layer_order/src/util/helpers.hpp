#pragma once
#include "hdc/encoder.hpp"
inline int helper(int x) { return encode(x); }
