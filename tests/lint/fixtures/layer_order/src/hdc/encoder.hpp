#pragma once
inline int encode(int x) { return x ^ 0x5a; }
