struct M {
    void lock();
    void unlock();
};

void bad(M& m) {
    m.lock();
    m.unlock();
}

void ok(M& m) {
    m.lock();  // hdlock-lint: allow(manual-lock) — fixture-sanctioned call
    m.unlock();  // hdlock-lint: allow(manual-lock) — fixture-sanctioned call
}

void not_locking(M& m) {
    (void)m;  // mentions unlockable in a comment: .unlock( must not fire here
}
