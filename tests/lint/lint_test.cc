// Fixture-driven regression tests for hdlock_lint (tools/lint/).  Each
// fixture under tests/lint/fixtures/ is a miniature repo with its own
// layers.toml; the tests pin the exit-code contract (0 clean / 1 violations
// / 2 manifest errors) and the exact file:line each rule anchors to.  The
// final test runs the real manifest over the real tree: the repo itself
// must stay confinement-clean.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using hdlock::lint::Diagnostic;
using hdlock::lint::Manifest;
using hdlock::lint::ManifestError;
using hdlock::lint::Report;

namespace {

fs::path fixture(const std::string& name) {
    return fs::path(HDLOCK_LINT_FIXTURE_DIR) / name;
}

Report run_fixture(const std::string& name) {
    const fs::path root = fixture(name);
    const Manifest manifest = hdlock::lint::parse_manifest(root / "layers.toml");
    return hdlock::lint::run(manifest, root);
}

std::vector<Diagnostic> with_rule(const Report& report, const std::string& rule) {
    std::vector<Diagnostic> out;
    std::copy_if(report.diagnostics.begin(), report.diagnostics.end(), std::back_inserter(out),
                 [&](const Diagnostic& d) { return d.rule == rule; });
    return out;
}

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr) {
    std::vector<const char*> argv{"hdlock_lint"};
    for (const auto& arg : args) argv.push_back(arg.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int code =
        hdlock::lint::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return code;
}

TEST(LintFixtures, CleanTreeReportsNothing) {
    const Report report = run_fixture("clean");
    EXPECT_TRUE(report.clean()) << report.diagnostics.size() << " unexpected diagnostics";
    EXPECT_EQ(report.files_scanned, 4u);
    EXPECT_EQ(report.edges_checked, 3u);
}

TEST(LintFixtures, DeviceIncludeOfKeyHeaderIsCaughtWithFileAndLine) {
    // The acceptance scenario: a sealed-encoder header (device layer,
    // mirroring the real tree) directly includes core/key.hpp.
    const Report report = run_fixture("device_include_key");
    ASSERT_FALSE(report.clean());

    const auto order = with_rule(report, "layer-order");
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0].file, "src/api/sealed_encoder.hpp");
    EXPECT_EQ(order[0].line, 3);

    const auto reach = with_rule(report, "secret-reach");
    ASSERT_EQ(reach.size(), 2u);  // one per device translation unit
    EXPECT_EQ(reach[0].file, "src/api/sealed_encoder.cpp");
    EXPECT_EQ(reach[0].line, 1);
    EXPECT_NE(reach[0].message.find("src/api/sealed_encoder.hpp -> src/core/key.hpp"),
              std::string::npos)
        << reach[0].message;
    EXPECT_EQ(reach[1].file, "src/api/sealed_encoder.hpp");
    EXPECT_EQ(reach[1].line, 3);
}

TEST(LintFixtures, TransitiveReachThroughLegalEdgesIsCaught) {
    // device -> mid -> core/key.hpp: every edge is layer-legal, so only
    // secret-reach fires, anchored at the device file's own include.
    const Report report = run_fixture("transitive");
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "secret-reach");
    EXPECT_EQ(d.file, "src/device/runner.cpp");
    EXPECT_EQ(d.line, 3);
    EXPECT_NE(d.message.find("src/mid/helper.hpp -> src/core/key.hpp"), std::string::npos)
        << d.message;
}

TEST(LintFixtures, SecretIdentifierInSen2RegionIsFlaggedAndSuppressible) {
    const Report report = run_fixture("taint_sen2");
    ASSERT_EQ(report.diagnostics.size(), 1u)
        << "owner-half mentions and the suppressed line must not be flagged";
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "secret-taint");
    EXPECT_EQ(d.file, "src/api/bundle.cpp");
    EXPECT_EQ(d.line, 8);
    EXPECT_NE(d.message.find("value_mapping"), std::string::npos) << d.message;
}

TEST(LintFixtures, RawSyncPrimitiveOutsideRawLayersIsCaught) {
    // util is the [concurrency] raw layer: its std::mutex and <mutex> include
    // pass.  The hdc file is flagged for both the angle include and the
    // token; its std::thread member carries a justified allow on the
    // preceding comment line, which must extend to the code line below.
    const Report report = run_fixture("raw_mutex");
    const auto raw = with_rule(report, "raw-sync-primitive");
    ASSERT_EQ(raw.size(), report.diagnostics.size()) << "only raw-sync-primitive expected";
    ASSERT_EQ(raw.size(), 2u);
    EXPECT_EQ(raw[0].file, "src/hdc/encoder.hpp");
    EXPECT_EQ(raw[0].line, 2);  // #include <mutex>
    EXPECT_NE(raw[0].message.find("mutex"), std::string::npos) << raw[0].message;
    EXPECT_EQ(raw[1].file, "src/hdc/encoder.hpp");
    EXPECT_EQ(raw[1].line, 7);  // std::mutex member
    EXPECT_NE(raw[1].message.find("std::mutex"), std::string::npos) << raw[1].message;
}

TEST(LintFixtures, ManualLockAndUnlockAreRaiiOnly) {
    // Bare .lock()/.unlock() calls are flagged in every layer; the justified
    // allow(manual-lock) markers suppress theirs, and a mention inside a
    // comment must not fire (comments are stripped before matching).
    const Report report = run_fixture("manual_lock");
    const auto manual = with_rule(report, "manual-lock");
    ASSERT_EQ(manual.size(), report.diagnostics.size()) << "only manual-lock expected";
    ASSERT_EQ(manual.size(), 2u);
    EXPECT_EQ(manual[0].file, "src/core/locking.cpp");
    EXPECT_EQ(manual[0].line, 7);  // m.lock()
    EXPECT_EQ(manual[1].file, "src/core/locking.cpp");
    EXPECT_EQ(manual[1].line, 8);  // m.unlock()
}

TEST(LintFixtures, ThreadDetachIsBanned) {
    // .detach() anywhere is a violation; a plain declaration of a detach()
    // member (no '.'/'->' call syntax) is not.
    const Report report = run_fixture("thread_detach");
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "thread-detach");
    EXPECT_EQ(d.file, "src/core/runner.cpp");
    EXPECT_EQ(d.line, 7);
}

TEST(LintFixtures, NondeterminismInDeterministicLayerIsCaught) {
    // eval is deterministic = true: its bare time(0) call is flagged, the
    // to_time_t(...) call is not (call-form tokens respect the left word
    // boundary), and the allow(nondeterminism) justification spanning two
    // comment lines suppresses the code line that follows.  bench is not
    // deterministic, so its time(0) passes — but its *bare* allow marker
    // (no justification text) is itself reported.
    const Report report = run_fixture("nondet_eval");

    const auto nondet = with_rule(report, "nondeterminism");
    ASSERT_EQ(nondet.size(), 1u);
    EXPECT_EQ(nondet[0].file, "src/eval/report.cpp");
    EXPECT_EQ(nondet[0].line, 5);
    EXPECT_NE(nondet[0].message.find("time("), std::string::npos) << nondet[0].message;

    const auto bare = with_rule(report, "unjustified-suppression");
    ASSERT_EQ(bare.size(), 1u);
    EXPECT_EQ(bare[0].file, "src/bench/timer.cpp");
    EXPECT_EQ(bare[0].line, 5);

    EXPECT_EQ(report.diagnostics.size(), 2u);
}

TEST(LintFixtures, ConcurrencyManifestSectionsAreParsed) {
    const Manifest raw = hdlock::lint::parse_manifest(fixture("raw_mutex") / "layers.toml");
    ASSERT_EQ(raw.concurrency_raw_layers.size(), 1u);
    EXPECT_EQ(raw.concurrency_raw_layers[0], "util");
    EXPECT_EQ(raw.concurrency_raw_tokens.size(), 4u);
    EXPECT_EQ(raw.concurrency_raw_includes.size(), 2u);

    const Manifest nondet = hdlock::lint::parse_manifest(fixture("nondet_eval") / "layers.toml");
    ASSERT_EQ(nondet.layers.size(), 2u);
    EXPECT_TRUE(nondet.layers[0].deterministic) << nondet.layers[0].name;
    EXPECT_FALSE(nondet.layers[1].deterministic) << nondet.layers[1].name;
    EXPECT_EQ(nondet.nondeterminism_banned.size(), 3u);
}

TEST(LintFixtures, PureLayerOrderViolationIsCaught) {
    const Report report = run_fixture("layer_order");
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "layer-order");
    EXPECT_EQ(d.file, "src/util/helpers.hpp");
    EXPECT_EQ(d.line, 2);
}

TEST(LintFixtures, ManifestSyntaxErrorIsRejectedWithLine) {
    try {
        (void)hdlock::lint::parse_manifest(fixture("bad_manifest") / "layers.toml");
        FAIL() << "unterminated array must throw";
    } catch (const ManifestError& error) {
        EXPECT_EQ(error.line(), 4);
        EXPECT_NE(std::string(error.what()).find("unterminated array"), std::string::npos);
    }
}

TEST(LintFixtures, ManifestUnknownDepIsRejected) {
    EXPECT_THROW((void)hdlock::lint::parse_manifest(fixture("bad_manifest") / "unknown_dep.toml"),
                 ManifestError);
}

TEST(LintCli, ExitCodeContract) {
    EXPECT_EQ(run_cli({"--root", fixture("clean").string()}), 0);
    std::string text;
    EXPECT_EQ(run_cli({"--root", fixture("device_include_key").string()}, &text), 1);
    EXPECT_NE(text.find("src/api/sealed_encoder.hpp:3"), std::string::npos) << text;
    EXPECT_EQ(run_cli({"--root", fixture("bad_manifest").string()}, &text), 2);
    EXPECT_EQ(run_cli({"--frobnicate"}), 2);
    EXPECT_EQ(run_cli({"--root"}), 2);  // missing operand
    EXPECT_EQ(run_cli({"--help"}), 0);
}

TEST(LintCli, JsonReplacesTextOutput) {
    std::string text;
    EXPECT_EQ(run_cli({"--root", fixture("thread_detach").string(), "--json"}, &text), 1);
    EXPECT_NE(text.find("\"tool\": \"hdlock_lint\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"clean\": false"), std::string::npos) << text;
    EXPECT_NE(text.find("\"rule\": \"thread-detach\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"line\": 7"), std::string::npos) << text;
    // The human-readable `file:line: [rule]` form must be gone under --json.
    EXPECT_EQ(text.find("[thread-detach]"), std::string::npos) << text;
}

TEST(LintCli, JsonPathKeepsTextAndWritesArtifact) {
    const fs::path artifact = fs::temp_directory_path() / "hdlock_lint_test_artifact.json";
    fs::remove(artifact);

    std::string text;
    EXPECT_EQ(run_cli({"--root", fixture("thread_detach").string(),
                       "--json=" + artifact.string()},
                      &text),
              1);
    // Text output retained (the CI log stays readable)...
    EXPECT_NE(text.find("src/core/runner.cpp:7: [thread-detach]"), std::string::npos) << text;

    // ...and the machine-readable report landed at PATH (the CI artifact).
    std::ifstream in(artifact);
    ASSERT_TRUE(in.good()) << artifact;
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_NE(contents.str().find("\"clean\": false"), std::string::npos) << contents.str();
    EXPECT_NE(contents.str().find("\"rule\": \"thread-detach\""), std::string::npos)
        << contents.str();
    fs::remove(artifact);

    EXPECT_EQ(run_cli({"--root", fixture("clean").string(), "--json="}), 2);  // empty PATH
}

TEST(LintRepo, RealTreeIsConfinementClean) {
    // The gate CI enforces: the committed manifest over the committed tree.
    const fs::path root(HDLOCK_LINT_REPO_ROOT);
    const Manifest manifest =
        hdlock::lint::parse_manifest(root / "tools" / "lint" / "layers.toml");
    const Report report = hdlock::lint::run(manifest, root);
    for (const auto& d : report.diagnostics) {
        ADD_FAILURE() << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message;
    }
    EXPECT_GT(report.files_scanned, 100u);  // sanity: the scan saw the tree
    EXPECT_GT(report.edges_checked, 300u);
}

TEST(LintRepo, RealManifestListsTheKeyHeadersAsSecret) {
    const fs::path root(HDLOCK_LINT_REPO_ROOT);
    const Manifest manifest =
        hdlock::lint::parse_manifest(root / "tools" / "lint" / "layers.toml");
    const auto& headers = manifest.secret_headers;
    for (const char* header : {"src/core/key.hpp", "src/core/key_tools.hpp",
                               "src/core/locked_encoder.hpp", "src/core/stores.hpp"}) {
        EXPECT_NE(std::find(headers.begin(), headers.end(), header), headers.end())
            << header << " missing from [secret] headers";
    }
    bool has_device_layer = false;
    for (const auto& layer : manifest.layers) has_device_layer |= layer.device;
    EXPECT_TRUE(has_device_layer);
}

TEST(LintRepo, RealManifestEnforcesLockAndDeterminismDiscipline) {
    // The committed policy: raw std sync primitives funnel through util (the
    // annotated wrappers), and every result-producing layer is deterministic.
    const fs::path root(HDLOCK_LINT_REPO_ROOT);
    const Manifest manifest =
        hdlock::lint::parse_manifest(root / "tools" / "lint" / "layers.toml");

    ASSERT_EQ(manifest.concurrency_raw_layers.size(), 1u)
        << "only util may touch raw std primitives";
    EXPECT_EQ(manifest.concurrency_raw_layers[0], "util");
    for (const char* token : {"std::mutex", "std::condition_variable", "std::thread"}) {
        const auto& tokens = manifest.concurrency_raw_tokens;
        EXPECT_NE(std::find(tokens.begin(), tokens.end(), token), tokens.end())
            << token << " missing from [concurrency] raw_tokens";
    }
    for (const char* header : {"mutex", "condition_variable", "thread"}) {
        const auto& includes = manifest.concurrency_raw_includes;
        EXPECT_NE(std::find(includes.begin(), includes.end(), header), includes.end())
            << '<' << header << "> missing from [concurrency] raw_includes";
    }

    for (const char* banned : {"steady_clock", "system_clock", "rand(", "std::random_device"}) {
        const auto& tokens = manifest.nondeterminism_banned;
        EXPECT_NE(std::find(tokens.begin(), tokens.end(), banned), tokens.end())
            << banned << " missing from [nondeterminism] banned";
    }

    for (const auto& layer : manifest.layers) {
        if (layer.name == "eval" || layer.name == "core" || layer.name == "hdc" ||
            layer.name == "util") {
            EXPECT_TRUE(layer.deterministic) << layer.name << " must be deterministic";
        }
        if (layer.name == "bench" || layer.name == "tools") {
            EXPECT_FALSE(layer.deterministic) << layer.name << " is a timing layer";
        }
    }
}

}  // namespace
