// Fixture-driven regression tests for hdlock_lint (tools/lint/).  Each
// fixture under tests/lint/fixtures/ is a miniature repo with its own
// layers.toml; the tests pin the exit-code contract (0 clean / 1 violations
// / 2 manifest errors) and the exact file:line each rule anchors to.  The
// final test runs the real manifest over the real tree: the repo itself
// must stay confinement-clean.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using hdlock::lint::Diagnostic;
using hdlock::lint::Manifest;
using hdlock::lint::ManifestError;
using hdlock::lint::Report;

namespace {

fs::path fixture(const std::string& name) {
    return fs::path(HDLOCK_LINT_FIXTURE_DIR) / name;
}

Report run_fixture(const std::string& name) {
    const fs::path root = fixture(name);
    const Manifest manifest = hdlock::lint::parse_manifest(root / "layers.toml");
    return hdlock::lint::run(manifest, root);
}

std::vector<Diagnostic> with_rule(const Report& report, const std::string& rule) {
    std::vector<Diagnostic> out;
    std::copy_if(report.diagnostics.begin(), report.diagnostics.end(), std::back_inserter(out),
                 [&](const Diagnostic& d) { return d.rule == rule; });
    return out;
}

int run_cli(std::vector<std::string> args, std::string* out_text = nullptr) {
    std::vector<const char*> argv{"hdlock_lint"};
    for (const auto& arg : args) argv.push_back(arg.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int code =
        hdlock::lint::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return code;
}

TEST(LintFixtures, CleanTreeReportsNothing) {
    const Report report = run_fixture("clean");
    EXPECT_TRUE(report.clean()) << report.diagnostics.size() << " unexpected diagnostics";
    EXPECT_EQ(report.files_scanned, 4u);
    EXPECT_EQ(report.edges_checked, 3u);
}

TEST(LintFixtures, DeviceIncludeOfKeyHeaderIsCaughtWithFileAndLine) {
    // The acceptance scenario: a sealed-encoder header (device layer,
    // mirroring the real tree) directly includes core/key.hpp.
    const Report report = run_fixture("device_include_key");
    ASSERT_FALSE(report.clean());

    const auto order = with_rule(report, "layer-order");
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0].file, "src/api/sealed_encoder.hpp");
    EXPECT_EQ(order[0].line, 3);

    const auto reach = with_rule(report, "secret-reach");
    ASSERT_EQ(reach.size(), 2u);  // one per device translation unit
    EXPECT_EQ(reach[0].file, "src/api/sealed_encoder.cpp");
    EXPECT_EQ(reach[0].line, 1);
    EXPECT_NE(reach[0].message.find("src/api/sealed_encoder.hpp -> src/core/key.hpp"),
              std::string::npos)
        << reach[0].message;
    EXPECT_EQ(reach[1].file, "src/api/sealed_encoder.hpp");
    EXPECT_EQ(reach[1].line, 3);
}

TEST(LintFixtures, TransitiveReachThroughLegalEdgesIsCaught) {
    // device -> mid -> core/key.hpp: every edge is layer-legal, so only
    // secret-reach fires, anchored at the device file's own include.
    const Report report = run_fixture("transitive");
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "secret-reach");
    EXPECT_EQ(d.file, "src/device/runner.cpp");
    EXPECT_EQ(d.line, 3);
    EXPECT_NE(d.message.find("src/mid/helper.hpp -> src/core/key.hpp"), std::string::npos)
        << d.message;
}

TEST(LintFixtures, SecretIdentifierInSen2RegionIsFlaggedAndSuppressible) {
    const Report report = run_fixture("taint_sen2");
    ASSERT_EQ(report.diagnostics.size(), 1u)
        << "owner-half mentions and the suppressed line must not be flagged";
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "secret-taint");
    EXPECT_EQ(d.file, "src/api/bundle.cpp");
    EXPECT_EQ(d.line, 8);
    EXPECT_NE(d.message.find("value_mapping"), std::string::npos) << d.message;
}

TEST(LintFixtures, PureLayerOrderViolationIsCaught) {
    const Report report = run_fixture("layer_order");
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const Diagnostic& d = report.diagnostics[0];
    EXPECT_EQ(d.rule, "layer-order");
    EXPECT_EQ(d.file, "src/util/helpers.hpp");
    EXPECT_EQ(d.line, 2);
}

TEST(LintFixtures, ManifestSyntaxErrorIsRejectedWithLine) {
    try {
        (void)hdlock::lint::parse_manifest(fixture("bad_manifest") / "layers.toml");
        FAIL() << "unterminated array must throw";
    } catch (const ManifestError& error) {
        EXPECT_EQ(error.line(), 4);
        EXPECT_NE(std::string(error.what()).find("unterminated array"), std::string::npos);
    }
}

TEST(LintFixtures, ManifestUnknownDepIsRejected) {
    EXPECT_THROW((void)hdlock::lint::parse_manifest(fixture("bad_manifest") / "unknown_dep.toml"),
                 ManifestError);
}

TEST(LintCli, ExitCodeContract) {
    EXPECT_EQ(run_cli({"--root", fixture("clean").string()}), 0);
    std::string text;
    EXPECT_EQ(run_cli({"--root", fixture("device_include_key").string()}, &text), 1);
    EXPECT_NE(text.find("src/api/sealed_encoder.hpp:3"), std::string::npos) << text;
    EXPECT_EQ(run_cli({"--root", fixture("bad_manifest").string()}, &text), 2);
    EXPECT_EQ(run_cli({"--frobnicate"}), 2);
    EXPECT_EQ(run_cli({"--root"}), 2);  // missing operand
    EXPECT_EQ(run_cli({"--help"}), 0);
}

TEST(LintRepo, RealTreeIsConfinementClean) {
    // The gate CI enforces: the committed manifest over the committed tree.
    const fs::path root(HDLOCK_LINT_REPO_ROOT);
    const Manifest manifest =
        hdlock::lint::parse_manifest(root / "tools" / "lint" / "layers.toml");
    const Report report = hdlock::lint::run(manifest, root);
    for (const auto& d : report.diagnostics) {
        ADD_FAILURE() << d.file << ':' << d.line << ": [" << d.rule << "] " << d.message;
    }
    EXPECT_GT(report.files_scanned, 100u);  // sanity: the scan saw the tree
    EXPECT_GT(report.edges_checked, 300u);
}

TEST(LintRepo, RealManifestListsTheKeyHeadersAsSecret) {
    const fs::path root(HDLOCK_LINT_REPO_ROOT);
    const Manifest manifest =
        hdlock::lint::parse_manifest(root / "tools" / "lint" / "layers.toml");
    const auto& headers = manifest.secret_headers;
    for (const char* header : {"src/core/key.hpp", "src/core/key_tools.hpp",
                               "src/core/locked_encoder.hpp", "src/core/stores.hpp"}) {
        EXPECT_NE(std::find(headers.begin(), headers.end(), header), headers.end())
            << header << " missing from [secret] headers";
    }
    bool has_device_layer = false;
    for (const auto& layer : manifest.layers) has_device_layer |= layer.device;
    EXPECT_TRUE(has_device_layer);
}

}  // namespace
