// Tests for the synthetic benchmark generators (src/data/synthetic.*).

#include "data/synthetic.hpp"

#include <gtest/gtest.h>

using hdlock::ContractViolation;
using hdlock::data::SyntheticSpec;

TEST(Synthetic, ShapeAndBalance) {
    SyntheticSpec spec;
    spec.n_features = 10;
    spec.n_classes = 4;
    const auto d = hdlock::data::make_blobs(spec, 200, 1);
    EXPECT_EQ(d.n_samples(), 200u);
    EXPECT_EQ(d.n_features(), 10u);
    const auto counts = d.class_counts();
    for (const auto c : counts) EXPECT_EQ(c, 50u);
}

TEST(Synthetic, ValuesStayInUnitRange) {
    SyntheticSpec spec;
    spec.noise = 0.8;  // large noise to exercise clamping
    const auto d = hdlock::data::make_blobs(spec, 100, 2);
    for (const float v : d.X.data()) {
        ASSERT_GE(v, 0.0f);
        ASSERT_LE(v, 1.0f);
    }
}

TEST(Synthetic, DeterministicPerSeedAndStream) {
    SyntheticSpec spec;
    const auto a = hdlock::data::make_blobs(spec, 50, 7);
    const auto b = hdlock::data::make_blobs(spec, 50, 7);
    EXPECT_EQ(a.y, b.y);
    EXPECT_FLOAT_EQ(a.X(10, 3), b.X(10, 3));

    const auto c = hdlock::data::make_blobs(spec, 50, 8);
    bool any_diff = false;
    for (std::size_t r = 0; r < 50 && !any_diff; ++r) {
        for (std::size_t f = 0; f < spec.n_features && !any_diff; ++f) {
            any_diff = a.X(r, f) != c.X(r, f);
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(Synthetic, TrainAndTestShareClassStructure) {
    // Same spec seed -> same prototypes: a prototype-free sanity proxy is
    // that per-class feature means of train and test are close.
    SyntheticSpec spec;
    spec.n_features = 8;
    spec.n_classes = 2;
    spec.n_train = 400;
    spec.n_test = 400;
    spec.noise = 0.05;
    const auto benchmark = hdlock::data::make_benchmark(spec);

    for (int cls = 0; cls < 2; ++cls) {
        for (std::size_t f = 0; f < spec.n_features; ++f) {
            double train_mean = 0.0, test_mean = 0.0;
            std::size_t train_n = 0, test_n = 0;
            for (std::size_t r = 0; r < benchmark.train.n_samples(); ++r) {
                if (benchmark.train.y[r] == cls) {
                    train_mean += benchmark.train.X(r, f);
                    ++train_n;
                }
            }
            for (std::size_t r = 0; r < benchmark.test.n_samples(); ++r) {
                if (benchmark.test.y[r] == cls) {
                    test_mean += benchmark.test.X(r, f);
                    ++test_n;
                }
            }
            ASSERT_NEAR(train_mean / static_cast<double>(train_n),
                        test_mean / static_cast<double>(test_n), 0.05);
        }
    }
}

TEST(Synthetic, MoreNoiseIsHarder) {
    // Between-class overlap must grow with the noise parameter; this is a
    // coarse property test on class-center distances relative to spread.
    SyntheticSpec quiet;
    quiet.noise = 0.02;
    SyntheticSpec loud = quiet;
    loud.noise = 0.5;
    const auto dq = hdlock::data::make_blobs(quiet, 300, 5);
    const auto dl = hdlock::data::make_blobs(loud, 300, 5);

    auto within_class_variance = [](const hdlock::data::Dataset& d) {
        double var = 0.0;
        // variance of feature 0 within class 0
        double mean = 0.0;
        std::size_t n = 0;
        for (std::size_t r = 0; r < d.n_samples(); ++r) {
            if (d.y[r] == 0) {
                mean += d.X(r, 0);
                ++n;
            }
        }
        mean /= static_cast<double>(n);
        for (std::size_t r = 0; r < d.n_samples(); ++r) {
            if (d.y[r] == 0) {
                const double delta = d.X(r, 0) - mean;
                var += delta * delta;
            }
        }
        return var / static_cast<double>(n);
    };
    EXPECT_GT(within_class_variance(dl), within_class_variance(dq) * 4);
}

TEST(Synthetic, PaperPresetsMatchPaperShapes) {
    const auto specs = hdlock::data::paper_benchmarks();
    ASSERT_EQ(specs.size(), 5u);
    EXPECT_EQ(specs[0].name, "mnist");
    EXPECT_EQ(specs[0].n_features, 784u);
    EXPECT_EQ(specs[0].n_classes, 10);
    EXPECT_EQ(specs[1].name, "ucihar");
    EXPECT_EQ(specs[1].n_features, 561u);
    EXPECT_EQ(specs[1].n_classes, 6);
    EXPECT_EQ(specs[2].name, "face");
    EXPECT_EQ(specs[2].n_features, 608u);
    EXPECT_EQ(specs[2].n_classes, 2);
    EXPECT_EQ(specs[3].name, "isolet");
    EXPECT_EQ(specs[3].n_features, 617u);
    EXPECT_EQ(specs[3].n_classes, 26);
    EXPECT_EQ(specs[4].name, "pamap");
    EXPECT_EQ(specs[4].n_features, 75u);
    EXPECT_EQ(specs[4].n_classes, 5);
}

TEST(Synthetic, RejectsInvalidSpecs) {
    SyntheticSpec spec;
    spec.n_features = 0;
    EXPECT_THROW(hdlock::data::make_blobs(spec, 10, 1), ContractViolation);
    spec = SyntheticSpec{};
    spec.n_classes = 1;
    EXPECT_THROW(hdlock::data::make_blobs(spec, 10, 1), ContractViolation);
    spec = SyntheticSpec{};
    spec.prototypes_per_class = 0;
    EXPECT_THROW(hdlock::data::make_blobs(spec, 10, 1), ContractViolation);
    spec = SyntheticSpec{};
    EXPECT_THROW(hdlock::data::make_blobs(spec, 0, 1), ContractViolation);
}
