// Tests for the CSV and IDX dataset loaders (src/data/loaders.*).

#include "data/loaders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "data/synthetic.hpp"

using hdlock::FormatError;
using hdlock::IoError;
using hdlock::data::CsvOptions;
using hdlock::data::Dataset;

namespace {

class LoadersTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("hdlock_loaders_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path path(const std::string& name) const { return dir_ / name; }

    void write_text(const std::string& name, const std::string& content) const {
        std::ofstream out(path(name));
        out << content;
    }

    std::filesystem::path dir_;
};

}  // namespace

TEST_F(LoadersTest, CsvRoundTrip) {
    hdlock::data::SyntheticSpec spec;
    spec.n_features = 5;
    spec.n_classes = 3;
    const Dataset original = hdlock::data::make_blobs(spec, 30, 1);

    hdlock::data::save_csv(original, path("data.csv"));
    const Dataset loaded = hdlock::data::load_csv(path("data.csv"));

    EXPECT_EQ(loaded.n_samples(), original.n_samples());
    EXPECT_EQ(loaded.n_features(), original.n_features());
    EXPECT_EQ(loaded.y, original.y);
    EXPECT_EQ(loaded.n_classes, original.n_classes);
    for (std::size_t r = 0; r < loaded.n_samples(); ++r) {
        for (std::size_t f = 0; f < loaded.n_features(); ++f) {
            ASSERT_NEAR(loaded.X(r, f), original.X(r, f), 1e-6f);
        }
    }
}

TEST_F(LoadersTest, CsvAcceptsNonFiniteValuesByDefault) {
    // std::from_chars parses "nan"/"inf" — by default they load (the
    // discretizer clamps them deterministically downstream).
    write_text("nonfinite.csv", "nan,1.0,0\ninf,-inf,1\n");
    const Dataset dataset = hdlock::data::load_csv(path("nonfinite.csv"));
    ASSERT_EQ(dataset.n_samples(), 2u);
    EXPECT_TRUE(std::isnan(dataset.X(0, 0)));
    EXPECT_TRUE(std::isinf(dataset.X(1, 0)));
    EXPECT_TRUE(std::isinf(dataset.X(1, 1)));
}

TEST_F(LoadersTest, CsvRejectsNonFiniteValuesOnRequestNamingTheLine) {
    write_text("nonfinite.csv", "0.5,1.0,0\n0.25,nan,1\n");
    CsvOptions options;
    options.reject_non_finite = true;
    try {
        hdlock::data::load_csv(path("nonfinite.csv"), options);
        FAIL() << "expected FormatError";
    } catch (const FormatError& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("line 2"), std::string::npos) << message;
        EXPECT_NE(message.find("non-finite"), std::string::npos) << message;
        EXPECT_NE(message.find("nan"), std::string::npos) << message;
    }
    // Finite data still loads with the option on.
    write_text("finite.csv", "0.5,1.0,0\n");
    EXPECT_NO_THROW(hdlock::data::load_csv(path("finite.csv"), options));
}

TEST_F(LoadersTest, CsvParsesLabelColumnPositions) {
    write_text("first.csv", "1,0.5,0.25\n0,0.75,0.125\n");
    CsvOptions options;
    options.label_column = 0;
    const Dataset d = hdlock::data::load_csv(path("first.csv"), options);
    EXPECT_EQ(d.y, (std::vector<int>{1, 0}));
    EXPECT_FLOAT_EQ(d.X(0, 0), 0.5f);
    EXPECT_FLOAT_EQ(d.X(1, 1), 0.125f);
}

TEST_F(LoadersTest, CsvSkipsHeaderAndBlankLines) {
    write_text("header.csv", "f0,f1,label\n\n0.1,0.2,0\n0.3,0.4,1\n\n");
    CsvOptions options;
    options.has_header = true;
    const Dataset d = hdlock::data::load_csv(path("header.csv"), options);
    EXPECT_EQ(d.n_samples(), 2u);
    EXPECT_EQ(d.n_classes, 2);
}

TEST_F(LoadersTest, CsvRejectsMalformedInput) {
    write_text("ragged.csv", "0.1,0.2,0\n0.3,1\n");
    EXPECT_THROW(hdlock::data::load_csv(path("ragged.csv")), FormatError);

    write_text("notnum.csv", "0.1,abc,0\n");
    EXPECT_THROW(hdlock::data::load_csv(path("notnum.csv")), FormatError);

    write_text("neglabel.csv", "0.1,0.2,-1\n");
    EXPECT_THROW(hdlock::data::load_csv(path("neglabel.csv")), FormatError);

    write_text("empty.csv", "\n\n");
    EXPECT_THROW(hdlock::data::load_csv(path("empty.csv")), FormatError);

    write_text("onecol.csv", "5\n");
    EXPECT_THROW(hdlock::data::load_csv(path("onecol.csv")), FormatError);

    EXPECT_THROW(hdlock::data::load_csv(path("missing.csv")), IoError);
}

TEST_F(LoadersTest, CsvSemicolonDelimiter) {
    write_text("semi.csv", "0.5;0.25;1\n0.75;0.5;0\n");
    CsvOptions options;
    options.delimiter = ';';
    const Dataset d = hdlock::data::load_csv(path("semi.csv"), options);
    EXPECT_EQ(d.n_samples(), 2u);
    EXPECT_FLOAT_EQ(d.X(1, 0), 0.75f);
}

TEST_F(LoadersTest, IdxRoundTrip) {
    hdlock::data::SyntheticSpec spec;
    spec.n_features = 16;
    spec.n_classes = 4;
    const Dataset original = hdlock::data::make_blobs(spec, 20, 2);

    hdlock::data::save_idx(original, path("images.idx"), path("labels.idx"));
    const Dataset loaded = hdlock::data::load_idx(path("images.idx"), path("labels.idx"), "redux");

    EXPECT_EQ(loaded.name, "redux");
    EXPECT_EQ(loaded.n_samples(), original.n_samples());
    EXPECT_EQ(loaded.n_features(), original.n_features());
    EXPECT_EQ(loaded.y, original.y);
    // u8 quantization: values agree to within one of 255 scale steps.
    for (std::size_t r = 0; r < loaded.n_samples(); ++r) {
        for (std::size_t f = 0; f < loaded.n_features(); ++f) {
            ASSERT_NEAR(loaded.X(r, f), original.X(r, f), 1.5f / 255.0f);
        }
    }
}

TEST_F(LoadersTest, IdxRejectsBadMagicAndTruncation) {
    write_text("bad.idx", "not an idx file at all");
    write_text("bad_labels.idx", "nope");
    EXPECT_THROW(hdlock::data::load_idx(path("bad.idx"), path("bad_labels.idx")), FormatError);

    // Valid magic but truncated payload.
    {
        std::ofstream images(path("trunc.idx"), std::ios::binary);
        const unsigned char header[16] = {0, 0, 8, 3, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, 4};
        images.write(reinterpret_cast<const char*>(header), 16);
        const unsigned char pixels[4] = {1, 2, 3, 4};  // only one of two samples
        images.write(reinterpret_cast<const char*>(pixels), 4);
    }
    {
        std::ofstream labels(path("trunc_labels.idx"), std::ios::binary);
        const unsigned char header[8] = {0, 0, 8, 1, 0, 0, 0, 2};
        labels.write(reinterpret_cast<const char*>(header), 8);
        labels.put(0);
        labels.put(1);
    }
    EXPECT_THROW(hdlock::data::load_idx(path("trunc.idx"), path("trunc_labels.idx")),
                 FormatError);
    EXPECT_THROW(hdlock::data::load_idx(path("nope.idx"), path("nope2.idx")), IoError);
}

TEST_F(LoadersTest, IdxRejectsCountMismatch) {
    {
        std::ofstream images(path("mism.idx"), std::ios::binary);
        const unsigned char header[16] = {0, 0, 8, 3, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 2};
        images.write(reinterpret_cast<const char*>(header), 16);
        images.put(1);
        images.put(2);
    }
    {
        std::ofstream labels(path("mism_labels.idx"), std::ios::binary);
        const unsigned char header[8] = {0, 0, 8, 1, 0, 0, 0, 3};
        labels.write(reinterpret_cast<const char*>(header), 8);
    }
    EXPECT_THROW(hdlock::data::load_idx(path("mism.idx"), path("mism_labels.idx")), FormatError);
}
