// Tests for the dataset container and splitting (src/data/dataset.*).

#include "data/dataset.hpp"

#include <gtest/gtest.h>

using hdlock::ContractViolation;
using hdlock::data::Dataset;
using hdlock::util::Matrix;

namespace {

Dataset tiny_dataset() {
    Dataset d;
    d.name = "tiny";
    d.n_classes = 2;
    d.X = Matrix<float>(6, 2);
    for (std::size_t r = 0; r < 6; ++r) {
        d.X(r, 0) = static_cast<float>(r);
        d.X(r, 1) = static_cast<float>(10 * r);
        d.y.push_back(static_cast<int>(r % 2));
    }
    return d;
}

}  // namespace

TEST(Dataset, ValidateAcceptsConsistentData) {
    const auto d = tiny_dataset();
    EXPECT_NO_THROW(d.validate());
    EXPECT_EQ(d.n_samples(), 6u);
    EXPECT_EQ(d.n_features(), 2u);
}

TEST(Dataset, ValidateRejectsInconsistency) {
    auto d = tiny_dataset();
    d.y.pop_back();
    EXPECT_THROW(d.validate(), ContractViolation);

    auto e = tiny_dataset();
    e.y[0] = 5;
    EXPECT_THROW(e.validate(), ContractViolation);

    auto f = tiny_dataset();
    f.n_classes = 0;
    EXPECT_THROW(f.validate(), ContractViolation);
}

TEST(Dataset, ClassCounts) {
    const auto d = tiny_dataset();
    const auto counts = d.class_counts();
    EXPECT_EQ(counts, (std::vector<std::size_t>{3, 3}));
}

TEST(Dataset, TakeRowsSelectsAndChecksBounds) {
    const auto d = tiny_dataset();
    const std::vector<std::size_t> rows = {5, 0};
    const auto subset = hdlock::data::take_rows(d, rows);
    EXPECT_EQ(subset.n_samples(), 2u);
    EXPECT_FLOAT_EQ(subset.X(0, 1), 50.0f);
    EXPECT_FLOAT_EQ(subset.X(1, 1), 0.0f);
    EXPECT_EQ(subset.y, (std::vector<int>{1, 0}));

    const std::vector<std::size_t> bad = {6};
    EXPECT_THROW(hdlock::data::take_rows(d, bad), ContractViolation);
}

TEST(Dataset, SplitPreservesAllSamples) {
    const auto d = tiny_dataset();
    const auto split = hdlock::data::split_train_test(d, 0.5, 3);
    EXPECT_EQ(split.train.n_samples() + split.test.n_samples(), d.n_samples());
    EXPECT_EQ(split.train.n_features(), d.n_features());
    EXPECT_NO_THROW(split.train.validate());
    EXPECT_NO_THROW(split.test.validate());

    // Every original row appears exactly once across both sides (identify
    // rows by the unique first feature value).
    std::vector<int> seen(6, 0);
    for (const auto* part : {&split.train, &split.test}) {
        for (std::size_t r = 0; r < part->n_samples(); ++r) {
            ++seen[static_cast<std::size_t>(part->X(r, 0))];
        }
    }
    for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Dataset, SplitIsDeterministicPerSeed) {
    const auto d = tiny_dataset();
    const auto a = hdlock::data::split_train_test(d, 0.5, 9);
    const auto b = hdlock::data::split_train_test(d, 0.5, 9);
    EXPECT_EQ(a.train.y, b.train.y);
    EXPECT_FLOAT_EQ(a.train.X(0, 0), b.train.X(0, 0));
}

TEST(Dataset, SplitRejectsBadFractions) {
    const auto d = tiny_dataset();
    EXPECT_THROW(hdlock::data::split_train_test(d, 0.0, 1), ContractViolation);
    EXPECT_THROW(hdlock::data::split_train_test(d, 1.0, 1), ContractViolation);
    EXPECT_THROW(hdlock::data::split_train_test(d, 0.01, 1), ContractViolation);
}
