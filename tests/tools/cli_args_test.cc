// Tests for the CLI flag parser (tools/cli_args.hpp): the trailing-flag and
// unknown-flag usage errors, plus the value accessors — and the shared
// eval-flag translation of tools/eval_cli.hpp.

#include "cli_args.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "eval_cli.hpp"

namespace {

using hdlock::cli::Args;
using hdlock::cli::UsageError;

/// argv helper: builds a mutable char* array from string literals.
struct Argv {
    explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
        for (auto& arg : storage) pointers.push_back(arg.data());
    }
    int argc() const { return static_cast<int>(pointers.size()); }
    char** argv() { return pointers.data(); }

    std::vector<std::string> storage;
    std::vector<char*> pointers;
};

Args parse(std::vector<std::string> args) {
    Argv argv(std::move(args));
    return Args(argv.argc(), argv.argv(), 0);
}

}  // namespace

TEST(CliArgs, ParsesBothFlagForms) {
    const Args args = parse({"--dir=out", "--features", "24"});
    EXPECT_EQ(args.require("dir"), "out");
    EXPECT_EQ(args.get_u64("features", 0), 24u);
}

TEST(CliArgs, TrailingFlagWithoutValueIsUsageError) {
    // The historical bug: `hdlock_cli provision --dir out --features` must
    // be rejected, not silently parsed past the end of argv.
    EXPECT_THROW(parse({"--dir", "out", "--features"}), UsageError);
    EXPECT_THROW(parse({"--features"}), UsageError);
}

TEST(CliArgs, BareArgumentsAreUsageErrors) {
    EXPECT_THROW(parse({"out"}), UsageError);
    EXPECT_THROW(parse({"--"}), UsageError);
    EXPECT_THROW(parse({"-dir", "out"}), UsageError);
}

TEST(CliArgs, UnknownFlagsAreReportedPerSubcommand) {
    const Args args = parse({"--dir", "out", "--featurs", "24"});  // typo
    EXPECT_NO_THROW(args.check_known("provision", {"dir", "featurs"}));
    try {
        args.check_known("provision", {"dir", "features", "dim"});
        FAIL() << "expected UsageError";
    } catch (const UsageError& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("provision"), std::string::npos);
        EXPECT_NE(message.find("--featurs"), std::string::npos);
        EXPECT_EQ(message.find("--dir"), std::string::npos) << "known flag reported as unknown";
    }
}

TEST(CliArgs, RequireAndFallbacks) {
    const Args args = parse({"--dir", "out"});
    EXPECT_EQ(args.require("dir"), "out");
    EXPECT_THROW(args.require("data"), UsageError);
    EXPECT_EQ(args.get("kind", "binary"), "binary");
    EXPECT_EQ(args.get_u64("epochs", 10), 10u);
    EXPECT_TRUE(args.has("dir"));
    EXPECT_FALSE(args.has("data"));
}

TEST(CliArgs, NonNumericValueForNumericFlagIsUsageError) {
    const Args args = parse({"--features", "many", "--dim", "12x", "--seed", "7"});
    EXPECT_THROW(args.get_u64("features", 0), UsageError);
    EXPECT_THROW(args.get_u64("dim", 0), UsageError);
    EXPECT_EQ(args.get_u64("seed", 0), 7u);
}

TEST(CliArgs, NegativeAndOverflowingNumbersAreUsageErrors) {
    // std::stoull would wrap "-1" to 2^64 - 1; the parser must reject it.
    const Args args = parse({"--dim", "-1", "--seed", "99999999999999999999999"});
    EXPECT_THROW(args.get_u64("dim", 0), UsageError);
    EXPECT_THROW(args.get_u64("seed", 0), UsageError);
}

TEST(CliArgs, EmptyFlagValueViaEqualsIsAllowed) {
    const Args args = parse({"--name="});
    EXPECT_EQ(args.require("name"), "");
}

TEST(CliArgs, BooleanFlagsStandAloneAndNeverSwallowTheNextArgument) {
    Argv argv({"--smoke", "--scenario", "fig3", "--json"});
    const Args args(argv.argc(), argv.argv(), 0, {"smoke", "json"});
    EXPECT_TRUE(args.has("smoke"));
    EXPECT_EQ(args.get("smoke", "missing"), "");
    EXPECT_EQ(args.require("scenario"), "fig3") << "--smoke must not consume --scenario";
    EXPECT_TRUE(args.has("json"));
    EXPECT_EQ(args.get("json", ""), "") << "trailing boolean flag needs no value";
}

TEST(CliArgs, BooleanFlagStillAcceptsEqualsValue) {
    Argv argv({"--json=out.json", "--smoke"});
    const Args args(argv.argc(), argv.argv(), 0, {"smoke", "json"});
    EXPECT_EQ(args.get("json", ""), "out.json");
    EXPECT_TRUE(args.has("smoke"));
}

TEST(CliArgs, TrailingNonBooleanFlagStillErrorsWithBooleanSetPresent) {
    Argv argv({"--smoke", "--seed"});
    EXPECT_THROW(Args(argv.argc(), argv.argv(), 0, {"smoke"}), UsageError);
}

TEST(CliArgs, RepeatedFlagsAccumulateAndScalarAccessorsReadTheLast) {
    Argv argv({"--scenario", "fig3", "--scenario=fig5,fig6", "--seed", "1", "--seed", "9"});
    const Args args(argv.argc(), argv.argv(), 0);
    EXPECT_EQ(args.get_all("scenario"), (std::vector<std::string>{"fig3", "fig5,fig6"}));
    EXPECT_EQ(args.get_u64("seed", 0), 9u);
    EXPECT_TRUE(args.get_all("missing").empty());
}

TEST(CliArgs, EvalOptionsCarryBackendFlag) {
    Argv argv({"--scenario", "fig3", "--backend", "portable", "--json"});
    const Args args(argv.argc(), argv.argv(), 0, hdlock::cli::kEvalBooleanFlags);
    args.check_known("test", hdlock::cli::kEvalKnownFlags);
    const auto options = hdlock::cli::parse_eval_options(args, "test");
    EXPECT_EQ(options.backend, "portable");
    EXPECT_TRUE(options.json);

    Argv bare(std::vector<std::string>{"--all"});
    const Args no_backend(bare.argc(), bare.argv(), 0, hdlock::cli::kEvalBooleanFlags);
    EXPECT_TRUE(hdlock::cli::parse_eval_options(no_backend, "test").backend.empty());
}
