// Tests for the eval:: JSON value model and writer (src/eval/json.hpp):
// deterministic serialization (insertion order, shortest round-trip
// numbers), escaping, builder ergonomics, and the accessors.

#include "eval/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace {

using hdlock::ContractViolation;
using hdlock::eval::Json;

TEST(Json, ScalarsSerialize) {
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(nullptr).dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, FullUint64RangeSerializesExactly) {
    // Trial seeds are uniform uint64; a seed rounded through double would
    // not reproduce the trial its report claims to describe.
    const std::uint64_t seed = 16226763063302060328ULL;  // > 2^63, not double-exact
    EXPECT_EQ(Json(seed).kind(), Json::Kind::integer);
    EXPECT_EQ(Json(seed).dump(), "16226763063302060328");
    EXPECT_EQ(Json(seed).as_uint(), seed);
    EXPECT_THROW(Json(seed).as_int(), ContractViolation) << "does not fit int64";
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(), "18446744073709551615");
    EXPECT_EQ(Json(5).as_uint(), 5u);
    EXPECT_THROW(Json(-5).as_uint(), ContractViolation);
}

TEST(Json, NumbersUseShortestRoundTripForm) {
    EXPECT_EQ(Json(0.005).dump(), "0.005");
    EXPECT_EQ(Json(1.0).dump(), "1");
    EXPECT_EQ(Json(0.1 + 0.2).dump(), "0.30000000000000004");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringsAreEscaped) {
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    Json object = Json::object();
    object["zulu"] = 1;
    object["alpha"] = 2;
    object["mike"] = 3;
    EXPECT_EQ(object.dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

TEST(Json, BuilderUpsertsThroughNull) {
    Json value;  // starts null
    value["metrics"]["accuracy"] = 0.9;
    value["series"]["curve"].push_back(Json(1));
    value["series"]["curve"].push_back(Json(2));
    EXPECT_EQ(value.dump(),
              "{\"metrics\":{\"accuracy\":0.9},\"series\":{\"curve\":[1,2]}}");
    value["metrics"]["accuracy"] = 0.5;  // upsert overwrites in place
    EXPECT_EQ(value.at("metrics").at("accuracy").as_double(), 0.5);
}

TEST(Json, PrettyPrintIndents) {
    Json object = Json::object();
    object["a"] = Json::array();
    object["b"] = 1;
    EXPECT_EQ(object.dump(2), "{\n  \"a\": [],\n  \"b\": 1\n}");
}

TEST(Json, FindEraseAndAccessors) {
    Json object = Json::object();
    object["keep"] = 1;
    object["drop"] = 2;
    EXPECT_NE(object.find("drop"), nullptr);
    EXPECT_TRUE(object.erase("drop"));
    EXPECT_FALSE(object.erase("drop"));
    EXPECT_EQ(object.find("drop"), nullptr);
    EXPECT_EQ(object.size(), 1u);
    EXPECT_THROW(object.at("drop"), ContractViolation);
    EXPECT_THROW(object.at(std::size_t{0}), ContractViolation) << "object is not an array";
    EXPECT_THROW(Json(1).as_string(), ContractViolation);
}

TEST(Json, EqualityIsStructural) {
    Json a = Json::object();
    a["x"] = 1;
    Json b = Json::object();
    b["x"] = 1;
    EXPECT_EQ(a, b);
    b["x"] = 2;
    EXPECT_NE(a, b);
}

}  // namespace
