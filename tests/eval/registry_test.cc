// Tests for the scenario registry (src/eval/registry.hpp): the built-in
// catalogue (every paper figure + Table 1 + the beyond-paper sweeps), the
// unknown-name error contract (names the typo AND the available scenarios),
// duplicate rejection, and plan determinism.

#include "eval/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace {

using namespace hdlock;
using eval::RunOptions;
using eval::ScenarioInfo;
using eval::ScenarioRegistry;
using eval::SimpleScenario;
using eval::TrialSpec;

std::shared_ptr<SimpleScenario> stub_scenario(const std::string& name) {
    ScenarioInfo info;
    info.name = name;
    info.paper_ref = "test";
    info.description = "stub";
    return std::make_shared<SimpleScenario>(
        std::move(info), [](const RunOptions&) { return std::vector<TrialSpec>{}; },
        [](const TrialSpec&, const eval::TrialContext&) { return eval::Json::object(); });
}

TEST(ScenarioRegistry, BuiltinsCoverThePaperAndBeyond) {
    const auto& registry = eval::builtin_registry();
    EXPECT_GE(registry.size(), 8u);
    for (const char* name :
         {"fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "lock-grid",
          "noise-robustness", "ngram-lock"}) {
        EXPECT_TRUE(registry.contains(name)) << "missing scenario " << name;
        EXPECT_EQ(registry.at(name).info().name, name);
    }
}

TEST(ScenarioRegistry, BuiltinNamesAreUniqueAndDescribed) {
    const auto& registry = eval::builtin_registry();
    const auto names = registry.names();
    EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(), names.size());
    for (const auto* scenario : registry.scenarios()) {
        EXPECT_FALSE(scenario->info().description.empty()) << scenario->info().name;
        EXPECT_FALSE(scenario->info().paper_ref.empty()) << scenario->info().name;
    }
}

TEST(ScenarioRegistry, UnknownNameErrorListsTypoAndAvailable) {
    const auto& registry = eval::builtin_registry();
    try {
        registry.at("fig42");
        FAIL() << "expected Error";
    } catch (const Error& error) {
        const std::string message = error.what();
        EXPECT_NE(message.find("fig42"), std::string::npos) << message;
        // Every available name must be listed so the fix is one glance away.
        for (const auto& name : registry.names()) {
            EXPECT_NE(message.find(name), std::string::npos) << "missing " << name;
        }
    }
}

TEST(ScenarioRegistry, EmptyRegistryErrorSaysSo) {
    const ScenarioRegistry registry;
    try {
        registry.at("anything");
        FAIL() << "expected Error";
    } catch (const Error& error) {
        EXPECT_NE(std::string(error.what()).find("none registered"), std::string::npos);
    }
}

TEST(ScenarioRegistry, DuplicateAndEmptyNamesAreRejected) {
    ScenarioRegistry registry;
    registry.add(stub_scenario("one"));
    EXPECT_THROW(registry.add(stub_scenario("one")), ConfigError);
    EXPECT_THROW(registry.add(stub_scenario("")), ConfigError);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(ScenarioRegistry, BuiltinPlansAreDeterministicAndBounded) {
    const auto& registry = eval::builtin_registry();
    for (const auto* scenario : registry.scenarios()) {
        for (const bool smoke : {false, true}) {
            RunOptions options;
            options.smoke = smoke;
            const auto first = scenario->plan(options);
            const auto second = scenario->plan(options);
            ASSERT_FALSE(first.empty())
                << scenario->info().name << " plans no trials (smoke=" << smoke << ")";
            ASSERT_EQ(first.size(), second.size()) << scenario->info().name;
            std::set<std::string> names;
            for (std::size_t i = 0; i < first.size(); ++i) {
                EXPECT_EQ(first[i].name, second[i].name) << scenario->info().name;
                EXPECT_EQ(first[i].params, second[i].params) << scenario->info().name;
                names.insert(first[i].name);
            }
            EXPECT_EQ(names.size(), first.size())
                << scenario->info().name << ": trial names must be unique";
            // Smoke bounds the axes: never more trials than the default run.
            if (smoke) {
                RunOptions default_options;
                EXPECT_LE(first.size(), scenario->plan(default_options).size())
                    << scenario->info().name;
            }
        }
    }
}

}  // namespace
