// Tests for the shared CLI driver (src/eval/driver.hpp) that backs both
// hdlock_eval and `hdlock_cli eval`: --list output, scenario selection and
// the unknown-name exit path, JSON emission (stdout and file), the
// --no-timing determinism mode, and the error/empty exit codes.

#include "eval/driver.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/registry.hpp"
#include "util/error.hpp"
#include "util/kernels.hpp"

namespace {

using namespace hdlock;
using eval::EvalCliOptions;
using eval::Json;
using eval::RunOptions;
using eval::ScenarioInfo;
using eval::ScenarioRegistry;
using eval::SimpleScenario;
using eval::TrialContext;
using eval::TrialSpec;

/// Tiny registry so driver tests stay milliseconds-fast.
ScenarioRegistry test_registry() {
    ScenarioRegistry registry;
    {
        ScenarioInfo info{"quick", "test", "always green"};
        registry.add(std::make_shared<SimpleScenario>(
            std::move(info),
            [](const RunOptions&) {
                // Constructed, not assigned: GCC 12's -Wrestrict
                // false-positives on literal-to-string assignment here.
                std::vector<TrialSpec> plan;
                plan.push_back({.name = "a", .params = Json::object()});
                plan.push_back({.name = "b", .params = Json::object()});
                return plan;
            },
            [](const TrialSpec&, const TrialContext& context) {
                Json metrics = Json::object();
                metrics["seed"] = context.seed;
                return metrics;
            }));
    }
    {
        ScenarioInfo info{"broken", "test", "always errors"};
        registry.add(std::make_shared<SimpleScenario>(
            std::move(info),
            [](const RunOptions&) { return std::vector<TrialSpec>(1); },
            [](const TrialSpec&, const TrialContext&) -> Json {
                throw Error("deliberate trial failure");
            }));
    }
    return registry;
}

EvalCliOptions base_options() {
    EvalCliOptions options;
    options.executable = "driver-test";
    return options;
}

TEST(EvalDriver, ListNamesEveryScenario) {
    std::ostringstream out, err;
    auto options = base_options();
    options.list = true;
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
    EXPECT_NE(out.str().find("quick"), std::string::npos);
    EXPECT_NE(out.str().find("broken"), std::string::npos);
    EXPECT_NE(out.str().find("always green"), std::string::npos);
}

TEST(EvalDriver, BuiltinListNamesAtLeastEightScenarios) {
    std::ostringstream out, err;
    auto options = base_options();
    options.list = true;
    EXPECT_EQ(eval::run_eval_cli(options, eval::builtin_registry(), out, err), 0);
    for (const auto& name : eval::builtin_registry().names()) {
        EXPECT_NE(out.str().find(name), std::string::npos) << name;
    }
    EXPECT_GE(eval::builtin_registry().size(), 8u);
}

TEST(EvalDriver, NoSelectionIsUsageError) {
    std::ostringstream out, err;
    EXPECT_EQ(eval::run_eval_cli(base_options(), test_registry(), out, err), 2);
    EXPECT_NE(err.str().find("--scenario"), std::string::npos);
}

TEST(EvalDriver, UnknownScenarioExitsTwoNamingItAndAvailable) {
    std::ostringstream out, err;
    auto options = base_options();
    options.scenarios = {"nope"};
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 2);
    EXPECT_NE(err.str().find("nope"), std::string::npos);
    EXPECT_NE(err.str().find("quick"), std::string::npos);
    EXPECT_NE(err.str().find("broken"), std::string::npos);
}

TEST(EvalDriver, GreenScenarioRendersTextAndExitsZero) {
    std::ostringstream out, err;
    auto options = base_options();
    options.scenarios = {"quick"};
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
    EXPECT_NE(out.str().find("== summary =="), std::string::npos);
    EXPECT_TRUE(err.str().empty());
}

TEST(EvalDriver, FailingScenarioExitsOneAndNamesTheTrial) {
    std::ostringstream out, err;
    auto options = base_options();
    options.all = true;
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 1);
    EXPECT_NE(err.str().find("broken"), std::string::npos);
    EXPECT_NE(err.str().find("deliberate trial failure"), std::string::npos);
}

TEST(EvalDriver, JsonToStdoutSuppressesTextAndIsDeterministicWithoutTiming) {
    const auto run = [&](std::size_t threads) {
        std::ostringstream out, err;
        auto options = base_options();
        options.scenarios = {"quick"};
        options.json = true;
        options.timing = false;
        options.run.n_threads = threads;
        EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
        return out.str();
    };
    const std::string serial = run(1);
    const std::string pooled = run(4);
    EXPECT_EQ(serial, pooled) << "--no-timing output must be thread-count invariant";
    EXPECT_EQ(serial.front(), '{') << "stdout JSON must not be interleaved with text";
    EXPECT_NE(serial.find("\"scenarios\""), std::string::npos);
    EXPECT_EQ(serial.find("\"context\""), std::string::npos);
    EXPECT_EQ(serial.find("\"seconds\""), std::string::npos);
}

TEST(EvalDriver, JsonToFileWritesReportAndKeepsText) {
    const auto path =
        std::filesystem::temp_directory_path() / "hdlock_eval_driver_test.json";
    std::ostringstream out, err;
    auto options = base_options();
    options.scenarios = {"quick"};
    options.json = true;
    options.json_path = path.string();
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
    EXPECT_NE(out.str().find("== summary =="), std::string::npos);
    EXPECT_NE(out.str().find(path.string()), std::string::npos);

    std::ifstream file(path);
    std::stringstream payload;
    payload << file.rdbuf();
    EXPECT_NE(payload.str().find("\"context\""), std::string::npos);
    EXPECT_NE(payload.str().find("\"driver-test\""), std::string::npos);
    std::filesystem::remove(path);
}

TEST(EvalDriver, UnknownBackendIsUsageError) {
    std::ostringstream out, err;
    auto options = base_options();
    options.scenarios = {"quick"};
    options.backend = "sse9";
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 2);
    EXPECT_NE(err.str().find("sse9"), std::string::npos);
    // The usage error names the full accepted roster, NEON included.
    EXPECT_NE(err.str().find("portable"), std::string::npos);
    EXPECT_NE(err.str().find("neon"), std::string::npos);
}

TEST(EvalDriver, KnownButUnavailableBackendIsUsageError) {
    namespace kernels = hdlock::util::kernels;
    // Some backend in the enum is always unavailable on any given host
    // (neon on x86, avx512 under qemu-aarch64, ...).
    for (const auto kind : kernels::all_backends()) {
        if (kernels::compiled(kind) && kernels::cpu_supports(kind)) continue;
        std::ostringstream out, err;
        auto options = base_options();
        options.scenarios = {"quick"};
        options.backend = kernels::backend_name(kind);
        EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 2);
        EXPECT_NE(err.str().find(kernels::backend_name(kind)), std::string::npos);
        return;
    }
    GTEST_SKIP() << "every compiled backend is available on this host";
}

TEST(EvalDriver, ListPrintsKernelBackendRoster) {
    namespace kernels = hdlock::util::kernels;
    std::ostringstream out, err;
    auto options = base_options();
    options.list = true;
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
    EXPECT_NE(out.str().find("kernel backends"), std::string::npos);
    for (const auto kind : kernels::all_backends()) {
        EXPECT_NE(out.str().find(kernels::backend_name(kind)), std::string::npos)
            << kernels::backend_name(kind);
    }
    EXPECT_NE(out.str().find(kernels::active_name()), std::string::npos);
}

TEST(EvalDriver, BackendPinRunsAndIsRecordedInContext) {
    namespace kernels = hdlock::util::kernels;
    const kernels::ScopedBackend restore(kernels::active_kind());
    std::ostringstream out, err;
    auto options = base_options();
    options.scenarios = {"quick"};
    options.json = true;
    options.backend = "portable";
    EXPECT_EQ(eval::run_eval_cli(options, test_registry(), out, err), 0);
    EXPECT_NE(out.str().find("\"backend\": \"portable\""), std::string::npos);
    EXPECT_NE(out.str().find("\"cpu\""), std::string::npos);
}

TEST(EvalDriver, SplitScenarioListHandlesCommasAndEmptySegments) {
    EXPECT_EQ(eval::split_scenario_list("fig3,table1"),
              (std::vector<std::string>{"fig3", "table1"}));
    EXPECT_EQ(eval::split_scenario_list("fig3"), (std::vector<std::string>{"fig3"}));
    EXPECT_EQ(eval::split_scenario_list(",fig3,,"), (std::vector<std::string>{"fig3"}));
    EXPECT_TRUE(eval::split_scenario_list("").empty());
}

}  // namespace
