// Tests running real built-in scenarios end to end in smoke mode: the
// cross-thread-count determinism contract on a genuine attack workload
// (fig3, fig7), spot checks of the reproduced claims (Fig. 7's closed-form
// and toy-search agreement, the lock-grid's flat-accuracy/rising-complexity
// shape), and the text/CSV renderers over real reports.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/complexity.hpp"
#include "eval/registry.hpp"
#include "eval/render.hpp"
#include "eval/report.hpp"
#include "eval/sweep_runner.hpp"

namespace {

using namespace hdlock;
using eval::Json;
using eval::RunOptions;
using eval::SweepRunner;

RunOptions smoke_options(std::size_t threads, std::size_t max_trials = 0) {
    RunOptions options;
    options.smoke = true;
    options.n_threads = threads;
    options.seed = 3;
    options.max_trials = max_trials;
    return options;
}

TEST(Scenarios, Fig3SmokeIsThreadCountInvariantAndSucceeds) {
    const auto& scenario = eval::builtin_registry().at("fig3");
    const auto serial = SweepRunner(smoke_options(1)).run(scenario);
    const auto pooled = SweepRunner(smoke_options(4)).run(scenario);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(eval::deterministic_dump(serial), eval::deterministic_dump(pooled));

    // Both oracle trials must find the planted mapping (the Sec. 3.2 claim).
    for (const auto& trial : serial.trials) {
        EXPECT_TRUE(trial.metrics.at("attack_succeeds").as_bool()) << trial.spec.name;
    }
    // The non-binary oracle recovers the mapping exactly.
    EXPECT_TRUE(serial.trials[1].metrics.at("exact_recovery").as_bool());
    EXPECT_EQ(serial.trials[0].metrics.at("series").at("guess_curve").size(),
              static_cast<std::size_t>(serial.trials[0].metrics.at("n_features").as_int()));
}

TEST(Scenarios, Fig7SmokeClosedFormAndToySearchAgree) {
    const auto& scenario = eval::builtin_registry().at("fig7");
    const auto serial = SweepRunner(smoke_options(1)).run(scenario);
    const auto pooled = SweepRunner(smoke_options(4)).run(scenario);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(eval::deterministic_dump(serial), eval::deterministic_dump(pooled));

    for (const auto& trial : serial.trials) {
        if (trial.spec.params.at("kind").as_string() == "headline") {
            // Sec. 4.2 / 5.2 headline numbers: 6.15e+05 / 4.81e+16 guesses.
            EXPECT_NEAR(trial.metrics.at("log10_baseline").as_double(),
                        complexity::log10_guesses(784, 10000, 784, 0), 1e-12);
            EXPECT_NEAR(trial.metrics.at("log10_two_layer").as_double(), 16.68, 0.02);
        }
        if (trial.spec.params.at("kind").as_string() == "toy") {
            EXPECT_TRUE(trial.metrics.at("guesses_match_closed_form").as_bool())
                << trial.spec.name;
            EXPECT_TRUE(trial.metrics.at("recovered").as_bool()) << trial.spec.name;
            // Wall-clock must be in timing, never in the deterministic part.
            EXPECT_NE(trial.metrics.at("timing").find("seconds"), nullptr);
        }
    }
}

TEST(Scenarios, LockGridAccuracyFlatWhileComplexityClimbs) {
    // First trials of the smoke plan: D=512 with L=0,1,2 (layers vary
    // fastest), enough to check the joint claim cheaply.
    const auto& scenario = eval::builtin_registry().at("lock-grid");
    const auto report = SweepRunner(smoke_options(2, /*max_trials=*/3)).run(scenario);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.trials.size(), 3u);

    double previous_log10 = -1.0;
    for (const auto& trial : report.trials) {
        EXPECT_GT(trial.metrics.at("accuracy").as_double(), 0.5) << trial.spec.name;
        const double log10_guesses = trial.metrics.at("log10_guesses").as_double();
        EXPECT_GT(log10_guesses, previous_log10) << trial.spec.name;
        previous_log10 = log10_guesses;
    }
    const double baseline = report.trials[0].metrics.at("accuracy").as_double();
    for (const auto& trial : report.trials) {
        EXPECT_NEAR(trial.metrics.at("accuracy").as_double(), baseline, 0.12)
            << trial.spec.name << ": locking must not cost accuracy";
    }
}

TEST(Scenarios, RenderScalarHandlesEveryMetricShape) {
    EXPECT_EQ(eval::render_scalar(Json(true)), "yes");
    EXPECT_EQ(eval::render_scalar(Json(-3)), "-3");
    // Uniform uint64 seeds land above int64 max about half the time; the
    // table cell must render them exactly, not throw.
    EXPECT_EQ(eval::render_scalar(Json(std::uint64_t{16226763063302060328ULL})),
              "16226763063302060328");
    EXPECT_EQ(eval::render_scalar(Json(0.25)), "0.25");
    EXPECT_EQ(eval::render_scalar(Json("text")), "text");
    EXPECT_EQ(eval::render_scalar(Json()), "");
}

TEST(Scenarios, RenderersProduceSummaryAndSeries) {
    const auto& scenario = eval::builtin_registry().at("fig3");
    const auto report = SweepRunner(smoke_options(2)).run(scenario);
    ASSERT_TRUE(report.ok());

    const std::string text = eval::render_text(report);
    EXPECT_NE(text.find("Fig. 3"), std::string::npos);
    EXPECT_NE(text.find("== summary =="), std::string::npos);
    EXPECT_NE(text.find("guess_curve"), std::string::npos);
    EXPECT_NE(text.find("oracle=binary"), std::string::npos);

    const std::string csv = eval::render_csv(report);
    EXPECT_NE(csv.find("# fig3: summary"), std::string::npos);
    // CSV emits the full curve: one line per candidate plus header/comment.
    const auto lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_GT(lines, static_cast<long>(report.trials[0].metrics.at("n_features").as_int()));
}

}  // namespace
