// Tests for the thread-pooled sweep runner (src/eval/sweep_runner.hpp) and
// the report writer (src/eval/report.hpp), on synthetic scenarios: the
// thread-count-invariance contract (same seed -> byte-identical
// deterministic JSON at any worker count), per-trial seed derivation, error
// capture, the max_trials budget, and the timing/context strip.

#include "eval/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eval/report.hpp"
#include "eval/scenario.hpp"
#include "util/error.hpp"

namespace {

using namespace hdlock;
using eval::Json;
using eval::RunOptions;
using eval::ScenarioInfo;
using eval::SimpleScenario;
using eval::SweepRunner;
using eval::TrialContext;
using eval::TrialSpec;

/// A scenario of `n` trials whose metrics are pure functions of the trial
/// context — any scheduling nondeterminism would show up in the report.
SimpleScenario counting_scenario(std::size_t n) {
    ScenarioInfo info;
    info.name = "counting";
    info.paper_ref = "test";
    info.description = "seed-echo scenario";
    return SimpleScenario(
        std::move(info),
        [n](const RunOptions&) {
            std::vector<TrialSpec> plan;
            for (std::size_t i = 0; i < n; ++i) {
                TrialSpec trial;
                // Append form: GCC 12's -Wrestrict false-positives on
                // operator+ chains ending in a string&&.
                trial.name = "t";
                trial.name += std::to_string(i);
                trial.params["i"] = i;
                plan.push_back(std::move(trial));
            }
            return plan;
        },
        [](const TrialSpec& spec, const TrialContext& context) {
            Json metrics = Json::object();
            metrics["index"] = context.index;
            metrics["seed"] = context.seed;
            metrics["scenario_seed"] = context.scenario_seed;
            metrics["i_squared"] = spec.params.at("i").as_int() * spec.params.at("i").as_int();
            metrics["timing"]["noise"] = static_cast<double>(context.seed % 97);
            return metrics;
        });
}

RunOptions options_with(std::size_t threads, std::uint64_t seed = 7) {
    RunOptions options;
    options.n_threads = threads;
    options.seed = seed;
    return options;
}

TEST(SweepRunner, SameSeedAnyThreadCountIsByteIdentical) {
    const auto scenario = counting_scenario(16);
    const auto serial = SweepRunner(options_with(1)).run(scenario);
    const auto pooled = SweepRunner(options_with(4)).run(scenario);
    const auto oversubscribed = SweepRunner(options_with(64)).run(scenario);
    const std::string reference = eval::deterministic_dump(serial);
    EXPECT_EQ(reference, eval::deterministic_dump(pooled));
    EXPECT_EQ(reference, eval::deterministic_dump(oversubscribed));
}

TEST(SweepRunner, TrialSeedsAreDistinctStableAndSeedDependent) {
    const auto scenario = counting_scenario(8);
    const auto report = SweepRunner(options_with(2)).run(scenario);
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < report.trials.size(); ++i) {
        const auto& trial = report.trials[i];
        seeds.insert(trial.seed);
        EXPECT_EQ(trial.seed, eval::derive_trial_seed(report.options, "counting", i));
        EXPECT_EQ(trial.metrics.at("seed"), Json(trial.seed));
        EXPECT_EQ(trial.metrics.at("seed").as_uint(), trial.seed)
            << "seeds must round-trip exactly, never through double";
    }
    EXPECT_EQ(seeds.size(), report.trials.size()) << "per-trial seeds must be distinct";

    const auto reseeded = SweepRunner(options_with(2, /*seed=*/8)).run(scenario);
    EXPECT_NE(report.trials[0].seed, reseeded.trials[0].seed);
    EXPECT_NE(eval::deterministic_dump(report), eval::deterministic_dump(reseeded));
}

TEST(SweepRunner, ThrowingTrialIsCapturedNotFatal) {
    ScenarioInfo info;
    info.name = "flaky";
    info.paper_ref = "test";
    info.description = "one trial throws";
    const SimpleScenario scenario(
        std::move(info),
        [](const RunOptions&) {
            std::vector<TrialSpec> plan;
            for (const char* name : {"ok-a", "boom", "ok-b"}) {
                plan.push_back({.name = name, .params = eval::Json::object()});
            }
            return plan;
        },
        [](const TrialSpec& spec, const TrialContext&) -> Json {
            if (spec.name == "boom") throw Error("synthetic failure in boom");
            Json metrics = Json::object();
            metrics["fine"] = true;
            return metrics;
        });

    const auto report = SweepRunner(options_with(2)).run(scenario);
    EXPECT_EQ(report.trials.size(), 3u);
    EXPECT_EQ(report.n_errors(), 1u);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.trials[0].ok());
    EXPECT_FALSE(report.trials[1].ok());
    EXPECT_NE(report.trials[1].error.find("synthetic failure"), std::string::npos);
    EXPECT_TRUE(report.trials[2].ok());

    // The error string lands in the JSON in place of metrics.
    const Json json = eval::scenario_report_json(report, {});
    EXPECT_EQ(json.at("n_errors").as_int(), 1);
    EXPECT_NE(json.at("trials").at(1).find("error"), nullptr);
    EXPECT_EQ(json.at("trials").at(1).find("metrics"), nullptr);
}

TEST(SweepRunner, EmptyPlanIsNotOk) {
    ScenarioInfo info;
    info.name = "empty";
    info.paper_ref = "test";
    info.description = "plans nothing";
    const SimpleScenario scenario(
        std::move(info), [](const RunOptions&) { return std::vector<TrialSpec>{}; },
        [](const TrialSpec&, const TrialContext&) { return Json::object(); });
    const auto report = SweepRunner(options_with(4)).run(scenario);
    EXPECT_TRUE(report.trials.empty());
    EXPECT_FALSE(report.ok()) << "an empty report must fail the CI gate";
}

TEST(SweepRunner, MaxTrialsBoundsExecutionAndRecordsThePlan) {
    auto options = options_with(2);
    options.max_trials = 3;
    const auto report = SweepRunner(options).run(counting_scenario(10));
    EXPECT_EQ(report.n_planned, 10u);
    EXPECT_EQ(report.trials.size(), 3u);
    EXPECT_TRUE(report.ok());
}

TEST(SweepRunner, SmokeAndFullAreMutuallyExclusive) {
    RunOptions options;
    options.smoke = true;
    options.full = true;
    EXPECT_THROW(SweepRunner(options).run(counting_scenario(1)), ConfigError);
}

TEST(SweepRunner, ResolvedThreadsClampsToTrialCount) {
    EXPECT_EQ(SweepRunner(options_with(8)).resolved_threads(3), 3u);
    EXPECT_EQ(SweepRunner(options_with(2)).resolved_threads(100), 2u);
    EXPECT_GE(SweepRunner(options_with(0)).resolved_threads(100), 1u);
    EXPECT_EQ(SweepRunner(options_with(4)).resolved_threads(0), 1u);
}

TEST(ReportJson, TimingAndContextAreStrippable) {
    const auto report = SweepRunner(options_with(1)).run(counting_scenario(2));

    eval::ReportJsonOptions with_everything;
    with_everything.executable = "unit-test";
    const Json full = eval::full_report_json({&report, 1}, with_everything);
    EXPECT_NE(full.find("context"), nullptr);
    EXPECT_EQ(full.at("context").at("executable").as_string(), "unit-test");
    const Json& full_trial = full.at("scenarios").at(std::size_t{0}).at("trials").at(
        std::size_t{0});
    EXPECT_NE(full_trial.find("seconds"), nullptr);
    EXPECT_NE(full_trial.at("metrics").find("timing"), nullptr);

    eval::ReportJsonOptions stripped;
    stripped.include_timing = false;
    stripped.include_context = false;
    const Json bare = eval::full_report_json({&report, 1}, stripped);
    EXPECT_EQ(bare.find("context"), nullptr);
    const Json& bare_trial = bare.at("scenarios").at(std::size_t{0}).at("trials").at(
        std::size_t{0});
    EXPECT_EQ(bare_trial.find("seconds"), nullptr);
    EXPECT_EQ(bare_trial.at("metrics").find("timing"), nullptr)
        << "metrics.timing must be stripped from the deterministic form";
    EXPECT_NE(bare_trial.at("metrics").find("i_squared"), nullptr)
        << "real metrics must survive the strip";
}

}  // namespace
