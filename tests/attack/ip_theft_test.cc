// Tests for the end-to-end IP-theft experiment (src/attack/ip_theft.*):
// the Table 1 pipeline on small synthetic datasets.

#include "attack/ip_theft.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

using hdlock::attack::IpTheftConfig;
using hdlock::attack::IpTheftReport;
using hdlock::attack::steal_model;
using hdlock::data::SyntheticSpec;
using hdlock::hdc::ModelKind;

namespace {

hdlock::data::SyntheticBenchmark small_benchmark() {
    SyntheticSpec spec;
    spec.name = "theft";
    spec.n_features = 32;
    spec.n_classes = 4;
    spec.n_train = 240;
    spec.n_test = 120;
    spec.n_levels = 8;
    spec.noise = 0.15;
    spec.seed = 21;
    return hdlock::data::make_benchmark(spec);
}

}  // namespace

class IpTheftTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(IpTheftTest, CloneMatchesOriginalAccuracy) {
    const auto benchmark = small_benchmark();
    IpTheftConfig config;
    config.kind = GetParam();
    config.dim = 2048;
    config.n_levels = benchmark.spec.n_levels;
    config.retrain_epochs = 5;
    config.seed = 3;

    const IpTheftReport report = steal_model(benchmark.train, benchmark.test, config);

    // The attack recovers the *entire* mapping...
    EXPECT_DOUBLE_EQ(report.value_mapping_accuracy, 1.0);
    EXPECT_DOUBLE_EQ(report.feature_mapping_accuracy, 1.0);
    // ...so the clone performs like the original (Table 1's conclusion).
    EXPECT_GT(report.original_accuracy, 0.8);
    EXPECT_NEAR(report.recovered_accuracy, report.original_accuracy, 0.05);
    EXPECT_GT(report.guesses, 0u);
    EXPECT_GT(report.oracle_queries, 32u);
    EXPECT_GE(report.reasoning_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothModelKinds, IpTheftTest,
                         ::testing::Values(ModelKind::binary, ModelKind::non_binary),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                             return info.param == ModelKind::binary ? "binary" : "nonbinary";
                         });

TEST(IpTheft, ClonedEncoderReproducesVictimEncodings) {
    // With a perfectly reasoned mapping the clone's item memory is the
    // victim's: non-binary encodings must be bit-identical.
    hdlock::DeploymentConfig deployment_config;
    deployment_config.dim = 1024;
    deployment_config.n_features = 16;
    deployment_config.n_levels = 4;
    deployment_config.n_layers = 0;
    deployment_config.seed = 5;
    const auto deployment = hdlock::provision(deployment_config);

    const hdlock::attack::EncodingOracle oracle(deployment.encoder);
    const auto values =
        hdlock::attack::extract_value_mapping(*deployment.store, oracle, true);
    const auto features = hdlock::attack::extract_feature_mapping(
        *deployment.store, oracle, values.level_to_slot, hdlock::attack::FeatureAttackConfig{});

    const auto clone = hdlock::attack::build_cloned_encoder(
        *deployment.store, features.feature_to_slot, values.level_to_slot, /*tie_seed=*/999);

    hdlock::util::Xoshiro256ss rng(7);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<int> levels(16);
        for (auto& level : levels) level = static_cast<int>(rng.next_below(4));
        EXPECT_EQ(clone->encode(levels), deployment.encoder->encode(levels));
    }
}

TEST(IpTheft, ReportCarriesBenchmarkName) {
    const auto benchmark = small_benchmark();
    IpTheftConfig config;
    config.dim = 1024;
    config.n_levels = benchmark.spec.n_levels;
    config.retrain_epochs = 2;
    const auto report = steal_model(benchmark.train, benchmark.test, config);
    EXPECT_EQ(report.benchmark, benchmark.train.name);
}
