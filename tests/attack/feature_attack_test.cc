// Tests for the divide-and-conquer feature extraction (src/attack/
// feature_attack.*): full recovery against the unprotected baseline, the
// full/restricted criterion equivalence, and failure against HDLock.

#include "attack/feature_attack.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "attack/value_attack.hpp"
#include "core/locked_encoder.hpp"

using hdlock::ContractViolation;
using hdlock::Deployment;
using hdlock::DeploymentConfig;
using hdlock::provision;
using hdlock::attack::DistanceCriterion;
using hdlock::attack::EncodingOracle;
using hdlock::attack::extract_feature_mapping;
using hdlock::attack::extract_value_mapping;
using hdlock::attack::FeatureAttackConfig;
using hdlock::attack::feature_guess_curve;

namespace {

Deployment make_deployment(std::size_t n_features, std::size_t dim, std::size_t n_levels,
                           std::size_t n_layers, std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = n_levels;
    config.n_layers = n_layers;
    config.seed = seed;
    return provision(config);
}

double mapping_accuracy(const Deployment& deployment,
                        std::span<const std::uint32_t> feature_to_slot) {
    const auto& key = deployment.secure->key();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        hits += feature_to_slot[i] == key.entry(i, 0).base_index ? 1u : 0u;
    }
    return static_cast<double>(hits) / static_cast<double>(key.n_features());
}

}  // namespace

// (binary oracle, criterion)
class FeatureAttackTest
    : public ::testing::TestWithParam<std::tuple<bool, DistanceCriterion>> {};

TEST_P(FeatureAttackTest, FullyRecoversPlainMapping) {
    const auto [binary, criterion] = GetParam();
    const auto deployment = make_deployment(32, 4096, 4, 0, 41);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, binary);

    FeatureAttackConfig config;
    config.binary_oracle = binary;
    config.criterion = criterion;
    const auto result =
        extract_feature_mapping(*deployment.store, oracle, values.level_to_slot, config);

    EXPECT_DOUBLE_EQ(mapping_accuracy(deployment, result.feature_to_slot), 1.0);
    EXPECT_GT(result.mean_margin, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    OracleAndCriterion, FeatureAttackTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(DistanceCriterion::full, DistanceCriterion::restricted)),
    [](const ::testing::TestParamInfo<FeatureAttackTest::ParamType>& info) {
        const bool binary = std::get<0>(info.param);
        const DistanceCriterion criterion = std::get<1>(info.param);
        return std::string(binary ? "binary" : "nonbinary") + "_" +
               (criterion == DistanceCriterion::full ? "full" : "restricted");
    });

TEST(FeatureAttack, RestrictedAndFullAgree) {
    // The ablation of DESIGN.md §4: the cheap restricted-index criterion must
    // select the same mapping as the paper-faithful full criterion.
    const auto deployment = make_deployment(24, 2048, 4, 0, 43);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);

    FeatureAttackConfig full;
    full.criterion = DistanceCriterion::full;
    FeatureAttackConfig restricted;
    restricted.criterion = DistanceCriterion::restricted;
    const auto a = extract_feature_mapping(*deployment.store, oracle, values.level_to_slot, full);
    const auto b =
        extract_feature_mapping(*deployment.store, oracle, values.level_to_slot, restricted);
    EXPECT_EQ(a.feature_to_slot, b.feature_to_slot);
}

TEST(FeatureAttack, GuessCountsMatchDivideAndConquer) {
    const std::size_t n = 16;
    const auto deployment = make_deployment(n, 1024, 4, 0, 47);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);

    FeatureAttackConfig with_exclusion;
    with_exclusion.enforce_unique = true;
    const auto a = extract_feature_mapping(*deployment.store, oracle, values.level_to_slot,
                                           with_exclusion);
    EXPECT_EQ(a.guesses, n * (n + 1) / 2);  // shrinking candidate pool

    FeatureAttackConfig without_exclusion;
    without_exclusion.enforce_unique = false;
    const auto b = extract_feature_mapping(*deployment.store, oracle, values.level_to_slot,
                                           without_exclusion);
    EXPECT_EQ(b.guesses, n * n);  // the paper's O(N^2)
    EXPECT_EQ(b.feature_to_slot, a.feature_to_slot);
}

TEST(FeatureAttack, OracleQueriesAreLinearInFeatures) {
    const std::size_t n = 12;
    const auto deployment = make_deployment(n, 1024, 4, 0, 53);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);
    extract_feature_mapping(*deployment.store, oracle, values.level_to_slot,
                            FeatureAttackConfig{});
    // 1 (value step) + 1 (all-min baseline) + N probes.
    EXPECT_EQ(oracle.query_count(), 1u + 1u + n);
}

TEST(FeatureAttack, GuessCurveSeparatesCorrectCandidate) {
    // The Fig. 3 experiment in miniature. An odd feature count keeps every
    // encoding sum away from zero, so there are no sign(0) ties and the
    // correct candidate reconstructs the output *exactly* (distance 0).
    const auto deployment = make_deployment(47, 10000, 2, 0, 59);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);

    const std::size_t probe = 7;
    const auto curve =
        feature_guess_curve(*deployment.store, oracle, values.level_to_slot, probe, true);

    const auto truth = deployment.secure->key().entry(probe, 0).base_index;
    EXPECT_EQ(curve.best_candidate, truth);
    EXPECT_DOUBLE_EQ(curve.best_distance, 0.0);
    EXPECT_GT(curve.runner_up_distance, 0.02);
    EXPECT_EQ(curve.distances.size(), deployment.store->pool_size());
}

TEST(FeatureAttack, GuessCurveTieNoiseFloorWithEvenFeatureCount) {
    // With an even feature count the encoding sum can hit exactly zero; the
    // oracle and the attacker then coin-flip independently, which puts the
    // correct guess at a small but non-zero Hamming floor — the residual
    // visible in the paper's Fig. 3.  The argmin must still be the truth.
    const auto deployment = make_deployment(48, 10000, 2, 0, 59);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);
    const auto curve =
        feature_guess_curve(*deployment.store, oracle, values.level_to_slot, 7, true);
    EXPECT_EQ(curve.best_candidate, deployment.secure->key().entry(7, 0).base_index);
    EXPECT_GT(curve.best_distance, 0.0);          // ties do occur...
    EXPECT_LT(curve.best_distance, 0.1);          // ...but stay a small floor
    EXPECT_GT(curve.runner_up_distance, curve.best_distance);
}

TEST(FeatureAttack, NonBinaryGuessCurveIsExact) {
    // Sec. 3.2: for the non-binary module the correct guess matches exactly
    // ("the cosine value [is] exactly 1") — distance 0 with certainty.
    const auto deployment = make_deployment(24, 2048, 4, 0, 61);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, false);
    const auto curve =
        feature_guess_curve(*deployment.store, oracle, values.level_to_slot, 3, false);
    EXPECT_EQ(curve.best_candidate, deployment.secure->key().entry(3, 0).base_index);
    EXPECT_DOUBLE_EQ(curve.best_distance, 0.0);
    EXPECT_GT(curve.runner_up_distance, 0.3);
}

TEST(FeatureAttack, FailsAgainstLockedEncoder) {
    // The defense claim: the same divide-and-conquer attack run against an
    // HDLock deployment (L = 2) recovers essentially nothing, because no
    // pool entry matches any Eq. 9 product.
    const std::size_t n = 32;
    const auto deployment = make_deployment(n, 4096, 4, 2, 67);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);

    const auto result = extract_feature_mapping(*deployment.store, oracle, values.level_to_slot,
                                                FeatureAttackConfig{});
    // Score against layer-0 base indices (the closest thing to a "truth"):
    // chance level is 1/N; allow a little slack above it.
    const auto& key = deployment.secure->key();
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        hits += result.feature_to_slot[i] == key.entry(i, 0).base_index ? 1u : 0u;
    }
    EXPECT_LE(hits, 4u);
}

TEST(FeatureAttack, LockedEncoderGuessCurveHasNoSignal) {
    // Against HDLock even the best candidate sits in the noise band around
    // 0.5 x (flip rate of wrong guesses on the unprotected module).
    const auto deployment = make_deployment(32, 4096, 2, 2, 71);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);
    const auto curve =
        feature_guess_curve(*deployment.store, oracle, values.level_to_slot, 0, true);
    // No candidate may stand out the way the correct one does on the plain
    // module: best and runner-up are statistically indistinguishable.
    EXPECT_GT(curve.best_distance, 0.5 * curve.runner_up_distance);
}

TEST(FeatureAttack, RejectsMismatchedPool) {
    // P != N breaks the permutation-invariance precondition; the attack
    // must refuse rather than silently return garbage.
    DeploymentConfig config;
    config.dim = 1024;
    config.n_features = 8;
    config.n_levels = 4;
    config.pool_size = 16;
    config.n_layers = 1;
    const auto deployment = provision(config);
    const EncodingOracle oracle(deployment.encoder);
    const std::vector<std::uint32_t> fake_mapping = {0, 1, 2, 3};
    EXPECT_THROW(extract_feature_mapping(*deployment.store, oracle, fake_mapping,
                                         FeatureAttackConfig{}),
                 ContractViolation);
    EXPECT_THROW(feature_guess_curve(*deployment.store, oracle, fake_mapping, 0, true),
                 ContractViolation);
}

TEST(FeatureAttack, ProbeFeatureBoundsChecked) {
    const auto deployment = make_deployment(8, 1024, 2, 0, 73);
    const EncodingOracle oracle(deployment.encoder);
    const auto values = extract_value_mapping(*deployment.store, oracle, true);
    EXPECT_THROW(feature_guess_curve(*deployment.store, oracle, values.level_to_slot, 8, true),
                 ContractViolation);
}
