// Tests for value hypervector extraction (src/attack/value_attack.*):
// Sec. 3.2 step 1 must recover the level->slot mapping exactly.

#include "attack/value_attack.hpp"

#include <gtest/gtest.h>

#include "core/locked_encoder.hpp"

using hdlock::ContractViolation;
using hdlock::Deployment;
using hdlock::DeploymentConfig;
using hdlock::provision;
using hdlock::attack::EncodingOracle;
using hdlock::attack::extract_value_mapping;

namespace {

Deployment plain_deployment(std::size_t n_features, std::size_t dim, std::size_t n_levels,
                            std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = n_levels;
    config.n_layers = 0;  // the vulnerable baseline
    config.seed = seed;
    return provision(config);
}

}  // namespace

class ValueAttackTest : public ::testing::TestWithParam<bool> {};  // binary oracle?

TEST_P(ValueAttackTest, RecoversFullMapping) {
    const bool binary = GetParam();
    const auto deployment = plain_deployment(32, 4096, 8, 11);
    const EncodingOracle oracle(deployment.encoder);

    const auto result = extract_value_mapping(*deployment.store, oracle, binary);

    const auto& truth = deployment.secure->value_mapping();
    ASSERT_EQ(result.level_to_slot.size(), truth.size());
    for (std::size_t level = 0; level < truth.size(); ++level) {
        EXPECT_EQ(result.level_to_slot[level], truth[level]) << "level " << level;
    }
    EXPECT_NEAR(result.endpoint_distance, 0.5, 0.05);
    EXPECT_GT(result.orientation_margin, 0.5);
    EXPECT_EQ(result.oracle_queries, 1u);
}

TEST_P(ValueAttackTest, RecoversTwoLevelMapping) {
    const bool binary = GetParam();
    const auto deployment = plain_deployment(17, 2048, 2, 13);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = extract_value_mapping(*deployment.store, oracle, binary);
    EXPECT_EQ(result.level_to_slot[0], deployment.secure->value_mapping()[0]);
    EXPECT_EQ(result.level_to_slot[1], deployment.secure->value_mapping()[1]);
}

TEST_P(ValueAttackTest, RecoversManyLevels) {
    const bool binary = GetParam();
    const auto deployment = plain_deployment(24, 10000, 16, 17);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = extract_value_mapping(*deployment.store, oracle, binary);
    const auto& truth = deployment.secure->value_mapping();
    for (std::size_t level = 0; level < truth.size(); ++level) {
        EXPECT_EQ(result.level_to_slot[level], truth[level]) << "level " << level;
    }
}

INSTANTIATE_TEST_SUITE_P(BinaryAndNonBinary, ValueAttackTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "binary" : "nonbinary";
                         });

TEST(ValueAttack, DeterministicAcrossRuns) {
    const auto deployment = plain_deployment(16, 2048, 8, 19);
    const EncodingOracle oracle(deployment.encoder);
    const auto a = extract_value_mapping(*deployment.store, oracle, true);
    const auto b = extract_value_mapping(*deployment.store, oracle, true);
    EXPECT_EQ(a.level_to_slot, b.level_to_slot);
}

TEST(ValueAttack, WorksAcrossSeeds) {
    // Sweep several deployments: recovery must be exact every time.
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        const auto deployment = plain_deployment(16, 2048, 4, seed);
        const EncodingOracle oracle(deployment.encoder);
        const auto result = extract_value_mapping(*deployment.store, oracle, true);
        const auto& truth = deployment.secure->value_mapping();
        for (std::size_t level = 0; level < truth.size(); ++level) {
            ASSERT_EQ(result.level_to_slot[level], truth[level])
                << "seed " << seed << " level " << level;
        }
    }
}

TEST(ValueAttack, OracleQueryCounting) {
    const auto deployment = plain_deployment(8, 1024, 4, 23);
    const EncodingOracle oracle(deployment.encoder);
    EXPECT_EQ(oracle.query_count(), 0u);
    extract_value_mapping(*deployment.store, oracle, true);
    EXPECT_EQ(oracle.query_count(), 1u);
    extract_value_mapping(*deployment.store, oracle, false);
    EXPECT_EQ(oracle.query_count(), 2u);
}

TEST(ValueAttack, RejectsMismatchedOracle) {
    const auto deployment_a = plain_deployment(8, 1024, 4, 29);
    const auto deployment_b = plain_deployment(8, 1024, 8, 31);
    const EncodingOracle oracle_b(deployment_b.encoder);
    EXPECT_THROW(extract_value_mapping(*deployment_a.store, oracle_b, true),
                 ContractViolation);
}
