// Tests for the Sec. 4.2 attacks on HDLock (src/attack/lock_attack.*): the
// single-parameter sweeps behind Fig. 5 / Fig. 6 and the exhaustive joint
// search on toy configurations.

#include "attack/lock_attack.hpp"

#include <gtest/gtest.h>

#include <tuple>

using hdlock::ContractViolation;
using hdlock::Deployment;
using hdlock::DeploymentConfig;
using hdlock::LockedEncoder;
using hdlock::provision;
using hdlock::attack::EncodingOracle;
using hdlock::attack::exhaustive_feature_attack;
using hdlock::attack::LockParameter;
using hdlock::attack::LockSweepConfig;
using hdlock::attack::sweep_lock_parameter;

namespace {

Deployment locked_deployment(std::size_t n_features, std::size_t dim, std::size_t pool,
                             std::size_t n_layers, std::uint64_t seed) {
    DeploymentConfig config;
    config.dim = dim;
    config.n_features = n_features;
    config.n_levels = 2;
    config.pool_size = pool;
    config.n_layers = n_layers;
    config.seed = seed;
    return provision(config);
}

}  // namespace

// (layer, parameter, binary oracle): the four panels of Fig. 5 / Fig. 6.
class LockSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, LockParameter, bool>> {};

TEST_P(LockSweepTest, CorrectGuessIsUniquelyIdentifiable) {
    const auto [layer, parameter, binary] = GetParam();
    // Odd feature count keeps |H0| >= 1 everywhere, matching the analysis in
    // lock_attack.hpp; 2 layers as in the paper's validation.
    const auto deployment = locked_deployment(17, 2048, 16, 2, 97);
    const EncodingOracle oracle(deployment.encoder);
    const auto& key = deployment.secure->key();
    const auto& mapping = deployment.secure->value_mapping();

    LockSweepConfig config;
    config.feature = 0;
    config.layer = layer;
    config.parameter = parameter;
    config.binary_oracle = binary;
    const auto result =
        sweep_lock_parameter(*deployment.store, oracle, key, mapping, config);

    const std::size_t truth = parameter == LockParameter::rotation
                                  ? key.entry(0, layer).rotation
                                  : key.entry(0, layer).base_index;
    EXPECT_EQ(result.best_guess, truth);
    // The correct guess scores 0 (see the flip-position analysis; the
    // non-binary 1 - cosine may carry rounding residue); every wrong guess
    // stays near the chance level.
    EXPECT_NEAR(result.best_score, 0.0, 1e-12);
    EXPECT_GT(result.runner_up_score, 0.15);
    if (binary) {
        EXPECT_GT(result.deciding_positions, 10u);
    } else {
        EXPECT_EQ(result.deciding_positions, 0u);  // criterion uses the full difference vector
    }
    EXPECT_EQ(result.oracle_queries, 2u);
    EXPECT_EQ(result.scores.size(),
              parameter == LockParameter::rotation ? deployment.store->dim()
                                                   : deployment.store->pool_size());
}

INSTANTIATE_TEST_SUITE_P(
    Fig5And6Panels, LockSweepTest,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1),
                       ::testing::Values(LockParameter::rotation, LockParameter::base_index),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<LockSweepTest::ParamType>& info) {
        const std::size_t layer = std::get<0>(info.param);
        const LockParameter parameter = std::get<1>(info.param);
        const bool binary = std::get<2>(info.param);
        return "layer" + std::to_string(layer) +
               (parameter == LockParameter::rotation ? "_rotation" : "_base") +
               (binary ? "_binary" : "_nonbinary");
    });

TEST(LockSweep, WrongGuessesClusterAtChanceLevel) {
    const auto deployment = locked_deployment(17, 2048, 16, 2, 101);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = sweep_lock_parameter(*deployment.store, oracle,
                                             deployment.secure->key(),
                                             deployment.secure->value_mapping(),
                                             LockSweepConfig{});
    double wrong_sum = 0.0;
    std::size_t wrong_count = 0;
    for (std::size_t v = 0; v < result.scores.size(); ++v) {
        if (v == result.best_guess) continue;
        wrong_sum += result.scores[v];
        ++wrong_count;
    }
    EXPECT_NEAR(wrong_sum / static_cast<double>(wrong_count), 0.5, 0.1);
}

TEST(LockSweep, SingleLayerKeysAreAlsoValidatable) {
    const auto deployment = locked_deployment(9, 1024, 8, 1, 103);
    const EncodingOracle oracle(deployment.encoder);
    LockSweepConfig config;
    config.parameter = LockParameter::rotation;
    const auto result = sweep_lock_parameter(*deployment.store, oracle,
                                             deployment.secure->key(),
                                             deployment.secure->value_mapping(), config);
    EXPECT_EQ(result.best_guess, deployment.secure->key().entry(0, 0).rotation);
    EXPECT_DOUBLE_EQ(result.best_score, 0.0);
}

TEST(LockSweep, ProbingNonZeroFeatureWorks) {
    const auto deployment = locked_deployment(11, 1024, 8, 2, 107);
    const EncodingOracle oracle(deployment.encoder);
    LockSweepConfig config;
    config.feature = 6;
    config.parameter = LockParameter::base_index;
    const auto result = sweep_lock_parameter(*deployment.store, oracle,
                                             deployment.secure->key(),
                                             deployment.secure->value_mapping(), config);
    EXPECT_EQ(result.best_guess, deployment.secure->key().entry(6, 0).base_index);
}

TEST(LockSweep, LayerBoundsChecked) {
    const auto deployment = locked_deployment(9, 512, 8, 2, 109);
    const EncodingOracle oracle(deployment.encoder);
    LockSweepConfig config;
    config.layer = 2;
    EXPECT_THROW(sweep_lock_parameter(*deployment.store, oracle, deployment.secure->key(),
                                      deployment.secure->value_mapping(), config),
                 ContractViolation);
}

// ---------------------------------------------------------------------------
// Exhaustive joint search (toy configurations only).
// ---------------------------------------------------------------------------

TEST(ExhaustiveAttack, RecoversSingleLayerKeyOnToyConfig) {
    const auto deployment = locked_deployment(5, 64, 4, 1, 113);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = exhaustive_feature_attack(*deployment.store, oracle,
                                                  deployment.secure->value_mapping(),
                                                  /*feature=*/0, /*n_layers=*/1, true);
    EXPECT_EQ(result.guesses, 4u * 64u);
    EXPECT_DOUBLE_EQ(result.best_score, 0.0);
    // Success criterion: the materialized hypervector matches the device's.
    EXPECT_EQ(result.recovered_feature_hv, deployment.encoder->feature_hv(0));
}

TEST(ExhaustiveAttack, RecoversTwoLayerKeyUpToLayerOrder) {
    const auto deployment = locked_deployment(5, 64, 4, 2, 127);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = exhaustive_feature_attack(*deployment.store, oracle,
                                                  deployment.secure->value_mapping(),
                                                  /*feature=*/0, /*n_layers=*/2, true);
    EXPECT_EQ(result.guesses, 4ull * 64 * 4 * 64);
    EXPECT_EQ(result.recovered_feature_hv, deployment.encoder->feature_hv(0));
    // Layer order is commutative in Eq. 9, so the optimum cannot be unique.
    EXPECT_GE(result.ties_at_best, 2u);
}

TEST(ExhaustiveAttack, CostScalesAsJointSpace) {
    // The point of the defense: moving from L=1 to L=2 multiplies the
    // attacker's work by P*D — measured here in actual guess counts.
    const auto d1 = locked_deployment(5, 64, 4, 1, 131);
    const auto d2 = locked_deployment(5, 64, 4, 2, 131);
    const EncodingOracle o1(d1.encoder);
    const EncodingOracle o2(d2.encoder);
    const auto r1 = exhaustive_feature_attack(*d1.store, o1, d1.secure->value_mapping(), 0, 1, true);
    const auto r2 = exhaustive_feature_attack(*d2.store, o2, d2.secure->value_mapping(), 0, 2, true);
    EXPECT_EQ(r2.guesses, r1.guesses * 4 * 64);
}

TEST(ExhaustiveAttack, NonBinaryCriterionAlsoRecovers) {
    const auto deployment = locked_deployment(5, 64, 4, 1, 137);
    const EncodingOracle oracle(deployment.encoder);
    const auto result = exhaustive_feature_attack(*deployment.store, oracle,
                                                  deployment.secure->value_mapping(), 0, 1,
                                                  /*binary_oracle=*/false);
    EXPECT_NEAR(result.best_score, 0.0, 1e-12);  // 1 - cosine, up to rounding
    EXPECT_EQ(result.recovered_feature_hv, deployment.encoder->feature_hv(0));
}

TEST(ExhaustiveAttack, RefusesInfeasibleSpaces) {
    const auto deployment = locked_deployment(9, 10000, 784, 2, 139);
    const EncodingOracle oracle(deployment.encoder);
    EXPECT_THROW(exhaustive_feature_attack(*deployment.store, oracle,
                                           deployment.secure->value_mapping(), 0, 2, true),
                 ContractViolation);
}
