// Tests for the locked-deployment theft experiment (src/attack/locked_theft.*):
// the Sec. 3.2 attack replayed against an HDLock device must fail in every
// measurable way while the unprotected control succeeds.

#include "attack/locked_theft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/ip_theft.hpp"
#include "data/synthetic.hpp"
#include "util/error.hpp"

using hdlock::attack::IpTheftConfig;
using hdlock::attack::LockedTheftConfig;
using hdlock::attack::LockedTheftReport;
using hdlock::attack::steal_locked_model;
using hdlock::attack::steal_model;
using hdlock::data::SyntheticSpec;
using hdlock::hdc::ModelKind;

namespace {

hdlock::data::SyntheticBenchmark small_benchmark() {
    SyntheticSpec spec;
    spec.name = "locked-theft";
    spec.n_features = 32;
    spec.n_classes = 4;
    spec.n_train = 240;
    spec.n_test = 120;
    spec.n_levels = 8;
    spec.noise = 0.15;
    spec.seed = 21;
    return hdlock::data::make_benchmark(spec);
}

LockedTheftConfig small_config(ModelKind kind, std::size_t n_layers) {
    LockedTheftConfig config;
    config.kind = kind;
    config.dim = 2048;
    config.n_levels = 8;
    config.n_layers = n_layers;
    config.retrain_epochs = 5;
    config.seed = 3;
    return config;
}

}  // namespace

class LockedTheftTest : public ::testing::TestWithParam<std::tuple<ModelKind, std::size_t>> {};

TEST_P(LockedTheftTest, NaiveAttackFailsAgainstLockedDeployment) {
    const auto [kind, n_layers] = GetParam();
    const auto benchmark = small_benchmark();
    const LockedTheftReport report =
        steal_locked_model(benchmark.train, benchmark.test, small_config(kind, n_layers));

    // The lock does not hurt the victim (Fig. 8)...
    EXPECT_GT(report.original_accuracy, 0.8);
    // ...but no pool entry materializes a locked FeaHV...
    EXPECT_LT(report.feature_hv_recovery, 0.05);
    // ...so the stolen encoder loses most of the victim's accuracy.
    EXPECT_LT(report.transfer_accuracy, report.original_accuracy - 0.25);
    if (kind == ModelKind::binary) {
        // Binarization scrubs the residual value-structure correlation, so
        // the binary transfer lands at chance.
        EXPECT_LT(report.transfer_accuracy, report.chance_accuracy + 0.15);
    }
}

TEST(LockedTheft, NonBinaryTransferLeaksValueStructure) {
    // Observation beyond the paper: with the value mapping known, non-binary
    // (integer) encodings keep some class signal even under a wrong feature
    // basis, because the nested ValHV flip bands correlate queries with class
    // sums through the |f - g| level gaps alone.  The transfer sits above
    // chance yet far below the victim — and the binary model, whose sign()
    // discards the magnitude structure, does not exhibit the leak.
    const auto benchmark = small_benchmark();
    const auto nonbinary = steal_locked_model(benchmark.train, benchmark.test,
                                              small_config(ModelKind::non_binary, 2));
    const auto binary =
        steal_locked_model(benchmark.train, benchmark.test, small_config(ModelKind::binary, 2));

    EXPECT_GT(nonbinary.transfer_accuracy, nonbinary.chance_accuracy + 0.1);
    EXPECT_LT(nonbinary.transfer_accuracy, nonbinary.original_accuracy - 0.25);
    EXPECT_LT(binary.transfer_accuracy, binary.chance_accuracy + 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndLayers, LockedTheftTest,
    ::testing::Combine(::testing::Values(ModelKind::binary, ModelKind::non_binary),
                       ::testing::Values(std::size_t{1}, std::size_t{2})),
    [](const ::testing::TestParamInfo<std::tuple<ModelKind, std::size_t>>& info) {
        const ModelKind kind = std::get<0>(info.param);
        return std::string(kind == ModelKind::binary ? "binary" : "nonbinary") + "_L" +
               std::to_string(std::get<1>(info.param));
    });

TEST(LockedTheft, ValueChainStillLeaks) {
    // The ValHVs are deliberately unprotected (Sec. 4.1): the pairwise
    // distance scan must still recover the level chain up to orientation.
    const auto benchmark = small_benchmark();
    const auto report =
        steal_locked_model(benchmark.train, benchmark.test, small_config(ModelKind::binary, 2));
    EXPECT_TRUE(report.value_chain_recovered);
}

TEST(LockedTheft, MarginCollapsesComparedToUnprotectedControl) {
    const auto benchmark = small_benchmark();

    IpTheftConfig control_config;
    control_config.kind = ModelKind::binary;
    control_config.dim = 2048;
    control_config.n_levels = 8;
    control_config.retrain_epochs = 2;
    control_config.seed = 3;
    const auto control = steal_model(benchmark.train, benchmark.test, control_config);

    const auto locked =
        steal_locked_model(benchmark.train, benchmark.test, small_config(ModelKind::binary, 2));

    // Unprotected: the correct candidate is decisively separated (Fig. 3).
    // Locked: every candidate sits at the noise floor, margins vanish.
    EXPECT_GT(control.feature_mapping_accuracy, 0.99);
    EXPECT_LT(locked.naive_attack_margin, control.feature_mapping_accuracy * 0.2);
    EXPECT_LT(locked.naive_attack_margin, 0.05);
}

TEST(LockedTheft, ComplexityGapMatchesClosedForm) {
    const auto benchmark = small_benchmark();
    const auto report =
        steal_locked_model(benchmark.train, benchmark.test, small_config(ModelKind::binary, 2));

    // N = P = 32, D = 2048: baseline N^2 = 1024 guesses, locked N*(D*P)^2.
    EXPECT_NEAR(report.log10_guesses_baseline, std::log10(1024.0), 1e-9);
    const double expected = std::log10(32.0) + 2.0 * std::log10(2048.0 * 32.0);
    EXPECT_NEAR(report.log10_guesses_required, expected, 1e-9);
    EXPECT_GT(report.log10_guesses_required, report.log10_guesses_baseline + 5.0);
}

TEST(LockedTheft, RejectsUnlockedConfiguration) {
    const auto benchmark = small_benchmark();
    EXPECT_THROW(steal_locked_model(benchmark.train, benchmark.test,
                                    small_config(ModelKind::binary, 0)),
                 hdlock::ContractViolation);
}

TEST(LockedTheft, ReportBookkeeping) {
    const auto benchmark = small_benchmark();
    const auto report =
        steal_locked_model(benchmark.train, benchmark.test, small_config(ModelKind::binary, 1));
    EXPECT_EQ(report.benchmark, benchmark.train.name);
    EXPECT_EQ(report.n_layers, 1u);
    EXPECT_GT(report.oracle_queries, 0u);
    EXPECT_GE(report.reasoning_seconds, 0.0);
    EXPECT_NEAR(report.chance_accuracy, 0.25, 1e-12);
}
