#pragma once

/// \file dataset.hpp
/// Labeled dataset container with split and inspection helpers.

#include <cstdint>
#include <string>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace hdlock::data {

/// A labeled classification dataset: one row of X per sample, labels in
/// [0, n_classes).
struct Dataset {
    std::string name;
    util::Matrix<float> X;
    std::vector<int> y;
    int n_classes = 0;

    std::size_t n_samples() const noexcept { return X.rows(); }
    std::size_t n_features() const noexcept { return X.cols(); }

    /// Throws ContractViolation if labels and matrix shape disagree.
    void validate() const;

    /// Number of samples per class.
    std::vector<std::size_t> class_counts() const;
};

/// A train/test pair produced by split functions.
struct TrainTestSplit {
    Dataset train;
    Dataset test;
};

/// Shuffles (seeded) and splits by fraction; train_fraction in (0, 1).
TrainTestSplit split_train_test(const Dataset& full, double train_fraction, std::uint64_t seed);

/// Selects a subset of rows by index (bounds-checked).
Dataset take_rows(const Dataset& source, std::span<const std::size_t> rows);

}  // namespace hdlock::data
