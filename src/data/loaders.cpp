#include "data/loaders.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace hdlock::data {

namespace {

std::vector<std::string_view> split_line(std::string_view line, char delimiter,
                                         std::vector<std::string_view>& fields) {
    fields.clear();
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = line.find(delimiter, start);
        if (pos == std::string_view::npos) {
            fields.push_back(line.substr(start));
            break;
        }
        fields.push_back(line.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

float parse_float(std::string_view text, std::size_t line_no, bool reject_non_finite) {
    float value = 0.0f;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw FormatError("CSV line " + std::to_string(line_no) + ": cannot parse number '" +
                          std::string(text) + "'");
    }
    if (reject_non_finite && !std::isfinite(value)) {
        throw FormatError("CSV line " + std::to_string(line_no) + ": non-finite feature value '" +
                          std::string(text) + "'");
    }
    return value;
}

int parse_label(std::string_view text, std::size_t line_no) {
    int value = 0;
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end || value < 0) {
        throw FormatError("CSV line " + std::to_string(line_no) +
                          ": label must be a non-negative integer, got '" + std::string(text) + "'");
    }
    return value;
}

std::string_view trim(std::string_view text) {
    while (!text.empty() && (text.back() == '\r' || text.back() == ' ')) text.remove_suffix(1);
    while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
    return text;
}

std::uint32_t read_be_u32(std::istream& in, const std::string& context) {
    unsigned char bytes[4];
    in.read(reinterpret_cast<char*>(bytes), 4);
    if (in.gcount() != 4) throw FormatError(context + ": truncated header");
    return (static_cast<std::uint32_t>(bytes[0]) << 24) |
           (static_cast<std::uint32_t>(bytes[1]) << 16) |
           (static_cast<std::uint32_t>(bytes[2]) << 8) | static_cast<std::uint32_t>(bytes[3]);
}

void write_be_u32(std::ostream& out, std::uint32_t value) {
    const unsigned char bytes[4] = {
        static_cast<unsigned char>(value >> 24), static_cast<unsigned char>(value >> 16),
        static_cast<unsigned char>(value >> 8), static_cast<unsigned char>(value)};
    out.write(reinterpret_cast<const char*>(bytes), 4);
}

}  // namespace

Dataset load_csv(const std::filesystem::path& path, const CsvOptions& options) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot open CSV file: " + path.string());

    std::vector<std::vector<float>> feature_rows;
    std::vector<int> labels;
    std::optional<std::size_t> n_columns;

    std::string line;
    std::vector<std::string_view> fields;
    std::size_t line_no = 0;
    bool skipped_header = !options.has_header;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string_view trimmed = trim(line);
        if (trimmed.empty()) continue;
        if (!skipped_header) {
            skipped_header = true;
            continue;
        }
        split_line(trimmed, options.delimiter, fields);
        if (!n_columns.has_value()) {
            if (fields.size() < 2) {
                throw FormatError("CSV line " + std::to_string(line_no) +
                                  ": need at least one feature and a label");
            }
            n_columns = fields.size();
        } else if (fields.size() != *n_columns) {
            throw FormatError("CSV line " + std::to_string(line_no) + ": expected " +
                              std::to_string(*n_columns) + " columns, found " +
                              std::to_string(fields.size()));
        }

        const auto n_cols = static_cast<std::ptrdiff_t>(fields.size());
        std::ptrdiff_t label_col = options.label_column;
        if (label_col < 0) label_col += n_cols;
        if (label_col < 0 || label_col >= n_cols) {
            throw FormatError("CSV: label column out of range");
        }

        std::vector<float> row;
        row.reserve(fields.size() - 1);
        for (std::ptrdiff_t c = 0; c < n_cols; ++c) {
            const auto field = trim(fields[static_cast<std::size_t>(c)]);
            if (c == label_col) {
                labels.push_back(parse_label(field, line_no));
            } else {
                row.push_back(parse_float(field, line_no, options.reject_non_finite));
            }
        }
        feature_rows.push_back(std::move(row));
    }
    if (feature_rows.empty()) throw FormatError("CSV file has no data rows: " + path.string());

    Dataset dataset;
    dataset.name = path.stem().string();
    dataset.X = util::Matrix<float>(feature_rows.size(), feature_rows.front().size());
    for (std::size_t r = 0; r < feature_rows.size(); ++r) {
        const auto dst = dataset.X.row(r);
        std::copy(feature_rows[r].begin(), feature_rows[r].end(), dst.begin());
    }
    dataset.y = std::move(labels);
    dataset.n_classes = *std::max_element(dataset.y.begin(), dataset.y.end()) + 1;
    dataset.validate();
    return dataset;
}

void save_csv(const Dataset& dataset, const std::filesystem::path& path,
              const CsvOptions& options) {
    dataset.validate();
    HDLOCK_EXPECTS(options.label_column == -1 ||
                       options.label_column == static_cast<int>(dataset.n_features()),
                   "save_csv: only trailing label column is supported when writing");
    std::ofstream out(path);
    if (!out) throw IoError("cannot open CSV file for writing: " + path.string());
    out.precision(9);
    for (std::size_t r = 0; r < dataset.n_samples(); ++r) {
        const auto row = dataset.X.row(r);
        for (const float v : row) out << v << options.delimiter;
        out << dataset.y[r] << '\n';
    }
    if (!out) throw IoError("CSV write failed: " + path.string());
}

Dataset load_idx(const std::filesystem::path& images_path,
                 const std::filesystem::path& labels_path, const std::string& name) {
    std::ifstream images(images_path, std::ios::binary);
    if (!images) throw IoError("cannot open IDX image file: " + images_path.string());
    std::ifstream labels(labels_path, std::ios::binary);
    if (!labels) throw IoError("cannot open IDX label file: " + labels_path.string());

    if (read_be_u32(images, "IDX images") != 0x00000803u) {
        throw FormatError("IDX images: bad magic (expected 0x00000803)");
    }
    const std::uint32_t n_images = read_be_u32(images, "IDX images");
    const std::uint32_t rows = read_be_u32(images, "IDX images");
    const std::uint32_t cols = read_be_u32(images, "IDX images");

    if (read_be_u32(labels, "IDX labels") != 0x00000801u) {
        throw FormatError("IDX labels: bad magic (expected 0x00000801)");
    }
    const std::uint32_t n_labels = read_be_u32(labels, "IDX labels");
    if (n_labels != n_images) throw FormatError("IDX: image and label counts differ");

    const std::size_t n_features = static_cast<std::size_t>(rows) * cols;
    Dataset dataset;
    dataset.name = name;
    dataset.X = util::Matrix<float>(n_images, n_features);
    dataset.y.reserve(n_images);

    std::vector<unsigned char> pixel_row(n_features);
    for (std::uint32_t s = 0; s < n_images; ++s) {
        images.read(reinterpret_cast<char*>(pixel_row.data()),
                    static_cast<std::streamsize>(n_features));
        if (images.gcount() != static_cast<std::streamsize>(n_features)) {
            throw FormatError("IDX images: truncated pixel data");
        }
        const auto dst = dataset.X.row(s);
        for (std::size_t f = 0; f < n_features; ++f) {
            dst[f] = static_cast<float>(pixel_row[f]) / 255.0f;
        }
        char label = 0;
        labels.read(&label, 1);
        if (labels.gcount() != 1) throw FormatError("IDX labels: truncated label data");
        dataset.y.push_back(static_cast<int>(static_cast<unsigned char>(label)));
    }
    dataset.n_classes = *std::max_element(dataset.y.begin(), dataset.y.end()) + 1;
    dataset.validate();
    return dataset;
}

void save_idx(const Dataset& dataset, const std::filesystem::path& images_path,
              const std::filesystem::path& labels_path) {
    dataset.validate();
    HDLOCK_EXPECTS(dataset.n_classes <= 256, "save_idx: labels must fit in one byte");

    float lo = dataset.X(0, 0), hi = dataset.X(0, 0);
    for (const float v : dataset.X.data()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    const float scale = hi > lo ? 255.0f / (hi - lo) : 0.0f;

    std::ofstream images(images_path, std::ios::binary);
    if (!images) throw IoError("cannot open IDX image file for writing: " + images_path.string());
    write_be_u32(images, 0x00000803u);
    write_be_u32(images, static_cast<std::uint32_t>(dataset.n_samples()));
    write_be_u32(images, 1u);
    write_be_u32(images, static_cast<std::uint32_t>(dataset.n_features()));

    std::vector<unsigned char> pixel_row(dataset.n_features());
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        const auto row = dataset.X.row(s);
        for (std::size_t f = 0; f < row.size(); ++f) {
            pixel_row[f] = static_cast<unsigned char>(
                std::clamp((row[f] - lo) * scale, 0.0f, 255.0f));
        }
        images.write(reinterpret_cast<const char*>(pixel_row.data()),
                     static_cast<std::streamsize>(pixel_row.size()));
    }
    if (!images) throw IoError("IDX image write failed: " + images_path.string());

    std::ofstream labels(labels_path, std::ios::binary);
    if (!labels) throw IoError("cannot open IDX label file for writing: " + labels_path.string());
    write_be_u32(labels, 0x00000801u);
    write_be_u32(labels, static_cast<std::uint32_t>(dataset.n_samples()));
    for (const int label : dataset.y) {
        const char byte = static_cast<char>(static_cast<unsigned char>(label));
        labels.write(&byte, 1);
    }
    if (!labels) throw IoError("IDX label write failed: " + labels_path.string());
}

}  // namespace hdlock::data
