#pragma once

/// \file synthetic.hpp
/// Synthetic stand-ins for the paper's evaluation datasets.
///
/// The paper evaluates on MNIST, UCIHAR, FACE (CMU faces vs. CIFAR non-faces),
/// ISOLET and PAMAP.  Those corpora are not redistributable here, so each is
/// replaced by a class-conditional Gaussian-mixture dataset with the same
/// feature count, class count and quantization structure (the properties the
/// encoder, the attack and the defense actually interact with), with mixture
/// noise calibrated so that baseline HDC accuracy lands in the paper's
/// 0.80-0.94 band.  See DESIGN.md §2 for the substitution rationale.
/// Real data can be substituted through data/loaders.hpp at any time.

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hdlock::data {

/// Generator parameters for one synthetic classification dataset.
struct SyntheticSpec {
    std::string name = "blobs";
    std::size_t n_features = 20;
    int n_classes = 3;
    std::size_t n_train = 200;
    std::size_t n_test = 100;
    /// Discretization levels the benchmarks use with this dataset.
    std::size_t n_levels = 16;
    /// Stddev of the additive Gaussian noise around each prototype, relative
    /// to the [0,1] feature scale. Larger noise -> harder dataset.
    double noise = 0.10;
    /// Each class is a mixture of this many prototypes; more prototypes ->
    /// more intra-class variability -> harder dataset.
    int prototypes_per_class = 1;
    /// Probability that a sample carries the label of a different class —
    /// the Bayes-error knob that pins the achievable accuracy below 1.  The
    /// presets calibrate it so baseline HDC accuracy matches the paper's
    /// Table 1 band (see EXPERIMENTS.md); applied to train and test alike.
    double label_noise = 0.0;
    std::uint64_t seed = 1;
};

/// A train/test pair drawn from the same generative process with disjoint
/// sample streams.
struct SyntheticBenchmark {
    SyntheticSpec spec;
    Dataset train;
    Dataset test;
};

/// Samples `n_samples` points (balanced round-robin over classes).
Dataset make_blobs(const SyntheticSpec& spec, std::size_t n_samples, std::uint64_t stream_seed);

/// Generates the train and test partitions of a spec.
SyntheticBenchmark make_benchmark(const SyntheticSpec& spec);

/// Presets mirroring the paper's five benchmarks (feature / class counts
/// match the real datasets; sizes are scaled for laptop-speed runs; noise is
/// calibrated against the paper's reported baseline accuracy).
SyntheticSpec mnist_like();   ///< 784 features, 10 classes  (MNIST [12])
SyntheticSpec ucihar_like();  ///< 561 features,  6 classes  (UCIHAR [1])
SyntheticSpec isolet_like();  ///< 617 features, 26 classes  (ISOLET [3])
SyntheticSpec face_like();    ///< 608 features,  2 classes  (FACE: CMU + CIFAR)
SyntheticSpec pamap_like();   ///< 75 features,   5 classes  (PAMAP [14])

/// All five presets in the paper's Table 1 order.
std::vector<SyntheticSpec> paper_benchmarks();

}  // namespace hdlock::data
