#include "data/dataset.hpp"

#include <numeric>

namespace hdlock::data {

void Dataset::validate() const {
    HDLOCK_EXPECTS(X.rows() == y.size(), "Dataset: row count and label count differ");
    HDLOCK_EXPECTS(n_classes > 0, "Dataset: n_classes must be positive");
    for (const int label : y) {
        HDLOCK_EXPECTS(label >= 0 && label < n_classes, "Dataset: label out of range");
    }
}

std::vector<std::size_t> Dataset::class_counts() const {
    std::vector<std::size_t> counts(static_cast<std::size_t>(n_classes), 0);
    for (const int label : y) ++counts[static_cast<std::size_t>(label)];
    return counts;
}

Dataset take_rows(const Dataset& source, std::span<const std::size_t> rows) {
    Dataset out;
    out.name = source.name;
    out.n_classes = source.n_classes;
    out.X = util::Matrix<float>(rows.size(), source.X.cols());
    out.y.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t r = rows[i];
        HDLOCK_EXPECTS(r < source.X.rows(), "take_rows: row index out of range");
        const auto src = source.X.row(r);
        const auto dst = out.X.row(i);
        std::copy(src.begin(), src.end(), dst.begin());
        out.y.push_back(source.y[r]);
    }
    return out;
}

TrainTestSplit split_train_test(const Dataset& full, double train_fraction, std::uint64_t seed) {
    HDLOCK_EXPECTS(train_fraction > 0.0 && train_fraction < 1.0,
                   "split_train_test: fraction must be in (0, 1)");
    full.validate();

    std::vector<std::size_t> order(full.n_samples());
    std::iota(order.begin(), order.end(), std::size_t{0});
    util::Xoshiro256ss rng(seed);
    rng.shuffle(std::span<std::size_t>(order));

    const auto n_train = static_cast<std::size_t>(
        static_cast<double>(full.n_samples()) * train_fraction);
    HDLOCK_EXPECTS(n_train > 0 && n_train < full.n_samples(),
                   "split_train_test: split produced an empty side");

    TrainTestSplit split;
    split.train = take_rows(full, std::span<const std::size_t>(order.data(), n_train));
    split.test = take_rows(
        full, std::span<const std::size_t>(order.data() + n_train, full.n_samples() - n_train));
    split.train.name = full.name + "/train";
    split.test.name = full.name + "/test";
    return split;
}

}  // namespace hdlock::data
