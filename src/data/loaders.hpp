#pragma once

/// \file loaders.hpp
/// File-format loaders/writers so real datasets can replace the synthetic
/// stand-ins: CSV (one sample per line, numeric features + integer label)
/// and the IDX format used by the original MNIST distribution.

#include <filesystem>
#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace hdlock::data {

struct CsvOptions {
    char delimiter = ',';
    /// Column index holding the class label; negative counts from the end
    /// (-1 = last column, the default).
    int label_column = -1;
    /// Skip the first line (header).
    bool has_header = false;
    /// Reject non-finite feature values ("nan", "inf", ... — std::from_chars
    /// parses them all) with a FormatError naming the offending line.  Off
    /// by default: the discretizer clamps non-finite values deterministically
    /// (NaN -> level 0, +/-inf -> boundary levels), so loading them is safe;
    /// turn this on when such values indicate upstream data corruption.
    bool reject_non_finite = false;
};

/// Reads a CSV file into a Dataset. Labels must be non-negative integers;
/// n_classes is max(label)+1.  Throws IoError / FormatError.
Dataset load_csv(const std::filesystem::path& path, const CsvOptions& options = {});

/// Writes a dataset as CSV (features then label, '%.9g' precision).
void save_csv(const Dataset& dataset, const std::filesystem::path& path,
              const CsvOptions& options = {});

/// Reads an MNIST-style IDX image file (magic 0x00000803, u8 pixels) plus an
/// IDX label file (magic 0x00000801).  Pixels are scaled to [0, 1].
Dataset load_idx(const std::filesystem::path& images_path,
                 const std::filesystem::path& labels_path, const std::string& name = "idx");

/// Writes a dataset in the IDX pair format (values are rescaled to u8 via
/// the dataset's min/max).  Feature count must be expressible as rows*cols;
/// this writer stores it as a single row of n_features columns.
void save_idx(const Dataset& dataset, const std::filesystem::path& images_path,
              const std::filesystem::path& labels_path);

}  // namespace hdlock::data
