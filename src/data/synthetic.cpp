#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace hdlock::data {

namespace {

/// Per-class mixture prototypes in [0,1]^n_features, deterministic per spec
/// seed (both partitions must see the same class structure).
util::Matrix<float> make_prototypes(const SyntheticSpec& spec) {
    const auto n_protos =
        static_cast<std::size_t>(spec.n_classes) * static_cast<std::size_t>(spec.prototypes_per_class);
    util::Matrix<float> protos(n_protos, spec.n_features);
    util::Xoshiro256ss rng(util::hash_mix(spec.seed, 0x9807));
    for (float& v : protos.data()) v = static_cast<float>(rng.next_double());
    return protos;
}

}  // namespace

Dataset make_blobs(const SyntheticSpec& spec, std::size_t n_samples, std::uint64_t stream_seed) {
    HDLOCK_EXPECTS(spec.n_features > 0, "make_blobs: n_features must be positive");
    HDLOCK_EXPECTS(spec.n_classes >= 2, "make_blobs: need at least two classes");
    HDLOCK_EXPECTS(spec.prototypes_per_class >= 1, "make_blobs: need at least one prototype");
    HDLOCK_EXPECTS(n_samples > 0, "make_blobs: n_samples must be positive");

    const util::Matrix<float> protos = make_prototypes(spec);
    util::Xoshiro256ss rng(util::hash_mix(spec.seed, stream_seed));

    Dataset dataset;
    dataset.name = spec.name;
    dataset.n_classes = spec.n_classes;
    dataset.X = util::Matrix<float>(n_samples, spec.n_features);
    dataset.y.reserve(n_samples);

    HDLOCK_EXPECTS(spec.label_noise >= 0.0 && spec.label_noise < 1.0,
                   "make_blobs: label_noise must lie in [0, 1)");
    for (std::size_t s = 0; s < n_samples; ++s) {
        const int label = static_cast<int>(s % static_cast<std::size_t>(spec.n_classes));
        const auto proto_in_class =
            static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(spec.prototypes_per_class)));
        const std::size_t proto_row =
            static_cast<std::size_t>(label) * static_cast<std::size_t>(spec.prototypes_per_class) +
            proto_in_class;
        const auto proto = protos.row(proto_row);
        const auto row = dataset.X.row(s);
        for (std::size_t f = 0; f < spec.n_features; ++f) {
            const double v = proto[f] + spec.noise * rng.next_normal();
            row[f] = static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
        // Bayes-error simulation: with probability label_noise the recorded
        // label is a uniformly drawn *other* class.
        int recorded = label;
        if (spec.label_noise > 0.0 && rng.next_double() < spec.label_noise) {
            const auto offset =
                1 + rng.next_below(static_cast<std::uint64_t>(spec.n_classes - 1));
            recorded = static_cast<int>((static_cast<std::uint64_t>(label) + offset) %
                                        static_cast<std::uint64_t>(spec.n_classes));
        }
        dataset.y.push_back(recorded);
    }
    dataset.validate();
    return dataset;
}

SyntheticBenchmark make_benchmark(const SyntheticSpec& spec) {
    SyntheticBenchmark benchmark;
    benchmark.spec = spec;
    benchmark.train = make_blobs(spec, spec.n_train, 0x7EA1u);
    benchmark.test = make_blobs(spec, spec.n_test, 0x7E57u);
    benchmark.train.name = spec.name + "/train";
    benchmark.test.name = spec.name + "/test";
    return benchmark;
}

// Noise / mixture settings below are calibrated (see EXPERIMENTS.md) so the
// baseline HDC pipeline reproduces the paper's Table 1 accuracy band.

SyntheticSpec mnist_like() {
    SyntheticSpec spec;
    spec.name = "mnist";
    spec.n_features = 784;
    spec.n_classes = 10;
    spec.n_train = 2000;
    spec.n_test = 500;
    spec.n_levels = 16;
    spec.noise = 0.30;
    spec.prototypes_per_class = 4;
    spec.label_noise = 0.154;
    spec.seed = 0x3157;
    return spec;
}

SyntheticSpec ucihar_like() {
    SyntheticSpec spec;
    spec.name = "ucihar";
    spec.n_features = 561;
    spec.n_classes = 6;
    spec.n_train = 1500;
    spec.n_test = 400;
    spec.n_levels = 16;
    spec.noise = 0.30;
    spec.prototypes_per_class = 4;
    spec.label_noise = 0.123;
    spec.seed = 0xA11;
    return spec;
}

SyntheticSpec isolet_like() {
    SyntheticSpec spec;
    spec.name = "isolet";
    spec.n_features = 617;
    spec.n_classes = 26;
    spec.n_train = 1560;
    spec.n_test = 390;
    spec.n_levels = 16;
    spec.noise = 0.28;
    spec.prototypes_per_class = 3;
    spec.label_noise = 0.115;
    spec.seed = 0x150;
    return spec;
}

SyntheticSpec face_like() {
    SyntheticSpec spec;
    spec.name = "face";
    spec.n_features = 608;
    spec.n_classes = 2;
    spec.n_train = 996;   // paper: 623 faces + 623 non-faces, 80/20 split
    spec.n_test = 250;
    spec.n_levels = 16;
    spec.noise = 0.32;
    spec.prototypes_per_class = 4;
    spec.label_noise = 0.042;
    spec.seed = 0xFACE;
    return spec;
}

SyntheticSpec pamap_like() {
    SyntheticSpec spec;
    spec.name = "pamap";
    spec.n_features = 75;
    spec.n_classes = 5;
    spec.n_train = 1200;
    spec.n_test = 300;
    spec.n_levels = 16;
    spec.noise = 0.28;
    spec.prototypes_per_class = 4;
    spec.label_noise = 0.068;
    spec.seed = 0x9A3A;
    return spec;
}

std::vector<SyntheticSpec> paper_benchmarks() {
    return {mnist_like(), ucihar_like(), face_like(), isolet_like(), pamap_like()};
}

}  // namespace hdlock::data
