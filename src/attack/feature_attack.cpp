#include "attack/feature_attack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdlock::attack {

namespace {

/// Shared per-attack context: the attacker's reconstruction of everything
/// that does not depend on the probed feature.
struct AttackContext {
    const PublicStore& store;
    const hdc::BinaryHV& val_min;  ///< believed Val_1
    const hdc::BinaryHV& val_max;  ///< believed Val_M
    hdc::IntHV s_min;              ///< Val_1 (elementwise) * sum of pool bases
    std::vector<int> all_min_levels;
    std::vector<int> max_level_template;
};

AttackContext make_context(const PublicStore& store, const EncodingOracle& oracle,
                           std::span<const std::uint32_t> level_to_slot) {
    HDLOCK_EXPECTS(level_to_slot.size() == store.n_levels(),
                   "feature attack: value mapping size mismatch");
    HDLOCK_EXPECTS(oracle.n_features() == store.pool_size(),
                   "feature attack: requires the baseline threat model with P == N");
    const auto& val_min = store.value_slot(level_to_slot.front());
    const auto& val_max = store.value_slot(level_to_slot.back());

    hdc::IntHV pool_sum(store.dim());
    for (const auto& base : store.bases()) pool_sum.add(base);
    hdc::IntHV s_min(store.dim());
    for (std::size_t j = 0; j < store.dim(); ++j) {
        s_min[j] = val_min.get(j) * pool_sum[j];
    }

    AttackContext context{store, val_min, val_max, std::move(s_min),
                          std::vector<int>(oracle.n_features(), 0),
                          std::vector<int>(oracle.n_features(), 0)};
    return context;
}

/// Binary criterion: fraction of positions where sign(S_min + candidate
/// term) disagrees with the observed output; sign(0) counts half.
///
/// `prune_above` enables branch-and-bound: once the mismatch count provably
/// exceeds that fraction the scan bails out and returns the partial (larger)
/// fraction.  Candidates pruned this way can never become the best or the
/// runner-up, so argmin and margins stay exact.
double binary_candidate_distance(const AttackContext& context, const hdc::BinaryHV& candidate,
                                 const hdc::BinaryHV& observed,
                                 std::span<const std::uint32_t> positions,
                                 double prune_above = 2.0) {
    if (positions.empty()) return 0.5;
    const double prune_count = prune_above * static_cast<double>(positions.size());
    double mismatches = 0.0;
    for (const std::uint32_t j : positions) {
        const int val_min = context.val_min.get(j);
        const int val_max = context.val_max.get(j);
        const std::int32_t predicted_sum =
            context.s_min[j] + candidate.get(j) * (val_max - val_min);
        if (predicted_sum == 0) {
            mismatches += 0.5;  // tie: the device would have coin-flipped
        } else if ((predicted_sum > 0 ? 1 : -1) != observed.get(j)) {
            mismatches += 1.0;
        }
        if (mismatches > prune_count) break;
    }
    return mismatches / static_cast<double>(positions.size());
}

/// Non-binary criterion: the output difference H_i - H_min must equal the
/// candidate term exactly (Sec. 3.2: "the cosine value [is] exactly 1").
/// `prune_above` works as in binary_candidate_distance.
double nonbinary_candidate_distance(const AttackContext& context, const hdc::BinaryHV& candidate,
                                    const hdc::IntHV& observed_diff,
                                    std::span<const std::uint32_t> positions,
                                    double prune_above = 2.0) {
    if (positions.empty()) return 0.5;
    const auto prune_count = static_cast<std::size_t>(
        std::min(prune_above, 1.0) * static_cast<double>(positions.size()));
    std::size_t mismatches = 0;
    for (const std::uint32_t j : positions) {
        const int val_min = context.val_min.get(j);
        const int val_max = context.val_max.get(j);
        const std::int32_t predicted = candidate.get(j) * (val_max - val_min);
        if (predicted != observed_diff[j]) {
            if (++mismatches > prune_count) break;
        }
    }
    return static_cast<double>(mismatches) / static_cast<double>(positions.size());
}

/// Sample size for the non-binary restricted criterion; wrong candidates
/// survive a position with probability ~0.5, so 192 positions push the
/// false-accept rate below 2^-190 before the full-support verification.
constexpr std::size_t kNonBinarySample = 192;

/// Evenly strided subsample (deterministic; the support order carries no
/// adversarial structure, so striding is as good as random sampling).
std::vector<std::uint32_t> sample_support(std::span<const std::uint32_t> support,
                                          std::size_t max_size) {
    if (support.size() <= max_size) return {support.begin(), support.end()};
    std::vector<std::uint32_t> sample;
    sample.reserve(max_size);
    const std::size_t stride = support.size() / max_size;
    for (std::size_t s = 0; s < max_size; ++s) sample.push_back(support[s * stride]);
    return sample;
}

std::vector<std::uint32_t> all_positions(std::size_t dim) {
    std::vector<std::uint32_t> positions(dim);
    for (std::size_t j = 0; j < dim; ++j) positions[j] = static_cast<std::uint32_t>(j);
    return positions;
}

/// Positions where the value hypervectors differ — the support of every
/// candidate term in the non-binary case.
std::vector<std::uint32_t> value_support(const AttackContext& context) {
    std::vector<std::uint32_t> positions;
    positions.reserve(context.store.dim() / 2 + 64);
    for (std::size_t j = 0; j < context.store.dim(); ++j) {
        if (context.val_min.get(j) != context.val_max.get(j)) {
            positions.push_back(static_cast<std::uint32_t>(j));
        }
    }
    return positions;
}

}  // namespace

FeatureExtractionResult extract_feature_mapping(const PublicStore& store,
                                                const EncodingOracle& oracle,
                                                std::span<const std::uint32_t> level_to_slot,
                                                const FeatureAttackConfig& config) {
    AttackContext context = make_context(store, oracle, level_to_slot);
    const std::size_t n_features = oracle.n_features();
    const std::size_t pool_size = store.pool_size();
    const int max_level = static_cast<int>(store.n_levels()) - 1;

    FeatureExtractionResult result;
    result.feature_to_slot.assign(n_features, 0);

    // Baseline observation shared by every probe.
    hdc::BinaryHV h_min_binary;
    hdc::IntHV h_min_nonbinary;
    if (config.binary_oracle) {
        h_min_binary = oracle.query_binary(context.all_min_levels);
    } else {
        h_min_nonbinary = oracle.query(context.all_min_levels);
    }

    const std::vector<std::uint32_t> full_support =
        config.binary_oracle ? all_positions(store.dim()) : value_support(context);

    std::vector<bool> claimed(pool_size, false);
    double margin_sum = 0.0;

    std::vector<int> crafted = context.all_min_levels;
    for (std::size_t i = 0; i < n_features; ++i) {
        crafted[i] = max_level;

        std::vector<std::uint32_t> restricted;
        hdc::BinaryHV h_probe_binary;
        hdc::IntHV observed_diff;
        if (config.binary_oracle) {
            h_probe_binary = oracle.query_binary(crafted);
            if (config.criterion == DistanceCriterion::restricted) {
                // I = indices where the probe flipped the output (Sec. 4.2's
                // subtraction trick, applied here to the baseline attack).
                std::vector<util::bits::Word> diff(h_probe_binary.words().size());
                util::bits::xor_into(diff, h_probe_binary.words(), h_min_binary.words());
                util::bits::collect_set_bits(diff, store.dim(), restricted);
            }
        } else {
            observed_diff = oracle.query(crafted) - h_min_nonbinary;
            if (config.criterion == DistanceCriterion::restricted) {
                // The correct candidate matches the observed difference
                // *exactly* on the whole support while a wrong one mismatches
                // every position with probability ~0.5, so a strided sample
                // of the support separates them with error ~2^-|sample|; the
                // winner is then verified on the full support below.
                restricted = sample_support(full_support, kNonBinarySample);
            }
        }
        const std::span<const std::uint32_t> positions =
            config.criterion == DistanceCriterion::restricted
                ? std::span<const std::uint32_t>(restricted)
                : std::span<const std::uint32_t>(full_support);

        struct ScanResult {
            double best = std::numeric_limits<double>::infinity();
            double runner_up = std::numeric_limits<double>::infinity();
            std::size_t best_slot = 0;
        };
        const auto scan = [&](std::span<const std::uint32_t> scored_positions) {
            ScanResult scan_result;
            for (std::size_t n = 0; n < pool_size; ++n) {
                if (config.enforce_unique && claimed[n]) continue;
                // Bail out of a candidate once it provably exceeds the
                // current runner-up; pruned scores stay above it, so argmin
                // and the margin are unaffected.
                const double prune_above =
                    std::isfinite(scan_result.runner_up) ? scan_result.runner_up : 2.0;
                const double distance =
                    config.binary_oracle
                        ? binary_candidate_distance(context, store.base(n), h_probe_binary,
                                                    scored_positions, prune_above)
                        : nonbinary_candidate_distance(context, store.base(n), observed_diff,
                                                       scored_positions, prune_above);
                ++result.guesses;
                if (distance < scan_result.best) {
                    scan_result.runner_up = scan_result.best;
                    scan_result.best = distance;
                    scan_result.best_slot = n;
                } else if (distance < scan_result.runner_up) {
                    scan_result.runner_up = distance;
                }
            }
            return scan_result;
        };

        ScanResult chosen = scan(positions);
        if (!config.binary_oracle && config.criterion == DistanceCriterion::restricted) {
            // The sampled scan is a filter; the winner must be exact on the
            // *full* support (Sec. 3.2's 100%-confidence criterion).  A
            // failed verification falls back to the exact scan.
            const double verified = nonbinary_candidate_distance(
                context, store.base(chosen.best_slot), observed_diff, full_support);
            if (verified != 0.0) chosen = scan(full_support);
        }
        result.feature_to_slot[i] = static_cast<std::uint32_t>(chosen.best_slot);
        if (config.enforce_unique) claimed[chosen.best_slot] = true;
        if (std::isfinite(chosen.runner_up)) margin_sum += chosen.runner_up - chosen.best;

        crafted[i] = 0;  // restore the all-minimum template
    }
    result.oracle_queries = oracle.query_count();
    result.mean_margin = margin_sum / static_cast<double>(n_features);
    return result;
}

GuessCurve feature_guess_curve(const PublicStore& store, const EncodingOracle& oracle,
                               std::span<const std::uint32_t> level_to_slot,
                               std::size_t probe_feature, bool binary_oracle) {
    HDLOCK_EXPECTS(probe_feature < oracle.n_features(),
                   "feature_guess_curve: probe feature out of range");
    AttackContext context = make_context(store, oracle, level_to_slot);
    const int max_level = static_cast<int>(store.n_levels()) - 1;

    std::vector<int> crafted = context.all_min_levels;
    crafted[probe_feature] = max_level;

    const std::vector<std::uint32_t> positions =
        binary_oracle ? std::vector<std::uint32_t>{} : value_support(context);
    const std::vector<std::uint32_t> full = all_positions(store.dim());

    hdc::BinaryHV h_probe_binary;
    hdc::IntHV observed_diff;
    if (binary_oracle) {
        h_probe_binary = oracle.query_binary(crafted);
    } else {
        const hdc::IntHV h_min = oracle.query(context.all_min_levels);
        observed_diff = oracle.query(crafted) - h_min;
    }

    GuessCurve curve;
    curve.distances.reserve(store.pool_size());
    for (std::size_t n = 0; n < store.pool_size(); ++n) {
        const double distance =
            binary_oracle
                ? binary_candidate_distance(context, store.base(n), h_probe_binary, full)
                : nonbinary_candidate_distance(context, store.base(n), observed_diff, positions);
        curve.distances.push_back(distance);
    }

    curve.best_candidate = static_cast<std::size_t>(
        std::min_element(curve.distances.begin(), curve.distances.end()) -
        curve.distances.begin());
    curve.best_distance = curve.distances[curve.best_candidate];
    curve.runner_up_distance = std::numeric_limits<double>::infinity();
    for (std::size_t n = 0; n < curve.distances.size(); ++n) {
        if (n != curve.best_candidate) {
            curve.runner_up_distance = std::min(curve.runner_up_distance, curve.distances[n]);
        }
    }
    return curve;
}

}  // namespace hdlock::attack
