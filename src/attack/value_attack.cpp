#include "attack/value_attack.hpp"

#include <algorithm>

namespace hdlock::attack {

namespace {

/// sign(sum of all pool bases): with P == N this equals sign(sum_i FeaHV_i)
/// regardless of the secret feature permutation (Eq. 5's key observation).
hdc::BinaryHV pool_sum_sign(const PublicStore& store) {
    hdc::IntHV sum(store.dim());
    for (const auto& base : store.bases()) sum.add(base);
    // Tie-breaking here is the attacker's own choice; any fixed seed works
    // because ties only add symmetric noise to an overwhelming margin.
    util::Xoshiro256ss tie_rng(0xA77AC4);
    return sum.sign(tie_rng);
}

}  // namespace

ValueExtractionResult extract_value_mapping(const PublicStore& store,
                                            const EncodingOracle& oracle, bool binary_oracle) {
    const std::size_t n_levels = store.n_levels();
    HDLOCK_EXPECTS(n_levels >= 2, "extract_value_mapping: need at least two value slots");
    HDLOCK_EXPECTS(oracle.n_levels() == n_levels,
                   "extract_value_mapping: oracle level count differs from store");

    ValueExtractionResult result;

    // Step 1: endpoints = the pair at maximum Hamming distance.
    std::size_t best_a = 0, best_b = 1;
    std::size_t best_distance = 0;
    for (std::size_t a = 0; a < n_levels; ++a) {
        for (std::size_t b = a + 1; b < n_levels; ++b) {
            const std::size_t distance = store.value_slot(a).hamming(store.value_slot(b));
            if (distance > best_distance) {
                best_distance = distance;
                best_a = a;
                best_b = b;
            }
        }
    }
    result.endpoint_distance =
        static_cast<double>(best_distance) / static_cast<double>(store.dim());

    // Step 2: chain the slots by distance from endpoint A.
    std::vector<std::size_t> order(n_levels);
    for (std::size_t slot = 0; slot < n_levels; ++slot) order[slot] = slot;
    const auto& anchor = store.value_slot(best_a);
    std::sort(order.begin(), order.end(), [&](std::size_t lhs, std::size_t rhs) {
        return anchor.hamming(store.value_slot(lhs)) < anchor.hamming(store.value_slot(rhs));
    });

    // Step 3: orientation via the all-minimum crafted input (Eq. 5/6).
    const std::vector<int> all_min(oracle.n_features(), 0);
    const hdc::BinaryHV fea_sum_sign = pool_sum_sign(store);
    double similarity_to_a = 0.0;
    double similarity_to_b = 0.0;
    if (binary_oracle) {
        const hdc::BinaryHV h_min = oracle.query_binary(all_min);
        const hdc::BinaryHV val1_estimate = h_min * fea_sum_sign;  // Eq. 6
        similarity_to_a = 1.0 - 2.0 * val1_estimate.normalized_hamming(store.value_slot(best_a));
        similarity_to_b = 1.0 - 2.0 * val1_estimate.normalized_hamming(store.value_slot(best_b));
    } else {
        // Non-binary leak is stronger: H_min[j] = Val_1[j] * S[j], so
        // sign(H_min[j]) * sign(S[j]) recovers Val_1[j] wherever S[j] != 0.
        const hdc::IntHV h_min = oracle.query(all_min);
        std::int64_t dot_a = 0, dot_b = 0;
        std::int64_t weight = 0;
        for (std::size_t j = 0; j < store.dim(); ++j) {
            if (h_min[j] == 0) continue;
            const int estimate = (h_min[j] > 0 ? 1 : -1) * fea_sum_sign.get(j);
            dot_a += estimate * store.value_slot(best_a).get(j);
            dot_b += estimate * store.value_slot(best_b).get(j);
            ++weight;
        }
        similarity_to_a = weight == 0 ? 0.0 : static_cast<double>(dot_a) / static_cast<double>(weight);
        similarity_to_b = weight == 0 ? 0.0 : static_cast<double>(dot_b) / static_cast<double>(weight);
    }
    result.oracle_queries = 1;
    result.orientation_margin = std::abs(similarity_to_a - similarity_to_b);

    const bool a_is_minimum = similarity_to_a >= similarity_to_b;
    result.endpoint_low = a_is_minimum ? best_a : best_b;
    result.endpoint_high = a_is_minimum ? best_b : best_a;
    if (!a_is_minimum) std::reverse(order.begin(), order.end());

    result.level_to_slot.reserve(n_levels);
    for (const std::size_t slot : order) {
        result.level_to_slot.push_back(static_cast<std::uint32_t>(slot));
    }
    return result;
}

}  // namespace hdlock::attack
