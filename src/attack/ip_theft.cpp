#include "attack/ip_theft.hpp"

#include "util/timer.hpp"

namespace hdlock::attack {

std::shared_ptr<const hdc::RecordEncoder> build_cloned_encoder(
    const PublicStore& store, std::span<const std::uint32_t> feature_to_slot,
    std::span<const std::uint32_t> level_to_slot, std::uint64_t tie_seed) {
    std::vector<hdc::BinaryHV> feature_hvs;
    feature_hvs.reserve(feature_to_slot.size());
    for (const std::uint32_t slot : feature_to_slot) {
        feature_hvs.push_back(store.base(slot));
    }
    std::vector<hdc::BinaryHV> value_hvs;
    value_hvs.reserve(level_to_slot.size());
    for (const std::uint32_t slot : level_to_slot) {
        value_hvs.push_back(store.value_slot(slot));
    }
    auto memory = std::make_shared<const hdc::ItemMemory>(
        hdc::ItemMemory::from_hypervectors(std::move(feature_hvs), std::move(value_hvs)));
    return std::make_shared<const hdc::RecordEncoder>(std::move(memory), tie_seed);
}

IpTheftReport steal_model(const data::Dataset& train, const data::Dataset& test,
                          const IpTheftConfig& config) {
    // --- Owner side: provision an unprotected device (Sec. 3's baseline).
    DeploymentConfig deployment_config;
    deployment_config.dim = config.dim;
    deployment_config.n_features = train.n_features();
    deployment_config.n_levels = config.n_levels;
    deployment_config.n_layers = 0;  // the vulnerable baseline of Sec. 3
    deployment_config.seed = config.seed;
    return steal_model(provision(deployment_config), train, test, config);
}

IpTheftReport steal_model(const Deployment& deployment, const data::Dataset& train,
                          const data::Dataset& test, const IpTheftConfig& config) {
    train.validate();
    test.validate();
    HDLOCK_EXPECTS(deployment.secure->key().is_plain(),
                   "steal_model: deployment is locked; use steal_locked_model");

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = config.kind;
    pipeline.train.retrain_epochs = config.retrain_epochs;
    pipeline.train.seed = util::hash_mix(config.seed, 0x0A11E);
    const auto victim = hdc::HdcClassifier::fit(train, deployment.encoder, pipeline);

    IpTheftReport report;
    report.benchmark = train.name;
    report.original_accuracy = victim.evaluate(test);

    // --- Attacker side: reason the mappings from public memory + oracle.
    const bool binary_oracle = config.kind == hdc::ModelKind::binary;
    const EncodingOracle oracle(deployment.encoder);
    util::WallTimer timer;

    const ValueExtractionResult values =
        extract_value_mapping(*deployment.store, oracle, binary_oracle);

    FeatureAttackConfig attack_config;
    attack_config.binary_oracle = binary_oracle;
    attack_config.criterion = config.criterion;
    const FeatureExtractionResult features =
        extract_feature_mapping(*deployment.store, oracle, values.level_to_slot, attack_config);
    report.reasoning_seconds = timer.elapsed_seconds();
    report.guesses = features.guesses;
    report.oracle_queries = oracle.query_count();

    // --- Scoring (experimenter's view): compare against the ground truth.
    const auto& true_key = deployment.secure->key();
    const auto& true_mapping = deployment.secure->value_mapping();
    std::size_t value_hits = 0;
    for (std::size_t level = 0; level < true_mapping.size(); ++level) {
        value_hits += values.level_to_slot[level] == true_mapping[level] ? 1u : 0u;
    }
    report.value_mapping_accuracy =
        static_cast<double>(value_hits) / static_cast<double>(true_mapping.size());

    std::size_t feature_hits = 0;
    for (std::size_t i = 0; i < train.n_features(); ++i) {
        feature_hits += features.feature_to_slot[i] == true_key.entry(i, 0).base_index ? 1u : 0u;
    }
    report.feature_mapping_accuracy =
        static_cast<double>(feature_hits) / static_cast<double>(train.n_features());

    // --- Attacker trains the duplicate model with the stolen encoder.
    const auto cloned_encoder =
        build_cloned_encoder(*deployment.store, features.feature_to_slot, values.level_to_slot,
                             util::hash_mix(config.seed, 0xC10E));
    hdc::PipelineConfig clone_pipeline = pipeline;
    clone_pipeline.train.seed = util::hash_mix(config.seed, 0xC10E7);
    const auto clone = hdc::HdcClassifier::fit(train, cloned_encoder, clone_pipeline);
    report.recovered_accuracy = clone.evaluate(test);
    return report;
}

}  // namespace hdlock::attack
