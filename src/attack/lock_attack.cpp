#include "attack/lock_attack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdlock::attack {

namespace {

/// Everything the Sec. 4.2 criterion needs about one probed feature,
/// computed from exactly two oracle queries (Eq. 11).
struct LockProbe {
    bool binary = true;
    // Binary criterion state: the flip set I and the observed sign there.
    std::vector<std::uint32_t> flip_positions;
    std::vector<std::int8_t> observed_sign;  // H^1_Lock[j] for j in I
    // Non-binary criterion state.
    hdc::IntHV observed_diff;  // H^1 - H^M
    // Shared.
    const hdc::BinaryHV* val_min = nullptr;
    const hdc::BinaryHV* val_max = nullptr;
    std::uint64_t oracle_queries = 0;
};

LockProbe make_probe(const PublicStore& store, const EncodingOracle& oracle,
                     std::span<const std::uint32_t> level_to_slot, std::size_t feature,
                     bool binary_oracle) {
    HDLOCK_EXPECTS(level_to_slot.size() == store.n_levels(),
                   "lock attack: value mapping size mismatch");
    HDLOCK_EXPECTS(feature < oracle.n_features(), "lock attack: feature out of range");

    LockProbe probe;
    probe.binary = binary_oracle;
    probe.val_min = &store.value_slot(level_to_slot.front());
    probe.val_max = &store.value_slot(level_to_slot.back());

    std::vector<int> all_min(oracle.n_features(), 0);
    std::vector<int> probe_input = all_min;
    probe_input[feature] = static_cast<int>(store.n_levels()) - 1;

    if (binary_oracle) {
        const hdc::BinaryHV h1 = oracle.query_binary(all_min);
        const hdc::BinaryHV hm = oracle.query_binary(probe_input);
        std::vector<util::bits::Word> diff(h1.words().size());
        util::bits::xor_into(diff, h1.words(), hm.words());
        util::bits::collect_set_bits(diff, store.dim(), probe.flip_positions);
        probe.observed_sign.reserve(probe.flip_positions.size());
        for (const std::uint32_t j : probe.flip_positions) {
            probe.observed_sign.push_back(static_cast<std::int8_t>(h1.get(j)));
        }
    } else {
        const hdc::IntHV h1 = oracle.query(all_min);
        const hdc::IntHV hm = oracle.query(probe_input);
        probe.observed_diff = h1 - hm;
    }
    probe.oracle_queries = 2;
    return probe;
}

/// Scores one guessed feature hypervector against the probe (Eq. 13);
/// lower is better, the correct guess scores exactly 0.
double score_guess(const LockProbe& probe, const hdc::BinaryHV& guess) {
    if (probe.binary) {
        if (probe.flip_positions.empty()) return 0.5;
        std::size_t mismatches = 0;
        for (std::size_t idx = 0; idx < probe.flip_positions.size(); ++idx) {
            const std::uint32_t j = probe.flip_positions[idx];
            // On I, Val_1[j] != Val_M[j], so sign((Val_1 - Val_M)[j] * F[j])
            // reduces to Val_1[j] * F[j].
            const int predicted = probe.val_min->get(j) * guess.get(j);
            if (predicted != probe.observed_sign[idx]) ++mismatches;
        }
        return static_cast<double>(mismatches) /
               static_cast<double>(probe.flip_positions.size());
    }
    // Non-binary: 1 - cosine(H1 - HM, (Val_1 - Val_M) * F_guess).
    std::int64_t dot = 0;
    std::int64_t predicted_norm_sq = 0;
    double observed_norm_sq = 0.0;
    for (std::size_t j = 0; j < guess.dim(); ++j) {
        const int predicted = (probe.val_min->get(j) - probe.val_max->get(j)) * guess.get(j);
        const std::int32_t observed = probe.observed_diff[j];
        dot += static_cast<std::int64_t>(predicted) * observed;
        predicted_norm_sq += static_cast<std::int64_t>(predicted) * predicted;
        observed_norm_sq += static_cast<double>(observed) * observed;
    }
    const double denom =
        std::sqrt(static_cast<double>(predicted_norm_sq)) * std::sqrt(observed_norm_sq);
    if (denom == 0.0) return 1.0;
    return 1.0 - static_cast<double>(dot) / denom;
}

}  // namespace

LockSweepResult sweep_lock_parameter(const PublicStore& store, const EncodingOracle& oracle,
                                     const LockKey& known_key,
                                     std::span<const std::uint32_t> level_to_slot,
                                     const LockSweepConfig& config) {
    HDLOCK_EXPECTS(config.layer < known_key.entries_per_feature(),
                   "sweep_lock_parameter: layer out of range");
    const LockProbe probe =
        make_probe(store, oracle, level_to_slot, config.feature, config.binary_oracle);

    const std::size_t domain =
        config.parameter == LockParameter::rotation ? store.dim() : store.pool_size();

    // The guessed sub-key: all layers from the known key, one coordinate
    // swept through its whole domain.
    std::vector<SubKeyEntry> sub_key(known_key.sub_key(config.feature).begin(),
                                     known_key.sub_key(config.feature).end());

    LockSweepResult result;
    result.scores.reserve(domain);
    result.deciding_positions = probe.flip_positions.size();
    result.oracle_queries = probe.oracle_queries;

    double best = std::numeric_limits<double>::infinity();
    double runner_up = std::numeric_limits<double>::infinity();
    std::size_t best_guess = 0;
    for (std::size_t v = 0; v < domain; ++v) {
        if (config.parameter == LockParameter::rotation) {
            sub_key[config.layer].rotation = static_cast<std::uint32_t>(v);
        } else {
            sub_key[config.layer].base_index = static_cast<std::uint32_t>(v);
        }
        const hdc::BinaryHV guess = LockedEncoder::materialize_feature(store, sub_key);
        const double score = score_guess(probe, guess);
        result.scores.push_back(score);
        if (score < best) {
            runner_up = best;
            best = score;
            best_guess = v;
        } else if (score < runner_up) {
            runner_up = score;
        }
    }
    result.best_guess = best_guess;
    result.best_score = best;
    result.runner_up_score = runner_up;
    return result;
}

ExhaustiveAttackResult exhaustive_feature_attack(const PublicStore& store,
                                                 const EncodingOracle& oracle,
                                                 std::span<const std::uint32_t> level_to_slot,
                                                 std::size_t feature, std::size_t n_layers,
                                                 bool binary_oracle) {
    HDLOCK_EXPECTS(n_layers >= 1, "exhaustive_feature_attack: need at least one layer");
    const double joint_space = std::pow(
        static_cast<double>(store.pool_size()) * static_cast<double>(store.dim()),
        static_cast<double>(n_layers));
    HDLOCK_EXPECTS(joint_space <= 4e6,
                   "exhaustive_feature_attack: joint key space too large; this attack exists "
                   "to demonstrate scaling on toy configurations only");

    const LockProbe probe = make_probe(store, oracle, level_to_slot, feature, binary_oracle);

    ExhaustiveAttackResult result;
    std::vector<SubKeyEntry> sub_key(n_layers);

    double best = std::numeric_limits<double>::infinity();
    // Odometer over the (P*D)^L joint space.
    const std::uint64_t per_layer =
        static_cast<std::uint64_t>(store.pool_size()) * store.dim();
    std::uint64_t total = 1;
    for (std::size_t l = 0; l < n_layers; ++l) total *= per_layer;

    for (std::uint64_t code = 0; code < total; ++code) {
        std::uint64_t rest = code;
        for (std::size_t l = 0; l < n_layers; ++l) {
            const std::uint64_t layer_code = rest % per_layer;
            rest /= per_layer;
            sub_key[l].base_index = static_cast<std::uint32_t>(layer_code / store.dim());
            sub_key[l].rotation = static_cast<std::uint32_t>(layer_code % store.dim());
        }
        const hdc::BinaryHV guess = LockedEncoder::materialize_feature(store, sub_key);
        const double score = score_guess(probe, guess);
        ++result.guesses;
        if (score < best) {
            best = score;
            result.recovered_sub_key = sub_key;
            result.recovered_feature_hv = guess;
            result.ties_at_best = 1;
        } else if (score == best) {
            ++result.ties_at_best;
        }
    }
    result.best_score = best;
    return result;
}

}  // namespace hdlock::attack
