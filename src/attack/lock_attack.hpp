#pragma once

/// \file lock_attack.hpp
/// Reasoning attacks against the HDLock-protected module (Sec. 4.2).
///
/// The paper's security validation assumes the strongest sensible attacker:
/// the value mapping is already known, and for the probed feature all but
/// one sub-key parameter have been learned.  The attacker crafts the two
/// inputs of Eq. 11 (all-minimum, and first-feature-maximum), subtracts the
/// outputs, and keeps the non-zero index set I.  A guessed sub-key is scored
/// by comparing sign((Val_1 - Val_M) * F_guess) against the observed
/// difference on I (Eq. 13).  The correct guess scores ~0; any single wrong
/// parameter randomizes F_guess and pushes the score to ~0.5 — which is why
/// the joint space (D*P)^L must be searched and the defense holds.
///
/// ExhaustiveKeyAttack actually performs that joint search; it is only
/// feasible for toy configurations and exists to demonstrate both the
/// criterion's correctness and the cost scaling.

#include <vector>

#include "attack/oracle.hpp"
#include "core/locked_encoder.hpp"
#include "core/stores.hpp"

namespace hdlock::attack {

/// Which sub-key coordinate the single-parameter sweep perturbs.
enum class LockParameter {
    rotation,   ///< k_{i,l}
    base_index  ///< index(B_{i,l})
};

struct LockSweepConfig {
    std::size_t feature = 0;  ///< probed feature (the paper uses feature 1)
    std::size_t layer = 0;    ///< probed layer l
    LockParameter parameter = LockParameter::rotation;
    bool binary_oracle = true;
};

struct LockSweepResult {
    /// Score per guessed parameter value, in domain order ([0,D) rotations or
    /// [0,P) base indices).  Binary: mismatch fraction on I (lower is
    /// better).  Non-binary: 1 - cosine of Eq. 13 (lower is better, correct
    /// guess hits 0).
    std::vector<double> scores;
    std::size_t best_guess = 0;
    double best_score = 0.0;
    double runner_up_score = 0.0;
    std::size_t deciding_positions = 0;  ///< |I|
    std::uint64_t oracle_queries = 0;
};

/// Sweeps one parameter of one sub-key with every other parameter taken from
/// `known_key` (the worst case of Fig. 5 / Fig. 6).  `level_to_slot` is the
/// known value mapping (strong attack model of Sec. 4.2).
LockSweepResult sweep_lock_parameter(const PublicStore& store, const EncodingOracle& oracle,
                                     const LockKey& known_key,
                                     std::span<const std::uint32_t> level_to_slot,
                                     const LockSweepConfig& config);

struct ExhaustiveAttackResult {
    /// The best-scoring sub-key found by the joint search.
    std::vector<SubKeyEntry> recovered_sub_key;
    /// The materialized FeaHV of the best sub-key. Distinct sub-keys can
    /// materialize the same hypervector (layer order is commutative), so
    /// success is defined on the materialization.
    hdc::BinaryHV recovered_feature_hv;
    double best_score = 0.0;
    std::uint64_t guesses = 0;  ///< (P*D)^L joint candidates scored
    /// Number of sub-keys attaining the best score (> 1 for L >= 2 because
    /// layer permutations alias).
    std::size_t ties_at_best = 0;
};

/// Joint search over every sub-key in (P*D)^L for one feature of a locked
/// module.  Cost grows as (P*D)^L — keep P, D, L tiny.
ExhaustiveAttackResult exhaustive_feature_attack(const PublicStore& store,
                                                 const EncodingOracle& oracle,
                                                 std::span<const std::uint32_t> level_to_slot,
                                                 std::size_t feature, std::size_t n_layers,
                                                 bool binary_oracle);

}  // namespace hdlock::attack
