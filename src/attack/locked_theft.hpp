#pragma once

/// \file locked_theft.hpp
/// End-to-end model-stealing attempt against an HDLock-protected deployment —
/// the defense-side counterpart of the Table 1 experiment.
///
/// The attacker replays the exact divide-and-conquer strategy that strips an
/// unprotected module (Sec. 3.2) against a device whose feature hypervectors
/// are privileged Eq. 9 products.  The paper's claim, quantified here:
///
///  - the value chain is still recoverable from public memory (ValHVs are
///    deliberately left unprotected, Sec. 4.1), but its orientation can no
///    longer be fixed through Eq. 5/6 because sign(sum FeaHV_i) is not
///    computable from the pool;
///  - no pool entry matches any locked FeaHV, so every candidate of the
///    Eq. 8 scan sits at the ~0.5 noise floor and the "recovered" mapping is
///    arbitrary (mean decision margin ~ 0);
///  - a clone wired from that mapping does not transfer: driving the
///    victim's own class hypervectors with the naive encoder collapses
///    accuracy to chance;
///  - the attack that *would* succeed needs the joint sub-key search of
///    Sec. 4.2, whose cost N * (D*P)^L is reported alongside.

#include <string>

#include "attack/feature_attack.hpp"
#include "attack/value_attack.hpp"
#include "core/complexity.hpp"
#include "core/locked_encoder.hpp"
#include "data/dataset.hpp"
#include "hdc/classifier.hpp"

namespace hdlock::attack {

struct LockedTheftConfig {
    hdc::ModelKind kind = hdc::ModelKind::binary;
    std::size_t dim = 4096;     ///< D of the victim deployment
    std::size_t n_levels = 16;  ///< M
    std::size_t n_layers = 2;   ///< L of the HDLock key
    std::size_t pool_size = 0;  ///< P; 0 means "equal to n_features"
    int retrain_epochs = 10;
    DistanceCriterion criterion = DistanceCriterion::restricted;
    std::uint64_t seed = 1;
};

struct LockedTheftReport {
    std::string benchmark;
    std::size_t n_layers = 0;

    /// Accuracy of the protected victim on the test set.
    double original_accuracy = 0.0;
    /// Victim class hypervectors driven by the attacker's naive encoder.
    double transfer_accuracy = 0.0;
    /// Chance level (1 / n_classes) for reading transfer_accuracy.
    double chance_accuracy = 0.0;

    /// Whether the pairwise-distance scan still recovered the value *chain*
    /// (endpoints + interior order, up to orientation).
    bool value_chain_recovered = false;
    /// Fraction of features whose naively-guessed pool entry materializes the
    /// victim's FeaHV (expected ~0 for L >= 1 keys).
    double feature_hv_recovery = 0.0;
    /// Mean decision margin of the Eq. 8 scan (near 0: no candidate stands
    /// out; compare the decisive margins seen on unprotected modules).
    double naive_attack_margin = 0.0;

    /// log10 of the joint-search guesses the successful attack needs.
    double log10_guesses_required = 0.0;
    /// log10 guesses of the same attack on the unprotected baseline (N^2).
    double log10_guesses_baseline = 0.0;

    double reasoning_seconds = 0.0;
    std::uint64_t oracle_queries = 0;
};

/// Provisions an HDLock deployment, trains the victim, replays the Sec. 3.2
/// attack against it, and reports how thoroughly the theft fails.
LockedTheftReport steal_locked_model(const data::Dataset& train, const data::Dataset& test,
                                     const LockedTheftConfig& config);

/// As above against an existing locked deployment (SecureStore unsealed for
/// ground-truth scoring; the key must have at least one layer).
LockedTheftReport steal_locked_model(const Deployment& deployment, const data::Dataset& train,
                                     const data::Dataset& test,
                                     const LockedTheftConfig& config);

}  // namespace hdlock::attack
