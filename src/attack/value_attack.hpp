#pragma once

/// \file value_attack.hpp
/// Value hypervector extraction (Sec. 3.2, step 1).
///
/// The value hypervectors' "inherent weakness lies in the consecutive
/// distribution": only Val_1 and Val_M are quasi-orthogonal, every other
/// pair sits at a distance proportional to its level gap (Eq. 1b).  The
/// attacker therefore:
///   1. finds the endpoint pair by scanning pairwise Hamming distances of
///      the public value slots;
///   2. orders the remaining slots by distance from one endpoint (the chain
///      is recovered up to orientation);
///   3. resolves the orientation with one crafted all-minimum input: by
///      Eq. 5/6, Val_1' = H_b,min * sign(sum_i FeaHV_i), and with P == N the
///      FeaHV sum equals the (permutation-invariant) sum of all pool
///      entries, which the attacker can compute from public memory alone.

#include <vector>

#include "attack/oracle.hpp"
#include "core/stores.hpp"

namespace hdlock::attack {

struct ValueExtractionResult {
    /// Recovered mapping: level l -> slot in the public store.
    std::vector<std::uint32_t> level_to_slot;
    /// The two slots identified as the orthogonal endpoints.
    std::size_t endpoint_low = 0;   ///< slot claimed to hold Val_1 (minimum)
    std::size_t endpoint_high = 0;  ///< slot claimed to hold Val_M (maximum)
    /// Normalized Hamming distance between the endpoints (~0.5).
    double endpoint_distance = 0.0;
    /// Similarity margin of the orientation decision (>0 = confident).
    double orientation_margin = 0.0;
    std::uint64_t oracle_queries = 0;
};

/// Recovers the level->slot value mapping.  `binary_oracle` selects whether
/// the victim exposes binary (Eq. 3) or non-binary (Eq. 2) outputs.
/// Precondition: the store's pool entries are exactly the encoder's feature
/// hypervectors (the baseline threat model with P == N); see file comment.
ValueExtractionResult extract_value_mapping(const PublicStore& store,
                                            const EncodingOracle& oracle, bool binary_oracle);

}  // namespace hdlock::attack
