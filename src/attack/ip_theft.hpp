#pragma once

/// \file ip_theft.hpp
/// End-to-end model-stealing experiment (Table 1).
///
/// The experiment provisions an *unprotected* deployment, trains the
/// victim model, then plays the attacker: reason the value mapping, reason
/// the feature mapping (timed), rebuild a duplicate encoder from public
/// memory plus the reasoned mappings, and train a clone.  The paper's
/// finding is that the clone matches the original's accuracy — the IP leaks
/// completely.
///
/// Ground-truth mappings are consulted only *after* the attack, to score
/// how much of the mapping was recovered; the attack itself runs purely on
/// (PublicStore, EncodingOracle).

#include <string>

#include "attack/feature_attack.hpp"
#include "attack/value_attack.hpp"
#include "core/locked_encoder.hpp"
#include "data/dataset.hpp"
#include "hdc/classifier.hpp"

namespace hdlock::attack {

struct IpTheftConfig {
    hdc::ModelKind kind = hdc::ModelKind::binary;
    std::size_t dim = 4096;       ///< D of the victim deployment
    std::size_t n_levels = 16;    ///< M
    int retrain_epochs = 10;      ///< victim and clone training epochs
    DistanceCriterion criterion = DistanceCriterion::restricted;
    std::uint64_t seed = 1;
};

struct IpTheftReport {
    std::string benchmark;
    double original_accuracy = 0.0;
    double recovered_accuracy = 0.0;
    /// Wall-clock seconds of the reasoning attack (value + feature steps).
    double reasoning_seconds = 0.0;
    /// Fraction of value levels / features whose mapping was recovered
    /// exactly (1.0 = full leak).
    double value_mapping_accuracy = 0.0;
    double feature_mapping_accuracy = 0.0;
    std::uint64_t guesses = 0;
    std::uint64_t oracle_queries = 0;
};

/// Runs the complete Table 1 experiment on one dataset pair, provisioning a
/// fresh unprotected deployment from `config`.
IpTheftReport steal_model(const data::Dataset& train, const data::Dataset& test,
                          const IpTheftConfig& config);

/// As above against an existing deployment (its SecureStore must be unsealed
/// so the experiment can score the recovery against the ground truth).  The
/// deployment must be unprotected (plain key) — that is the Table 1 setup.
IpTheftReport steal_model(const Deployment& deployment, const data::Dataset& train,
                          const data::Dataset& test, const IpTheftConfig& config);

/// Builds the attacker's duplicate encoder from reasoned mappings and public
/// memory (usable on its own, e.g. for crafting adversarial inputs).
std::shared_ptr<const hdc::RecordEncoder> build_cloned_encoder(
    const PublicStore& store, std::span<const std::uint32_t> feature_to_slot,
    std::span<const std::uint32_t> level_to_slot, std::uint64_t tie_seed);

}  // namespace hdlock::attack
