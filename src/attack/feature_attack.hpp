#pragma once

/// \file feature_attack.hpp
/// Feature hypervector extraction (Sec. 3.2, step 2): the divide-and-conquer
/// reasoning attack on the *unprotected* encoding module.
///
/// For every feature i the attacker crafts an input whose i-th feature is
/// maximal and all others minimal (Eq. 7), then scores every candidate pool
/// entry by re-encoding with the candidate substituted (Eq. 8) and comparing
/// to the observed output.  O(N) oracle queries, O(N^2) candidate guesses.
///
/// Two scoring criteria are provided (the ablation of DESIGN.md §4):
///  - full:       Hamming distance over all D dimensions, exactly Eq. 8 —
///                what Fig. 3 plots;
///  - restricted: distance evaluated only on the positions where the crafted
///                output differs from the all-minimum output.  The candidate
///                term is the only difference between the two encodings, so
///                these positions carry all the signal; the rest is shared
///                and cancels.  ~D/|I| times cheaper, identical argmin.

#include <vector>

#include "attack/oracle.hpp"
#include "core/stores.hpp"

namespace hdlock::attack {

enum class DistanceCriterion {
    full,       ///< Eq. 8 over every dimension
    restricted  ///< only on the differing positions I
};

struct FeatureAttackConfig {
    bool binary_oracle = true;
    DistanceCriterion criterion = DistanceCriterion::restricted;
    /// Greedily exclude already-claimed candidates. The paper treats the N
    /// sub-problems as independent; exclusion makes the recovered mapping a
    /// permutation and is strictly stronger.
    bool enforce_unique = true;
};

struct FeatureExtractionResult {
    /// Recovered mapping: feature i -> slot in the public pool.
    std::vector<std::uint32_t> feature_to_slot;
    /// Candidate evaluations performed (the paper's "guesses").
    std::uint64_t guesses = 0;
    std::uint64_t oracle_queries = 0;
    /// Mean score margin between the runner-up and the chosen candidate,
    /// normalized; a diagnostic for how decisive the attack was.
    double mean_margin = 0.0;
};

/// Runs the full divide-and-conquer extraction across all features.
/// `level_to_slot` is the value mapping recovered by extract_value_mapping.
FeatureExtractionResult extract_feature_mapping(const PublicStore& store,
                                                const EncodingOracle& oracle,
                                                std::span<const std::uint32_t> level_to_slot,
                                                const FeatureAttackConfig& config);

/// The per-candidate distance curve for a single probed feature — the data
/// behind the paper's Fig. 3.  Always uses the paper-faithful full
/// criterion.
struct GuessCurve {
    std::vector<double> distances;  ///< normalized distance per candidate slot
    std::size_t best_candidate = 0;
    double best_distance = 0.0;
    double runner_up_distance = 0.0;
};

GuessCurve feature_guess_curve(const PublicStore& store, const EncodingOracle& oracle,
                               std::span<const std::uint32_t> level_to_slot,
                               std::size_t probe_feature, bool binary_oracle);

}  // namespace hdlock::attack
