#include "attack/locked_theft.hpp"

#include <algorithm>

#include "attack/ip_theft.hpp"
#include "util/timer.hpp"

namespace hdlock::attack {

namespace {

/// True when `recovered` equals the true level->slot mapping or its reverse
/// (the pairwise-distance scan cannot tell Val_1 from Val_M without Eq. 5/6,
/// so orientation is the one bit it may miss).
bool chain_matches(std::span<const std::uint32_t> recovered,
                   std::span<const std::uint32_t> truth) {
    if (recovered.size() != truth.size()) return false;
    if (std::ranges::equal(recovered, truth)) return true;
    return std::equal(recovered.begin(), recovered.end(), truth.rbegin());
}

/// Encodes `dataset` with the attacker's encoder but the victim's
/// discretizer, then scores it against the victim's class hypervectors —
/// the "does the stolen encoder drive the stolen model" transfer test.
double transfer_accuracy(const hdc::HdcClassifier& victim, const hdc::Encoder& naive_encoder,
                         const data::Dataset& dataset) {
    const bool binary = victim.model().kind() == hdc::ModelKind::binary;
    hdc::EncodedBatch batch;
    batch.non_binary.reserve(dataset.n_samples());
    batch.labels = dataset.y;

    std::vector<int> levels(dataset.n_features());
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        victim.discretizer().transform_row(dataset.X.row(s), levels);
        batch.non_binary.push_back(naive_encoder.encode(levels));
        if (binary) batch.binary.push_back(naive_encoder.encode_binary(levels));
    }
    return victim.model().evaluate(batch);
}

}  // namespace

LockedTheftReport steal_locked_model(const data::Dataset& train, const data::Dataset& test,
                                     const LockedTheftConfig& config) {
    HDLOCK_EXPECTS(config.n_layers >= 1, "steal_locked_model: use steal_model for L = 0");

    // --- Owner side: provision the protected device.
    DeploymentConfig deployment_config;
    deployment_config.dim = config.dim;
    deployment_config.n_features = train.n_features();
    deployment_config.n_levels = config.n_levels;
    deployment_config.pool_size = config.pool_size;
    deployment_config.n_layers = config.n_layers;
    deployment_config.seed = config.seed;
    return steal_locked_model(provision(deployment_config), train, test, config);
}

LockedTheftReport steal_locked_model(const Deployment& deployment, const data::Dataset& train,
                                     const data::Dataset& test,
                                     const LockedTheftConfig& config) {
    train.validate();
    test.validate();
    HDLOCK_EXPECTS(deployment.secure->key().n_layers() >= 1,
                   "steal_locked_model: deployment is unprotected; use steal_model");

    hdc::PipelineConfig pipeline;
    pipeline.train.kind = config.kind;
    pipeline.train.retrain_epochs = config.retrain_epochs;
    pipeline.train.seed = util::hash_mix(config.seed, 0x0A11E);
    const auto victim = hdc::HdcClassifier::fit(train, deployment.encoder, pipeline);

    LockedTheftReport report;
    report.benchmark = train.name;
    report.n_layers = deployment.secure->key().n_layers();
    report.original_accuracy = victim.evaluate(test);
    report.chance_accuracy = 1.0 / static_cast<double>(test.n_classes);

    const std::size_t n_features = train.n_features();
    const std::size_t pool_size = deployment.store->pool_size();
    const std::size_t dim = deployment.store->dim();
    report.log10_guesses_required =
        complexity::log10_guesses(n_features, dim, pool_size, report.n_layers);
    report.log10_guesses_baseline = complexity::log10_guesses(n_features, dim, pool_size,
                                                              /*n_layers=*/0);

    // --- Attacker side: replay the Sec. 3.2 strategy against the oracle.
    const bool binary_oracle = config.kind == hdc::ModelKind::binary;
    const EncodingOracle oracle(deployment.encoder);
    util::WallTimer timer;

    const ValueExtractionResult values =
        extract_value_mapping(*deployment.store, oracle, binary_oracle);

    // Strong attack model of Sec. 4.2 from here on: the feature step gets the
    // *true* value mapping, so its failure is attributable purely to the lock.
    const auto& true_mapping = deployment.secure->value_mapping();
    FeatureAttackConfig attack_config;
    attack_config.binary_oracle = binary_oracle;
    attack_config.criterion = config.criterion;
    const FeatureExtractionResult features =
        extract_feature_mapping(*deployment.store, oracle, true_mapping, attack_config);
    report.reasoning_seconds = timer.elapsed_seconds();
    report.naive_attack_margin = features.mean_margin;
    report.oracle_queries = oracle.query_count();

    // --- Scoring (experimenter's view): compare against the ground truth.
    report.value_chain_recovered = chain_matches(values.level_to_slot, true_mapping);

    std::size_t materialized_hits = 0;
    for (std::size_t i = 0; i < n_features; ++i) {
        const auto& guessed = deployment.store->base(features.feature_to_slot[i]);
        const double distance = guessed.normalized_hamming(deployment.encoder->feature_hv(i));
        materialized_hits += distance < 0.05 ? 1u : 0u;
    }
    report.feature_hv_recovery =
        static_cast<double>(materialized_hits) / static_cast<double>(n_features);

    // --- Transfer test: victim's class hypervectors + naive encoder.
    const auto naive_encoder =
        build_cloned_encoder(*deployment.store, features.feature_to_slot, true_mapping,
                             util::hash_mix(config.seed, 0xC10E));
    report.transfer_accuracy = transfer_accuracy(victim, *naive_encoder, test);
    return report;
}

}  // namespace hdlock::attack
