#pragma once

/// \file oracle.hpp
/// The attacker's only interface to the victim device (threat model,
/// Sec. 3.1): craft inputs, observe encoding outputs.
///
/// Attack code in this library exclusively consumes (PublicStore,
/// EncodingOracle) pairs — never an Encoder, a LockKey or a SecureStore — so
/// the trust boundary is enforced by construction: nothing in
/// hdlock::attack can touch the index mapping.

#include <cstdint>
#include <memory>
#include <span>

#include "hdc/encoder.hpp"

namespace hdlock::attack {

/// Query-counting wrapper around the victim's encoding module.
class EncodingOracle {
public:
    explicit EncodingOracle(std::shared_ptr<const hdc::Encoder> encoder)
        : encoder_(std::move(encoder)) {
        HDLOCK_EXPECTS(encoder_ != nullptr, "EncodingOracle: null encoder");
    }

    std::size_t dim() const { return encoder_->dim(); }
    std::size_t n_features() const { return encoder_->n_features(); }
    std::size_t n_levels() const { return encoder_->n_levels(); }

    /// Observes the non-binary encoding H_nb of a crafted input.
    hdc::IntHV query(std::span<const int> levels) const {
        ++queries_;
        return encoder_->encode(levels);
    }

    /// Observes the binary encoding H_b of a crafted input.
    hdc::BinaryHV query_binary(std::span<const int> levels) const {
        ++queries_;
        return encoder_->encode_binary(levels);
    }

    /// Number of crafted inputs observed so far.
    std::uint64_t query_count() const noexcept { return queries_; }

private:
    std::shared_ptr<const hdc::Encoder> encoder_;
    mutable std::uint64_t queries_ = 0;
};

}  // namespace hdlock::attack
