#include "core/locked_encoder.hpp"

namespace hdlock {

LockedEncoder::LockedEncoder(std::shared_ptr<const PublicStore> store, LockKey key,
                             ValueMapping value_mapping, std::uint64_t tie_seed)
    : Encoder(tie_seed), store_(std::move(store)), key_(std::move(key)) {
    HDLOCK_EXPECTS(store_ != nullptr, "LockedEncoder: null public store");
    HDLOCK_EXPECTS(key_.n_features() > 0, "LockedEncoder: empty key");
    HDLOCK_EXPECTS(value_mapping.size() == store_->n_levels(),
                   "LockedEncoder: value mapping size must match store levels");
    for (std::size_t i = 0; i < key_.n_features(); ++i) {
        for (const SubKeyEntry& entry : key_.sub_key(i)) {
            HDLOCK_EXPECTS(entry.base_index < store_->pool_size(),
                           "LockedEncoder: key references base outside the pool");
            HDLOCK_EXPECTS(entry.rotation < store_->dim(),
                           "LockedEncoder: rotation exceeds dimensionality");
        }
    }

    feature_hvs_.reserve(key_.n_features());
    for (std::size_t i = 0; i < key_.n_features(); ++i) {
        feature_hvs_.push_back(materialize_feature(*store_, key_.sub_key(i)));
    }

    value_hvs_.reserve(value_mapping.size());
    for (std::size_t level = 0; level < value_mapping.size(); ++level) {
        value_hvs_.push_back(store_->value_slot(value_mapping[level]));
    }
}

hdc::BinaryHV LockedEncoder::materialize_feature(const PublicStore& store,
                                                 std::span<const SubKeyEntry> sub_key) {
    HDLOCK_EXPECTS(!sub_key.empty(), "materialize_feature: empty sub-key");
    hdc::BinaryHV product = store.base(sub_key.front().base_index).rotated(sub_key.front().rotation);
    for (std::size_t l = 1; l < sub_key.size(); ++l) {
        product *= store.base(sub_key[l].base_index).rotated(sub_key[l].rotation);
    }
    return product;
}

const hdc::BinaryHV& LockedEncoder::feature_hv(std::size_t feature) const {
    HDLOCK_EXPECTS(feature < feature_hvs_.size(), "LockedEncoder::feature_hv: out of range");
    return feature_hvs_[feature];
}

const hdc::BinaryHV& LockedEncoder::value_hv(std::size_t level) const {
    HDLOCK_EXPECTS(level < value_hvs_.size(), "LockedEncoder::value_hv: out of range");
    return value_hvs_[level];
}

Deployment provision(const DeploymentConfig& config) {
    // Reject degenerate configurations up front with a ConfigError naming the
    // offending field, instead of failing deep inside store/key generation
    // with a generic contract violation.
    if (config.n_features == 0) {
        throw ConfigError("provision: n_features must be > 0");
    }
    if (config.dim == 0) {
        throw ConfigError("provision: dim must be > 0");
    }
    if (config.n_levels < 2) {
        throw ConfigError("provision: n_levels must be >= 2 (got " +
                          std::to_string(config.n_levels) + ")");
    }
    const std::size_t pool_size = config.pool_size == 0 ? config.n_features : config.pool_size;
    if (config.n_layers == 0 && pool_size < config.n_features) {
        throw ConfigError("provision: the unprotected baseline (n_layers = 0) maps each feature "
                          "to a distinct pool entry; pool_size " + std::to_string(pool_size) +
                          " < n_features " + std::to_string(config.n_features));
    }
    if (config.n_layers > 0 && static_cast<double>(pool_size) * static_cast<double>(config.dim) <
                                   2.0 * static_cast<double>(config.n_features)) {
        throw ConfigError("provision: sub-key space pool_size * dim = " +
                          std::to_string(pool_size * config.dim) +
                          " is too small to draw distinct sub-keys for " +
                          std::to_string(config.n_features) + " features");
    }

    PublicStoreConfig store_config;
    store_config.dim = config.dim;
    store_config.pool_size = pool_size;
    store_config.n_levels = config.n_levels;
    store_config.seed = util::hash_mix(config.seed, 0x5703E);

    ValueMapping value_mapping;
    auto store = std::make_shared<const PublicStore>(
        PublicStore::generate(store_config, value_mapping));

    LockKey key = config.n_layers == 0
                      ? LockKey::plain_random(config.n_features, pool_size,
                                              util::hash_mix(config.seed, 0x9EA))
                      : LockKey::random(config.n_features, config.n_layers, pool_size,
                                        config.dim, util::hash_mix(config.seed, 0x4E7));

    Deployment deployment;
    deployment.store = store;
    deployment.encoder =
        std::make_shared<const LockedEncoder>(store, key.clone(), value_mapping, config.tie_seed);
    deployment.secure = std::make_shared<SecureStore>(std::move(key), std::move(value_mapping));
    return deployment;
}

std::vector<hdc::BinaryHV> materialize_locked_symbols(const PublicStore& store,
                                                      const LockKey& key) {
    std::vector<hdc::BinaryHV> symbols;
    symbols.reserve(key.n_features());
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        symbols.push_back(LockedEncoder::materialize_feature(store, key.sub_key(i)));
    }
    return symbols;
}

}  // namespace hdlock
