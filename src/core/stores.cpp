#include "core/stores.hpp"

#include <numeric>

namespace hdlock {

PublicStore PublicStore::generate(const PublicStoreConfig& config, ValueMapping& value_mapping) {
    HDLOCK_EXPECTS(config.dim > 0, "PublicStore: dim must be positive");
    HDLOCK_EXPECTS(config.pool_size > 0, "PublicStore: pool_size must be positive");
    HDLOCK_EXPECTS(config.n_levels >= 2, "PublicStore: need at least two value levels");

    PublicStore store;
    store.dim_ = config.dim;

    util::Xoshiro256ss base_rng(util::hash_mix(config.seed, 0xBA5E));
    store.bases_.reserve(config.pool_size);
    for (std::size_t p = 0; p < config.pool_size; ++p) {
        store.bases_.push_back(hdc::BinaryHV::random(config.dim, base_rng));
    }

    // Ordered level hypervectors (Eq. 1b), then a secret shuffle of their
    // storage slots: the raw vectors are public, the level order is not.
    const auto ordered =
        hdc::ItemMemory::generate_level_hvs(config.dim, config.n_levels,
                                            util::hash_mix(config.seed, 0x1E7E));
    value_mapping.assign(config.n_levels, 0);
    std::iota(value_mapping.begin(), value_mapping.end(), 0u);
    util::Xoshiro256ss shuffle_rng(util::hash_mix(config.seed, 0x5ECE));
    shuffle_rng.shuffle(std::span<std::uint32_t>(value_mapping));

    store.value_hvs_.assign(config.n_levels, hdc::BinaryHV());
    for (std::size_t level = 0; level < config.n_levels; ++level) {
        store.value_hvs_[value_mapping[level]] = ordered[level];
    }
    return store;
}

const hdc::BinaryHV& PublicStore::base(std::size_t index) const {
    HDLOCK_EXPECTS(index < bases_.size(), "PublicStore::base: index out of range");
    return bases_[index];
}

const hdc::BinaryHV& PublicStore::value_slot(std::size_t slot) const {
    HDLOCK_EXPECTS(slot < value_hvs_.size(), "PublicStore::value_slot: slot out of range");
    return value_hvs_[slot];
}

void PublicStore::save(util::BinaryWriter& writer) const {
    writer.write_tag("PUBS");
    writer.write_u64(dim_);
    writer.write_u64(bases_.size());
    for (const auto& hv : bases_) hv.save(writer);
    writer.write_u64(value_hvs_.size());
    for (const auto& hv : value_hvs_) hv.save(writer);
}

PublicStore PublicStore::load(util::BinaryReader& reader) {
    reader.expect_tag("PUBS");
    PublicStore store;
    store.dim_ = static_cast<std::size_t>(reader.read_u64());
    const std::uint64_t n_bases = reader.read_u64();
    store.bases_.reserve(static_cast<std::size_t>(n_bases));
    for (std::uint64_t i = 0; i < n_bases; ++i) {
        store.bases_.push_back(hdc::BinaryHV::load(reader));
    }
    const std::uint64_t n_values = reader.read_u64();
    store.value_hvs_.reserve(static_cast<std::size_t>(n_values));
    for (std::uint64_t i = 0; i < n_values; ++i) {
        store.value_hvs_.push_back(hdc::BinaryHV::load(reader));
    }
    for (const auto& hv : store.bases_) {
        if (hv.dim() != store.dim_) throw FormatError("PublicStore::load: dimension mismatch");
    }
    for (const auto& hv : store.value_hvs_) {
        if (hv.dim() != store.dim_) throw FormatError("PublicStore::load: dimension mismatch");
    }
    return store;
}

void PublicStore::save_v2(util::BinaryWriter& writer) const {
    writer.write_tag("PUB2");
    writer.write_u64(dim_);
    writer.write_u64(bases_.size());
    writer.write_u64(value_hvs_.size());
    hdc::save_hv_block(writer, bases_, dim_);
    hdc::save_hv_block(writer, value_hvs_, dim_);
}

PublicStore PublicStore::load_v2(util::BinaryReader& reader) {
    reader.expect_tag("PUB2");
    PublicStore store;
    store.dim_ = static_cast<std::size_t>(reader.read_u64());
    const std::uint64_t n_bases = reader.read_u64();
    const std::uint64_t n_values = reader.read_u64();
    if (store.dim_ == 0 || store.dim_ > (1ULL << 28)) {
        throw FormatError("PublicStore: unreasonable dimension");
    }
    if (n_bases > (1ULL << 24) || n_values > (1ULL << 24)) {
        throw FormatError("PublicStore: unreasonable hypervector count");
    }
    store.bases_ = hdc::load_hv_block(reader, store.dim_, static_cast<std::size_t>(n_bases));
    store.value_hvs_ = hdc::load_hv_block(reader, store.dim_, static_cast<std::size_t>(n_values));
    return store;
}

SecureStore::SecureStore(LockKey key, ValueMapping value_mapping)
    : key_(std::move(key)), value_mapping_(std::move(value_mapping)) {
    HDLOCK_EXPECTS(key_.n_features() > 0, "SecureStore: empty key");
    HDLOCK_EXPECTS(!value_mapping_.empty(), "SecureStore: empty value mapping");
}

const LockKey& SecureStore::key() const {
    if (sealed_) throw AccessDenied("SecureStore: key read attempted after seal()");
    return key_;
}

const ValueMapping& SecureStore::value_mapping() const {
    if (sealed_) throw AccessDenied("SecureStore: value mapping read attempted after seal()");
    return value_mapping_;
}

std::uint64_t SecureStore::storage_bits(std::size_t pool_size, std::size_t dim) const {
    // Value mapping: M slots of ceil(log2 M) bits each.
    std::uint64_t level_bits = 0;
    std::uint64_t levels = value_mapping_.size();
    while ((1ull << level_bits) < levels) ++level_bits;
    return key_.storage_bits(pool_size, dim) +
           static_cast<std::uint64_t>(value_mapping_.size()) * level_bits;
}

}  // namespace hdlock
