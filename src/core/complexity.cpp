#include "core/complexity.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace hdlock::complexity {

double log10_guesses_per_feature(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                                 std::size_t n_layers) {
    HDLOCK_EXPECTS(n_features > 0 && dim > 0 && pool_size > 0,
                   "complexity: all sizes must be positive");
    if (n_layers == 0) {
        // Baseline divide-and-conquer: each feature tries the N candidates.
        return std::log10(static_cast<double>(n_features));
    }
    return static_cast<double>(n_layers) *
           (std::log10(static_cast<double>(dim)) + std::log10(static_cast<double>(pool_size)));
}

double log10_guesses(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                     std::size_t n_layers) {
    return std::log10(static_cast<double>(n_features)) +
           log10_guesses_per_feature(n_features, dim, pool_size, n_layers);
}

long double guesses(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                    std::size_t n_layers) {
    const double log_value = log10_guesses(n_features, dim, pool_size, n_layers);
    if (log_value > static_cast<double>(std::numeric_limits<long double>::max_exponent10)) {
        return std::numeric_limits<long double>::infinity();
    }
    return powl(10.0L, static_cast<long double>(log_value));
}

double security_gain_log10(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                           std::size_t n_layers) {
    return log10_guesses(n_features, dim, pool_size, n_layers) -
           log10_guesses(n_features, dim, pool_size, 0);
}

std::string format_log10(double log10_value) {
    const double exponent = std::floor(log10_value);
    const double mantissa = std::pow(10.0, log10_value - exponent);
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.2fe+%02d", mantissa, static_cast<int>(exponent));
    return buffer;
}

namespace {

std::uint64_t ceil_log2(std::uint64_t value) {
    if (value <= 1) return 0;
    return static_cast<std::uint64_t>(std::bit_width(value - 1));
}

}  // namespace

FootprintReport footprint(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                          std::size_t n_layers, std::size_t n_levels, std::size_t n_classes) {
    HDLOCK_EXPECTS(n_features > 0 && dim > 0 && pool_size > 0 && n_levels > 0,
                   "footprint: all sizes must be positive");
    FootprintReport report;
    const std::uint64_t entries = static_cast<std::uint64_t>(n_features) *
                                  (n_layers == 0 ? 1 : n_layers);
    const std::uint64_t index_bits = ceil_log2(pool_size);
    const std::uint64_t rotation_bits = n_layers == 0 ? 0 : ceil_log2(dim);
    report.secure_key_bits = entries * (index_bits + rotation_bits);
    report.secure_mapping_bits = static_cast<std::uint64_t>(n_levels) * ceil_log2(n_levels);
    report.public_pool_bits = static_cast<std::uint64_t>(pool_size) * dim;
    report.public_value_bits = static_cast<std::uint64_t>(n_levels) * dim;
    report.model_bits = static_cast<std::uint64_t>(n_classes) * dim;
    return report;
}

}  // namespace hdlock::complexity
