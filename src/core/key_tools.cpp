#include "core/key_tools.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "core/locked_encoder.hpp"

namespace hdlock {

namespace {

std::vector<SubKeyEntry> canonical_sub_key(const LockKey& key, std::size_t feature) {
    const auto sub_key = key.sub_key(feature);
    std::vector<SubKeyEntry> sorted(sub_key.begin(), sub_key.end());
    std::ranges::sort(sorted, [](const SubKeyEntry& a, const SubKeyEntry& b) {
        return std::pair{a.base_index, a.rotation} < std::pair{b.base_index, b.rotation};
    });
    return sorted;
}

}  // namespace

std::string KeyAuditReport::summary() const {
    std::ostringstream out;
    out << (ok() ? "OK" : "FAIL") << ": bounds " << (in_bounds ? "ok" : "VIOLATED")
        << ", injective " << (injective ? "yes" : "NO");
    if (!aliased_features.empty()) {
        out << " (" << aliased_features.size() << " aliased pair(s))";
    }
    out << ", " << sub_key_entropy_bits << " entropy bits/feature, " << storage_bits
        << " key bits";
    return out.str();
}

KeyAuditReport audit_key(const LockKey& key, const PublicStore& store) {
    KeyAuditReport report;
    const std::size_t pool = store.pool_size();
    const std::size_t dim = store.dim();

    report.in_bounds = true;
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        for (const auto& entry : key.sub_key(i)) {
            if (entry.base_index >= pool || entry.rotation >= dim) {
                report.in_bounds = false;
            }
        }
    }

    if (report.in_bounds) {
        // Materialization-level aliasing: canonical textual duplicates catch
        // layer reorderings cheaply; the hypervector comparison then catches
        // any residual coincidences (e.g. rotation-invariant bases).
        std::vector<hdc::BinaryHV> materialized;
        materialized.reserve(key.n_features());
        for (std::size_t i = 0; i < key.n_features(); ++i) {
            materialized.push_back(LockedEncoder::materialize_feature(store, key.sub_key(i)));
        }
        for (std::size_t a = 0; a < key.n_features(); ++a) {
            for (std::size_t b = a + 1; b < key.n_features(); ++b) {
                if (materialized[a] == materialized[b]) {
                    report.aliased_features.emplace_back(static_cast<std::uint32_t>(a),
                                                         static_cast<std::uint32_t>(b));
                }
            }
        }
    }
    report.injective = report.in_bounds && report.aliased_features.empty();

    report.sub_key_entropy_bits =
        static_cast<double>(key.entries_per_feature()) *
        std::log2(static_cast<double>(dim) * static_cast<double>(pool));
    if (key.is_plain()) {
        report.sub_key_entropy_bits = std::log2(static_cast<double>(pool));
    }
    report.storage_bits = key.storage_bits(pool, dim);
    return report;
}

LockKey canonicalize(const LockKey& key) {
    if (key.is_plain()) return key.clone();
    LockKey canonical = key.clone();
    for (std::size_t i = 0; i < key.n_features(); ++i) {
        const auto sorted = canonical_sub_key(key, i);
        for (std::size_t l = 0; l < sorted.size(); ++l) {
            canonical = canonical.with_entry(i, l, sorted[l]);
        }
    }
    return canonical;
}

bool materialize_equal(const LockKey& a, const LockKey& b, const PublicStore& store) {
    if (a.n_features() != b.n_features()) return false;
    for (std::size_t i = 0; i < a.n_features(); ++i) {
        if (LockedEncoder::materialize_feature(store, a.sub_key(i)) !=
            LockedEncoder::materialize_feature(store, b.sub_key(i))) {
            return false;
        }
    }
    return true;
}

LockKey rekey(const LockKey& compromised, const PublicStore& store, std::uint64_t seed) {
    HDLOCK_EXPECTS(!compromised.is_plain(), "rekey: plain keys carry no lock to rotate");
    const std::size_t pool = store.pool_size();
    const std::size_t dim = store.dim();
    const std::size_t n_features = compromised.n_features();
    const std::size_t n_layers = compromised.entries_per_feature();
    if (static_cast<double>(pool) * static_cast<double>(dim) <
        2.0 * static_cast<double>(n_features) * static_cast<double>(n_layers)) {
        throw ConfigError("rekey: (D * P) too small to avoid reusing leaked layer pairs");
    }

    std::set<std::pair<std::uint32_t, std::uint32_t>> burned;
    for (std::size_t i = 0; i < n_features; ++i) {
        for (const auto& entry : compromised.sub_key(i)) {
            burned.emplace(entry.base_index, entry.rotation);
        }
    }

    util::Xoshiro256ss rng(util::hash_mix(seed, 0x4E4BE1ull));
    for (int attempt = 0; attempt < 64; ++attempt) {
        LockKey fresh = LockKey::random(n_features, n_layers, pool, dim, rng());
        bool clean = true;
        for (std::size_t i = 0; i < n_features && clean; ++i) {
            for (const auto& entry : fresh.sub_key(i)) {
                if (burned.contains({entry.base_index, entry.rotation})) {
                    clean = false;
                    break;
                }
            }
        }
        if (clean && !materialize_equal(fresh, compromised, store)) return fresh;
    }
    throw ConfigError("rekey: could not draw a non-overlapping key; enlarge D or P");
}

}  // namespace hdlock
