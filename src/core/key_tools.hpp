#pragma once

/// \file key_tools.hpp
/// Owner-side key hygiene for HDLock deployments.
///
/// The paper stores the key in tamper-proof memory and never revisits it;
/// an operational deployment also needs to answer: is this key *sound*
/// (in-bounds, no two features aliased to the same hypervector), how much
/// entropy does it actually carry, and how do I rotate to a fresh key after
/// a suspected leak?  These utilities cover that lifecycle.
///
/// Aliasing subtlety: Eq. 9 products are commutative, so two sub-keys that
/// differ only in layer order materialize the *same* feature hypervector.
/// Equality of keys is therefore defined on the canonical (sorted) form, and
/// the audit detects materialization-level aliases rather than just textual
/// duplicates.
///
/// Everything here manipulates raw key material and is owner-side only
/// (hdlock-lint: secret-header — device translation units must never reach
/// this header; tools/lint/hdlock_lint enforces it).

#include <cstdint>
#include <string>
#include <vector>

#include "core/key.hpp"
#include "core/stores.hpp"
#include "util/confinement.hpp"

namespace hdlock {

/// Result of audit_key(): everything the owner should check before sealing.
struct KeyAuditReport {
    bool in_bounds = false;       ///< all base indices < P, rotations < D
    bool injective = false;       ///< no two features materialize identically
    /// Pairs of features whose sub-keys materialize the same hypervector
    /// (empty when injective).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> aliased_features;
    /// Shannon entropy (bits) of a uniformly drawn sub-key: L * log2(D * P).
    double sub_key_entropy_bits = 0.0;
    /// Tamper-proof memory the key occupies.
    std::uint64_t storage_bits = 0;

    bool ok() const noexcept { return in_bounds && injective; }
    std::string summary() const;
};

/// Audits `key` against the store it will index. Bounds violations are
/// reported (not thrown) so the audit can run on untrusted key material.
HDLOCK_OWNER_ONLY KeyAuditReport audit_key(const LockKey& key, const PublicStore& store);

/// Canonical form: each sub-key's entries sorted by (base_index, rotation).
/// Materializes identically to the input (Eq. 9 products commute); equal
/// canonical forms <=> textually aliased keys.
HDLOCK_OWNER_ONLY LockKey canonicalize(const LockKey& key);

/// True when the two keys materialize the same feature hypervectors against
/// `store` (the semantic equality that matters for encoder behaviour).
HDLOCK_OWNER_ONLY bool materialize_equal(const LockKey& a, const LockKey& b,
                                         const PublicStore& store);

/// Replacement-key generation after a suspected leak: draws a fresh random
/// key whose sub-keys avoid the compromised key's canonical sub-keys
/// entirely (no feature keeps any old (base, rotation) layer pair).
/// Requires n_layers >= 1 on both keys and throws ConfigError if the space
/// is too small to avoid reuse.
HDLOCK_OWNER_ONLY LockKey rekey(const LockKey& compromised, const PublicStore& store,
                                std::uint64_t seed);

}  // namespace hdlock
