#pragma once

/// \file locked_encoder.hpp
/// HDLock's privileged encoding module (Sec. 4.1, Fig. 4).
///
/// Every feature hypervector is the product of L permuted base hypervectors
/// selected from the public pool by the secret key (Eq. 9):
///
///     FeaHV_i = prod_{l=1..L} rho_{k_{i,l}}(B_{i,l})
///
/// so the encoding output is Eq. 10.  With a plain key (L = 0) the module
/// degenerates to the standard unprotected encoder whose FeaHVs are pool
/// entries — the paper's baseline.
///
/// The device materializes its feature hypervectors once at construction
/// (the hardware equivalent streams base HVs through the XOR datapath; the
/// cycle model in src/hw/ accounts for that cost).
///
/// The encoder keeps the key for auditing and re-export, so this is a
/// secret header (hdlock-lint: secret-header): the deployed datapath uses
/// api::SealedEncoder instead, and device translation units must never
/// reach this file (tools/lint/hdlock_lint enforces it).

#include <memory>

#include "core/stores.hpp"
#include "hdc/encoder.hpp"
#include "util/confinement.hpp"

namespace hdlock {

class HDLOCK_OWNER_ONLY LockedEncoder final : public hdc::Encoder {
public:
    /// \param store          the public hypervector memory
    /// \param key            per-feature base selections and rotations
    /// \param value_mapping  secret level -> store slot order of the ValHVs
    /// \param tie_seed       sign(0) tie-break seed (see hdc::Encoder)
    LockedEncoder(std::shared_ptr<const PublicStore> store, LockKey key,
                  ValueMapping value_mapping, std::uint64_t tie_seed);

    std::size_t dim() const override { return store_->dim(); }
    std::size_t n_features() const override { return key_.n_features(); }
    std::size_t n_levels() const override { return value_hvs_.size(); }

    /// The materialized FeaHV_i (owner-side view; an attacker only ever sees
    /// encoding outputs through attack::EncodingOracle).
    const hdc::BinaryHV& feature_hv(std::size_t feature) const;

    /// Value hypervector by semantic level (the secret order applied).
    const hdc::BinaryHV& value_hv(std::size_t level) const;

    HDLOCK_SECRET const LockKey& key() const noexcept { return key_; }
    const PublicStore& store() const noexcept { return *store_; }
    std::shared_ptr<const PublicStore> store_ptr() const noexcept { return store_; }

    /// Computes Eq. 9 for an arbitrary sub-key against a store. Shared with
    /// the attack code, which evaluates it for *guessed* sub-keys.
    static hdc::BinaryHV materialize_feature(const PublicStore& store,
                                             std::span<const SubKeyEntry> sub_key);

protected:
    std::span<const hdc::BinaryHV> feature_hv_array() const override { return feature_hvs_; }
    std::span<const hdc::BinaryHV> value_hv_array() const override { return value_hvs_; }

private:
    std::shared_ptr<const PublicStore> store_;
    LockKey key_;
    std::vector<hdc::BinaryHV> feature_hvs_;  // materialized Eq. 9 products
    std::vector<hdc::BinaryHV> value_hvs_;    // ordered by level
};

/// Everything a model owner sets up when deploying one protected device.
struct DeploymentConfig {
    std::size_t dim = 10000;     ///< D
    std::size_t n_features = 0;  ///< N
    std::size_t n_levels = 2;    ///< M
    std::size_t pool_size = 0;   ///< P; 0 means "equal to n_features"
    std::size_t n_layers = 2;    ///< L; 0 deploys the unprotected baseline
    std::uint64_t seed = 1;
    std::uint64_t tie_seed = 0x7E11;
};

struct Deployment {
    std::shared_ptr<const PublicStore> store;     ///< attacker-visible memory
    std::shared_ptr<SecureStore> secure;          ///< tamper-proof key memory
    std::shared_ptr<const LockedEncoder> encoder; ///< the device's encoder
};

/// Provisions public memory, key and encoder in one step. The SecureStore is
/// returned unsealed so owner-side tooling (key export, re-provisioning) can
/// still read it; call secure->seal() to enter the deployed state.
///
/// Degenerate configurations (n_features == 0, dim == 0, n_levels < 2, a
/// pool too small for the requested key shape) throw ConfigError naming the
/// offending field.  New code should prefer api::Owner::provision, which
/// wraps this call.
Deployment provision(const DeploymentConfig& config);

/// Materializes a full locked *symbol* memory: entry i is the Eq. 9 product
/// selected by the key's i-th sub-key.  This is how HDLock generalizes to
/// the n-gram encoder family (hdc::NGramEncoder): the alphabet plays the
/// role of the feature set, the symbol memory is derived from the public
/// pool, and the mapping stays in the secure key.
std::vector<hdc::BinaryHV> materialize_locked_symbols(const PublicStore& store,
                                                      const LockKey& key);

}  // namespace hdlock
