#pragma once

/// \file stores.hpp
/// The two memories of the paper's threat model (Sec. 3.1).
///
/// PublicStore models the non-secured hypervector memory: the attacker can
/// read every base hypervector and every value hypervector, but sees them
/// *unindexed* — the store keeps value hypervectors in a secret shuffled
/// order and base hypervectors carry no feature association at all.
///
/// SecureStore models the tamper-proof memory [15] holding the index mapping
/// (the "key"): the HDLock key of Eq. 9 plus the level->slot mapping of the
/// value hypervectors.  After seal(), reads throw AccessDenied — this is the
/// software simulation of the trust boundary, chosen per DESIGN.md §2
/// because the security argument only needs the boundary, not the silicon.
///
/// Because SecureStore carries the key, this is a secret header
/// (hdlock-lint: secret-header): device translation units must never reach
/// it — they receive the PublicStore through the bundle loader and the
/// materialized encoder state instead (tools/lint/hdlock_lint enforces it).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/key.hpp"
#include "hdc/item_memory.hpp"
#include "util/confinement.hpp"

namespace hdlock {

/// Read attempted on sealed secure memory.
class AccessDenied : public Error {
public:
    using Error::Error;
};

/// Secret mapping from semantic value level (0..M-1) to the slot of the
/// corresponding ValHV inside the public store.
using ValueMapping = std::vector<std::uint32_t>;

struct PublicStoreConfig {
    std::size_t dim = 10000;    ///< hypervector dimensionality D
    std::size_t pool_size = 0;  ///< number of base hypervectors P
    std::size_t n_levels = 2;   ///< number of value hypervectors M
    std::uint64_t seed = 1;
};

/// Attacker-readable hypervector memory: P orthogonal base hypervectors and
/// M value hypervectors stored in a secret order.
class PublicStore {
public:
    PublicStore() = default;

    /// Generates the store contents and returns the secret level->slot value
    /// mapping through `value_mapping` (which belongs in a SecureStore).
    static PublicStore generate(const PublicStoreConfig& config, ValueMapping& value_mapping);

    std::size_t dim() const noexcept { return dim_; }
    std::size_t pool_size() const noexcept { return bases_.size(); }
    std::size_t n_levels() const noexcept { return value_hvs_.size(); }

    const hdc::BinaryHV& base(std::size_t index) const;
    const std::vector<hdc::BinaryHV>& bases() const noexcept { return bases_; }

    /// Value hypervector by *storage slot* (not by level — the level order is
    /// exactly what the attacker does not know).
    const hdc::BinaryHV& value_slot(std::size_t slot) const;
    const std::vector<hdc::BinaryHV>& value_slots() const noexcept { return value_hvs_; }

    void save(util::BinaryWriter& writer) const;
    static PublicStore load(util::BinaryReader& reader);

    /// `.hdlk` v2 section ("PUB2"): shape header + two 64-byte-aligned
    /// contiguous word blocks.  A mapped load aliases every hypervector into
    /// the backing buffer (no copy); stream loads copy and are byte-wise
    /// interchangeable.
    void save_v2(util::BinaryWriter& writer) const;
    static PublicStore load_v2(util::BinaryReader& reader);

private:
    std::size_t dim_ = 0;
    std::vector<hdc::BinaryHV> bases_;
    std::vector<hdc::BinaryHV> value_hvs_;
};

/// Simulated tamper-proof key memory. Owner code reads the secrets while the
/// store is unsealed (provisioning time); seal() flips the device into its
/// deployed state where every read throws AccessDenied.
class HDLOCK_SECRET SecureStore {
public:
    SecureStore(LockKey key, ValueMapping value_mapping);

    HDLOCK_SECRET const LockKey& key() const;
    HDLOCK_SECRET const ValueMapping& value_mapping() const;

    void seal() noexcept { sealed_ = true; }
    bool sealed() const noexcept { return sealed_; }

    /// Secure-memory footprint in bits: what the tamper-proof memory must
    /// hold (key entries + value mapping), per the threat-model argument that
    /// secure memory is far too small for the full model.
    std::uint64_t storage_bits(std::size_t pool_size, std::size_t dim) const;

private:
    LockKey key_;
    ValueMapping value_mapping_;
    bool sealed_ = false;
};

}  // namespace hdlock
