#include "core/key.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>
#include <utility>

namespace hdlock {

namespace {

std::uint64_t ceil_log2(std::uint64_t value) {
    if (value <= 1) return 0;
    return static_cast<std::uint64_t>(std::bit_width(value - 1));
}

}  // namespace

LockKey::LockKey(LockKey&& other) noexcept
    : n_features_(std::exchange(other.n_features_, 0)),
      n_layers_(std::exchange(other.n_layers_, 0)),
      entries_(std::move(other.entries_)) {}

LockKey& LockKey::operator=(LockKey&& other) noexcept {
    if (this != &other) {
        entries_ = std::move(other.entries_);  // scrubs the overwritten entries
        n_features_ = std::exchange(other.n_features_, 0);
        n_layers_ = std::exchange(other.n_layers_, 0);
    }
    return *this;
}

LockKey LockKey::clone() const {
    LockKey copy;
    copy.n_features_ = n_features_;
    copy.n_layers_ = n_layers_;
    copy.entries_ = entries_;
    return copy;
}

void LockKey::scrub() noexcept {
    entries_.clear();  // secure_zero over every live entry
    n_features_ = 0;
    n_layers_ = 0;
}

LockKey LockKey::random(std::size_t n_features, std::size_t n_layers, std::size_t pool_size,
                        std::size_t dim, std::uint64_t seed) {
    HDLOCK_EXPECTS(n_features > 0, "LockKey::random: n_features must be positive");
    HDLOCK_EXPECTS(n_layers >= 1, "LockKey::random: use plain()/plain_random() for L = 0");
    HDLOCK_EXPECTS(pool_size > 0, "LockKey::random: empty base pool");
    HDLOCK_EXPECTS(dim > 0, "LockKey::random: dim must be positive");
    // Distinctness must be achievable: the sub-key space (P*D)^L has to
    // exceed the feature count comfortably (true for every practical config).
    HDLOCK_EXPECTS(static_cast<double>(pool_size) * static_cast<double>(dim) >=
                       2.0 * static_cast<double>(n_features),
                   "LockKey::random: sub-key space too small for distinct sub-keys");

    util::Xoshiro256ss rng(seed);
    LockKey key;
    key.n_features_ = n_features;
    key.n_layers_ = n_layers;
    key.entries_.resize(n_features * n_layers);

    std::set<std::vector<std::uint64_t>> seen;
    for (std::size_t i = 0; i < n_features; ++i) {
        std::vector<std::uint64_t> fingerprint(n_layers);
        do {
            for (std::size_t l = 0; l < n_layers; ++l) {
                SubKeyEntry& entry = key.entries_[i * n_layers + l];
                entry.base_index = static_cast<std::uint32_t>(rng.next_below(pool_size));
                entry.rotation = static_cast<std::uint32_t>(rng.next_below(dim));
                fingerprint[l] =
                    (static_cast<std::uint64_t>(entry.base_index) << 32) | entry.rotation;
            }
        } while (!seen.insert(fingerprint).second);
    }
    return key;
}

LockKey LockKey::plain(std::vector<std::uint32_t> permutation) {
    HDLOCK_EXPECTS(!permutation.empty(), "LockKey::plain: empty mapping");
    std::set<std::uint32_t> unique(permutation.begin(), permutation.end());
    HDLOCK_EXPECTS(unique.size() == permutation.size(),
                   "LockKey::plain: mapping must be injective");

    LockKey key;
    key.n_features_ = permutation.size();
    key.n_layers_ = 0;
    key.entries_.reserve(permutation.size());
    for (const std::uint32_t index : permutation) {
        key.entries_.push_back(SubKeyEntry{index, 0});
    }
    return key;
}

LockKey LockKey::plain_random(std::size_t n_features, std::size_t pool_size,
                              std::uint64_t seed) {
    HDLOCK_EXPECTS(n_features > 0, "LockKey::plain_random: n_features must be positive");
    HDLOCK_EXPECTS(pool_size >= n_features,
                   "LockKey::plain_random: pool must hold at least one HV per feature");
    std::vector<std::uint32_t> slots(pool_size);
    std::iota(slots.begin(), slots.end(), 0u);
    util::Xoshiro256ss rng(seed);
    rng.shuffle(std::span<std::uint32_t>(slots));
    slots.resize(n_features);
    return plain(std::move(slots));
}

const SubKeyEntry& LockKey::entry(std::size_t feature, std::size_t layer) const {
    HDLOCK_EXPECTS(feature < n_features_, "LockKey::entry: feature out of range");
    HDLOCK_EXPECTS(layer < entries_per_feature(), "LockKey::entry: layer out of range");
    return entries_[feature * entries_per_feature() + layer];
}

std::span<const SubKeyEntry> LockKey::sub_key(std::size_t feature) const {
    HDLOCK_EXPECTS(feature < n_features_, "LockKey::sub_key: feature out of range");
    return std::span<const SubKeyEntry>(entries_.data(), entries_.size())
        .subspan(feature * entries_per_feature(), entries_per_feature());
}

LockKey LockKey::with_entry(std::size_t feature, std::size_t layer, SubKeyEntry entry) const {
    HDLOCK_EXPECTS(feature < n_features_, "LockKey::with_entry: feature out of range");
    HDLOCK_EXPECTS(layer < entries_per_feature(), "LockKey::with_entry: layer out of range");
    HDLOCK_EXPECTS(!is_plain() || entry.rotation == 0,
                   "LockKey::with_entry: plain keys cannot carry rotations");
    LockKey copy = clone();
    copy.entries_[feature * entries_per_feature() + layer] = entry;
    return copy;
}

std::uint64_t LockKey::storage_bits(std::size_t pool_size, std::size_t dim) const {
    const std::uint64_t index_bits = ceil_log2(pool_size);
    const std::uint64_t rotation_bits = is_plain() ? 0 : ceil_log2(dim);
    return static_cast<std::uint64_t>(n_features_) * entries_per_feature() *
           (index_bits + rotation_bits);
}

void LockKey::save(util::BinaryWriter& writer) const {
    writer.write_tag("LKEY");
    writer.write_u64(n_features_);
    writer.write_u64(n_layers_);
    writer.write_u64(entries_.size());
    for (const auto& entry : entries_) {
        writer.write_u32(entry.base_index);
        writer.write_u32(entry.rotation);
    }
}

LockKey LockKey::load(util::BinaryReader& reader) {
    reader.expect_tag("LKEY");
    LockKey key;
    key.n_features_ = static_cast<std::size_t>(reader.read_u64());
    key.n_layers_ = static_cast<std::size_t>(reader.read_u64());
    const std::uint64_t n_entries = reader.read_u64();
    if (n_entries != key.n_features_ * key.entries_per_feature()) {
        throw FormatError("LockKey::load: entry count does not match shape");
    }
    key.entries_.reserve(static_cast<std::size_t>(n_entries));
    for (std::uint64_t i = 0; i < n_entries; ++i) {
        SubKeyEntry entry;
        entry.base_index = reader.read_u32();
        entry.rotation = reader.read_u32();
        key.entries_.push_back(entry);
    }
    return key;
}

}  // namespace hdlock
