#pragma once

/// \file key.hpp
/// The HDLock key (Sec. 4.1).
///
/// A LockKey holds, for every feature i, a sub-key key_i of L entries
/// (index(B_{i,l}), k_{i,l}): which base hypervector from the public pool is
/// used at layer l and by how many positions it is rotated (Eq. 9).
///
/// The unprotected baseline model is represented as a "plain" key with
/// n_layers() == 0: feature i maps directly to one pool entry with rotation
/// 0 (the paper's footnote 2: with P = N the pool entries double as the
/// feature hypervectors of a normal HDC model).  This unifies Fig. 8's
/// L = 0 baseline with the locked configurations.
///
/// Key material is confinement-checked: this header is a secret header
/// (hdlock-lint: secret-header) — device-layer translation units must never
/// reach it, directly or transitively (tools/lint/hdlock_lint enforces
/// this).  LockKey itself is move-only with zero-on-destruction scrubbing;
/// the only way to duplicate a key is the explicit, greppable clone().

#include <cstdint>
#include <span>
#include <vector>

#include "util/confinement.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/secure_mem.hpp"
#include "util/serialize.hpp"

namespace hdlock {

/// One layer of one feature's sub-key.
struct SubKeyEntry {
    std::uint32_t base_index = 0;  ///< index(B_{i,l}) into the public pool
    std::uint32_t rotation = 0;    ///< k_{i,l} in [0, D)

    bool operator==(const SubKeyEntry& other) const = default;
};

class HDLOCK_SECRET LockKey {
public:
    LockKey() = default;

    /// Move-only: an accidental copy is exactly the kind of key-material
    /// spread the confinement lint exists to flag.  Moves scrub the source
    /// (it reports empty afterwards); destruction zeroes the entry storage
    /// before releasing it (util::secure_zero via util::SecureVector).
    LockKey(const LockKey&) = delete;
    LockKey& operator=(const LockKey&) = delete;
    LockKey(LockKey&& other) noexcept;
    LockKey& operator=(LockKey&& other) noexcept;
    ~LockKey() = default;

    /// The one deliberate duplication path (owner-side tooling: audits,
    /// canonical forms, bundle export).  Grep for clone() to enumerate every
    /// place a key is copied.
    LockKey clone() const;

    /// Explicitly discards the key material now: zeroes the entry storage
    /// and leaves the key empty (n_features() == 0).
    void scrub() noexcept;

    /// Uniformly random key: every entry draws base_index from [0, pool_size)
    /// and rotation from [0, dim).  Feature sub-keys are kept pairwise
    /// distinct (identical sub-keys would alias two feature hypervectors).
    static LockKey random(std::size_t n_features, std::size_t n_layers, std::size_t pool_size,
                          std::size_t dim, std::uint64_t seed);

    /// Unprotected baseline ("L = 0"): feature i uses pool entry
    /// permutation[i] unrotated. Entries must be unique.
    static LockKey plain(std::vector<std::uint32_t> permutation);

    /// Random injective baseline mapping; requires pool_size >= n_features.
    static LockKey plain_random(std::size_t n_features, std::size_t pool_size,
                                std::uint64_t seed);

    std::size_t n_features() const noexcept { return n_features_; }

    /// Number of key layers L; 0 means the plain (unprotected) mapping.
    std::size_t n_layers() const noexcept { return n_layers_; }
    bool is_plain() const noexcept { return n_layers_ == 0; }

    /// Entries stored per feature: max(1, L).
    std::size_t entries_per_feature() const noexcept { return n_layers_ == 0 ? 1 : n_layers_; }

    const SubKeyEntry& entry(std::size_t feature, std::size_t layer) const;

    /// The full sub-key of one feature.
    std::span<const SubKeyEntry> sub_key(std::size_t feature) const;

    /// Copy of this key with one entry replaced (used by the security
    /// validation of Sec. 4.2, which perturbs a single parameter).
    LockKey with_entry(std::size_t feature, std::size_t layer, SubKeyEntry entry) const;

    bool operator==(const LockKey& other) const = default;

    /// Bits of tamper-proof memory needed to store the key: one
    /// (ceil(log2 P) + ceil(log2 D)) record per entry; the plain key stores
    /// no rotations.
    std::uint64_t storage_bits(std::size_t pool_size, std::size_t dim) const;

    void save(util::BinaryWriter& writer) const;
    static LockKey load(util::BinaryReader& reader);

private:
    std::size_t n_features_ = 0;
    std::size_t n_layers_ = 0;  // 0 = plain
    util::SecureVector<SubKeyEntry> entries_;
};

}  // namespace hdlock
