#pragma once

/// \file complexity.hpp
/// Closed-form adversarial reasoning cost (Sec. 4.2, Sec. 5.2, Fig. 7).
///
/// Divide-and-conquer reasoning on the standard encoder costs O(N^2)
/// guesses (N features, N candidate FeaHVs each).  Against HDLock every
/// feature sub-key spans (D * P)^L joint choices, so the total is
/// N * (D*P)^L.  These counts overflow doubles quickly (the paper quotes
/// 4.81e16 for MNIST at L = 2 and plots up to 1e40 in Fig. 7b), so all
/// arithmetic here is done in log10 space.

#include <cstdint>
#include <string>

namespace hdlock::complexity {

/// log10 of the number of reasoning guesses for the whole encoding module.
/// n_layers == 0 gives the unprotected baseline N^2.
double log10_guesses(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                     std::size_t n_layers);

/// log10 guesses for a single feature: N (baseline) or (D*P)^L.
double log10_guesses_per_feature(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                                 std::size_t n_layers);

/// Number of guesses as a long double; +inf when it exceeds the range.
long double guesses(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                    std::size_t n_layers);

/// Security gain over the unprotected baseline, in orders of magnitude:
/// log10( N*(D*P)^L / N^2 ).
double security_gain_log10(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                           std::size_t n_layers);

/// Scientific-notation rendering of a log10 count, e.g. "4.81e+16".
std::string format_log10(double log10_value);

/// Memory accounting behind the threat model's "secure memory is tiny"
/// argument and HDLock's key-size claims.
struct FootprintReport {
    std::uint64_t secure_key_bits = 0;     ///< lock key in tamper-proof memory
    std::uint64_t secure_mapping_bits = 0; ///< value level mapping
    std::uint64_t public_pool_bits = 0;    ///< P base HVs of D bits
    std::uint64_t public_value_bits = 0;   ///< M value HVs of D bits
    std::uint64_t model_bits = 0;          ///< C binarized class HVs

    std::uint64_t secure_total_bits() const noexcept {
        return secure_key_bits + secure_mapping_bits;
    }
    std::uint64_t public_total_bits() const noexcept {
        return public_pool_bits + public_value_bits + model_bits;
    }
};

FootprintReport footprint(std::size_t n_features, std::size_t dim, std::size_t pool_size,
                          std::size_t n_layers, std::size_t n_levels, std::size_t n_classes);

}  // namespace hdlock::complexity
