#pragma once

/// \file encoder.hpp
/// The HDC encoding module (Fig. 1 of the paper).
///
/// An Encoder maps a discretized feature vector (N levels in [0, M)) to a
/// hypervector.  The record-based scheme of Eq. 2/3 is implemented here;
/// HDLock's privileged variant (Eq. 10) lives in core/locked_encoder.hpp and
/// shares this interface, which is what lets models, oracles, attacks and
/// benchmarks treat protected and unprotected modules uniformly.
///
/// The encode kernel itself lives once in the base class, written against
/// the subclasses' materialized hypervector arrays (feature_hv_array /
/// value_hv_array): every row bundles the N bound products FeaHV_i ^
/// ValHV_{levels[i]} through a bit-sliced ColumnCounter, with the XOR fused
/// into the counter (ColumnCounter::add_xor) so no per-row product vector is
/// ever materialized.  The batch entry points (encode_batch /
/// encode_binary_batch) additionally reuse an EncoderScratch across rows, so
/// a served batch performs no per-row heap allocation at all, and can run
/// against a BoundProductCache that precomputes all N x M bound products —
/// turning each row into pure counter adds.
///
/// Binarization ties: Eq. 3 assigns sign(0) randomly.  To keep an encoder a
/// *function* (the same input always yields the same output, as a hardware
/// module would), ties are broken by a PRNG seeded from the encoder's tie
/// seed mixed with a hash of the input.  Two encoders with different tie
/// seeds agree on every non-tied element and disagree on about half of the
/// ties — exactly the residual Hamming floor visible in the paper's Fig. 3.
/// Every path below (per-row, batch, cached) derives the identical per-input
/// seed, so all of them are bit-identical to each other.

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "util/bitslice.hpp"
#include "util/matrix.hpp"

namespace hdlock::hdc {

/// Opt-in precomputation of all N x M bound products FeaHV_i ^ ValHV_m
/// (the tiny product set behind Eq. 2/10).  With the cache in place a row
/// encode performs no XORs at all — one ColumnCounter::add per feature.
/// The trade-off is memory: N * M * D bits (bytes_required()), which is why
/// construction goes through Encoder::make_product_cache with an explicit
/// byte cap.
class BoundProductCache {
public:
    /// Table footprint in bytes for a given encoder shape.
    static std::size_t bytes_required(std::size_t n_features, std::size_t n_levels,
                                      std::size_t dim);

    /// Materializes the full table. Spans must be non-empty and uniform in
    /// dimension; prefer Encoder::make_product_cache, which also enforces a
    /// memory cap.
    BoundProductCache(std::span<const BinaryHV> feature_hvs, std::span<const BinaryHV> value_hvs);

    std::size_t n_features() const noexcept { return n_features_; }
    std::size_t n_levels() const noexcept { return n_levels_; }
    std::size_t dim() const noexcept { return dim_; }
    std::size_t bytes() const noexcept { return words_.size() * sizeof(util::bits::Word); }

    bool matches(std::size_t n_features, std::size_t n_levels, std::size_t dim) const noexcept {
        return n_features == n_features_ && n_levels == n_levels_ && dim == dim_;
    }

    /// The packed product FeaHV_{feature} ^ ValHV_{level}.
    std::span<const util::bits::Word> product(std::size_t feature, std::size_t level) const {
        return std::span<const util::bits::Word>(words_)
            .subspan((feature * n_levels_ + level) * words_per_product_, words_per_product_);
    }

private:
    std::size_t n_features_ = 0;
    std::size_t n_levels_ = 0;
    std::size_t dim_ = 0;
    std::size_t words_per_product_ = 0;
    std::vector<util::bits::Word> words_;  // (feature, level)-major product rows
};

/// Reusable per-worker state for the allocation-free encode paths: the
/// bit-sliced counter, the non-binary sums buffer feeding binarization, and
/// a levels buffer callers may use for discretization.  One scratch per
/// thread; a scratch adapts automatically when used with encoders of
/// different shapes.
class EncoderScratch {
public:
    EncoderScratch() = default;

    /// Caller-side discretization buffer, sized to n entries.
    std::vector<int>& levels(std::size_t n) {
        levels_.resize(n);
        return levels_;
    }

    /// Per-class Hamming distance buffer for the fused encode→distance path
    /// (Encoder::fused_hamming_into), sized to n entries.
    std::vector<std::uint64_t>& distances(std::size_t n) {
        distances_.resize(n);
        return distances_;
    }

private:
    friend class Encoder;

    /// The counter, reset and re-shaped to `dim` columns with `n_planes`
    /// carry-save planes (sized so a whole row's features fit flush-free).
    util::ColumnCounter& counter(std::size_t dim, std::size_t n_planes);

    std::optional<util::ColumnCounter> counter_;
    IntHV sums_;            // non-binary encoding en route to sign()
    std::vector<int> levels_;
    // Row-pointer tables for the fused kernel call: the fused path hands the
    // backend an array of product (or feature/value pair) pointers instead
    // of streaming rows through the counter.
    std::vector<const util::bits::Word*> rows_a_;      // products, or feature HVs
    std::vector<const util::bits::Word*> rows_b_;      // value HVs (uncached fused path)
    std::vector<const util::bits::Word*> class_rows_;  // class HV word arrays
    std::vector<std::uint64_t> distances_;
};

class Encoder {
public:
    explicit Encoder(std::uint64_t tie_seed) : tie_seed_(tie_seed) {}
    virtual ~Encoder() = default;

    Encoder(const Encoder&) = default;
    Encoder& operator=(const Encoder&) = default;

    virtual std::size_t dim() const = 0;
    virtual std::size_t n_features() const = 0;
    virtual std::size_t n_levels() const = 0;

    /// Non-binary encoding H_nb (Eq. 2): the bundling sum of ValHV_{f_i} x
    /// FeaHV_i over all features.  `levels[i]` must lie in [0, n_levels).
    virtual IntHV encode(std::span<const int> levels) const;

    /// Binary encoding H_b = sign(H_nb) (Eq. 3) with deterministic-per-input
    /// randomized tie-breaking (see file comment).
    BinaryHV encode_binary(std::span<const int> levels) const;

    /// Allocation-free single-row encode: writes H_nb into `out` (re-shaped
    /// to dim()), reusing the scratch's counter.  With a cache (built by
    /// make_product_cache) the row is pure counter adds.  Bit-identical to
    /// encode() on every input.
    void encode_into(std::span<const int> levels, EncoderScratch& scratch, IntHV& out,
                     const BoundProductCache* cache = nullptr) const;

    /// Allocation-free binary encode; bit-identical to encode_binary().
    void encode_binary_into(std::span<const int> levels, EncoderScratch& scratch, BinaryHV& out,
                            const BoundProductCache* cache = nullptr) const;

    /// Fused encode→distance: writes Hamming(sign(H_nb), class_hvs[c]) into
    /// distances[c] without ever materializing the query hypervector.  The
    /// bound products stream once through a register-resident carry-save
    /// tree inside the kernel backend; binarization and the per-class
    /// XOR+popcount happen per word block while the count planes are still
    /// hot (no plane unpack, no sign pass, no query round-trip through
    /// memory).  Tie-breaking draws the identical PRNG stream as
    /// encode_binary_into, so on every backend
    ///   distances[c] == class_hvs[c].hamming(encode_binary(levels))
    /// exactly.  Requires n_features() <= util::kernels::kMaxFusedRows and
    /// class_hvs.size() == distances.size().
    void fused_hamming_into(std::span<const int> levels, EncoderScratch& scratch,
                            std::span<const BinaryHV> class_hvs,
                            std::span<std::uint64_t> distances,
                            const BoundProductCache* cache = nullptr) const;

    /// Batch encode: one IntHV per row of `levels_matrix` (rows x
    /// n_features()), scratch reused across rows.  `out` is resized.
    void encode_batch(const util::Matrix<int>& levels_matrix, EncoderScratch& scratch,
                      std::vector<IntHV>& out, const BoundProductCache* cache = nullptr) const;

    /// Batch binary encode with the same per-row tie-breaking as
    /// encode_binary (row hashed independently).
    void encode_binary_batch(const util::Matrix<int>& levels_matrix, EncoderScratch& scratch,
                             std::vector<BinaryHV>& out,
                             const BoundProductCache* cache = nullptr) const;

    /// Builds the N x M bound-product table when it fits in `max_bytes`;
    /// returns nullptr when it would not (callers fall back to the fused
    /// XOR path).
    std::shared_ptr<const BoundProductCache> make_product_cache(std::size_t max_bytes) const;

    std::uint64_t tie_seed() const noexcept { return tie_seed_; }

protected:
    /// Validates a level vector against this encoder's shape.
    void check_levels(std::span<const int> levels) const;

    /// The materialized hypervector arrays the shared kernel runs against.
    /// RecordEncoder serves them from its ItemMemory, LockedEncoder and
    /// api::SealedEncoder from their materialized Eq. 9 state.
    virtual std::span<const BinaryHV> feature_hv_array() const = 0;
    virtual std::span<const BinaryHV> value_hv_array() const = 0;

private:
    std::uint64_t tie_seed_;
};

/// The standard record-based encoder of Sec. 2 (Eq. 2/3): one orthogonal
/// FeaHV per feature index and M correlated ValHVs.
class RecordEncoder final : public Encoder {
public:
    RecordEncoder(std::shared_ptr<const ItemMemory> memory, std::uint64_t tie_seed);

    std::size_t dim() const override { return memory_->dim(); }
    std::size_t n_features() const override { return memory_->n_features(); }
    std::size_t n_levels() const override { return memory_->n_levels(); }

    /// Naive per-element reference implementation of Eq. 2, kept for the
    /// bit-slicing equivalence tests and as executable documentation.
    IntHV encode_reference(std::span<const int> levels) const;

    const ItemMemory& memory() const noexcept { return *memory_; }
    std::shared_ptr<const ItemMemory> memory_ptr() const noexcept { return memory_; }

protected:
    std::span<const BinaryHV> feature_hv_array() const override { return memory_->feature_hvs(); }
    std::span<const BinaryHV> value_hv_array() const override { return memory_->value_hvs(); }

private:
    std::shared_ptr<const ItemMemory> memory_;
};

/// Bundles the bound (ValHV x FeaHV) products for a level vector given
/// explicit hypervector arrays; the free-function form of the shared kernel
/// (kept for callers that hold raw arrays rather than an Encoder).
IntHV encode_with_hvs(std::span<const BinaryHV> feature_hvs, std::span<const BinaryHV> value_hvs,
                      std::span<const int> levels);

}  // namespace hdlock::hdc
