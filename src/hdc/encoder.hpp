#pragma once

/// \file encoder.hpp
/// The HDC encoding module (Fig. 1 of the paper).
///
/// An Encoder maps a discretized feature vector (N levels in [0, M)) to a
/// hypervector.  The record-based scheme of Eq. 2/3 is implemented here;
/// HDLock's privileged variant (Eq. 10) lives in core/locked_encoder.hpp and
/// shares this interface, which is what lets models, oracles, attacks and
/// benchmarks treat protected and unprotected modules uniformly.
///
/// Binarization ties: Eq. 3 assigns sign(0) randomly.  To keep an encoder a
/// *function* (the same input always yields the same output, as a hardware
/// module would), ties are broken by a PRNG seeded from the encoder's tie
/// seed mixed with a hash of the input.  Two encoders with different tie
/// seeds agree on every non-tied element and disagree on about half of the
/// ties — exactly the residual Hamming floor visible in the paper's Fig. 3.

#include <memory>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "util/bitslice.hpp"

namespace hdlock::hdc {

class Encoder {
public:
    explicit Encoder(std::uint64_t tie_seed) : tie_seed_(tie_seed) {}
    virtual ~Encoder() = default;

    Encoder(const Encoder&) = default;
    Encoder& operator=(const Encoder&) = default;

    virtual std::size_t dim() const = 0;
    virtual std::size_t n_features() const = 0;
    virtual std::size_t n_levels() const = 0;

    /// Non-binary encoding H_nb (Eq. 2): the bundling sum of ValHV_{f_i} x
    /// FeaHV_i over all features.  `levels[i]` must lie in [0, n_levels).
    virtual IntHV encode(std::span<const int> levels) const = 0;

    /// Binary encoding H_b = sign(H_nb) (Eq. 3) with deterministic-per-input
    /// randomized tie-breaking (see file comment).
    BinaryHV encode_binary(std::span<const int> levels) const;

    std::uint64_t tie_seed() const noexcept { return tie_seed_; }

protected:
    /// Validates a level vector against this encoder's shape.
    void check_levels(std::span<const int> levels) const;

private:
    std::uint64_t tie_seed_;
};

/// The standard record-based encoder of Sec. 2 (Eq. 2/3): one orthogonal
/// FeaHV per feature index and M correlated ValHVs.
class RecordEncoder final : public Encoder {
public:
    RecordEncoder(std::shared_ptr<const ItemMemory> memory, std::uint64_t tie_seed);

    std::size_t dim() const override { return memory_->dim(); }
    std::size_t n_features() const override { return memory_->n_features(); }
    std::size_t n_levels() const override { return memory_->n_levels(); }

    IntHV encode(std::span<const int> levels) const override;

    /// Naive per-element reference implementation of Eq. 2, kept for the
    /// bit-slicing equivalence tests and as executable documentation.
    IntHV encode_reference(std::span<const int> levels) const;

    const ItemMemory& memory() const noexcept { return *memory_; }
    std::shared_ptr<const ItemMemory> memory_ptr() const noexcept { return memory_; }

private:
    std::shared_ptr<const ItemMemory> memory_;
};

/// Bundles the bound (ValHV x FeaHV) products for a level vector given
/// explicit hypervector arrays; shared by RecordEncoder and LockedEncoder.
IntHV encode_with_hvs(std::span<const BinaryHV> feature_hvs, std::span<const BinaryHV> value_hvs,
                      std::span<const int> levels);

}  // namespace hdlock::hdc
