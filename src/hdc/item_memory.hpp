#pragma once

/// \file item_memory.hpp
/// Item memory: the base hypervectors an HDC encoder draws from.
///
/// Following Sec. 2 of the paper, an encoding module for N features with M
/// discretized value levels holds:
///  - N feature hypervectors (FeaHV), i.i.d. random and hence mutually
///    quasi-orthogonal (Eq. 1a);
///  - M value/level hypervectors (ValHV), *linearly correlated*: ValHV_1 is
///    random, ValHV_M is quasi-orthogonal to it, and intermediate levels
///    interpolate so that Hamm(ValHV_a, ValHV_b) ~ 0.5 |a-b| / (M-1)
///    (Eq. 1b).  Levels are built by flipping nested position sets of
///    cumulative size round(l * D/2 / (M-1)).

#include <cstdint>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdlock::hdc {

struct ItemMemoryConfig {
    std::size_t dim = 10000;   ///< hypervector dimensionality D
    std::size_t n_features = 0;  ///< N
    std::size_t n_levels = 2;  ///< M (at least 2)
    std::uint64_t seed = 1;
};

class ItemMemory {
public:
    ItemMemory() = default;

    /// Generates fresh feature and value hypervectors per the config.
    static ItemMemory generate(const ItemMemoryConfig& config);

    /// Generates only value hypervectors (n_features == 0 is allowed); used
    /// by HDLock, where feature hypervectors come from the locked base pool.
    static std::vector<BinaryHV> generate_level_hvs(std::size_t dim, std::size_t n_levels,
                                                    std::uint64_t seed);

    std::size_t dim() const noexcept { return dim_; }
    std::size_t n_features() const noexcept { return feature_hvs_.size(); }
    std::size_t n_levels() const noexcept { return value_hvs_.size(); }

    const BinaryHV& feature_hv(std::size_t feature) const;
    const BinaryHV& value_hv(std::size_t level) const;
    const std::vector<BinaryHV>& feature_hvs() const noexcept { return feature_hvs_; }
    const std::vector<BinaryHV>& value_hvs() const noexcept { return value_hvs_; }

    /// Builds an item memory from existing hypervectors (used when the
    /// attacker reconstructs an encoder from reasoned mappings).
    static ItemMemory from_hypervectors(std::vector<BinaryHV> feature_hvs,
                                        std::vector<BinaryHV> value_hvs);

    void save(util::BinaryWriter& writer) const;
    static ItemMemory load(util::BinaryReader& reader);

private:
    std::size_t dim_ = 0;
    std::vector<BinaryHV> feature_hvs_;
    std::vector<BinaryHV> value_hvs_;
};

}  // namespace hdlock::hdc
