#include "hdc/item_memory.hpp"

#include <cmath>
#include <numeric>

namespace hdlock::hdc {

ItemMemory ItemMemory::generate(const ItemMemoryConfig& config) {
    HDLOCK_EXPECTS(config.dim > 0, "ItemMemory: dim must be positive");
    HDLOCK_EXPECTS(config.n_levels >= 2, "ItemMemory: at least two value levels required");

    ItemMemory memory;
    memory.dim_ = config.dim;

    util::Xoshiro256ss feature_rng(util::hash_mix(config.seed, 0xFEA));
    memory.feature_hvs_.reserve(config.n_features);
    for (std::size_t i = 0; i < config.n_features; ++i) {
        memory.feature_hvs_.push_back(BinaryHV::random(config.dim, feature_rng));
    }

    memory.value_hvs_ =
        generate_level_hvs(config.dim, config.n_levels, util::hash_mix(config.seed, 0x7A1));
    return memory;
}

std::vector<BinaryHV> ItemMemory::generate_level_hvs(std::size_t dim, std::size_t n_levels,
                                                     std::uint64_t seed) {
    HDLOCK_EXPECTS(dim > 0, "generate_level_hvs: dim must be positive");
    HDLOCK_EXPECTS(n_levels >= 2, "generate_level_hvs: at least two levels required");

    util::Xoshiro256ss rng(seed);
    std::vector<BinaryHV> levels;
    levels.reserve(n_levels);
    levels.push_back(BinaryHV::random(dim, rng));

    // A fixed random half of the positions is flipped progressively: level l
    // differs from level 0 in the first round(l * D/2 / (M-1)) positions of
    // the shuffled set.  Nested flip sets give exactly the linear pairwise
    // profile of Eq. 1b.
    std::vector<std::uint32_t> positions(dim);
    std::iota(positions.begin(), positions.end(), 0u);
    rng.shuffle(std::span<std::uint32_t>(positions));
    const std::size_t flip_budget = dim / 2;

    std::size_t flipped = 0;
    for (std::size_t level = 1; level < n_levels; ++level) {
        BinaryHV hv = levels.back();
        const auto target = static_cast<std::size_t>(std::llround(
            static_cast<double>(level) * static_cast<double>(flip_budget) /
            static_cast<double>(n_levels - 1)));
        for (; flipped < target; ++flipped) {
            const std::size_t p = positions[flipped];
            hv.set(p, -hv.get(p));
        }
        levels.push_back(std::move(hv));
    }
    return levels;
}

const BinaryHV& ItemMemory::feature_hv(std::size_t feature) const {
    HDLOCK_EXPECTS(feature < feature_hvs_.size(), "ItemMemory::feature_hv: index out of range");
    return feature_hvs_[feature];
}

const BinaryHV& ItemMemory::value_hv(std::size_t level) const {
    HDLOCK_EXPECTS(level < value_hvs_.size(), "ItemMemory::value_hv: level out of range");
    return value_hvs_[level];
}

ItemMemory ItemMemory::from_hypervectors(std::vector<BinaryHV> feature_hvs,
                                         std::vector<BinaryHV> value_hvs) {
    HDLOCK_EXPECTS(!value_hvs.empty(), "ItemMemory::from_hypervectors: value HVs required");
    const std::size_t dim = value_hvs.front().dim();
    for (const auto& hv : feature_hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim, "ItemMemory::from_hypervectors: dimension mismatch");
    }
    for (const auto& hv : value_hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim, "ItemMemory::from_hypervectors: dimension mismatch");
    }
    ItemMemory memory;
    memory.dim_ = dim;
    memory.feature_hvs_ = std::move(feature_hvs);
    memory.value_hvs_ = std::move(value_hvs);
    return memory;
}

void ItemMemory::save(util::BinaryWriter& writer) const {
    writer.write_tag("ITM1");
    writer.write_u64(dim_);
    writer.write_u64(feature_hvs_.size());
    for (const auto& hv : feature_hvs_) hv.save(writer);
    writer.write_u64(value_hvs_.size());
    for (const auto& hv : value_hvs_) hv.save(writer);
}

ItemMemory ItemMemory::load(util::BinaryReader& reader) {
    reader.expect_tag("ITM1");
    ItemMemory memory;
    memory.dim_ = static_cast<std::size_t>(reader.read_u64());
    const std::uint64_t n_features = reader.read_u64();
    memory.feature_hvs_.reserve(static_cast<std::size_t>(n_features));
    for (std::uint64_t i = 0; i < n_features; ++i) {
        memory.feature_hvs_.push_back(BinaryHV::load(reader));
    }
    const std::uint64_t n_levels = reader.read_u64();
    memory.value_hvs_.reserve(static_cast<std::size_t>(n_levels));
    for (std::uint64_t i = 0; i < n_levels; ++i) {
        memory.value_hvs_.push_back(BinaryHV::load(reader));
    }
    for (const auto& hv : memory.feature_hvs_) {
        if (hv.dim() != memory.dim_) throw FormatError("ItemMemory::load: dimension mismatch");
    }
    for (const auto& hv : memory.value_hvs_) {
        if (hv.dim() != memory.dim_) throw FormatError("ItemMemory::load: dimension mismatch");
    }
    return memory;
}

}  // namespace hdlock::hdc
