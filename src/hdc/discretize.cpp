#include "hdc/discretize.hpp"

#include <algorithm>
#include <cmath>

namespace hdlock::hdc {

MinMaxDiscretizer MinMaxDiscretizer::fit(const util::Matrix<float>& X, std::size_t n_levels,
                                         DiscretizerMode mode) {
    HDLOCK_EXPECTS(n_levels >= 2, "MinMaxDiscretizer: at least two levels required");
    HDLOCK_EXPECTS(!X.empty(), "MinMaxDiscretizer: empty training matrix");

    MinMaxDiscretizer d;
    d.n_levels_ = n_levels;
    d.mode_ = mode;

    if (mode == DiscretizerMode::global) {
        float lo = X(0, 0), hi = X(0, 0);
        for (const float v : X.data()) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        d.mins_ = {lo};
        d.maxs_ = {hi};
    } else {
        d.mins_.assign(X.cols(), 0.0f);
        d.maxs_.assign(X.cols(), 0.0f);
        for (std::size_t c = 0; c < X.cols(); ++c) {
            float lo = X(0, c), hi = X(0, c);
            for (std::size_t r = 1; r < X.rows(); ++r) {
                lo = std::min(lo, X(r, c));
                hi = std::max(hi, X(r, c));
            }
            d.mins_[c] = lo;
            d.maxs_[c] = hi;
        }
    }
    return d;
}

MinMaxDiscretizer MinMaxDiscretizer::with_range(float min_value, float max_value,
                                                std::size_t n_levels) {
    HDLOCK_EXPECTS(n_levels >= 2, "MinMaxDiscretizer: at least two levels required");
    HDLOCK_EXPECTS(min_value <= max_value, "MinMaxDiscretizer: min must not exceed max");
    MinMaxDiscretizer d;
    d.n_levels_ = n_levels;
    d.mode_ = DiscretizerMode::global;
    d.mins_ = {min_value};
    d.maxs_ = {max_value};
    return d;
}

int MinMaxDiscretizer::level_of(float value, std::size_t feature) const {
    HDLOCK_EXPECTS(!mins_.empty(), "MinMaxDiscretizer: not fitted");
    const std::size_t slot = mode_ == DiscretizerMode::global ? 0 : feature;
    HDLOCK_EXPECTS(slot < mins_.size(), "MinMaxDiscretizer: feature out of range");
    const float lo = mins_[slot];
    const float hi = maxs_[slot];
    if (!(hi > lo)) return 0;
    // Non-finite inputs reach this path in practice (std::from_chars parses
    // "nan"/"inf" from CSV fields); a float-to-int cast of the resulting
    // NaN/out-of-range value is undefined behavior, so clamp in the double
    // domain first: NaN maps to level 0, +/-inf clamp to the boundary levels.
    if (std::isnan(value)) return 0;
    const double scaled = (static_cast<double>(value) - lo) / (static_cast<double>(hi) - lo) *
                          static_cast<double>(n_levels_);
    if (std::isnan(scaled)) return 0;  // e.g. a range fitted on infinities
    const double top = static_cast<double>(n_levels_ - 1);
    return static_cast<int>(std::clamp(std::floor(scaled), 0.0, top));
}

void MinMaxDiscretizer::transform_row(std::span<const float> row, std::span<int> levels) const {
    HDLOCK_EXPECTS(row.size() == levels.size(), "MinMaxDiscretizer: size mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) levels[i] = level_of(row[i], i);
}

std::vector<int> MinMaxDiscretizer::transform_row(std::span<const float> row) const {
    std::vector<int> levels(row.size());
    transform_row(row, levels);
    return levels;
}

util::Matrix<int> MinMaxDiscretizer::transform(const util::Matrix<float>& X) const {
    util::Matrix<int> out(X.rows(), X.cols());
    for (std::size_t r = 0; r < X.rows(); ++r) transform_row(X.row(r), out.row(r));
    return out;
}

void MinMaxDiscretizer::save(util::BinaryWriter& writer) const {
    writer.write_tag("DSC1");
    writer.write_u64(n_levels_);
    writer.write_u8(static_cast<std::uint8_t>(mode_));
    writer.write_span(std::span<const float>(mins_));
    writer.write_span(std::span<const float>(maxs_));
}

MinMaxDiscretizer MinMaxDiscretizer::load(util::BinaryReader& reader) {
    reader.expect_tag("DSC1");
    MinMaxDiscretizer d;
    d.n_levels_ = static_cast<std::size_t>(reader.read_u64());
    const auto mode = reader.read_u8();
    if (mode > 1) throw FormatError("MinMaxDiscretizer::load: bad mode");
    d.mode_ = static_cast<DiscretizerMode>(mode);
    d.mins_ = reader.read_vector<float>();
    d.maxs_ = reader.read_vector<float>();
    if (d.mins_.size() != d.maxs_.size()) {
        throw FormatError("MinMaxDiscretizer::load: min/max size mismatch");
    }
    return d;
}

}  // namespace hdlock::hdc
