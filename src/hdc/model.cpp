#include "hdc/model.hpp"

#include "hdc/encoder.hpp"

namespace hdlock::hdc {

HdcModel HdcModel::train(const EncodedBatch& batch, int n_classes, const TrainConfig& config) {
    HDLOCK_EXPECTS(n_classes >= 2, "HdcModel::train: need at least two classes");
    HDLOCK_EXPECTS(batch.size() > 0, "HdcModel::train: empty batch");
    HDLOCK_EXPECTS(batch.labels.size() == batch.size(), "HdcModel::train: label count mismatch");
    HDLOCK_EXPECTS(config.retrain_epochs >= 0, "HdcModel::train: negative epoch count");
    HDLOCK_EXPECTS(config.learning_rate >= 1, "HdcModel::train: learning rate must be >= 1");
    const bool binary = config.kind == ModelKind::binary;
    HDLOCK_EXPECTS(!binary || batch.binary.size() == batch.size(),
                   "HdcModel::train: binary model needs binarized encodings");

    const std::size_t dim = batch.non_binary.front().dim();
    HdcModel model;
    model.kind_ = config.kind;
    model.class_sums_.assign(static_cast<std::size_t>(n_classes), IntHV(dim));

    // Initial bundling (Eq. 4): every sample is added to its class sum.
    for (std::size_t s = 0; s < batch.size(); ++s) {
        const int label = batch.labels[s];
        HDLOCK_EXPECTS(label >= 0 && label < n_classes, "HdcModel::train: label out of range");
        model.class_sums_[static_cast<std::size_t>(label)].add(batch.non_binary[s]);
    }
    model.recompute_norms_();

    util::Xoshiro256ss tie_rng(util::hash_mix(config.seed, 0xB1AA));
    if (binary) model.rebinarize_(tie_rng);

    // QuantHD-style retraining: predict with the deployed representation and
    // repair mistakes in the full-precision sums.  The norm cache tracks the
    // two classes each repair touches, so mid-epoch non-binary predictions
    // see exactly the norms a fresh computation would.
    for (int epoch = 0; epoch < config.retrain_epochs; ++epoch) {
        std::size_t mistakes = 0;
        for (std::size_t s = 0; s < batch.size(); ++s) {
            const int truth = batch.labels[s];
            const int predicted =
                binary ? model.predict(batch.binary[s]) : model.predict(batch.non_binary[s]);
            if (predicted == truth) continue;
            ++mistakes;
            for (int rep = 0; rep < config.learning_rate; ++rep) {
                model.class_sums_[static_cast<std::size_t>(truth)].add(batch.non_binary[s]);
                model.class_sums_[static_cast<std::size_t>(predicted)].sub(batch.non_binary[s]);
            }
            model.recompute_norm_(static_cast<std::size_t>(truth));
            model.recompute_norm_(static_cast<std::size_t>(predicted));
        }
        if (binary) model.rebinarize_(tie_rng);
        model.epochs_run_ = epoch + 1;
        if (config.stop_when_clean && mistakes == 0) break;
    }
    return model;
}

void HdcModel::recompute_norm_(std::size_t cls) {
    class_norms_[cls] = class_sums_[cls].norm();
}

void HdcModel::recompute_norms_() {
    class_norms_.resize(class_sums_.size());
    for (std::size_t cls = 0; cls < class_sums_.size(); ++cls) recompute_norm_(cls);
}

void HdcModel::rebinarize_(util::Xoshiro256ss& rng) {
    class_binary_.clear();
    class_binary_.reserve(class_sums_.size());
    for (const auto& sum : class_sums_) class_binary_.push_back(sum.sign(rng));
}

const IntHV& HdcModel::class_sum(int cls) const {
    HDLOCK_EXPECTS(cls >= 0 && cls < n_classes(), "HdcModel::class_sum: class out of range");
    return class_sums_[static_cast<std::size_t>(cls)];
}

const BinaryHV& HdcModel::class_binary(int cls) const {
    HDLOCK_EXPECTS(kind_ == ModelKind::binary, "HdcModel::class_binary: non-binary model");
    HDLOCK_EXPECTS(cls >= 0 && cls < n_classes(), "HdcModel::class_binary: class out of range");
    return class_binary_[static_cast<std::size_t>(cls)];
}

int HdcModel::predict(const IntHV& query) const {
    HDLOCK_EXPECTS(!class_sums_.empty(), "HdcModel::predict: untrained model");
    const double query_norm = query.norm();
    int best = 0;
    double best_similarity = -2.0;
    for (int cls = 0; cls < n_classes(); ++cls) {
        const auto c = static_cast<std::size_t>(cls);
        const double denom = class_norms_[c] * query_norm;
        const double similarity =
            denom == 0.0 ? 0.0 : static_cast<double>(class_sums_[c].dot(query)) / denom;
        if (similarity > best_similarity) {
            best_similarity = similarity;
            best = cls;
        }
    }
    return best;
}

int HdcModel::predict(const BinaryHV& query) const {
    HDLOCK_EXPECTS(kind_ == ModelKind::binary, "HdcModel::predict(BinaryHV): non-binary model");
    HDLOCK_EXPECTS(!class_binary_.empty(), "HdcModel::predict: untrained model");
    int best = 0;
    std::size_t best_distance = query.dim() + 1;
    for (int cls = 0; cls < n_classes(); ++cls) {
        const std::size_t distance = class_binary_[static_cast<std::size_t>(cls)].hamming(query);
        if (distance < best_distance) {
            best_distance = distance;
            best = cls;
        }
    }
    return best;
}

int HdcModel::predict_fused(const Encoder& encoder, std::span<const int> levels,
                            EncoderScratch& scratch, const BoundProductCache* cache) const {
    HDLOCK_EXPECTS(kind_ == ModelKind::binary, "HdcModel::predict_fused: non-binary model");
    HDLOCK_EXPECTS(!class_binary_.empty(), "HdcModel::predict_fused: untrained model");
    HDLOCK_EXPECTS(encoder.dim() == dim(),
                   "HdcModel::predict_fused: encoder/model dimension mismatch");
    std::vector<std::uint64_t>& distances = scratch.distances(class_binary_.size());
    encoder.fused_hamming_into(levels, scratch, class_binary_, distances, cache);
    // Same argmin as predict(BinaryHV): strict <, first class wins ties.
    int best = 0;
    auto best_distance = static_cast<std::uint64_t>(dim()) + 1;
    for (int cls = 0; cls < n_classes(); ++cls) {
        const std::uint64_t distance = distances[static_cast<std::size_t>(cls)];
        if (distance < best_distance) {
            best_distance = distance;
            best = cls;
        }
    }
    return best;
}

void HdcModel::predict_into(std::span<const IntHV> queries, std::span<int> out) const {
    HDLOCK_EXPECTS(out.size() == queries.size(), "HdcModel::predict_into: size mismatch");
    for (std::size_t s = 0; s < queries.size(); ++s) out[s] = predict(queries[s]);
}

void HdcModel::predict_into(std::span<const BinaryHV> queries, std::span<int> out) const {
    HDLOCK_EXPECTS(out.size() == queries.size(), "HdcModel::predict_into: size mismatch");
    for (std::size_t s = 0; s < queries.size(); ++s) out[s] = predict(queries[s]);
}

std::vector<int> HdcModel::predict_batch(const EncodedBatch& batch) const {
    const bool binary = kind_ == ModelKind::binary;
    HDLOCK_EXPECTS(!binary || batch.binary.size() == batch.size(),
                   "HdcModel::predict_batch: binary model needs binarized encodings");
    std::vector<int> predictions(batch.size());
    if (binary) {
        predict_into(batch.binary, predictions);
    } else {
        predict_into(batch.non_binary, predictions);
    }
    return predictions;
}

double HdcModel::evaluate(const EncodedBatch& batch) const {
    HDLOCK_EXPECTS(batch.size() > 0, "HdcModel::evaluate: empty batch");
    const auto predictions = predict_batch(batch);
    std::size_t correct = 0;
    for (std::size_t s = 0; s < batch.size(); ++s) {
        correct += predictions[s] == batch.labels[s] ? 1u : 0u;
    }
    return static_cast<double>(correct) / static_cast<double>(batch.size());
}

void HdcModel::save(util::BinaryWriter& writer) const {
    writer.write_tag("MDL1");
    writer.write_u8(static_cast<std::uint8_t>(kind_));
    writer.write_i32(epochs_run_);
    writer.write_u64(class_sums_.size());
    for (const auto& sum : class_sums_) sum.save(writer);
    writer.write_u64(class_binary_.size());
    for (const auto& hv : class_binary_) hv.save(writer);
}

HdcModel HdcModel::load(util::BinaryReader& reader) {
    reader.expect_tag("MDL1");
    HdcModel model;
    const auto kind = reader.read_u8();
    if (kind > 1) throw FormatError("HdcModel::load: bad model kind");
    model.kind_ = static_cast<ModelKind>(kind);
    model.epochs_run_ = reader.read_i32();
    const std::uint64_t n_sums = reader.read_u64();
    for (std::uint64_t i = 0; i < n_sums; ++i) model.class_sums_.push_back(IntHV::load(reader));
    const std::uint64_t n_bin = reader.read_u64();
    for (std::uint64_t i = 0; i < n_bin; ++i) model.class_binary_.push_back(BinaryHV::load(reader));
    if (model.kind_ == ModelKind::binary && model.class_binary_.size() != model.class_sums_.size()) {
        throw FormatError("HdcModel::load: binary model missing binarized class HVs");
    }
    model.recompute_norms_();
    return model;
}

void HdcModel::save_v2(util::BinaryWriter& writer) const {
    writer.write_tag("MDL2");
    writer.write_u8(static_cast<std::uint8_t>(kind_));
    writer.write_i32(epochs_run_);
    writer.write_u64(class_sums_.size());
    writer.write_u64(dim());
    writer.write_u8(class_binary_.empty() ? 0 : 1);
    save_int_hv_block(writer, class_sums_, dim());
    if (!class_binary_.empty()) save_hv_block(writer, class_binary_, dim());
}

HdcModel HdcModel::load_v2(util::BinaryReader& reader) {
    reader.expect_tag("MDL2");
    HdcModel model;
    const auto kind = reader.read_u8();
    if (kind > 1) throw FormatError("HdcModel: bad model kind");
    model.kind_ = static_cast<ModelKind>(kind);
    model.epochs_run_ = reader.read_i32();
    const std::uint64_t n_classes = reader.read_u64();
    const std::uint64_t dim = reader.read_u64();
    const std::uint8_t has_binary = reader.read_u8();
    if (n_classes == 0 || n_classes > (1ULL << 20)) {
        throw FormatError("HdcModel: unreasonable class count");
    }
    if (dim == 0 || dim > (1ULL << 28)) throw FormatError("HdcModel: unreasonable dimension");
    if (has_binary > 1) throw FormatError("HdcModel: bad binary flag");
    if (model.kind_ == ModelKind::binary && has_binary == 0) {
        throw FormatError("HdcModel: binary model missing binarized class HVs");
    }
    model.class_sums_ = load_int_hv_block(reader, static_cast<std::size_t>(dim),
                                          static_cast<std::size_t>(n_classes));
    if (has_binary != 0) {
        model.class_binary_ = load_hv_block(reader, static_cast<std::size_t>(dim),
                                            static_cast<std::size_t>(n_classes));
    }
    model.recompute_norms_();
    return model;
}

}  // namespace hdlock::hdc
