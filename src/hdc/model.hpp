#pragma once

/// \file model.hpp
/// HDC classification model: class hypervectors, training and inference.
///
/// Training follows the paper's Sec. 2: class hypervectors are the bundling
/// sums of the encoded training samples (Eq. 4), optionally refined with
/// QuantHD-style retraining — on a misprediction the sample is added to the
/// correct class sum and subtracted from the mispredicted one.  Inference
/// compares the encoded query against every class hypervector with cosine
/// similarity (non-binary model) or Hamming distance (binary model).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdlock::hdc {

class BoundProductCache;
class Encoder;
class EncoderScratch;

enum class ModelKind : std::uint8_t {
    non_binary = 0,  ///< integer class HVs, cosine similarity
    binary = 1       ///< binarized class HVs, Hamming distance
};

struct TrainConfig {
    ModelKind kind = ModelKind::non_binary;
    /// Retraining passes over the training set after the initial bundling;
    /// 0 reproduces plain single-pass HDC training.
    int retrain_epochs = 10;
    /// Integer "learning rate": the weight applied to retraining updates.
    int learning_rate = 1;
    /// Stop early once a full epoch makes no mistakes.
    bool stop_when_clean = true;
    std::uint64_t seed = 1;
};

/// A batch of encoded samples: the non-binary encodings plus (for binary
/// models) their binarizations, computed once so retraining epochs and
/// evaluation never re-encode.
struct EncodedBatch {
    std::vector<IntHV> non_binary;
    std::vector<BinaryHV> binary;  ///< empty unless the model kind needs it
    std::vector<int> labels;

    std::size_t size() const noexcept { return non_binary.size(); }
};

class HdcModel {
public:
    HdcModel() = default;

    /// Trains on encoded samples. `batch.binary` must be populated when
    /// config.kind == ModelKind::binary.
    static HdcModel train(const EncodedBatch& batch, int n_classes, const TrainConfig& config);

    ModelKind kind() const noexcept { return kind_; }
    int n_classes() const noexcept { return static_cast<int>(class_sums_.size()); }
    std::size_t dim() const noexcept { return class_sums_.empty() ? 0 : class_sums_[0].dim(); }

    /// Integer class hypervector (Eq. 4 sums plus retraining updates).
    const IntHV& class_sum(int cls) const;
    /// Binarized class hypervector; only valid for binary models.
    const BinaryHV& class_binary(int cls) const;

    /// Non-binary inference: argmax cosine(query, ClassHV_j).  Class-HV
    /// norms are precomputed (and kept in sync through training updates), so
    /// a call costs one query norm plus one dot product per class.
    int predict(const IntHV& query) const;
    /// Binary inference: argmin Hamming(query, sign(ClassHV_j)).  The
    /// distance scoring runs on the dispatched SIMD word kernels
    /// (util/kernels.hpp via BinaryHV::hamming) — backend choice never
    /// changes a prediction, only how fast the argmin is found.
    int predict(const BinaryHV& query) const;

    /// Fused binary inference: encodes `levels` and scores every class in
    /// one pass through Encoder::fused_hamming_into — the query hypervector
    /// is never materialized.  Returns the same argmin as
    /// predict(encoder.encode_binary(levels)) on every kernel backend (same
    /// distances, same strict-< first-wins tie order).  Binary models only.
    int predict_fused(const Encoder& encoder, std::span<const int> levels,
                      EncoderScratch& scratch, const BoundProductCache* cache = nullptr) const;

    /// Batch inference over already-encoded queries (one label per query,
    /// in order).  The serving path: pairs with Encoder::encode_batch /
    /// encode_binary_batch so a whole batch reuses one scratch and the
    /// precomputed class norms.
    void predict_into(std::span<const IntHV> queries, std::span<int> out) const;
    void predict_into(std::span<const BinaryHV> queries, std::span<int> out) const;

    /// Predicts every sample in the batch using the representation matching
    /// the model kind.
    std::vector<int> predict_batch(const EncodedBatch& batch) const;

    /// Fraction of batch samples classified correctly.
    double evaluate(const EncodedBatch& batch) const;

    /// Number of retraining epochs actually executed (early stop included).
    int epochs_run() const noexcept { return epochs_run_; }

    void save(util::BinaryWriter& writer) const;
    static HdcModel load(util::BinaryReader& reader);

    /// `.hdlk` v2 section ("MDL2"): shape header + 64-byte-aligned raw
    /// class-HV blocks.  A mapped load aliases the class sums (and the
    /// binarized class HVs) into the backing buffer; only the per-class
    /// norms are recomputed (one read pass, no copy).  Mutating a mapped
    /// model (e.g. retraining) detaches copy-on-write per class HV.
    void save_v2(util::BinaryWriter& writer) const;
    static HdcModel load_v2(util::BinaryReader& reader);

    /// Pins external storage the class HVs may alias (a mapped `.hdlk`'s
    /// bytes).  Copies of the model share the pin, so a serving session
    /// that copied a mapped model stays valid after the bundle is gone.
    /// Harmless on fully-owning models.
    void set_storage_anchor(std::shared_ptr<const void> anchor) {
        storage_anchor_ = std::move(anchor);
    }

private:
    void rebinarize_(util::Xoshiro256ss& rng);
    void recompute_norm_(std::size_t cls);
    void recompute_norms_();

    ModelKind kind_ = ModelKind::non_binary;
    std::vector<IntHV> class_sums_;
    std::vector<BinaryHV> class_binary_;
    /// ||ClassHV_j|| for every class, maintained alongside class_sums_ so
    /// non-binary predict never re-derives them (they are invariant across a
    /// whole served batch).
    std::vector<double> class_norms_;
    std::shared_ptr<const void> storage_anchor_;
    int epochs_run_ = 0;
};

}  // namespace hdlock::hdc
