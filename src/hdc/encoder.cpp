#include "hdc/encoder.hpp"

#include <bit>

#include "util/kernels.hpp"

namespace hdlock::hdc {

namespace bits = util::bits;

namespace {

// TieResolver for the fused kernel: draws the same Xoshiro stream that
// IntHV::sign_into draws for zero sums — one next_sign() per tied column, in
// ascending column order (the kernel guarantees ascending word order and at
// most one call per word; set bits walk LSB-first here).  A set bit in the
// result means the tie resolves to -1 (bit 1 == value -1).
util::bits::Word resolve_fused_ties(void* ctx, util::bits::Word eq_mask,
                                    std::size_t /*word_index*/) noexcept {
    auto& rng = *static_cast<util::Xoshiro256ss*>(ctx);
    util::bits::Word negatives = 0;
    while (eq_mask != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(eq_mask));
        if (rng.next_sign() < 0) negatives |= util::bits::Word{1} << bit;
        eq_mask &= eq_mask - 1;
    }
    return negatives;
}

}  // namespace

// ---------------------------------------------------------------------------
// BoundProductCache
// ---------------------------------------------------------------------------

std::size_t BoundProductCache::bytes_required(std::size_t n_features, std::size_t n_levels,
                                              std::size_t dim) {
    return n_features * n_levels * bits::word_count(dim) * sizeof(bits::Word);
}

BoundProductCache::BoundProductCache(std::span<const BinaryHV> feature_hvs,
                                     std::span<const BinaryHV> value_hvs) {
    HDLOCK_EXPECTS(!feature_hvs.empty(), "BoundProductCache: no feature hypervectors");
    HDLOCK_EXPECTS(!value_hvs.empty(), "BoundProductCache: no value hypervectors");
    n_features_ = feature_hvs.size();
    n_levels_ = value_hvs.size();
    dim_ = feature_hvs.front().dim();
    words_per_product_ = bits::word_count(dim_);
    for (const auto& hv : feature_hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim_, "BoundProductCache: feature HV dimension mismatch");
    }
    for (const auto& hv : value_hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim_, "BoundProductCache: value HV dimension mismatch");
    }

    words_.resize(n_features_ * n_levels_ * words_per_product_);
    std::span<bits::Word> all(words_);
    for (std::size_t i = 0; i < n_features_; ++i) {
        for (std::size_t m = 0; m < n_levels_; ++m) {
            bits::xor_into(all.subspan((i * n_levels_ + m) * words_per_product_,
                                       words_per_product_),
                           feature_hvs[i].words(), value_hvs[m].words());
        }
    }
}

// ---------------------------------------------------------------------------
// EncoderScratch
// ---------------------------------------------------------------------------

util::ColumnCounter& EncoderScratch::counter(std::size_t dim, std::size_t n_planes) {
    if (!counter_.has_value() || counter_->n_bits() != dim || counter_->n_planes() != n_planes) {
        counter_.emplace(dim, n_planes);
    } else {
        counter_->reset();
    }
    return *counter_;
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

void Encoder::check_levels(std::span<const int> levels) const {
    HDLOCK_EXPECTS(levels.size() == n_features(), "Encoder: level vector has wrong length");
    const auto top = static_cast<int>(n_levels());
    for (const int level : levels) {
        HDLOCK_EXPECTS(level >= 0 && level < top, "Encoder: level out of range");
    }
}

IntHV Encoder::encode(std::span<const int> levels) const {
    EncoderScratch scratch;
    IntHV out;
    encode_into(levels, scratch, out);
    return out;
}

BinaryHV Encoder::encode_binary(std::span<const int> levels) const {
    EncoderScratch scratch;
    BinaryHV out;
    encode_binary_into(levels, scratch, out);
    return out;
}

void Encoder::encode_into(std::span<const int> levels, EncoderScratch& scratch, IntHV& out,
                          const BoundProductCache* cache) const {
    check_levels(levels);
    const std::size_t d = dim();
    // Plane count sized to the feature count: the whole row accumulates
    // without an intermediate flush, and the result is read straight out of
    // the planes (see ColumnCounter::bipolar_sums_into).
    util::ColumnCounter& counter =
        scratch.counter(d, util::ColumnCounter::planes_for_rows(levels.size()));
    if (cache != nullptr) {
        HDLOCK_EXPECTS(cache->matches(n_features(), n_levels(), d),
                       "Encoder::encode_into: product cache built for a different encoder shape");
        // Batch the precomputed products through add_rows: eight-row chunks
        // compress in one csa_rows kernel call instead of eight phase steps.
        scratch.rows_a_.resize(levels.size());
        for (std::size_t i = 0; i < levels.size(); ++i) {
            scratch.rows_a_[i] = cache->product(i, static_cast<std::size_t>(levels[i])).data();
        }
        counter.add_rows(scratch.rows_a_);
    } else {
        const std::span<const BinaryHV> feature_hvs = feature_hv_array();
        const std::span<const BinaryHV> value_hvs = value_hv_array();
        for (std::size_t i = 0; i < levels.size(); ++i) {
            counter.add_xor(feature_hvs[i].words(),
                            value_hvs[static_cast<std::size_t>(levels[i])].words());
        }
    }
    out.resize(d);
    counter.bipolar_sums_into(out.values());
}

void Encoder::encode_binary_into(std::span<const int> levels, EncoderScratch& scratch,
                                 BinaryHV& out, const BoundProductCache* cache) const {
    encode_into(levels, scratch, scratch.sums_, cache);
    util::Xoshiro256ss tie_rng(util::hash_mix(tie_seed_, util::fnv1a_of(levels)));
    scratch.sums_.sign_into(tie_rng, out);
}

void Encoder::fused_hamming_into(std::span<const int> levels, EncoderScratch& scratch,
                                 std::span<const BinaryHV> class_hvs,
                                 std::span<std::uint64_t> distances,
                                 const BoundProductCache* cache) const {
    check_levels(levels);
    HDLOCK_EXPECTS(class_hvs.size() == distances.size(),
                   "Encoder::fused_hamming_into: class/distance count mismatch");
    HDLOCK_EXPECTS(levels.size() <= util::kernels::kMaxFusedRows,
                   "Encoder::fused_hamming_into: feature count exceeds the fused-path cap");
    const std::size_t d = dim();
    for (const BinaryHV& hv : class_hvs) {
        HDLOCK_EXPECTS(hv.dim() == d, "Encoder::fused_hamming_into: class HV dimension mismatch");
    }

    const std::size_t n = levels.size();
    scratch.rows_a_.resize(n);
    scratch.class_rows_.resize(class_hvs.size());
    for (std::size_t c = 0; c < class_hvs.size(); ++c) {
        scratch.class_rows_[c] = class_hvs[c].words().data();
    }

    // Cached shape: one pointer per precomputed product, rows_b == nullptr.
    // Uncached shape: feature/value pointer pairs, the kernel XORs them on
    // load — same fusion the counter path gets from add_xor.
    const bits::Word* const* rows_b = nullptr;
    if (cache != nullptr) {
        HDLOCK_EXPECTS(cache->matches(n_features(), n_levels(), d),
                       "Encoder::fused_hamming_into: product cache built for a different "
                       "encoder shape");
        for (std::size_t i = 0; i < n; ++i) {
            scratch.rows_a_[i] = cache->product(i, static_cast<std::size_t>(levels[i])).data();
        }
    } else {
        scratch.rows_b_.resize(n);
        const std::span<const BinaryHV> feature_hvs = feature_hv_array();
        const std::span<const BinaryHV> value_hvs = value_hv_array();
        for (std::size_t i = 0; i < n; ++i) {
            scratch.rows_a_[i] = feature_hvs[i].words().data();
            scratch.rows_b_[i] = value_hvs[static_cast<std::size_t>(levels[i])].words().data();
        }
        rows_b = scratch.rows_b_.data();
    }

    util::Xoshiro256ss tie_rng(util::hash_mix(tie_seed_, util::fnv1a_of(levels)));
    util::kernels::active().fused_hamming_scores(
        scratch.rows_a_.data(), rows_b, n, scratch.class_rows_.data(), class_hvs.size(),
        bits::word_count(d), &resolve_fused_ties, &tie_rng, distances.data());
}

void Encoder::encode_batch(const util::Matrix<int>& levels_matrix, EncoderScratch& scratch,
                           std::vector<IntHV>& out, const BoundProductCache* cache) const {
    HDLOCK_EXPECTS(levels_matrix.rows() == 0 || levels_matrix.cols() == n_features(),
                   "Encoder::encode_batch: level matrix has wrong feature count");
    out.resize(levels_matrix.rows());
    for (std::size_t r = 0; r < levels_matrix.rows(); ++r) {
        encode_into(levels_matrix.row(r), scratch, out[r], cache);
    }
}

void Encoder::encode_binary_batch(const util::Matrix<int>& levels_matrix, EncoderScratch& scratch,
                                  std::vector<BinaryHV>& out,
                                  const BoundProductCache* cache) const {
    HDLOCK_EXPECTS(levels_matrix.rows() == 0 || levels_matrix.cols() == n_features(),
                   "Encoder::encode_binary_batch: level matrix has wrong feature count");
    out.resize(levels_matrix.rows());
    for (std::size_t r = 0; r < levels_matrix.rows(); ++r) {
        encode_binary_into(levels_matrix.row(r), scratch, out[r], cache);
    }
}

std::shared_ptr<const BoundProductCache> Encoder::make_product_cache(std::size_t max_bytes) const {
    if (BoundProductCache::bytes_required(n_features(), n_levels(), dim()) > max_bytes) {
        return nullptr;
    }
    return std::make_shared<const BoundProductCache>(feature_hv_array(), value_hv_array());
}

// ---------------------------------------------------------------------------
// RecordEncoder
// ---------------------------------------------------------------------------

RecordEncoder::RecordEncoder(std::shared_ptr<const ItemMemory> memory, std::uint64_t tie_seed)
    : Encoder(tie_seed), memory_(std::move(memory)) {
    HDLOCK_EXPECTS(memory_ != nullptr, "RecordEncoder: null item memory");
    HDLOCK_EXPECTS(memory_->n_features() > 0, "RecordEncoder: item memory has no feature HVs");
}

IntHV encode_with_hvs(std::span<const BinaryHV> feature_hvs, std::span<const BinaryHV> value_hvs,
                      std::span<const int> levels) {
    HDLOCK_EXPECTS(!feature_hvs.empty(), "encode_with_hvs: no feature hypervectors");
    HDLOCK_EXPECTS(levels.size() == feature_hvs.size(), "encode_with_hvs: shape mismatch");
    const std::size_t dim = feature_hvs.front().dim();

    util::ColumnCounter counter(dim, util::ColumnCounter::planes_for_rows(levels.size()));
    for (std::size_t i = 0; i < levels.size(); ++i) {
        counter.add_xor(feature_hvs[i].words(),
                        value_hvs[static_cast<std::size_t>(levels[i])].words());
    }

    IntHV sums(dim);
    counter.bipolar_sums_into(sums.values());
    return sums;
}

IntHV RecordEncoder::encode_reference(std::span<const int> levels) const {
    check_levels(levels);
    IntHV sums(dim());
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const BinaryHV product =
            memory_->feature_hv(i) * memory_->value_hv(static_cast<std::size_t>(levels[i]));
        sums.add(product);
    }
    return sums;
}

}  // namespace hdlock::hdc
