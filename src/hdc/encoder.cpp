#include "hdc/encoder.hpp"

namespace hdlock::hdc {

namespace bits = util::bits;

void Encoder::check_levels(std::span<const int> levels) const {
    HDLOCK_EXPECTS(levels.size() == n_features(), "Encoder: level vector has wrong length");
    const auto top = static_cast<int>(n_levels());
    for (const int level : levels) {
        HDLOCK_EXPECTS(level >= 0 && level < top, "Encoder: level out of range");
    }
}

BinaryHV Encoder::encode_binary(std::span<const int> levels) const {
    const IntHV sums = encode(levels);
    util::Xoshiro256ss tie_rng(util::hash_mix(tie_seed_, util::fnv1a_of(levels)));
    return sums.sign(tie_rng);
}

RecordEncoder::RecordEncoder(std::shared_ptr<const ItemMemory> memory, std::uint64_t tie_seed)
    : Encoder(tie_seed), memory_(std::move(memory)) {
    HDLOCK_EXPECTS(memory_ != nullptr, "RecordEncoder: null item memory");
    HDLOCK_EXPECTS(memory_->n_features() > 0, "RecordEncoder: item memory has no feature HVs");
}

IntHV encode_with_hvs(std::span<const BinaryHV> feature_hvs, std::span<const BinaryHV> value_hvs,
                      std::span<const int> levels) {
    HDLOCK_EXPECTS(!feature_hvs.empty(), "encode_with_hvs: no feature hypervectors");
    HDLOCK_EXPECTS(levels.size() == feature_hvs.size(), "encode_with_hvs: shape mismatch");
    const std::size_t dim = feature_hvs.front().dim();

    util::ColumnCounter counter(dim);
    std::vector<bits::Word> product(bits::word_count(dim));
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const BinaryHV& value_hv = value_hvs[static_cast<std::size_t>(levels[i])];
        bits::xor_into(product, feature_hvs[i].words(), value_hv.words());
        counter.add(product);
    }

    IntHV sums(dim);
    counter.bipolar_sums_into(sums.values());
    return sums;
}

IntHV RecordEncoder::encode(std::span<const int> levels) const {
    check_levels(levels);
    return encode_with_hvs(memory_->feature_hvs(), memory_->value_hvs(), levels);
}

IntHV RecordEncoder::encode_reference(std::span<const int> levels) const {
    check_levels(levels);
    IntHV sums(dim());
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const BinaryHV product =
            memory_->feature_hv(i) * memory_->value_hv(static_cast<std::size_t>(levels[i]));
        sums.add(product);
    }
    return sums;
}

}  // namespace hdlock::hdc
