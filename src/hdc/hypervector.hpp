#pragma once

/// \file hypervector.hpp
/// Hypervector value types and the MAP (Multiply-Add-Permute) algebra.
///
/// Two representations are used, following the paper's Sec. 2:
///  - BinaryHV: a bipolar vector in {+1,-1}^D, stored packed (one bit per
///    element; bit 1 encodes -1 so element-wise multiplication is XOR).
///  - IntHV:    an integer vector in Z^D used for bundling sums (Eq. 2) and
///    non-binary class hypervectors (Eq. 4).
///
/// Similarity metrics follow the paper: normalized Hamming distance between
/// binary hypervectors (Eq. 1), cosine similarity between non-binary ones.

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace hdlock::hdc {

using Word = util::bits::Word;

/// Packed bipolar hypervector in {+1,-1}^D.
class BinaryHV {
public:
    /// Empty (dimension zero) hypervector.
    BinaryHV() = default;

    /// All-(+1) hypervector of the given dimension.
    explicit BinaryHV(std::size_t dim);

    /// I.i.d. uniform random bipolar hypervector. Two independent draws are
    /// quasi-orthogonal: their normalized Hamming distance concentrates
    /// around 0.5 (Eq. 1a).
    static BinaryHV random(std::size_t dim, util::Xoshiro256ss& rng);

    std::size_t dim() const noexcept { return dim_; }
    bool empty() const noexcept { return dim_ == 0; }

    /// Element access in the bipolar domain: returns +1 or -1.
    int get(std::size_t i) const;
    void set(std::size_t i, int value);

    /// Re-shapes to `dim` all-(+1) elements (words zeroed), reusing storage
    /// when possible; the scratch-buffer primitive behind sign_into().
    void reset(std::size_t dim);

    std::span<const Word> words() const noexcept { return words_; }
    std::span<Word> words() noexcept { return words_; }

    /// Element-wise bipolar multiplication (the MAP "bind" operator).
    BinaryHV operator*(const BinaryHV& other) const;
    BinaryHV& operator*=(const BinaryHV& other);

    /// The paper's permutation rho_k: rotated(k)[i] = (*this)[(i + k) mod D].
    /// k may exceed D; rho_D is the identity.
    BinaryHV rotated(std::size_t k) const;

    /// Unnormalized Hamming distance (number of differing elements).
    std::size_t hamming(const BinaryHV& other) const;

    /// Hamming distance divided by the dimension, as in Eq. 1.
    double normalized_hamming(const BinaryHV& other) const;

    /// Inner product in the bipolar domain: D - 2 * hamming.
    std::int64_t dot(const BinaryHV& other) const;

    /// Cosine similarity; for bipolar vectors this is dot / D in [-1, 1].
    double cosine(const BinaryHV& other) const;

    bool operator==(const BinaryHV& other) const = default;

    void save(util::BinaryWriter& writer) const;
    static BinaryHV load(util::BinaryReader& reader);

private:
    std::size_t dim_ = 0;
    std::vector<Word> words_;
};

/// Integer hypervector in Z^D holding bundling sums.
class IntHV {
public:
    IntHV() = default;

    /// Zero vector of the given dimension.
    explicit IntHV(std::size_t dim) : values_(dim, 0) {}

    explicit IntHV(std::vector<std::int32_t> values) : values_(std::move(values)) {}

    /// Lifts a bipolar hypervector into Z^D.
    static IntHV from_binary(const BinaryHV& hv);

    std::size_t dim() const noexcept { return values_.size(); }
    bool empty() const noexcept { return values_.empty(); }

    std::int32_t operator[](std::size_t i) const { return values_[i]; }
    std::int32_t& operator[](std::size_t i) { return values_[i]; }
    std::span<const std::int32_t> values() const noexcept { return values_; }
    std::span<std::int32_t> values() noexcept { return values_; }

    /// Element-wise accumulation of a bipolar hypervector (bundling).
    void add(const BinaryHV& hv);
    void sub(const BinaryHV& hv);
    void add(const IntHV& other);
    void sub(const IntHV& other);

    IntHV operator+(const IntHV& other) const;
    IntHV operator-(const IntHV& other) const;

    /// Re-shapes to `dim` without zeroing (the values are about to be
    /// overwritten wholesale, e.g. by ColumnCounter::bipolar_sums_into).
    void resize(std::size_t dim) { values_.resize(dim); }

    /// Binarization sign(H) of Eq. 3. Zeros are broken to +1/-1 by the
    /// supplied generator, matching the paper's randomized sign(0).
    BinaryHV sign(util::Xoshiro256ss& tie_rng) const;

    /// Allocation-free sign(): writes into `out` (re-shaped to dim()).
    void sign_into(util::Xoshiro256ss& tie_rng, BinaryHV& out) const;

    /// Number of exactly-zero elements (the sign() ties).
    std::size_t zero_count() const noexcept;

    std::int64_t dot(const IntHV& other) const;
    std::int64_t dot(const BinaryHV& other) const;
    double norm() const;

    /// Cosine similarity used by non-binary inference; 0 when either vector
    /// has zero norm.
    double cosine(const IntHV& other) const;
    double cosine(const BinaryHV& other) const;

    bool operator==(const IntHV& other) const = default;

    void save(util::BinaryWriter& writer) const;
    static IntHV load(util::BinaryReader& reader);

private:
    std::vector<std::int32_t> values_;
};

}  // namespace hdlock::hdc
