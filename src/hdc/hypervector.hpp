#pragma once

/// \file hypervector.hpp
/// Hypervector value types and the MAP (Multiply-Add-Permute) algebra.
///
/// Two representations are used, following the paper's Sec. 2:
///  - BinaryHV: a bipolar vector in {+1,-1}^D, stored packed (one bit per
///    element; bit 1 encodes -1 so element-wise multiplication is XOR).
///  - IntHV:    an integer vector in Z^D used for bundling sums (Eq. 2) and
///    non-binary class hypervectors (Eq. 4).
///
/// Similarity metrics follow the paper: normalized Hamming distance between
/// binary hypervectors (Eq. 1), cosine similarity between non-binary ones.

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace hdlock::hdc {

using Word = util::bits::Word;

/// Packed bipolar hypervector in {+1,-1}^D.
///
/// Storage comes in two modes.  The default owns its words in a vector; the
/// *view* mode (BinaryHV::view) aliases externally-owned words — e.g. a
/// 64-byte-aligned section of a memory-mapped `.hdlk` bundle — and copies
/// nothing.  Views behave identically through every const operation; any
/// mutating call first detaches into owned storage (copy-on-write), so
/// owner-side edit paths keep working on loaded views.  The aliased storage
/// must outlive the view and every copy made of it (api::DeploymentBundle
/// keeps the mapping alive for exactly this reason).
class BinaryHV {
public:
    /// Empty (dimension zero) hypervector.
    BinaryHV() = default;

    /// All-(+1) hypervector of the given dimension.
    explicit BinaryHV(std::size_t dim);

    /// Non-owning view over `word_count(dim)` packed words (tail bits past
    /// `dim` must be zero, as everywhere else).
    static BinaryHV view(std::size_t dim, const Word* words);

    /// Adopts `word_count(dim)` packed words as owned storage; throws
    /// FormatError on a count mismatch or dirty tail bits (the raw-block
    /// deserialization primitive).
    static BinaryHV from_words(std::size_t dim, std::vector<Word> words);

    /// True when this hypervector aliases external storage.
    bool is_view() const noexcept { return view_data_ != nullptr; }

    /// Copies aliased words into owned storage; no-op when already owning.
    void detach();

    /// I.i.d. uniform random bipolar hypervector. Two independent draws are
    /// quasi-orthogonal: their normalized Hamming distance concentrates
    /// around 0.5 (Eq. 1a).
    static BinaryHV random(std::size_t dim, util::Xoshiro256ss& rng);

    std::size_t dim() const noexcept { return dim_; }
    bool empty() const noexcept { return dim_ == 0; }

    /// Element access in the bipolar domain: returns +1 or -1.
    int get(std::size_t i) const;
    void set(std::size_t i, int value);

    /// Re-shapes to `dim` all-(+1) elements (words zeroed), reusing storage
    /// when possible; the scratch-buffer primitive behind sign_into().
    void reset(std::size_t dim);

    std::span<const Word> words() const noexcept {
        return view_data_ != nullptr ? std::span<const Word>(view_data_, view_words_)
                                     : std::span<const Word>(words_);
    }
    /// Mutable word access detaches views first (copy-on-write).
    std::span<Word> words() {
        detach();
        return words_;
    }

    /// Element-wise bipolar multiplication (the MAP "bind" operator).
    BinaryHV operator*(const BinaryHV& other) const;
    BinaryHV& operator*=(const BinaryHV& other);

    /// The paper's permutation rho_k: rotated(k)[i] = (*this)[(i + k) mod D].
    /// k may exceed D; rho_D is the identity.
    BinaryHV rotated(std::size_t k) const;

    /// Unnormalized Hamming distance (number of differing elements).
    std::size_t hamming(const BinaryHV& other) const;

    /// Hamming distance divided by the dimension, as in Eq. 1.
    double normalized_hamming(const BinaryHV& other) const;

    /// Inner product in the bipolar domain: D - 2 * hamming.
    std::int64_t dot(const BinaryHV& other) const;

    /// Cosine similarity; for bipolar vectors this is dot / D in [-1, 1].
    double cosine(const BinaryHV& other) const;

    /// Content equality: a view compares equal to an owning copy.
    bool operator==(const BinaryHV& other) const;

    void save(util::BinaryWriter& writer) const;
    static BinaryHV load(util::BinaryReader& reader);

private:
    std::size_t dim_ = 0;
    std::vector<Word> words_;
    const Word* view_data_ = nullptr;
    std::size_t view_words_ = 0;
};

/// Integer hypervector in Z^D holding bundling sums.  Supports the same
/// non-owning view mode as BinaryHV (see above): mapped model class sums
/// alias the bundle bytes, and any mutation detaches into owned storage.
class IntHV {
public:
    IntHV() = default;

    /// Zero vector of the given dimension.
    explicit IntHV(std::size_t dim) : values_(dim, 0) {}

    explicit IntHV(std::vector<std::int32_t> values) : values_(std::move(values)) {}

    /// Non-owning view over `dim` externally-owned values.
    static IntHV view(std::size_t dim, const std::int32_t* values);

    /// Lifts a bipolar hypervector into Z^D.
    static IntHV from_binary(const BinaryHV& hv);

    bool is_view() const noexcept { return view_data_ != nullptr; }

    /// Copies aliased values into owned storage; no-op when already owning.
    void detach();

    std::size_t dim() const noexcept {
        return view_data_ != nullptr ? view_size_ : values_.size();
    }
    bool empty() const noexcept { return dim() == 0; }

    std::int32_t operator[](std::size_t i) const { return values()[i]; }
    std::int32_t& operator[](std::size_t i) {
        detach();
        return values_[i];
    }
    std::span<const std::int32_t> values() const noexcept {
        return view_data_ != nullptr ? std::span<const std::int32_t>(view_data_, view_size_)
                                     : std::span<const std::int32_t>(values_);
    }
    /// Mutable value access detaches views first (copy-on-write).
    std::span<std::int32_t> values() {
        detach();
        return values_;
    }

    /// Element-wise accumulation of a bipolar hypervector (bundling).
    void add(const BinaryHV& hv);
    void sub(const BinaryHV& hv);
    void add(const IntHV& other);
    void sub(const IntHV& other);

    IntHV operator+(const IntHV& other) const;
    IntHV operator-(const IntHV& other) const;

    /// Re-shapes to `dim` without zeroing (the values are about to be
    /// overwritten wholesale, e.g. by ColumnCounter::bipolar_sums_into).
    /// A view drops its alias without copying — the contents are doomed.
    void resize(std::size_t dim) {
        view_data_ = nullptr;
        view_size_ = 0;
        values_.resize(dim);
    }

    /// Binarization sign(H) of Eq. 3. Zeros are broken to +1/-1 by the
    /// supplied generator, matching the paper's randomized sign(0).
    BinaryHV sign(util::Xoshiro256ss& tie_rng) const;

    /// Allocation-free sign(): writes into `out` (re-shaped to dim()).
    void sign_into(util::Xoshiro256ss& tie_rng, BinaryHV& out) const;

    /// Number of exactly-zero elements (the sign() ties).
    std::size_t zero_count() const noexcept;

    std::int64_t dot(const IntHV& other) const;
    std::int64_t dot(const BinaryHV& other) const;
    double norm() const;

    /// Cosine similarity used by non-binary inference; 0 when either vector
    /// has zero norm.
    double cosine(const IntHV& other) const;
    double cosine(const BinaryHV& other) const;

    /// Content equality: a view compares equal to an owning copy.
    bool operator==(const IntHV& other) const;

    void save(util::BinaryWriter& writer) const;
    static IntHV load(util::BinaryReader& reader);

private:
    std::vector<std::int32_t> values_;
    const std::int32_t* view_data_ = nullptr;
    std::size_t view_size_ = 0;
};

// ---------------------------------------------------------------------------
// Aligned bulk-block serialization (the `.hdlk` v2 primitives)
// ---------------------------------------------------------------------------
//
// A block is 64-byte alignment padding followed by the hypervectors' raw
// payloads back to back, with no per-vector tags or length prefixes — the
// shape (dim, count) lives in the surrounding section header.  On a
// span-backed (mapped) reader whose buffer is suitably aligned, loading a
// block costs no copy at all: each hypervector comes back as a view aliasing
// the mapping.  Stream readers and unaligned buffers degrade to owned
// copies; the bytes and the results are identical either way.

/// Writes `hvs` (uniform dimension `dim`) as one aligned word block.
void save_hv_block(util::BinaryWriter& writer, std::span<const BinaryHV> hvs, std::size_t dim);

/// Reads `count` packed hypervectors of dimension `dim` from an aligned
/// word block.
std::vector<BinaryHV> load_hv_block(util::BinaryReader& reader, std::size_t dim,
                                    std::size_t count);

/// Writes `hvs` (uniform dimension `dim`) as one aligned int32 block.
void save_int_hv_block(util::BinaryWriter& writer, std::span<const IntHV> hvs, std::size_t dim);

/// Reads `count` integer hypervectors of dimension `dim` from an aligned
/// int32 block.
std::vector<IntHV> load_int_hv_block(util::BinaryReader& reader, std::size_t dim,
                                     std::size_t count);

}  // namespace hdlock::hdc
