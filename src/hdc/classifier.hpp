#pragma once

/// \file classifier.hpp
/// End-to-end HDC classification pipeline (Fig. 1): discretize -> encode ->
/// train/infer.  The encoder is injected, so the same pipeline runs with the
/// standard RecordEncoder or with HDLock's LockedEncoder — this is how the
/// paper's Fig. 8 (accuracy vs. number of key layers) is produced.

#include <memory>

#include "data/dataset.hpp"
#include "hdc/discretize.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"

namespace hdlock::hdc {

struct PipelineConfig {
    DiscretizerMode discretizer_mode = DiscretizerMode::global;
    TrainConfig train;
};

class HdcClassifier {
public:
    HdcClassifier() = default;

    /// Fits the discretizer on `train_set`, encodes it with `encoder`, and
    /// trains the HDC model. The dataset's feature count must match the
    /// encoder's.
    static HdcClassifier fit(const data::Dataset& train_set,
                             std::shared_ptr<const Encoder> encoder,
                             const PipelineConfig& config);

    /// Discretizes and encodes a whole dataset once; reusable across
    /// evaluations (and across retraining epochs inside fit()).  Binarized
    /// encodings are included exactly when the trained model is binary.
    EncodedBatch encode_dataset(const data::Dataset& dataset) const;

    /// As above with explicit control over whether binarized encodings are
    /// produced (used before a model exists).
    EncodedBatch encode_dataset(const data::Dataset& dataset, bool with_binary) const;

    int predict_row(std::span<const float> row) const;
    std::vector<int> predict(const data::Dataset& dataset) const;
    double evaluate(const data::Dataset& dataset) const;

    /// Accuracy of the trained model on its training set, scored against
    /// the encodings produced during fit() — no second encode pass.  Equals
    /// evaluate(train_set) exactly (encoding is deterministic).
    double train_accuracy() const noexcept { return train_accuracy_; }

    const HdcModel& model() const noexcept { return model_; }
    const Encoder& encoder() const noexcept { return *encoder_; }
    const MinMaxDiscretizer& discretizer() const noexcept { return discretizer_; }

private:
    std::shared_ptr<const Encoder> encoder_;
    MinMaxDiscretizer discretizer_;
    HdcModel model_;
    double train_accuracy_ = 0.0;
};

}  // namespace hdlock::hdc
