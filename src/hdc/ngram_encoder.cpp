#include "hdc/ngram_encoder.hpp"

#include "util/bitslice.hpp"
#include "util/error.hpp"

namespace hdlock::hdc {

NGramEncoder::NGramEncoder(std::vector<BinaryHV> symbols, std::size_t gram_size,
                           std::uint64_t tie_seed)
    : symbols_(std::move(symbols)), gram_size_(gram_size), tie_seed_(tie_seed) {
    HDLOCK_EXPECTS(!symbols_.empty(), "NGramEncoder: empty symbol memory");
    HDLOCK_EXPECTS(gram_size_ >= 1, "NGramEncoder: gram size must be at least 1");
    dim_ = symbols_.front().dim();
    HDLOCK_EXPECTS(dim_ > 0, "NGramEncoder: zero-dimensional symbols");
    for (const auto& symbol : symbols_) {
        HDLOCK_EXPECTS(symbol.dim() == dim_, "NGramEncoder: inconsistent symbol dimensions");
    }
}

const BinaryHV& NGramEncoder::symbol_hv(std::size_t symbol) const {
    HDLOCK_EXPECTS(symbol < symbols_.size(), "NGramEncoder: symbol out of range");
    return symbols_[symbol];
}

BinaryHV NGramEncoder::gram_hv(std::span<const int> gram) const {
    HDLOCK_EXPECTS(gram.size() == gram_size_, "NGramEncoder: gram has wrong length");
    BinaryHV bound;
    for (std::size_t g = 0; g < gram.size(); ++g) {
        const int symbol = gram[g];
        HDLOCK_EXPECTS(symbol >= 0 && static_cast<std::size_t>(symbol) < symbols_.size(),
                       "NGramEncoder: symbol out of range");
        // Position g (0 = oldest) is rotated by gram_size - 1 - g, so the
        // most recent symbol enters unrotated.
        const BinaryHV rotated =
            symbols_[static_cast<std::size_t>(symbol)].rotated(gram_size_ - 1 - g);
        bound = g == 0 ? rotated : bound * rotated;
    }
    return bound;
}

IntHV NGramEncoder::encode(std::span<const int> sequence) const {
    HDLOCK_EXPECTS(sequence.size() >= gram_size_,
                   "NGramEncoder: sequence shorter than one gram");
    util::ColumnCounter counter(dim_);
    for (std::size_t t = 0; t + gram_size_ <= sequence.size(); ++t) {
        const BinaryHV gram = gram_hv(sequence.subspan(t, gram_size_));
        counter.add(gram.words());
    }
    IntHV sums(dim_);
    counter.bipolar_sums_into(sums.values());
    return sums;
}

BinaryHV NGramEncoder::encode_binary(std::span<const int> sequence) const {
    const IntHV sums = encode(sequence);
    // Mix the tie seed with a cheap sequence hash so ties break randomly but
    // reproducibly per input, mirroring hdc::Encoder::encode_binary.
    std::uint64_t input_hash = 0x9E3779B97F4A7C15ull;
    for (const int symbol : sequence) {
        input_hash = util::hash_mix(input_hash, static_cast<std::uint64_t>(symbol) + 1);
    }
    util::Xoshiro256ss tie_rng(util::hash_mix(tie_seed_, input_hash));
    return sums.sign(tie_rng);
}

std::vector<BinaryHV> generate_symbol_hvs(std::size_t dim, std::size_t alphabet,
                                          std::uint64_t seed) {
    HDLOCK_EXPECTS(dim > 0, "generate_symbol_hvs: dim must be positive");
    HDLOCK_EXPECTS(alphabet > 0, "generate_symbol_hvs: alphabet must be positive");
    util::Xoshiro256ss rng(seed);
    std::vector<BinaryHV> symbols;
    symbols.reserve(alphabet);
    for (std::size_t a = 0; a < alphabet; ++a) symbols.push_back(BinaryHV::random(dim, rng));
    return symbols;
}

}  // namespace hdlock::hdc
