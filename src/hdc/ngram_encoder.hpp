#pragma once

/// \file ngram_encoder.hpp
/// N-gram (sequence) encoding — the other classic HDC encoding family.
///
/// The paper's Fig. 8 caption says "record-based encoding" precisely because
/// HDC literature splits encoders into record-based (feature/value binding,
/// Eq. 2) and n-gram-based (position-permuted symbol binding, used for text,
/// voice and DNA workloads such as GenieHD [9]).  The vulnerability of
/// Sec. 3 is a property of the *encoding module* in general, so this module
/// provides the n-gram substrate and core/locked_encoder.hpp's
/// materialize_locked_symbols() locks its symbol memory the HDLock way —
/// demonstrating that the defense generalizes beyond record encoders.
///
/// A sequence s_1 .. s_T over an alphabet of A symbols is encoded as the
/// bundling sum of its n-grams,
///
///     H = sum_{t=1}^{T-n+1}  prod_{g=0}^{n-1} rho^{n-1-g}( Sym_{s_{t+g}} )
///
/// where rho is the rotate-by-one permutation: the permutation depth encodes
/// the position *within* the gram, so "ab" and "ba" bind to quasi-orthogonal
/// hypervectors while sequences sharing most grams stay close.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"

namespace hdlock::hdc {

/// Sequence encoder over a fixed symbol memory.
class NGramEncoder {
public:
    /// \param symbols     one hypervector per alphabet symbol (all the same
    ///                    dimension, at least one)
    /// \param gram_size   n; 1 reduces to an order-free bag of symbols
    /// \param tie_seed    sign(0) tie-break seed (as hdc::Encoder)
    NGramEncoder(std::vector<BinaryHV> symbols, std::size_t gram_size, std::uint64_t tie_seed);

    std::size_t dim() const noexcept { return dim_; }
    std::size_t alphabet_size() const noexcept { return symbols_.size(); }
    std::size_t gram_size() const noexcept { return gram_size_; }
    std::uint64_t tie_seed() const noexcept { return tie_seed_; }

    const BinaryHV& symbol_hv(std::size_t symbol) const;

    /// Non-binary sequence encoding (the bundling sum above).  The sequence
    /// must contain at least gram_size() symbols, each in [0, alphabet).
    IntHV encode(std::span<const int> sequence) const;

    /// Binarized encoding with deterministic-per-input tie-breaking.
    BinaryHV encode_binary(std::span<const int> sequence) const;

    /// The bound hypervector of a single n-gram (exposed for tests and for
    /// attack experiments that probe one gram at a time).
    BinaryHV gram_hv(std::span<const int> gram) const;

private:
    std::vector<BinaryHV> symbols_;
    std::size_t dim_ = 0;
    std::size_t gram_size_ = 0;
    std::uint64_t tie_seed_ = 0;
};

/// Generates A i.i.d. random (quasi-orthogonal) symbol hypervectors — the
/// unprotected symbol memory.
std::vector<BinaryHV> generate_symbol_hvs(std::size_t dim, std::size_t alphabet,
                                          std::uint64_t seed);

}  // namespace hdlock::hdc
