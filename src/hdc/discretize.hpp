#pragma once

/// \file discretize.hpp
/// Min-max discretization of raw feature values into M levels.
///
/// The paper (Sec. 2, Encoding) discretizes feature values "based on the
/// minimum and maximum values across the entire dataset".  That global mode
/// is the default; a per-feature mode is also provided for datasets whose
/// feature scales differ wildly (e.g. mixed sensor channels).

#include <cstdint>
#include <span>
#include <vector>

#include "util/matrix.hpp"
#include "util/serialize.hpp"

namespace hdlock::hdc {

enum class DiscretizerMode : std::uint8_t {
    global = 0,      ///< one [min, max] over all features (paper default)
    per_feature = 1  ///< independent [min, max] per feature column
};

class MinMaxDiscretizer {
public:
    MinMaxDiscretizer() = default;

    /// Learns the value range(s) from a training matrix.
    static MinMaxDiscretizer fit(const util::Matrix<float>& X, std::size_t n_levels,
                                 DiscretizerMode mode = DiscretizerMode::global);

    /// Builds a discretizer with an explicit global range.
    static MinMaxDiscretizer with_range(float min_value, float max_value, std::size_t n_levels);

    std::size_t n_levels() const noexcept { return n_levels_; }
    DiscretizerMode mode() const noexcept { return mode_; }

    /// Number of [min, max] ranges tracked: the feature count in
    /// per_feature mode, 1 in global mode (0 when not fitted).
    std::size_t n_ranges() const noexcept { return mins_.size(); }

    /// Maps one raw value of the given feature to a level in [0, n_levels).
    /// Out-of-range values clamp to the boundary levels; a degenerate range
    /// (min == max) maps everything to level 0.
    int level_of(float value, std::size_t feature = 0) const;

    /// Discretizes a full row. `levels` must have row.size() entries.
    void transform_row(std::span<const float> row, std::span<int> levels) const;
    std::vector<int> transform_row(std::span<const float> row) const;

    /// Discretizes a whole matrix into a row-major level matrix.
    util::Matrix<int> transform(const util::Matrix<float>& X) const;

    void save(util::BinaryWriter& writer) const;
    static MinMaxDiscretizer load(util::BinaryReader& reader);

    bool operator==(const MinMaxDiscretizer& other) const = default;

private:
    std::size_t n_levels_ = 2;
    DiscretizerMode mode_ = DiscretizerMode::global;
    std::vector<float> mins_;  // size 1 (global) or n_features (per_feature)
    std::vector<float> maxs_;
};

}  // namespace hdlock::hdc
