#include "hdc/hypervector.hpp"

#include <cmath>

namespace hdlock::hdc {

namespace bits = util::bits;

BinaryHV::BinaryHV(std::size_t dim) : dim_(dim), words_(bits::word_count(dim), 0) {}

BinaryHV BinaryHV::random(std::size_t dim, util::Xoshiro256ss& rng) {
    HDLOCK_EXPECTS(dim > 0, "BinaryHV::random: dimension must be positive");
    BinaryHV hv(dim);
    bits::fill_random(hv.words_, dim, rng);
    return hv;
}

void BinaryHV::reset(std::size_t dim) {
    dim_ = dim;
    words_.assign(bits::word_count(dim), 0);
}

int BinaryHV::get(std::size_t i) const {
    HDLOCK_EXPECTS(i < dim_, "BinaryHV::get: index out of range");
    return bits::get_bit(words_, i) ? -1 : +1;
}

void BinaryHV::set(std::size_t i, int value) {
    HDLOCK_EXPECTS(i < dim_, "BinaryHV::set: index out of range");
    HDLOCK_EXPECTS(value == 1 || value == -1, "BinaryHV::set: value must be +1 or -1");
    bits::set_bit(words_, i, value == -1);
}

BinaryHV BinaryHV::operator*(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::operator*: dimension mismatch");
    BinaryHV out(dim_);
    bits::xor_into(out.words_, words_, other.words_);
    return out;
}

BinaryHV& BinaryHV::operator*=(const BinaryHV& other) {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::operator*=: dimension mismatch");
    bits::xor_into(words_, words_, other.words_);
    return *this;
}

BinaryHV BinaryHV::rotated(std::size_t k) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::rotated: empty hypervector");
    BinaryHV out(dim_);
    bits::rotate(out.words_, words_, dim_, k);
    return out;
}

std::size_t BinaryHV::hamming(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::hamming: dimension mismatch");
    return bits::hamming(words_, other.words_);
}

double BinaryHV::normalized_hamming(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::normalized_hamming: empty hypervector");
    return static_cast<double>(hamming(other)) / static_cast<double>(dim_);
}

std::int64_t BinaryHV::dot(const BinaryHV& other) const {
    return static_cast<std::int64_t>(dim_) - 2 * static_cast<std::int64_t>(hamming(other));
}

double BinaryHV::cosine(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::cosine: empty hypervector");
    return static_cast<double>(dot(other)) / static_cast<double>(dim_);
}

void BinaryHV::save(util::BinaryWriter& writer) const {
    writer.write_tag("BHV1");
    writer.write_u64(dim_);
    writer.write_span(std::span<const Word>(words_));
}

BinaryHV BinaryHV::load(util::BinaryReader& reader) {
    reader.expect_tag("BHV1");
    const std::uint64_t dim = reader.read_u64();
    auto words = reader.read_vector<Word>();
    if (words.size() != bits::word_count(static_cast<std::size_t>(dim))) {
        throw FormatError("BinaryHV::load: word count does not match dimension");
    }
    if (!words.empty() && (words.back() & ~bits::tail_mask(static_cast<std::size_t>(dim))) != 0) {
        throw FormatError("BinaryHV::load: dirty tail bits");
    }
    BinaryHV hv;
    hv.dim_ = static_cast<std::size_t>(dim);
    hv.words_ = std::move(words);
    return hv;
}

IntHV IntHV::from_binary(const BinaryHV& hv) {
    IntHV out(hv.dim());
    out.add(hv);
    return out;
}

void IntHV::add(const BinaryHV& hv) {
    HDLOCK_EXPECTS(dim() == hv.dim(), "IntHV::add: dimension mismatch");
    const auto words = hv.words();
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            values_[base + b] += ((word >> b) & 1u) != 0 ? -1 : +1;
        }
    }
}

void IntHV::sub(const BinaryHV& hv) {
    HDLOCK_EXPECTS(dim() == hv.dim(), "IntHV::sub: dimension mismatch");
    const auto words = hv.words();
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            values_[base + b] -= ((word >> b) & 1u) != 0 ? -1 : +1;
        }
    }
}

void IntHV::add(const IntHV& other) {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::add: dimension mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
}

void IntHV::sub(const IntHV& other) {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::sub: dimension mismatch");
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other.values_[i];
}

IntHV IntHV::operator+(const IntHV& other) const {
    IntHV out = *this;
    out.add(other);
    return out;
}

IntHV IntHV::operator-(const IntHV& other) const {
    IntHV out = *this;
    out.sub(other);
    return out;
}

BinaryHV IntHV::sign(util::Xoshiro256ss& tie_rng) const {
    BinaryHV out;
    sign_into(tie_rng, out);
    return out;
}

void IntHV::sign_into(util::Xoshiro256ss& tie_rng, BinaryHV& out) const {
    HDLOCK_EXPECTS(!empty(), "IntHV::sign: empty hypervector");
    out.reset(dim());
    auto words = out.words();
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const std::int32_t v = values_[i];
        const bool negative = v < 0 || (v == 0 && tie_rng.next_sign() < 0);
        if (negative) bits::set_bit(words, i, true);
    }
}

std::size_t IntHV::zero_count() const noexcept {
    std::size_t zeros = 0;
    for (const auto v : values_) zeros += v == 0 ? 1u : 0u;
    return zeros;
}

std::int64_t IntHV::dot(const IntHV& other) const {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::dot: dimension mismatch");
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < values_.size(); ++i) {
        sum += static_cast<std::int64_t>(values_[i]) * other.values_[i];
    }
    return sum;
}

std::int64_t IntHV::dot(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::dot: dimension mismatch");
    const auto words = other.words();
    std::int64_t sum = 0;
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            const std::int64_t v = values_[base + b];
            sum += ((word >> b) & 1u) != 0 ? -v : v;
        }
    }
    return sum;
}

double IntHV::norm() const {
    double sum = 0.0;
    for (const auto v : values_) sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

double IntHV::cosine(const IntHV& other) const {
    const double denom = norm() * other.norm();
    if (denom == 0.0) return 0.0;
    return static_cast<double>(dot(other)) / denom;
}

double IntHV::cosine(const BinaryHV& other) const {
    HDLOCK_EXPECTS(other.dim() > 0, "IntHV::cosine: empty hypervector");
    const double denom = norm() * std::sqrt(static_cast<double>(other.dim()));
    if (denom == 0.0) return 0.0;
    return static_cast<double>(dot(other)) / denom;
}

void IntHV::save(util::BinaryWriter& writer) const {
    writer.write_tag("IHV1");
    writer.write_span(std::span<const std::int32_t>(values_));
}

IntHV IntHV::load(util::BinaryReader& reader) {
    reader.expect_tag("IHV1");
    return IntHV(reader.read_vector<std::int32_t>());
}

}  // namespace hdlock::hdc
