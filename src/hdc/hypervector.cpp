#include "hdc/hypervector.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace hdlock::hdc {

namespace bits = util::bits;

BinaryHV::BinaryHV(std::size_t dim) : dim_(dim), words_(bits::word_count(dim), 0) {}

BinaryHV BinaryHV::view(std::size_t dim, const Word* words) {
    HDLOCK_EXPECTS(dim == 0 || words != nullptr, "BinaryHV::view: null word storage");
    BinaryHV hv;
    hv.dim_ = dim;
    hv.view_data_ = words;
    hv.view_words_ = bits::word_count(dim);
    return hv;
}

void BinaryHV::detach() {
    if (view_data_ == nullptr) return;
    words_.assign(view_data_, view_data_ + view_words_);
    view_data_ = nullptr;
    view_words_ = 0;
}

BinaryHV BinaryHV::random(std::size_t dim, util::Xoshiro256ss& rng) {
    HDLOCK_EXPECTS(dim > 0, "BinaryHV::random: dimension must be positive");
    BinaryHV hv(dim);
    bits::fill_random(hv.words_, dim, rng);
    return hv;
}

void BinaryHV::reset(std::size_t dim) {
    dim_ = dim;
    view_data_ = nullptr;
    view_words_ = 0;
    words_.assign(bits::word_count(dim), 0);
}

int BinaryHV::get(std::size_t i) const {
    HDLOCK_EXPECTS(i < dim_, "BinaryHV::get: index out of range");
    return bits::get_bit(words(), i) ? -1 : +1;
}

void BinaryHV::set(std::size_t i, int value) {
    HDLOCK_EXPECTS(i < dim_, "BinaryHV::set: index out of range");
    HDLOCK_EXPECTS(value == 1 || value == -1, "BinaryHV::set: value must be +1 or -1");
    detach();
    bits::set_bit(words_, i, value == -1);
}

BinaryHV BinaryHV::operator*(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::operator*: dimension mismatch");
    BinaryHV out(dim_);
    bits::xor_into(out.words_, words(), other.words());
    return out;
}

BinaryHV& BinaryHV::operator*=(const BinaryHV& other) {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::operator*=: dimension mismatch");
    detach();
    bits::xor_into(words_, words_, other.words());
    return *this;
}

BinaryHV BinaryHV::rotated(std::size_t k) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::rotated: empty hypervector");
    BinaryHV out(dim_);
    bits::rotate(out.words_, words(), dim_, k);
    return out;
}

std::size_t BinaryHV::hamming(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ == other.dim_, "BinaryHV::hamming: dimension mismatch");
    return bits::hamming(words(), other.words());
}

double BinaryHV::normalized_hamming(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::normalized_hamming: empty hypervector");
    return static_cast<double>(hamming(other)) / static_cast<double>(dim_);
}

std::int64_t BinaryHV::dot(const BinaryHV& other) const {
    return static_cast<std::int64_t>(dim_) - 2 * static_cast<std::int64_t>(hamming(other));
}

double BinaryHV::cosine(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim_ > 0, "BinaryHV::cosine: empty hypervector");
    return static_cast<double>(dot(other)) / static_cast<double>(dim_);
}

bool BinaryHV::operator==(const BinaryHV& other) const {
    if (dim_ != other.dim_) return false;
    const auto a = words();
    const auto b = other.words();
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

void BinaryHV::save(util::BinaryWriter& writer) const {
    writer.write_tag("BHV1");
    writer.write_u64(dim_);
    writer.write_span(words());
}

BinaryHV BinaryHV::load(util::BinaryReader& reader) {
    reader.expect_tag("BHV1");
    const std::uint64_t dim = reader.read_u64();
    auto words = reader.read_vector<Word>();
    if (words.size() != bits::word_count(static_cast<std::size_t>(dim))) {
        throw FormatError("BinaryHV::load: word count does not match dimension");
    }
    if (!words.empty() && (words.back() & ~bits::tail_mask(static_cast<std::size_t>(dim))) != 0) {
        throw FormatError("BinaryHV::load: dirty tail bits");
    }
    BinaryHV hv;
    hv.dim_ = static_cast<std::size_t>(dim);
    hv.words_ = std::move(words);
    return hv;
}

BinaryHV BinaryHV::from_words(std::size_t dim, std::vector<Word> words) {
    if (words.size() != bits::word_count(dim)) {
        throw FormatError("BinaryHV::from_words: word count does not match dimension");
    }
    if (!words.empty() && (words.back() & ~bits::tail_mask(dim)) != 0) {
        throw FormatError("BinaryHV::from_words: dirty tail bits");
    }
    BinaryHV hv;
    hv.dim_ = dim;
    hv.words_ = std::move(words);
    return hv;
}

IntHV IntHV::view(std::size_t dim, const std::int32_t* values) {
    HDLOCK_EXPECTS(dim == 0 || values != nullptr, "IntHV::view: null value storage");
    IntHV out;
    out.view_data_ = values;
    out.view_size_ = dim;
    return out;
}

void IntHV::detach() {
    if (view_data_ == nullptr) return;
    values_.assign(view_data_, view_data_ + view_size_);
    view_data_ = nullptr;
    view_size_ = 0;
}

IntHV IntHV::from_binary(const BinaryHV& hv) {
    IntHV out(hv.dim());
    out.add(hv);
    return out;
}

void IntHV::add(const BinaryHV& hv) {
    HDLOCK_EXPECTS(dim() == hv.dim(), "IntHV::add: dimension mismatch");
    detach();
    const auto words = hv.words();
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            values_[base + b] += ((word >> b) & 1u) != 0 ? -1 : +1;
        }
    }
}

void IntHV::sub(const BinaryHV& hv) {
    HDLOCK_EXPECTS(dim() == hv.dim(), "IntHV::sub: dimension mismatch");
    detach();
    const auto words = hv.words();
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            values_[base + b] -= ((word >> b) & 1u) != 0 ? -1 : +1;
        }
    }
}

void IntHV::add(const IntHV& other) {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::add: dimension mismatch");
    detach();
    const auto other_values = other.values();
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other_values[i];
}

void IntHV::sub(const IntHV& other) {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::sub: dimension mismatch");
    detach();
    const auto other_values = other.values();
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other_values[i];
}

IntHV IntHV::operator+(const IntHV& other) const {
    IntHV out = *this;
    out.add(other);
    return out;
}

IntHV IntHV::operator-(const IntHV& other) const {
    IntHV out = *this;
    out.sub(other);
    return out;
}

BinaryHV IntHV::sign(util::Xoshiro256ss& tie_rng) const {
    BinaryHV out;
    sign_into(tie_rng, out);
    return out;
}

void IntHV::sign_into(util::Xoshiro256ss& tie_rng, BinaryHV& out) const {
    HDLOCK_EXPECTS(!empty(), "IntHV::sign: empty hypervector");
    const auto vals = values();
    out.reset(dim());
    auto words = out.words();
    for (std::size_t i = 0; i < vals.size(); ++i) {
        const std::int32_t v = vals[i];
        const bool negative = v < 0 || (v == 0 && tie_rng.next_sign() < 0);
        if (negative) bits::set_bit(words, i, true);
    }
}

std::size_t IntHV::zero_count() const noexcept {
    std::size_t zeros = 0;
    for (const auto v : values()) zeros += v == 0 ? 1u : 0u;
    return zeros;
}

std::int64_t IntHV::dot(const IntHV& other) const {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::dot: dimension mismatch");
    const auto a = values();
    const auto b = other.values();
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        sum += static_cast<std::int64_t>(a[i]) * b[i];
    }
    return sum;
}

std::int64_t IntHV::dot(const BinaryHV& other) const {
    HDLOCK_EXPECTS(dim() == other.dim(), "IntHV::dot: dimension mismatch");
    const auto vals = values();
    const auto words = other.words();
    std::int64_t sum = 0;
    const std::size_t n = dim();
    for (std::size_t w = 0; w < words.size(); ++w) {
        const Word word = words[w];
        const std::size_t base = w * bits::kWordBits;
        const std::size_t limit = std::min(bits::kWordBits, n - base);
        for (std::size_t b = 0; b < limit; ++b) {
            const std::int64_t v = vals[base + b];
            sum += ((word >> b) & 1u) != 0 ? -v : v;
        }
    }
    return sum;
}

double IntHV::norm() const {
    double sum = 0.0;
    for (const auto v : values()) sum += static_cast<double>(v) * v;
    return std::sqrt(sum);
}

double IntHV::cosine(const IntHV& other) const {
    const double denom = norm() * other.norm();
    if (denom == 0.0) return 0.0;
    return static_cast<double>(dot(other)) / denom;
}

double IntHV::cosine(const BinaryHV& other) const {
    HDLOCK_EXPECTS(other.dim() > 0, "IntHV::cosine: empty hypervector");
    const double denom = norm() * std::sqrt(static_cast<double>(other.dim()));
    if (denom == 0.0) return 0.0;
    return static_cast<double>(dot(other)) / denom;
}

bool IntHV::operator==(const IntHV& other) const {
    const auto a = values();
    const auto b = other.values();
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

void IntHV::save(util::BinaryWriter& writer) const {
    writer.write_tag("IHV1");
    writer.write_span(values());
}

IntHV IntHV::load(util::BinaryReader& reader) {
    reader.expect_tag("IHV1");
    return IntHV(reader.read_vector<std::int32_t>());
}

// ---------------------------------------------------------------------------
// Aligned bulk blocks
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kBlockAlignment = 64;

/// Blocks alias their backing buffer only when the element type's natural
/// alignment holds at the view pointer — always true for mapped files
/// (64-byte-aligned bases + 64-byte-aligned offsets) but not for arbitrary
/// in-memory spans, which silently degrade to the copying path.
template <typename T>
bool can_view(const std::byte* at) {
    return reinterpret_cast<std::uintptr_t>(at) % alignof(T) == 0;
}

}  // namespace

void save_hv_block(util::BinaryWriter& writer, std::span<const BinaryHV> hvs, std::size_t dim) {
    writer.align_to(kBlockAlignment);
    for (const auto& hv : hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim, "save_hv_block: non-uniform dimension");
        writer.write_bytes(std::as_bytes(hv.words()));
    }
}

std::vector<BinaryHV> load_hv_block(util::BinaryReader& reader, std::size_t dim,
                                    std::size_t count) {
    reader.align_to(kBlockAlignment);
    const std::size_t words_per_hv = bits::word_count(dim);
    std::vector<BinaryHV> hvs;
    hvs.reserve(count);
    if (reader.mapped()) {
        const std::byte* raw = reader.view_bytes(count * words_per_hv * sizeof(Word));
        if (can_view<Word>(raw)) {
            const auto* words = reinterpret_cast<const Word*>(raw);
            for (std::size_t i = 0; i < count; ++i) {
                const std::span<const Word> span(words + i * words_per_hv, words_per_hv);
                if (!span.empty() && (span.back() & ~bits::tail_mask(dim)) != 0) {
                    throw FormatError("load_hv_block: dirty tail bits");
                }
                hvs.push_back(BinaryHV::view(dim, span.data()));
            }
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                std::vector<Word> words(words_per_hv);
                std::memcpy(words.data(), raw + i * words_per_hv * sizeof(Word),
                            words_per_hv * sizeof(Word));
                hvs.push_back(BinaryHV::from_words(dim, std::move(words)));
            }
        }
        return hvs;
    }
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<Word> words(words_per_hv);
        reader.read_bytes(std::as_writable_bytes(std::span<Word>(words)));
        hvs.push_back(BinaryHV::from_words(dim, std::move(words)));
    }
    return hvs;
}

void save_int_hv_block(util::BinaryWriter& writer, std::span<const IntHV> hvs, std::size_t dim) {
    writer.align_to(kBlockAlignment);
    for (const auto& hv : hvs) {
        HDLOCK_EXPECTS(hv.dim() == dim, "save_int_hv_block: non-uniform dimension");
        writer.write_bytes(std::as_bytes(hv.values()));
    }
}

std::vector<IntHV> load_int_hv_block(util::BinaryReader& reader, std::size_t dim,
                                     std::size_t count) {
    reader.align_to(kBlockAlignment);
    std::vector<IntHV> hvs;
    hvs.reserve(count);
    if (reader.mapped()) {
        const std::byte* raw = reader.view_bytes(count * dim * sizeof(std::int32_t));
        if (can_view<std::int32_t>(raw)) {
            const auto* values = reinterpret_cast<const std::int32_t*>(raw);
            for (std::size_t i = 0; i < count; ++i) {
                hvs.push_back(IntHV::view(dim, values + i * dim));
            }
        } else {
            for (std::size_t i = 0; i < count; ++i) {
                std::vector<std::int32_t> values(dim);
                std::memcpy(values.data(), raw + i * dim * sizeof(std::int32_t),
                            dim * sizeof(std::int32_t));
                hvs.push_back(IntHV(std::move(values)));
            }
        }
        return hvs;
    }
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<std::int32_t> values(dim);
        reader.read_bytes(std::as_writable_bytes(std::span<std::int32_t>(values)));
        hvs.push_back(IntHV(std::move(values)));
    }
    return hvs;
}

}  // namespace hdlock::hdc
