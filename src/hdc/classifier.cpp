#include "hdc/classifier.hpp"

namespace hdlock::hdc {

HdcClassifier HdcClassifier::fit(const data::Dataset& train_set,
                                 std::shared_ptr<const Encoder> encoder,
                                 const PipelineConfig& config) {
    HDLOCK_EXPECTS(encoder != nullptr, "HdcClassifier::fit: null encoder");
    train_set.validate();
    HDLOCK_EXPECTS(train_set.n_features() == encoder->n_features(),
                   "HdcClassifier::fit: dataset feature count does not match encoder");

    HdcClassifier classifier;
    classifier.encoder_ = std::move(encoder);
    classifier.discretizer_ = MinMaxDiscretizer::fit(train_set.X, classifier.encoder_->n_levels(),
                                                     config.discretizer_mode);
    const EncodedBatch batch =
        classifier.encode_dataset(train_set, config.train.kind == ModelKind::binary);
    classifier.model_ = HdcModel::train(batch, train_set.n_classes, config.train);
    return classifier;
}

EncodedBatch HdcClassifier::encode_dataset(const data::Dataset& dataset) const {
    return encode_dataset(dataset, model_.kind() == ModelKind::binary);
}

EncodedBatch HdcClassifier::encode_dataset(const data::Dataset& dataset, bool with_binary) const {
    HDLOCK_EXPECTS(encoder_ != nullptr, "HdcClassifier: not fitted");
    dataset.validate();
    HDLOCK_EXPECTS(dataset.n_features() == encoder_->n_features(),
                   "HdcClassifier: dataset feature count does not match encoder");

    const bool need_binary = with_binary;
    EncodedBatch batch;
    batch.non_binary.reserve(dataset.n_samples());
    batch.labels = dataset.y;

    std::vector<int> levels(dataset.n_features());
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        discretizer_.transform_row(dataset.X.row(s), levels);
        batch.non_binary.push_back(encoder_->encode(levels));
        if (need_binary) batch.binary.push_back(encoder_->encode_binary(levels));
    }
    return batch;
}

int HdcClassifier::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(encoder_ != nullptr, "HdcClassifier: not fitted");
    HDLOCK_EXPECTS(row.size() == encoder_->n_features(),
                   "HdcClassifier::predict_row: wrong feature count");
    const std::vector<int> levels = discretizer_.transform_row(row);
    if (model_.kind() == ModelKind::binary) {
        return model_.predict(encoder_->encode_binary(levels));
    }
    return model_.predict(encoder_->encode(levels));
}

std::vector<int> HdcClassifier::predict(const data::Dataset& dataset) const {
    const EncodedBatch batch = encode_dataset(dataset);
    return model_.predict_batch(batch);
}

double HdcClassifier::evaluate(const data::Dataset& dataset) const {
    const EncodedBatch batch = encode_dataset(dataset);
    return model_.evaluate(batch);
}

}  // namespace hdlock::hdc
