#include "hdc/classifier.hpp"

namespace hdlock::hdc {

HdcClassifier HdcClassifier::fit(const data::Dataset& train_set,
                                 std::shared_ptr<const Encoder> encoder,
                                 const PipelineConfig& config) {
    HDLOCK_EXPECTS(encoder != nullptr, "HdcClassifier::fit: null encoder");
    train_set.validate();
    HDLOCK_EXPECTS(train_set.n_features() == encoder->n_features(),
                   "HdcClassifier::fit: dataset feature count does not match encoder");

    HdcClassifier classifier;
    classifier.encoder_ = std::move(encoder);
    classifier.discretizer_ = MinMaxDiscretizer::fit(train_set.X, classifier.encoder_->n_levels(),
                                                     config.discretizer_mode);
    const EncodedBatch batch =
        classifier.encode_dataset(train_set, config.train.kind == ModelKind::binary);
    classifier.model_ = HdcModel::train(batch, train_set.n_classes, config.train);
    classifier.train_accuracy_ = classifier.model_.evaluate(batch);
    return classifier;
}

EncodedBatch HdcClassifier::encode_dataset(const data::Dataset& dataset) const {
    return encode_dataset(dataset, model_.kind() == ModelKind::binary);
}

EncodedBatch HdcClassifier::encode_dataset(const data::Dataset& dataset, bool with_binary) const {
    HDLOCK_EXPECTS(encoder_ != nullptr, "HdcClassifier: not fitted");
    dataset.validate();
    HDLOCK_EXPECTS(dataset.n_features() == encoder_->n_features(),
                   "HdcClassifier: dataset feature count does not match encoder");

    EncodedBatch batch;
    batch.labels = dataset.y;
    batch.non_binary.resize(dataset.n_samples());
    if (with_binary) batch.binary.resize(dataset.n_samples());

    // Row-at-a-time through one reused scratch (the same kernel as
    // Encoder::encode_batch) rather than materializing a full level matrix:
    // the extra memory stays O(n_features) however large the dataset is.
    EncoderScratch scratch;
    std::vector<int>& levels = scratch.levels(dataset.n_features());
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        discretizer_.transform_row(dataset.X.row(s), levels);
        encoder_->encode_into(levels, scratch, batch.non_binary[s]);
        if (with_binary) encoder_->encode_binary_into(levels, scratch, batch.binary[s]);
    }
    return batch;
}

int HdcClassifier::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(encoder_ != nullptr, "HdcClassifier: not fitted");
    HDLOCK_EXPECTS(row.size() == encoder_->n_features(),
                   "HdcClassifier::predict_row: wrong feature count");
    const std::vector<int> levels = discretizer_.transform_row(row);
    if (model_.kind() == ModelKind::binary) {
        return model_.predict(encoder_->encode_binary(levels));
    }
    return model_.predict(encoder_->encode(levels));
}

std::vector<int> HdcClassifier::predict(const data::Dataset& dataset) const {
    const EncodedBatch batch = encode_dataset(dataset);
    return model_.predict_batch(batch);
}

double HdcClassifier::evaluate(const data::Dataset& dataset) const {
    const EncodedBatch batch = encode_dataset(dataset);
    return model_.evaluate(batch);
}

}  // namespace hdlock::hdc
