#pragma once

/// \file request.hpp
/// Typed request/response surface for the serving tier.
///
/// The original async front door was `predict_async(Matrix) ->
/// future<vector<int>>`: no way to express a latency budget, no way to give
/// up on a queued request, and every non-label outcome had to be smuggled
/// through the future as an exception.  This header is the redesigned
/// contract the router and session share:
///
///   Request  — rows plus serving metadata (deadline, priority, placement
///              key, cancellation token).
///   Response — labels plus a Status and serving telemetry (which shard,
///              how long the request sat queued).
///
/// Status covers the *control-flow* outcomes of serving — the request was
/// served, timed out, shed, or cancelled; these are expected operating
/// states, not errors, and resolving them through a value keeps the hot
/// path exception-free.  Genuine internal failures (contract violations,
/// encoder faults) still propagate as exceptions through the future; they
/// indicate a bug, not load.
///
/// Determinism: labels in an Ok response are a pure function of the rows —
/// identical across shard counts, placement policies, and dispatch modes.
/// Deadlines/priority/keys decide only *whether and where* a request is
/// served.  `queue_time` is wall-clock telemetry and is the one
/// nondeterministic field; eval scenarios must keep anything derived from
/// it under the reserved "timing" metrics key.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "util/deadline.hpp"
#include "util/matrix.hpp"

namespace hdlock::api {

/// Control-flow outcome of one served request.
enum class Status : std::uint8_t {
    /// Served; `labels` holds one class label per input row.
    ok = 0,
    /// The deadline passed before the dispatcher reached the request; it
    /// was dropped before encode and `labels` is empty.
    deadline_exceeded = 1,
    /// Refused at admission (router watermark or full submit queue);
    /// `labels` is empty.  Retry later or shed load upstream.
    overloaded = 2,
    /// The caller's CancelSource fired before dispatch; `labels` is empty.
    cancelled = 3,
};

constexpr const char* status_name(Status status) noexcept {
    switch (status) {
        case Status::ok: return "ok";
        case Status::deadline_exceeded: return "deadline_exceeded";
        case Status::overloaded: return "overloaded";
        case Status::cancelled: return "cancelled";
    }
    return "unknown";
}

/// Caller-held view of a cancellation flag.  Default-constructed tokens can
/// never fire; tokens minted by a CancelSource observe it.  Copyable and
/// safe to read from any thread.
class CancelToken {
public:
    CancelToken() noexcept = default;

    bool cancelled() const noexcept {
        return flag_ != nullptr && flag_->load(std::memory_order_acquire);
    }

private:
    friend class CancelSource;
    explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag) noexcept
        : flag_(std::move(flag)) {}

    std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag: hand token() to a Request, call
/// request_cancel() to withdraw it.  Cancellation is checked at submit and
/// again by the dispatcher before encode — a request already being served
/// completes normally (cancellation is advisory, like deadlines).
class CancelSource {
public:
    CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    CancelToken token() const noexcept { return CancelToken(flag_); }

    void request_cancel() noexcept { flag_->store(true, std::memory_order_release); }

    bool cancel_requested() const noexcept { return flag_->load(std::memory_order_acquire); }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/// One serving request: the rows to classify plus serving metadata.  Only
/// `rows` affects the labels; everything else shapes admission, placement
/// and latency.
struct Request {
    /// Feature rows to classify (exactly n_features() columns).
    util::Matrix<float> rows;
    /// Drop the request (Status::deadline_exceeded) if the dispatcher has
    /// not reached it by this point.  Defaults to never.
    util::Deadline deadline{};
    /// Admission-control priority.  Requests with priority > 0 ride through
    /// the router's shed watermark up to its configured headroom; 0 (the
    /// default) and below shed first.  Does not reorder the queue.
    std::int32_t priority = 0;
    /// Optional placement key for consistent-hash routing: equal keys land
    /// on the same shard (session-affinity / cache-warmth).  Ignored by the
    /// other placement policies; absent keys fall back to round-robin.
    std::optional<std::uint64_t> shard_key;
    /// Cancellation token; default-constructed tokens never fire.
    CancelToken cancel{};
};

/// The resolved outcome of a Request.
struct Response {
    /// One label per input row when status == ok; empty otherwise.
    std::vector<int> labels;
    Status status = Status::ok;
    /// Which shard served (router) or 0 when submitted straight to a
    /// session.
    std::uint32_t shard_id = 0;
    /// Bundle epoch of the serving state that resolved this request (see
    /// InferenceSession::swap_bundle).  During a hot swap, concurrent
    /// responses may carry either the old or the new epoch; labels are
    /// always consistent with the stamped epoch's model.  0 for outcomes
    /// decided at submit time (shed/expired/cancelled before enqueue).
    std::uint64_t epoch = 0;
    /// Time the request sat between submit and dispatch.  Wall-clock
    /// telemetry: report it only under timing-stripped metrics.
    std::chrono::nanoseconds queue_time{0};

    bool ok() const noexcept { return status == Status::ok; }
};

/// A future already resolved with `response` — for outcomes decided at
/// submit time (shed at admission, expired or cancelled before enqueue).
inline std::future<Response> resolved_response(Response response) {
    std::promise<Response> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
}

}  // namespace hdlock::api
