#include "api/bundle.hpp"

#include <sstream>

#include "api/inference_session.hpp"
#include "api/sealed_encoder.hpp"
#include "util/fault_inject.hpp"
#include "util/serialize.hpp"

namespace hdlock::api {

namespace {

constexpr std::uint8_t kFlagDiscretizer = 1u << 0;
constexpr std::uint8_t kFlagModel = 1u << 1;

void save_value_mapping(util::BinaryWriter& writer, const ValueMapping& mapping) {
    writer.write_tag("VMAP");
    writer.write_u32(static_cast<std::uint32_t>(mapping.size()));
    for (const auto slot : mapping) writer.write_u32(slot);
}

ValueMapping load_value_mapping(util::BinaryReader& reader) {
    reader.expect_tag("VMAP");
    const std::uint32_t count = reader.read_u32();
    if (count > (1u << 24)) {
        throw FormatError("DeploymentBundle: unreasonable value mapping size");
    }
    ValueMapping mapping(count);
    for (auto& slot : mapping) slot = reader.read_u32();
    return mapping;
}

void save_hv_array(util::BinaryWriter& writer, const std::vector<hdc::BinaryHV>& hvs) {
    writer.write_u64(hvs.size());
    for (const auto& hv : hvs) hv.save(writer);
}

std::vector<hdc::BinaryHV> load_hv_array(util::BinaryReader& reader) {
    const std::uint64_t n = reader.read_u64();
    if (n > (1ULL << 24)) throw FormatError("DeploymentBundle: unreasonable hypervector count");
    std::vector<hdc::BinaryHV> hvs;
    hvs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) hvs.push_back(hdc::BinaryHV::load(reader));
    return hvs;
}

}  // namespace

DeploymentBundle DeploymentBundle::from_deployment(const Deployment& deployment) {
    HDLOCK_EXPECTS(deployment.store != nullptr, "DeploymentBundle: deployment has no store");
    HDLOCK_EXPECTS(deployment.secure != nullptr && deployment.encoder != nullptr,
                   "DeploymentBundle: incomplete deployment");
    DeploymentBundle bundle;
    bundle.kind = BundleKind::owner;
    bundle.tie_seed = deployment.encoder->tie_seed();
    bundle.store = deployment.store;
    bundle.key = deployment.secure->key().clone();
    bundle.value_mapping = deployment.secure->value_mapping();
    return bundle;
}

namespace {

/// Shared save() preamble and validation for both format versions.
std::uint8_t header_flags(const DeploymentBundle& bundle) {
    std::uint8_t flags = 0;
    if (bundle.discretizer) flags |= kFlagDiscretizer;
    if (bundle.model) flags |= kFlagModel;
    return flags;
}

void check_saveable(const DeploymentBundle& bundle) {
    HDLOCK_EXPECTS(bundle.store != nullptr, "DeploymentBundle::save: no public store");
    if (bundle.kind == BundleKind::owner) {
        HDLOCK_EXPECTS(bundle.key.has_value() && bundle.value_mapping.has_value(),
                       "DeploymentBundle::save: owner bundle without secrets");
    } else {
        HDLOCK_EXPECTS(!bundle.key.has_value() && !bundle.value_mapping.has_value(),
                       "DeploymentBundle::save: device bundle must not carry the key");
        HDLOCK_EXPECTS(!bundle.feature_hvs.empty() && !bundle.value_hvs.empty(),
                       "DeploymentBundle::save: device bundle without materialized state");
    }
}

}  // namespace

namespace {

/// One body for the aligned-block formats: v3 is v2 plus the epoch word
/// after the flags byte (every later field sits at a version-independent
/// offset because epoch goes last in the header).
void save_aligned(const DeploymentBundle& bundle, util::BinaryWriter& writer,
                  std::uint32_t version) {
    check_saveable(bundle);
    writer.write_tag("HDLK");
    writer.write_u32(version);
    writer.write_u8(static_cast<std::uint8_t>(bundle.kind));
    writer.write_u64(bundle.tie_seed);
    writer.write_u8(header_flags(bundle));
    if (version >= 3) writer.write_u64(bundle.epoch);

    bundle.store->save_v2(writer);
    if (bundle.kind == BundleKind::owner) {
        writer.write_tag("SECR");
        bundle.key->save(writer);
        save_value_mapping(writer, *bundle.value_mapping);
    } else {
        // hdlock-lint: device-begin (SEN2 writer: the bytes that ship; the
        // confinement taint scan proves no secret identifier is in reach)
        writer.write_tag("SEN2");
        writer.write_u64(bundle.feature_hvs.size());
        writer.write_u64(bundle.value_hvs.size());
        writer.write_u64(bundle.store->dim());
        hdc::save_hv_block(writer, bundle.feature_hvs, bundle.store->dim());
        hdc::save_hv_block(writer, bundle.value_hvs, bundle.store->dim());
        // hdlock-lint: device-end
    }
    if (bundle.discretizer) bundle.discretizer->save(writer);
    if (bundle.model) bundle.model->save_v2(writer);
    writer.write_tag("HEND");
}

}  // namespace

void DeploymentBundle::save(util::BinaryWriter& writer) const {
    save_aligned(*this, writer, kFormatVersion);
}

void DeploymentBundle::save_v2(util::BinaryWriter& writer) const { save_aligned(*this, writer, 2); }

void DeploymentBundle::save_v1(util::BinaryWriter& writer) const {
    check_saveable(*this);
    writer.write_tag("HDLK");
    writer.write_u32(1);
    writer.write_u8(static_cast<std::uint8_t>(kind));
    writer.write_u64(tie_seed);
    writer.write_u8(header_flags(*this));

    store->save(writer);
    if (kind == BundleKind::owner) {
        writer.write_tag("SECR");
        key->save(writer);
        save_value_mapping(writer, *value_mapping);
    } else {
        writer.write_tag("SENC");
        save_hv_array(writer, feature_hvs);
        save_hv_array(writer, value_hvs);
    }
    if (discretizer) discretizer->save(writer);
    if (model) model->save(writer);
    writer.write_tag("HEND");
}

DeploymentBundle DeploymentBundle::load(util::BinaryReader& reader) {
    reader.expect_tag("HDLK");
    const std::uint32_t version = reader.read_u32();
    if (version == 0 || version > kFormatVersion) {
        throw FormatError("DeploymentBundle: unsupported format version " +
                          std::to_string(version));
    }
    DeploymentBundle bundle;
    const std::uint8_t kind = reader.read_u8();
    if (kind > 1) throw FormatError("DeploymentBundle: bad bundle kind");
    bundle.kind = static_cast<BundleKind>(kind);
    bundle.tie_seed = reader.read_u64();
    const std::uint8_t flags = reader.read_u8();
    if (flags & ~(kFlagDiscretizer | kFlagModel)) {
        throw FormatError("DeploymentBundle: unknown section flags");
    }
    // v1/v2 artifacts predate key rotation: they are epoch 0 by definition.
    bundle.epoch = version >= 3 ? reader.read_u64() : 0;
    if (util::fault::should_fail(util::fault::kBundleCorruptHeader)) {
        throw FormatError("DeploymentBundle: corrupt header (fault injected)");
    }

    bundle.store = std::make_shared<const PublicStore>(
        version >= 2 ? PublicStore::load_v2(reader) : PublicStore::load(reader));
    if (bundle.kind == BundleKind::owner) {
        reader.expect_tag("SECR");
        bundle.key = LockKey::load(reader);
        bundle.value_mapping = load_value_mapping(reader);
        if (bundle.value_mapping->size() != bundle.store->n_levels()) {
            throw FormatError("DeploymentBundle: value mapping does not match store levels");
        }
    } else if (version >= 2) {
        // hdlock-lint: device-begin (SEN2/SENC load: runs on the device)
        reader.expect_tag("SEN2");
        const std::uint64_t n_features = reader.read_u64();
        const std::uint64_t n_levels = reader.read_u64();
        const std::uint64_t dim = reader.read_u64();
        if (n_features == 0 || n_levels == 0) {
            throw FormatError("DeploymentBundle: device bundle without encoder state");
        }
        if (n_features > (1ULL << 24) || n_levels > (1ULL << 24)) {
            throw FormatError("DeploymentBundle: unreasonable hypervector count");
        }
        // The materialized state must agree with the embedded store's shape
        // — a corrupt or hand-edited artifact fails here with the mismatch
        // named, not deep inside encode (or worse, serving garbage).
        if (dim != bundle.store->dim()) {
            throw FormatError("DeploymentBundle: encoder state has dim " + std::to_string(dim) +
                              " but the store dim is " + std::to_string(bundle.store->dim()));
        }
        if (n_levels != bundle.store->n_levels()) {
            throw FormatError("DeploymentBundle: device bundle has " + std::to_string(n_levels) +
                              " value hypervectors but the store holds " +
                              std::to_string(bundle.store->n_levels()) + " levels");
        }
        bundle.feature_hvs = hdc::load_hv_block(reader, static_cast<std::size_t>(dim),
                                                static_cast<std::size_t>(n_features));
        bundle.value_hvs = hdc::load_hv_block(reader, static_cast<std::size_t>(dim),
                                              static_cast<std::size_t>(n_levels));
    } else {
        reader.expect_tag("SENC");
        bundle.feature_hvs = load_hv_array(reader);
        bundle.value_hvs = load_hv_array(reader);
        if (bundle.feature_hvs.empty() || bundle.value_hvs.empty()) {
            throw FormatError("DeploymentBundle: device bundle without encoder state");
        }
        // A corrupt or hand-edited artifact must fail here with the mismatch
        // named, not deep inside encode (or worse, serve garbage): the
        // materialized state has to agree with the embedded store's shape.
        if (bundle.value_hvs.size() != bundle.store->n_levels()) {
            throw FormatError("DeploymentBundle: device bundle has " +
                              std::to_string(bundle.value_hvs.size()) +
                              " value hypervectors but the store holds " +
                              std::to_string(bundle.store->n_levels()) + " levels");
        }
        for (std::size_t i = 0; i < bundle.feature_hvs.size(); ++i) {
            if (bundle.feature_hvs[i].dim() != bundle.store->dim()) {
                throw FormatError("DeploymentBundle: feature hypervector " + std::to_string(i) +
                                  " has dim " + std::to_string(bundle.feature_hvs[i].dim()) +
                                  " but the store dim is " + std::to_string(bundle.store->dim()));
            }
        }
        for (std::size_t i = 0; i < bundle.value_hvs.size(); ++i) {
            if (bundle.value_hvs[i].dim() != bundle.store->dim()) {
                throw FormatError("DeploymentBundle: value hypervector " + std::to_string(i) +
                                  " has dim " + std::to_string(bundle.value_hvs[i].dim()) +
                                  " but the store dim is " + std::to_string(bundle.store->dim()));
            }
        }
        // hdlock-lint: device-end
    }
    if (flags & kFlagDiscretizer) bundle.discretizer = hdc::MinMaxDiscretizer::load(reader);
    if (flags & kFlagModel) {
        bundle.model = version >= 2 ? hdc::HdcModel::load_v2(reader) : hdc::HdcModel::load(reader);
    }
    reader.expect_tag("HEND");

    // The store carries no feature count, but a per-feature discretizer
    // does: its range count must match the encoder's feature count (the key
    // for owner bundles, the materialized FeaHV array for device bundles) —
    // a truncated feature section must not load and then serve garbage.
    if (bundle.discretizer.has_value() &&
        bundle.discretizer->mode() == hdc::DiscretizerMode::per_feature) {
        const std::size_t n_features = bundle.kind == BundleKind::owner
                                           ? bundle.key->n_features()
                                           : bundle.feature_hvs.size();
        if (bundle.discretizer->n_ranges() != n_features) {
            throw FormatError("DeploymentBundle: per-feature discretizer tracks " +
                              std::to_string(bundle.discretizer->n_ranges()) +
                              " features but the encoder has " + std::to_string(n_features));
        }
    }
    return bundle;
}

void DeploymentBundle::save_atomic(const std::filesystem::path& path) const {
    util::atomic_file_write(path, [this](util::BinaryWriter& writer) { save(writer); });
}

BundleSnapshot DeploymentBundle::make_snapshot() const {
    BundleSnapshot snapshot;
    snapshot.epoch = epoch;
    snapshot.encoder = make_encoder();
    snapshot.discretizer = discretizer;
    snapshot.model = model;
    snapshot.backing = backing;
    return snapshot;
}

void DeploymentBundle::save_owner(const std::filesystem::path& path) const {
    HDLOCK_EXPECTS(kind == BundleKind::owner && has_key(),
                   "DeploymentBundle::save_owner: not an owner bundle");
    util::save_file(*this, path);
}

DeploymentBundle DeploymentBundle::load_owner(const std::filesystem::path& path) {
    DeploymentBundle bundle = util::load_file<DeploymentBundle>(path);
    if (bundle.kind != BundleKind::owner) {
        throw FormatError("DeploymentBundle: " + path.string() +
                          " is a device bundle (its key was stripped at export); "
                          "owner operations need the owner artifact");
    }
    return bundle;
}

// hdlock-lint: device-begin (the device-side entry point)
DeploymentBundle DeploymentBundle::load_device(const std::filesystem::path& path) {
    DeploymentBundle bundle = util::load_file<DeploymentBundle>(path);
    if (bundle.kind != BundleKind::device) {
        throw FormatError("DeploymentBundle: " + path.string() +
                          " is an owner bundle and carries the key; refuse to load it on the "
                          "device side (run export_device() first)");
    }
    return bundle;
}
// hdlock-lint: device-end

DeploymentBundle DeploymentBundle::load_any(const std::filesystem::path& path) {
    return util::load_file<DeploymentBundle>(path);
}

DeploymentBundle DeploymentBundle::open_mapped(const std::filesystem::path& path,
                                               util::MappedFile::Advice advice) {
    auto mapping = std::make_shared<const util::MappedFile>(util::MappedFile::open(path, advice));
    util::BinaryReader reader(mapping->bytes());
    DeploymentBundle bundle = load(reader);
    bundle.backing = mapping;
    // Components whose shared handles can escape the bundle must pin the
    // mapping themselves, or a session/encoder outliving the bundle would
    // serve from unmapped memory: the store gets an aliasing shared_ptr
    // whose control block co-owns the mapping, the model an explicit
    // anchor (copies share it).  The raw feature_hvs/value_hvs vectors stay
    // covered by `backing` until they are moved into a SealedEncoder, which
    // takes its own anchor (make_encoder / api::Device).
    if (bundle.store != nullptr) {
        auto anchored = std::make_shared<
            std::pair<std::shared_ptr<const PublicStore>, std::shared_ptr<const util::MappedFile>>>(
            bundle.store, mapping);
        bundle.store = std::shared_ptr<const PublicStore>(anchored, anchored->first.get());
    }
    if (bundle.model) bundle.model->set_storage_anchor(mapping);
    return bundle;
}

DeploymentBundle DeploymentBundle::device_from_materialized(
    const LockedEncoder& encoder, std::shared_ptr<const PublicStore> store,
    std::optional<hdc::MinMaxDiscretizer> discretizer, std::optional<hdc::HdcModel> model) {
    DeploymentBundle device;
    device.kind = BundleKind::device;
    device.tie_seed = encoder.tie_seed();
    device.store = std::move(store);
    device.discretizer = std::move(discretizer);
    device.model = std::move(model);
    device.feature_hvs.reserve(encoder.n_features());
    for (std::size_t i = 0; i < encoder.n_features(); ++i) {
        device.feature_hvs.push_back(encoder.feature_hv(i));
    }
    device.value_hvs.reserve(encoder.n_levels());
    for (std::size_t level = 0; level < encoder.n_levels(); ++level) {
        device.value_hvs.push_back(encoder.value_hv(level));
    }
    return device;
}

DeploymentBundle DeploymentBundle::copy_without_secrets() const {
    DeploymentBundle copy;
    copy.kind = kind;
    copy.tie_seed = tie_seed;
    copy.epoch = epoch;
    copy.store = store;
    copy.feature_hvs = feature_hvs;
    copy.value_hvs = value_hvs;
    copy.discretizer = discretizer;
    copy.model = model;
    copy.backing = backing;
    return copy;
}

DeploymentBundle DeploymentBundle::export_device() const {
    HDLOCK_EXPECTS(store != nullptr, "DeploymentBundle::export_device: no public store");
    if (kind == BundleKind::device) return copy_without_secrets();
    HDLOCK_EXPECTS(has_key(), "DeploymentBundle::export_device: owner bundle without key");
    DeploymentBundle device =
        device_from_materialized(LockedEncoder(store, key->clone(), *value_mapping, tie_seed),
                                 store, discretizer, model);
    device.epoch = epoch;  // a device export serves its owner's generation
    return device;
}

void DeploymentBundle::export_device(const std::filesystem::path& path) const {
    util::save_file(export_device(), path);
}

std::shared_ptr<const hdc::Encoder> DeploymentBundle::make_encoder() const {
    if (kind == BundleKind::owner) {
        HDLOCK_EXPECTS(has_key(), "DeploymentBundle::make_encoder: owner bundle without key");
        return std::make_shared<const LockedEncoder>(store, key->clone(), *value_mapping, tie_seed);
    }
    // hdlock-lint: device-begin (the sealed, key-free construction path)
    return std::make_shared<const SealedEncoder>(feature_hvs, value_hvs, tie_seed, backing);
    // hdlock-lint: device-end
}

std::uint64_t DeploymentBundle::serialized_bytes() const {
    std::ostringstream out(std::ios::binary);
    util::BinaryWriter writer(out);
    save(writer);
    return static_cast<std::uint64_t>(out.tellp());
}

}  // namespace hdlock::api
