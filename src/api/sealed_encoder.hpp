#pragma once

/// \file sealed_encoder.hpp
/// The device-side encoder: materialized hypervectors, no key.
///
/// A deployed HDLock device never stores the key outside tamper-proof
/// memory; what its datapath actually holds are the *materialized* feature
/// hypervectors (the Eq. 9 products) and the level-ordered value
/// hypervectors.  SealedEncoder is exactly that state and nothing more — it
/// has no key member, no store pointer and no accessor that could reproduce
/// either, so code handed a SealedEncoder (see api::Device) cannot reach the
/// secrets by construction.  Contrast LockedEncoder, the owner-side view,
/// which keeps the key for auditing and re-export.

#include <memory>
#include <vector>

#include "hdc/encoder.hpp"

namespace hdlock::api {

class SealedEncoder final : public hdc::Encoder {
public:
    /// \param feature_hvs  materialized FeaHV_i, one per feature
    /// \param value_hvs    ValHVs in *semantic level order* (secret mapping
    ///                     already applied)
    /// \param tie_seed     sign(0) tie-break seed (see hdc::Encoder)
    /// \param storage_anchor  shared pin on external storage the
    ///                     hypervectors may alias (a mapped `.hdlk`'s
    ///                     bytes); null when they own their words
    SealedEncoder(std::vector<hdc::BinaryHV> feature_hvs, std::vector<hdc::BinaryHV> value_hvs,
                  std::uint64_t tie_seed, std::shared_ptr<const void> storage_anchor = nullptr);

    std::size_t dim() const override { return dim_; }
    std::size_t n_features() const override { return feature_hvs_.size(); }
    std::size_t n_levels() const override { return value_hvs_.size(); }

protected:
    std::span<const hdc::BinaryHV> feature_hv_array() const override { return feature_hvs_; }
    std::span<const hdc::BinaryHV> value_hv_array() const override { return value_hvs_; }

private:
    std::size_t dim_ = 0;
    std::vector<hdc::BinaryHV> feature_hvs_;
    std::vector<hdc::BinaryHV> value_hvs_;
    std::shared_ptr<const void> storage_anchor_;
};

}  // namespace hdlock::api
