#include "api/facades.hpp"

namespace hdlock::api {

namespace {

/// Session-free single-row inference for the facades' predict_row paths: a
/// per-call InferenceSession would deep-copy the model and discretizer on
/// every row.
int predict_one(const hdc::Encoder& encoder, const hdc::MinMaxDiscretizer& discretizer,
                const hdc::HdcModel& model, std::span<const float> row) {
    HDLOCK_EXPECTS(row.size() == encoder.n_features(), "predict_row: wrong feature count");
    const std::vector<int> levels = discretizer.transform_row(row);
    return model.kind() == hdc::ModelKind::binary ? model.predict(encoder.encode_binary(levels))
                                                  : model.predict(encoder.encode(levels));
}

}  // namespace

// ---------------------------------------------------------------------------
// Owner
// ---------------------------------------------------------------------------

Owner Owner::provision(const DeploymentConfig& config) {
    Owner owner;
    owner.deployment_ = hdlock::provision(config);
    return owner;
}

Owner Owner::load(const std::filesystem::path& path) {
    DeploymentBundle bundle = DeploymentBundle::load_owner(path);
    Owner owner;
    owner.deployment_.store = bundle.store;
    owner.deployment_.encoder = std::make_shared<const LockedEncoder>(
        bundle.store, bundle.key->clone(), *bundle.value_mapping, bundle.tie_seed);
    owner.deployment_.secure =
        std::make_shared<SecureStore>(std::move(*bundle.key), std::move(*bundle.value_mapping));
    owner.discretizer_ = std::move(bundle.discretizer);
    owner.model_ = std::move(bundle.model);
    owner.epoch_ = bundle.epoch;
    return owner;
}

DeploymentBundle Owner::to_bundle() const {
    DeploymentBundle bundle = DeploymentBundle::from_deployment(deployment_);
    bundle.discretizer = discretizer_;
    bundle.model = model_;
    bundle.epoch = epoch_;
    return bundle;
}

void Owner::save(const std::filesystem::path& path) const {
    to_bundle().save_owner(path);
}

void Owner::save_atomic(const std::filesystem::path& path) const {
    const DeploymentBundle bundle = to_bundle();
    HDLOCK_EXPECTS(bundle.kind == BundleKind::owner && bundle.has_key(),
                   "Owner::save_atomic: not an owner bundle");
    bundle.save_atomic(path);
}

double Owner::train(const data::Dataset& train_set, const TrainOptions& options) {
    hdc::PipelineConfig pipeline;
    pipeline.discretizer_mode = options.discretizer_mode;
    pipeline.train.kind = options.kind;
    pipeline.train.retrain_epochs = options.retrain_epochs;
    pipeline.train.seed = options.seed;
    const auto classifier = hdc::HdcClassifier::fit(train_set, deployment_.encoder, pipeline);
    discretizer_ = classifier.discretizer();
    model_ = classifier.model();
    return classifier.train_accuracy();
}

const hdc::HdcModel& Owner::model() const {
    HDLOCK_EXPECTS(model_.has_value(), "Owner::model: not trained");
    return *model_;
}

const hdc::MinMaxDiscretizer& Owner::discretizer() const {
    HDLOCK_EXPECTS(discretizer_.has_value(), "Owner::discretizer: not trained");
    return *discretizer_;
}

InferenceSession Owner::open_session(SessionOptions options) const {
    HDLOCK_EXPECTS(trained(), "Owner::open_session: train (or load a trained bundle) first");
    options.epoch = epoch_;
    return InferenceSession(deployment_.encoder, *discretizer_, *model_, options);
}

double Owner::evaluate(const data::Dataset& dataset) const {
    return open_session().evaluate(dataset);
}

int Owner::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(trained(), "Owner::predict_row: train first");
    return predict_one(*deployment_.encoder, *discretizer_, *model_, row);
}

std::vector<int> Owner::predict(const util::Matrix<float>& rows) const {
    return open_session().predict(rows);
}

ShardRouter Owner::open_router(RouterOptions options) const {
    HDLOCK_EXPECTS(trained(), "Owner::open_router: train (or load a trained bundle) first");
    options.session.epoch = epoch_;
    return ShardRouter(deployment_.encoder, *discretizer_, *model_, std::move(options));
}

KeyAuditReport Owner::audit() const {
    return audit_key(deployment_.secure->key(), *deployment_.store);
}

void Owner::rotate_key(std::uint64_t seed) {
    LockKey fresh = rekey(deployment_.secure->key(), *deployment_.store, seed);
    ValueMapping mapping = deployment_.secure->value_mapping();
    deployment_.encoder = std::make_shared<const LockedEncoder>(
        deployment_.store, fresh.clone(), mapping, deployment_.encoder->tie_seed());
    // The old SecureStore (and the compromised key inside it) is dropped
    // here; LockKey scrubs its storage on destruction.
    deployment_.secure = std::make_shared<SecureStore>(std::move(fresh), std::move(mapping));
    model_.reset();  // fitted against the old feature hypervectors
    ++epoch_;
}

RotationReport Owner::rotate(const data::Dataset& train_set, const RotateOptions& options) {
    RotationReport report;
    report.previous_epoch = epoch_;
    try {
        // Stage everything against locals first; the owner's own state is
        // only touched past the commit point below, so a failed rekey or
        // retrain leaves it exactly as it was (all-or-nothing contract).
        LockKey fresh = rekey(deployment_.secure->key(), *deployment_.store, options.seed);
        ValueMapping mapping = deployment_.secure->value_mapping();
        auto encoder = std::make_shared<const LockedEncoder>(
            deployment_.store, fresh.clone(), mapping, deployment_.encoder->tie_seed());

        hdc::PipelineConfig pipeline;
        pipeline.discretizer_mode = options.train.discretizer_mode;
        pipeline.train.kind = options.train.kind;
        pipeline.train.retrain_epochs = options.train.retrain_epochs;
        pipeline.train.seed = options.train.seed;
        const auto classifier = hdc::HdcClassifier::fit(train_set, encoder, pipeline);
        std::optional<hdc::MinMaxDiscretizer> discretizer = classifier.discretizer();
        std::optional<hdc::HdcModel> model = classifier.model();
        auto secure = std::make_shared<SecureStore>(std::move(fresh), std::move(mapping));

        // Commit point: moves only from here on.  The old SecureStore (and
        // the compromised key inside it) is dropped; LockKey scrubs its
        // storage on destruction.
        deployment_.encoder = std::move(encoder);
        deployment_.secure = std::move(secure);
        discretizer_ = std::move(discretizer);
        model_ = std::move(model);
        epoch_ = report.previous_epoch + 1;
        report.epoch = epoch_;
        report.train_accuracy = classifier.train_accuracy();
    } catch (const RotationError&) {
        throw;
    } catch (const Error& error) {
        throw RotationError("Owner::rotate: rotation failed; owner unchanged at epoch " +
                            std::to_string(epoch_) + ": " + error.what());
    }
    return report;
}

DeploymentBundle Owner::to_device_bundle() const {
    DeploymentBundle device = DeploymentBundle::device_from_materialized(
        *deployment_.encoder, deployment_.store, discretizer_, model_);
    device.epoch = epoch_;
    return device;
}

void Owner::export_device(const std::filesystem::path& path) const {
    util::save_file(to_device_bundle(), path);
}

void Owner::export_device_atomic(const std::filesystem::path& path) const {
    to_device_bundle().save_atomic(path);
}

Device Owner::make_device() const {
    return Device(to_device_bundle());
}

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

Device::Device(DeploymentBundle bundle) {
    HDLOCK_EXPECTS(bundle.kind == BundleKind::device,
                   "Device: owner bundle refused; call export_device() first");
    HDLOCK_EXPECTS(!bundle.has_key(), "Device: bundle unexpectedly carries a key");
    store_ = std::move(bundle.store);
    backing_ = std::move(bundle.backing);
    encoder_ = std::make_shared<const SealedEncoder>(std::move(bundle.feature_hvs),
                                                     std::move(bundle.value_hvs),
                                                     bundle.tie_seed, backing_);
    discretizer_ = std::move(bundle.discretizer);
    model_ = std::move(bundle.model);
    epoch_ = bundle.epoch;
    if (can_serve()) {
        SessionOptions options;
        options.epoch = epoch_;
        session_.emplace(encoder_, *discretizer_, *model_, options);
    }
}

Device Device::load(const std::filesystem::path& path) {
    return Device(DeploymentBundle::load_device(path));
}

Device Device::open_mapped(const std::filesystem::path& path, util::MappedFile::Advice advice) {
    DeploymentBundle bundle = DeploymentBundle::open_mapped(path, advice);
    if (bundle.kind != BundleKind::device) {
        throw FormatError("DeploymentBundle: " + path.string() +
                          " is an owner bundle and carries the key; refuse to load it on the "
                          "device side (run export_device() first)");
    }
    return Device(std::move(bundle));
}

const hdc::HdcModel& Device::model() const {
    HDLOCK_EXPECTS(model_.has_value(), "Device::model: bundle carries no model");
    return *model_;
}

const hdc::MinMaxDiscretizer& Device::discretizer() const {
    HDLOCK_EXPECTS(discretizer_.has_value(), "Device::discretizer: bundle carries none");
    return *discretizer_;
}

InferenceSession Device::open_session(SessionOptions options) const {
    HDLOCK_EXPECTS(can_serve(), "Device::open_session: bundle has no discretizer/model");
    options.epoch = epoch_;
    return InferenceSession(encoder_, *discretizer_, *model_, options);
}

ShardRouter Device::open_router(RouterOptions options) const {
    HDLOCK_EXPECTS(can_serve(), "Device::open_router: bundle has no discretizer/model");
    options.session.epoch = epoch_;
    return ShardRouter(encoder_, *discretizer_, *model_, std::move(options));
}

int Device::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(can_serve(), "Device::predict_row: bundle has no discretizer/model");
    return session_->predict_row(row);
}

std::vector<int> Device::predict(const util::Matrix<float>& rows) const {
    HDLOCK_EXPECTS(can_serve(), "Device::predict: bundle has no discretizer/model");
    return session_->predict(rows);
}

double Device::evaluate(const data::Dataset& dataset) const {
    HDLOCK_EXPECTS(can_serve(), "Device::evaluate: bundle has no discretizer/model");
    return session_->evaluate(dataset);
}

}  // namespace hdlock::api
