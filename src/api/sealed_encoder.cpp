#include "api/sealed_encoder.hpp"

namespace hdlock::api {

SealedEncoder::SealedEncoder(std::vector<hdc::BinaryHV> feature_hvs,
                             std::vector<hdc::BinaryHV> value_hvs, std::uint64_t tie_seed,
                             std::shared_ptr<const void> storage_anchor)
    : Encoder(tie_seed),
      feature_hvs_(std::move(feature_hvs)),
      value_hvs_(std::move(value_hvs)),
      storage_anchor_(std::move(storage_anchor)) {
    HDLOCK_EXPECTS(!feature_hvs_.empty(), "SealedEncoder: no feature hypervectors");
    HDLOCK_EXPECTS(value_hvs_.size() >= 2, "SealedEncoder: need at least two value levels");
    dim_ = feature_hvs_.front().dim();
    HDLOCK_EXPECTS(dim_ > 0, "SealedEncoder: zero-dimensional hypervectors");
    for (const auto& hv : feature_hvs_) {
        HDLOCK_EXPECTS(hv.dim() == dim_, "SealedEncoder: feature HV dimension mismatch");
    }
    for (const auto& hv : value_hvs_) {
        HDLOCK_EXPECTS(hv.dim() == dim_, "SealedEncoder: value HV dimension mismatch");
    }
}

}  // namespace hdlock::api
