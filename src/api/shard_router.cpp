#include "api/shard_router.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdlock::api {

namespace {

/// Salts keep ring-point hashes and request-key hashes in distinct
/// families, so a caller using small integer shard keys cannot collide
/// with the vnode points by accident.
constexpr std::uint64_t kRingSalt = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kKeySalt = 0xc2b2ae3d27d4eb4fULL;

}  // namespace

std::optional<Placement> parse_placement(std::string_view name) noexcept {
    if (name == "round-robin") return Placement::round_robin;
    if (name == "least-loaded") return Placement::least_loaded;
    if (name == "consistent-hash") return Placement::consistent_hash;
    return std::nullopt;
}

ShardRouter::ShardRouter(std::shared_ptr<const hdc::Encoder> encoder,
                         hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                         RouterOptions options)
    : options_(std::move(options)) {
    HDLOCK_EXPECTS(encoder != nullptr, "ShardRouter: null encoder");
    const std::size_t n = std::max<std::size_t>(options_.n_shards, 1);
    options_.n_shards = n;
    SessionOptions session = options_.session;
    session.adaptive_queue_delay = options_.adaptive_queue_delay;
    shards_.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        shards_.push_back(
            std::make_unique<InferenceSession>(encoder, discretizer, model, session));
    }
    watermark_ = options_.shed_watermark_rows != 0
                     ? options_.shed_watermark_rows
                     : n * std::max<std::size_t>(session.max_queue_rows, 1);
    routed_ = std::vector<std::atomic<std::uint64_t>>(n);
    if (options_.placement == Placement::consistent_hash) {
        const std::size_t vnodes = std::max<std::size_t>(options_.hash_virtual_nodes, 1);
        ring_.reserve(n * vnodes);
        for (std::size_t s = 0; s < n; ++s) {
            for (std::size_t v = 0; v < vnodes; ++v) {
                ring_.emplace_back(util::hash_mix(util::hash_mix(kRingSalt, s + 1), v + 1),
                                   static_cast<std::uint32_t>(s));
            }
        }
        std::sort(ring_.begin(), ring_.end());
    }
}

ShardRouter::ShardRouter(ShardRouter&& other) noexcept
    : options_(std::move(other.options_)),
      watermark_(other.watermark_),
      shards_(std::move(other.shards_)),
      ring_(std::move(other.ring_)),
      round_robin_(other.round_robin_.load()),
      accepted_(other.accepted_.load()),
      shed_(other.shed_.load()),
      routed_(std::move(other.routed_)) {}

std::uint32_t ShardRouter::ring_lookup_(std::uint64_t key) const {
    const std::uint64_t point = util::hash_mix(kKeySalt, key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const std::pair<std::uint64_t, std::uint32_t>& node, std::uint64_t p) {
            return node.first < p;
        });
    if (it == ring_.end()) it = ring_.begin();  // wrap: the ring is circular
    return it->second;
}

std::uint32_t ShardRouter::pick_shard_(const std::optional<std::uint64_t>& shard_key) const {
    const std::size_t n = shards_.size();
    if (n == 1) return 0;
    switch (options_.placement) {
        case Placement::consistent_hash:
            if (shard_key.has_value()) return ring_lookup_(*shard_key);
            break;  // keyless: fall back to round-robin below
        case Placement::least_loaded: {
            std::size_t best = 0;
            std::size_t best_rows = std::numeric_limits<std::size_t>::max();
            for (std::size_t s = 0; s < n; ++s) {
                const std::size_t rows = shards_[s]->inflight_rows();
                if (rows < best_rows) {
                    best_rows = rows;
                    best = s;
                }
            }
            return static_cast<std::uint32_t>(best);
        }
        case Placement::round_robin:
            break;
    }
    return static_cast<std::uint32_t>(round_robin_.fetch_add(1, std::memory_order_relaxed) % n);
}

std::uint64_t ShardRouter::swap_all(const BundleSnapshot& snapshot) const {
    // Capture every shard's current state first: the rollback path must be
    // able to restore shards 0..k-1 without re-validating anything.
    std::vector<std::shared_ptr<const InferenceSession::ServingState>> previous;
    previous.reserve(shards_.size());
    for (const auto& shard : shards_) previous.push_back(shard->serving_state());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        try {
            // Per-shard copy: each shard validates independently and owns
            // its own product cache, exactly as at construction.
            shards_[s]->swap_bundle(snapshot);
        } catch (const Error& error) {
            for (std::size_t r = 0; r < s; ++r) {
                shards_[r]->install_serving_state_(previous[r]);
            }
            throw RotationError("ShardRouter::swap_all: shard " + std::to_string(s) +
                                " refused the swap; rolled " + std::to_string(s) +
                                " shard(s) back to epoch " +
                                std::to_string(previous.empty() ? 0 : previous[0]->epoch) +
                                ": " + error.what());
        }
    }
    return snapshot.epoch;
}

std::size_t ShardRouter::inflight_rows() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->inflight_rows();
    return total;
}

std::future<Response> ShardRouter::submit(Request request) const {
    const std::size_t rows = request.rows.rows();
    // Admission first, placement second: an overloaded fleet refuses in
    // O(shards) without touching any queue.  priority > 0 rides through up
    // to the configured headroom multiple of the watermark.
    const double headroom = std::max(options_.priority_headroom, 1.0);
    const std::size_t limit =
        request.priority > 0
            ? static_cast<std::size_t>(static_cast<double>(watermark_) * headroom)
            : watermark_;
    if (rows > 0 && inflight_rows() + rows > limit) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        Response response;
        response.status = Status::overloaded;
        return resolved_response(std::move(response));
    }
    const std::uint32_t shard = pick_shard_(request.shard_key);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    routed_[shard].fetch_add(1, std::memory_order_relaxed);
    // Non-blocking on the shard too: a full shard queue resolves as
    // overloaded rather than stalling the router's caller.
    return shards_[shard]->try_predict_async(std::move(request), shard);
}

std::vector<int> ShardRouter::predict(const util::Matrix<float>& rows) const {
    return shards_[pick_shard_(std::nullopt)]->predict(rows);
}

int ShardRouter::predict_row(std::span<const float> row) const {
    return shards_[pick_shard_(std::nullopt)]->predict_row(row);
}

RouterStats ShardRouter::stats() const {
    RouterStats stats;
    stats.accepted = accepted_.load(std::memory_order_relaxed);
    stats.shed = shed_.load(std::memory_order_relaxed);
    stats.inflight_rows = inflight_rows();
    stats.routed_per_shard.reserve(routed_.size());
    for (const auto& count : routed_) {
        stats.routed_per_shard.push_back(count.load(std::memory_order_relaxed));
    }
    return stats;
}

}  // namespace hdlock::api
