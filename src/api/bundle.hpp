#pragma once

/// \file bundle.hpp
/// The `.hdlk` deployment artifact: one versioned file per deployment.
///
/// Replaces the five loose files (store.bin, key.bin, mapping.bin,
/// model.hdc, disc.bin) the tooling used to hand-wire.  A bundle comes in
/// two variants mirroring the paper's trust boundary (Sec. 3.1):
///
///   owner   public store + SECRET section (LockKey + ValueMapping)
///           [+ discretizer] [+ model]           -- stays with the owner
///   device  public store + MATERIALIZED encoder state (FeaHVs + level-
///           ordered ValHVs) [+ discretizer] [+ model] -- ships to the field
///
/// export_device() strips the SECRET section and replaces it with the
/// materialized Eq. 9 products, so a device artifact is *physically*
/// incapable of leaking the key: the bytes are simply not in the file.
///
/// On-disk layout (util/serialize.hpp primitives, little-endian).  Version 3
/// is the current write format; version 1 and 2 files still load (their
/// epoch defaults to 0 — pre-rotation artifacts are epoch zero by
/// definition).
///
///   "HDLK"  u32 version  u8 kind(0=owner,1=device)  u64 tie_seed  u8 flags
///   v3+: u64 epoch   (key-rotation generation; see api::Owner::rotate)
///   v2: "PUB2" store shape + 64-byte-aligned word blocks
///   v1: "PUBS" PublicStore (per-HV tagged)
///   owner:  "SECR" LockKey  "VMAP" u32 count, u32 slots...
///   device v2: "SEN2" u64 n_features, u64 n_levels, u64 dim
///              + aligned FeaHV word block + aligned ValHV word block
///   device v1: "SENC" u64 n_features {BinaryHV...} u64 n_levels {BinaryHV...}
///   flags bit0: "DSC1" MinMaxDiscretizer        (fitted discretizer)
///   flags bit1: "MDL2" (v2) / "MDL1" (v1)       (trained model)
///   "HEND"
///
/// The trailing HEND tag makes truncation detectable even when the optional
/// sections happen to parse.
///
/// The v2 alignment rule: every bulk array (store bases/values, materialized
/// FeaHVs/ValHVs, model class HVs) starts at a 64-byte file offset, padded
/// with zero bytes that the reader verifies.  That is what lets
/// open_mapped() hand the stores and the model *views into the mapping*
/// (util::MappedFile) instead of copied vectors: device startup touches the
/// header and shape metadata, and the megabytes of hypervector words fault
/// in lazily as they are served.  A bundle loaded this way keeps the
/// mapping alive through `backing`.

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "core/locked_encoder.hpp"
#include "core/stores.hpp"
#include "hdc/discretize.hpp"
#include "hdc/model.hpp"
#include "util/confinement.hpp"
#include "util/mapped_file.hpp"

namespace hdlock::api {

struct BundleSnapshot;  // api/inference_session.hpp

enum class BundleKind : std::uint8_t {
    owner = 0,  ///< carries the key; never leaves the owner's infrastructure
    device = 1  ///< key stripped; holds materialized encoder state instead
};

struct DeploymentBundle {
    static constexpr std::uint32_t kFormatVersion = 3;

    BundleKind kind = BundleKind::owner;
    std::uint64_t tie_seed = 0;
    /// Key-rotation generation: 0 for a fresh provision (and for every
    /// v1/v2 artifact), bumped by api::Owner::rotate.  Serving stamps it
    /// into Response::epoch so a hot swap is observable per request.
    std::uint64_t epoch = 0;
    std::shared_ptr<const PublicStore> store;

    /// Owner-only secret section; never populated for device bundles.
    /// A bundle holding one is move-only (LockKey forbids copies) — the
    /// copy_without_secrets() helper below is the deliberate escape hatch.
    HDLOCK_SECRET std::optional<LockKey> key;
    HDLOCK_SECRET std::optional<ValueMapping> value_mapping;

    /// Device-only materialized encoder state (Eq. 9 products and the
    /// level-ordered ValHVs); empty for owner bundles.
    std::vector<hdc::BinaryHV> feature_hvs;
    std::vector<hdc::BinaryHV> value_hvs;

    std::optional<hdc::MinMaxDiscretizer> discretizer;
    std::optional<hdc::HdcModel> model;

    /// Keeps the mmap alive when this bundle was produced by open_mapped():
    /// store/model/encoder-state hypervectors are then *views* into these
    /// bytes.  Null for stream-loaded bundles (everything owned).
    std::shared_ptr<const util::MappedFile> backing;

    bool has_key() const noexcept { return key.has_value(); }
    bool is_mapped() const noexcept { return backing != nullptr; }
    bool has_discretizer() const noexcept { return discretizer.has_value(); }
    bool has_model() const noexcept { return model.has_value(); }

    /// Assembles an owner bundle from a provisioned deployment (reads the
    /// SecureStore, which must be unsealed).
    static DeploymentBundle from_deployment(const Deployment& deployment);

    void save(util::BinaryWriter& writer) const;
    static DeploymentBundle load(util::BinaryReader& reader);

    /// Writes the legacy v1 layout (per-HV tagged sections, no alignment).
    /// Kept so the v1 backward-compat load path stays covered by tests and
    /// old tooling can be fed on demand; new artifacts should use save().
    void save_v1(util::BinaryWriter& writer) const;

    /// Writes the v2 layout (aligned bulk blocks, no epoch field).  Kept so
    /// the v2 compat path — "old artifact loads as epoch 0" — stays covered
    /// by tests; new artifacts should use save().
    void save_v2(util::BinaryWriter& writer) const;

    /// Crash-safe persistence (util::atomic_file_write): serialize to a
    /// sibling temp, fsync, rename over `path`, fsync the directory.  A
    /// failure at any step — including the injected short-write / fsync /
    /// rename failpoints — leaves the previous file intact and no torn
    /// bytes at `path`.
    void save_atomic(const std::filesystem::path& path) const;

    /// The serving-facing view of this bundle for
    /// InferenceSession::swap_bundle / ShardRouter::swap_all: epoch +
    /// reconstructed encoder + discretizer/model copies + the mmap anchor.
    /// The owner-side types stay out of the serving layer; only this
    /// snapshot crosses.
    BundleSnapshot make_snapshot() const;

    /// Zero-copy startup: maps `path` (util::MappedFile, with its portable
    /// read fallback) and loads from the mapping, aliasing every v2 bulk
    /// section instead of copying it.  The returned bundle keeps the
    /// mapping alive through `backing`; v1 files load correctly but copy.
    /// `advice` forwards to MappedFile::open — Advice::willneed starts
    /// kernel readahead for the whole artifact at map time, trading a
    /// little I/O eagerness for no demand-fault stalls on the first served
    /// batch (serving bundles are read in full almost immediately).
    static DeploymentBundle open_mapped(
        const std::filesystem::path& path,
        util::MappedFile::Advice advice = util::MappedFile::Advice::none);

    /// Owner-side persistence; throws ContractViolation when called on a
    /// bundle without a key (a device bundle cannot be promoted to owner).
    void save_owner(const std::filesystem::path& path) const;
    static DeploymentBundle load_owner(const std::filesystem::path& path);

    /// Device bundle, as produced by export_device(). Throws FormatError
    /// when the file is an owner bundle: device-side code must never even
    /// transit key bytes through its address space.
    static DeploymentBundle load_device(const std::filesystem::path& path);

    /// Loads either variant (owner tooling that inspects artifacts).
    static DeploymentBundle load_any(const std::filesystem::path& path);

    /// The key-free field artifact: public store + materialized encoder
    /// state + whatever discretizer/model this bundle carries.
    DeploymentBundle export_device() const;
    void export_device(const std::filesystem::path& path) const;

    /// Duplicates everything except the secret section (key/value mapping
    /// stay empty).  The only sanctioned way to copy a bundle — bundles are
    /// move-only because the secret section is.
    DeploymentBundle copy_without_secrets() const;

    /// Builds a device bundle from an already-materialized encoder (no
    /// Eq. 9 re-computation); the single source of the device-bundle shape,
    /// shared by export_device() and api::Owner.
    static DeploymentBundle device_from_materialized(
        const LockedEncoder& encoder, std::shared_ptr<const PublicStore> store,
        std::optional<hdc::MinMaxDiscretizer> discretizer, std::optional<hdc::HdcModel> model);

    /// Reconstructs the encoder this bundle describes: a LockedEncoder for
    /// owner bundles (rebuilt from the key), a SealedEncoder for device
    /// bundles (from the materialized state).
    std::shared_ptr<const hdc::Encoder> make_encoder() const;

    /// Size of the serialized artifact in bytes (serializes to memory; used
    /// for deployment-cost reporting).
    std::uint64_t serialized_bytes() const;
};

}  // namespace hdlock::api
