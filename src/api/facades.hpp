#pragma once

/// \file facades.hpp
/// The paper's two roles as types: api::Owner and api::Device.
///
/// HDLock's entire argument (Sec. 3-4) is a privilege split — the owner
/// holds the key in tamper-proof memory, the device/attacker sees only the
/// public store and encoding outputs.  These facades make that split a
/// *type-level* boundary instead of a calling convention:
///
///   Owner   provision / train / audit / rotate the key / export bundles.
///           Privileged accessors (key(), value_mapping()) exist here and
///           only here.
///   Device  what ships to the field: a SealedEncoder (materialized
///           hypervectors, no key member), the public store, and optionally
///           a discretizer + model for serving.  There is no method on
///           Device that can return key material — red-team code handed a
///           Device cannot reach the key by construction.
///
/// Both sides serve batches through api::InferenceSession.  The older free
/// functions (provision(), HdcClassifier::fit, ...) remain as the layer
/// underneath and keep working for one more release; new code should start
/// here.

#include <filesystem>
#include <optional>

#include "api/bundle.hpp"
#include "api/inference_session.hpp"
#include "api/sealed_encoder.hpp"
#include "api/shard_router.hpp"
#include "core/key_tools.hpp"
#include "core/locked_encoder.hpp"
#include "data/dataset.hpp"
#include "hdc/classifier.hpp"
#include "util/confinement.hpp"

namespace hdlock::api {

struct TrainOptions {
    hdc::ModelKind kind = hdc::ModelKind::binary;
    int retrain_epochs = 10;
    hdc::DiscretizerMode discretizer_mode = hdc::DiscretizerMode::global;
    std::uint64_t seed = 1;
};

/// Knobs for Owner::rotate — the full key-rotation pipeline (rotate_key()
/// underneath is the key-only primitive).
struct RotateOptions {
    /// Seed for the fresh sub-keys (core/key_tools.hpp rekey).
    std::uint64_t seed = 1;
    /// How to retrain the model against the rotated encoder.
    TrainOptions train{};
};

/// What one Owner::rotate call did, for logs and the CLI.
struct RotationReport {
    std::uint64_t previous_epoch = 0;
    /// The new generation: previous_epoch + 1.  Every bundle the owner
    /// produces from here on carries it.
    std::uint64_t epoch = 0;
    /// Training-set accuracy of the retrained model.
    double train_accuracy = 0.0;
};

class Device;

/// The privileged side of a deployment.
class HDLOCK_OWNER_ONLY Owner {
public:
    /// Provisions a fresh deployment (public store, key, locked encoder).
    static Owner provision(const DeploymentConfig& config);

    /// Restores an owner from an owner `.hdlk` bundle; throws FormatError
    /// on device bundles (their key was stripped — nothing to own).
    static Owner load(const std::filesystem::path& path);
    void save(const std::filesystem::path& path) const;

    /// Crash-safe save (DeploymentBundle::save_atomic): serialize → sibling
    /// temp → fsync → rename.  A failure at any step — power loss included —
    /// leaves whatever was previously at `path` intact and readable.
    void save_atomic(const std::filesystem::path& path) const;

    /// Fits discretizer + HDC model through the locked encoder; returns the
    /// training-set accuracy. Replaces any previously trained model.
    double train(const data::Dataset& train_set, const TrainOptions& options = {});
    bool trained() const noexcept { return model_.has_value(); }

    /// Accuracy on a labeled dataset (requires a trained model).
    double evaluate(const data::Dataset& dataset) const;
    /// Single-row / batched predict, following the predict-surface
    /// convention in inference_session.hpp (predict() mints a session per
    /// call, like evaluate(); open a session for repeated batches).
    int predict_row(std::span<const float> row) const;
    std::vector<int> predict(const util::Matrix<float>& rows) const;

    /// Pre-seal key hygiene: bounds + feature-aliasing + entropy report.
    KeyAuditReport audit() const;

    /// Replaces the key after a suspected leak (core/key_tools.hpp rekey):
    /// fresh sub-keys sharing no layer pair with the old key, encoder
    /// re-materialized, epoch bumped.  The trained model is discarded — it
    /// was fitted against the old feature hypervectors; retrain before
    /// serving (or use rotate(), which does both).
    void rotate_key(std::uint64_t seed);

    /// The full zero-downtime rotation pipeline: rekey + retrain on
    /// `train_set` + epoch bump, all-or-nothing.  On success the owner is
    /// the next generation — persist with save_atomic / export_device_atomic
    /// and push to live serving via InferenceSession::swap_bundle or
    /// ShardRouter::swap_all.  On failure throws RotationError and leaves
    /// this owner byte-for-byte unchanged (old key, old model, old epoch).
    RotationReport rotate(const data::Dataset& train_set, const RotateOptions& options = {});

    /// Key-rotation generation stamped into every bundle this owner
    /// produces: 0 for a fresh provision, bumped by rotate()/rotate_key().
    std::uint64_t epoch() const noexcept { return epoch_; }

    /// The key-free field artifact / in-memory device.
    void export_device(const std::filesystem::path& path) const;
    /// Crash-safe flavour of export_device (same guarantee as save_atomic):
    /// the rotation runbook overwrites the live device artifact in place,
    /// and a torn write there would brick every device that restarts.
    void export_device_atomic(const std::filesystem::path& path) const;
    Device make_device() const;

    /// Owner-side batched serving (e.g. scoring a validation set).
    InferenceSession open_session(SessionOptions options = {}) const;

    /// Owner-side shard router — the same fleet shape production devices
    /// run, e.g. for stress-testing a deployment's SLOs before export.
    ShardRouter open_router(RouterOptions options = {}) const;

    // Privileged accessors — these exist only on the Owner facade.
    HDLOCK_SECRET const LockKey& key() const { return deployment_.secure->key(); }
    HDLOCK_SECRET const ValueMapping& value_mapping() const {
        return deployment_.secure->value_mapping();
    }
    const PublicStore& store() const noexcept { return *deployment_.store; }
    std::shared_ptr<const LockedEncoder> encoder() const noexcept { return deployment_.encoder; }
    const hdc::HdcModel& model() const;
    const hdc::MinMaxDiscretizer& discretizer() const;

    /// Bridge to the pre-api surface (attack replays and legacy tooling
    /// take a Deployment). The SecureStore is the owner's — still unsealed.
    const Deployment& deployment() const noexcept { return deployment_; }

    /// Snapshot as a bundle value (mostly for size reporting / tests).
    DeploymentBundle to_bundle() const;

    /// The device bundle built from the encoder's already-materialized
    /// hypervectors (no Eq. 9 re-computation); what export_device() writes.
    DeploymentBundle to_device_bundle() const;

private:
    Owner() = default;

    Deployment deployment_;
    std::optional<hdc::MinMaxDiscretizer> discretizer_;
    std::optional<hdc::HdcModel> model_;
    std::uint64_t epoch_ = 0;
};

/// The untrusted side: what actually ships. Holds no key, in memory or on
/// disk, and exposes no API that could derive one.
class Device {
public:
    /// Loads a device `.hdlk`; refuses owner bundles so key bytes never
    /// transit device-side code.
    static Device load(const std::filesystem::path& path);

    /// Zero-copy startup: memory-maps a v2 device `.hdlk` and serves
    /// straight out of the mapping (the store, materialized encoder state
    /// and model class HVs are views; see DeploymentBundle::open_mapped).
    /// Same owner-bundle refusal as load(); v1 files work but copy.
    /// Advice::willneed asks the kernel to read the whole artifact ahead at
    /// map time, so cold-start serving does not stall on demand faults.
    static Device open_mapped(
        const std::filesystem::path& path,
        util::MappedFile::Advice advice = util::MappedFile::Advice::none);

    /// Builds a device directly from a device bundle (e.g. Owner::make_device).
    explicit Device(DeploymentBundle bundle);

    /// Single-row / batched predict, following the predict-surface
    /// convention in inference_session.hpp (span of raw features in, typed
    /// labels out; these reuse one session built at load time).
    int predict_row(std::span<const float> row) const;
    std::vector<int> predict(const util::Matrix<float>& rows) const;
    double evaluate(const data::Dataset& dataset) const;
    InferenceSession open_session(SessionOptions options = {}) const;
    /// The serving fleet: N sessions over this device's (possibly mapped)
    /// encoder — shards share the mmap, so memory stays ~1x the bundle.
    ShardRouter open_router(RouterOptions options = {}) const;
    bool can_serve() const noexcept { return discretizer_.has_value() && model_.has_value(); }

    /// The sealed encoder, as the base interface: no key, no store handle.
    const hdc::Encoder& encoder() const noexcept { return *encoder_; }
    std::shared_ptr<const hdc::Encoder> encoder_ptr() const noexcept { return encoder_; }

    /// The attacker-visible public memory (it ships with the device).
    const PublicStore& store() const noexcept { return *store_; }
    const hdc::HdcModel& model() const;
    const hdc::MinMaxDiscretizer& discretizer() const;

    /// Key-rotation generation of the loaded bundle (0 for pre-rotation
    /// v1/v2 artifacts); sessions and routers opened here stamp it into
    /// Response::epoch.
    std::uint64_t epoch() const noexcept { return epoch_; }

private:
    std::shared_ptr<const PublicStore> store_;
    std::shared_ptr<const SealedEncoder> encoder_;
    /// Keeps the mmap alive for devices built from a mapped bundle (their
    /// hypervectors are views into these bytes); null otherwise.
    std::shared_ptr<const util::MappedFile> backing_;
    std::optional<hdc::MinMaxDiscretizer> discretizer_;
    std::optional<hdc::HdcModel> model_;
    std::uint64_t epoch_ = 0;
    /// Built once at construction when the bundle can serve, so the predict
    /// conveniences don't copy the model per call (rows_served() accumulates
    /// across them); open_session() still mints fresh sessions on demand.
    std::optional<InferenceSession> session_;
};

}  // namespace hdlock::api
