#pragma once

/// \file api.hpp
/// Umbrella header for the deployment & serving layer.
///
/// The canonical way to use this library:
///
///     auto owner = api::Owner::provision(config);   // privileged side
///     owner.train(train_set);
///     owner.save("deployment.hdlk");                // owner artifact
///     owner.export_device("device.hdlk");           // key-free artifact
///
///     auto device = api::Device::open_mapped("device.hdlk");  // zero-copy
///     auto session = device.open_session({.n_threads = 8});
///     std::vector<int> labels = session.predict(batch);       // pooled
///     auto future = session.predict_async(more_rows);         // micro-batched
///
///     auto router = device.open_router({.n_shards = 4});      // the fleet
///     auto response = router.submit({.rows = std::move(rows),
///                                    .deadline = util::Deadline::after(5ms)});
///
/// See facades.hpp for the privilege model, bundle.hpp for the `.hdlk`
/// format, inference_session.hpp for the serving contract, request.hpp +
/// shard_router.hpp for the typed request path and the fleet layer.

#include "api/bundle.hpp"            // IWYU pragma: export
#include "api/facades.hpp"           // IWYU pragma: export
#include "api/inference_session.hpp" // IWYU pragma: export
#include "api/request.hpp"           // IWYU pragma: export
#include "api/sealed_encoder.hpp"    // IWYU pragma: export
#include "api/shard_router.hpp"      // IWYU pragma: export
