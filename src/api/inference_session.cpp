#include "api/inference_session.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/fault_inject.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace hdlock::api {

// ---------------------------------------------------------------------------
// SubmitQueue
// ---------------------------------------------------------------------------

SubmitQueue::SubmitQueue(std::size_t max_rows) : max_rows_(std::max<std::size_t>(max_rows, 1)) {}

void SubmitQueue::push(AsyncRequest request) {
    const std::size_t rows = request.rows.rows();
    const util::MutexLock lock(mutex_);
    // An oversized request is admitted once the queue is empty — it could
    // never satisfy the cap, and the dispatcher takes whole requests, so
    // admitting it alone keeps FIFO order and bounds.
    while (!closed_ && queued_rows_ + rows > max_rows_ && !requests_.empty()) {
        not_full_.wait(mutex_);
    }
    if (closed_) throw ShutdownError("SubmitQueue: session is shutting down");
    queued_rows_ += rows;
    requests_.push_back(std::move(request));
    not_empty_.notify_one();
}

Status SubmitQueue::try_submit(AsyncRequest&& request) {
    const std::size_t rows = request.rows.rows();
    const util::MutexLock lock(mutex_);
    if (closed_) throw ShutdownError("SubmitQueue: session is shutting down");
    // Same admission rule as push() (oversized requests go in alone once
    // the queue is empty), but a full queue refuses instead of blocking —
    // the request is left untouched for the caller to resolve as shed.
    if (queued_rows_ + rows > max_rows_ && !requests_.empty()) return Status::overloaded;
    queued_rows_ += rows;
    requests_.push_back(std::move(request));
    not_empty_.notify_one();
    return Status::ok;
}

std::vector<AsyncRequest> SubmitQueue::pop_batch(std::size_t max_batch,
                                                 std::chrono::microseconds delay) {
    max_batch = std::max<std::size_t>(max_batch, 1);
    const util::MutexLock lock(mutex_);
    while (!closed_ && requests_.empty()) not_empty_.wait(mutex_);
    if (requests_.empty()) return {};  // closed and drained

    // Coalescing window: give concurrent small callers `delay` to pile on,
    // cut short as soon as a full micro-batch is queued.
    if (delay.count() > 0 && queued_rows_ < max_batch && !closed_) {
        // hdlock-lint: allow(nondeterminism) — the coalescing deadline is a
        // wall-clock latency bound; it shapes batching, never per-row labels.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!closed_ && queued_rows_ < max_batch) {
            if (not_empty_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
        }
    }

    std::vector<AsyncRequest> batch;
    std::size_t rows = 0;
    while (!requests_.empty()) {
        const std::size_t next = requests_.front().rows.rows();
        if (!batch.empty() && rows + next > max_batch) break;
        rows += next;
        queued_rows_ -= next;
        batch.push_back(std::move(requests_.front()));
        requests_.pop_front();
        if (rows >= max_batch) break;
    }
    not_full_.notify_all();
    return batch;
}

void SubmitQueue::close() {
    {
        const util::MutexLock lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
}

bool SubmitQueue::closed() const {
    const util::MutexLock lock(mutex_);
    return closed_;
}

std::size_t SubmitQueue::queued_rows() const {
    const util::MutexLock lock(mutex_);
    return queued_rows_;
}

// ---------------------------------------------------------------------------
// Internal runtime state
// ---------------------------------------------------------------------------

/// Per-worker pinned buffers: reused across every batch the session serves,
/// so the steady-state row performs zero heap allocations.
struct InferenceSession::WorkerState {
    hdc::EncoderScratch scratch;
    hdc::IntHV sums;
    hdc::BinaryHV query;
    std::uint64_t epoch = 0;
    bool primed = false;

    /// Lazy epoch invalidation: the first row a worker serves on a new
    /// epoch drops buffers sized for the old epoch's shapes and starts
    /// fresh.  Workers the new epoch never touches keep their old scratch
    /// (harmless — it is plain capacity) until they next serve.
    void refresh(std::uint64_t serving_epoch) {
        if (primed && epoch == serving_epoch) return;
        scratch = hdc::EncoderScratch{};
        sums = hdc::IntHV{};
        query = hdc::BinaryHV{};
        epoch = serving_epoch;
        primed = true;
    }
};

/// Everything mutable behind the serving fast path, kept behind one stable
/// pointer: the persistent pool with its slot-pinned scratch, the caller
/// free-list, and the lazily-started async core.  Distinct from the RCU'd
/// ServingState: the runtime (threads, scratch) survives epoch swaps; the
/// serving state (encoder/model/caches) is what swaps.
struct InferenceSession::Runtime {
    /// Free-list of WorkerStates for the inline paths (predict_row, small
    /// batches) where the caller thread does the work itself: concurrent
    /// callers each lease their own scratch for one mutex handoff — far
    /// cheaper than the per-call allocations the old cold path made.
    class ScratchFreeList {
    public:
        std::unique_ptr<WorkerState> acquire() HDLOCK_EXCLUDES(mutex_) {
            {
                const util::MutexLock lock(mutex_);
                if (!free_.empty()) {
                    auto state = std::move(free_.back());
                    free_.pop_back();
                    return state;
                }
            }
            return std::make_unique<WorkerState>();
        }

        void release(std::unique_ptr<WorkerState> state) HDLOCK_EXCLUDES(mutex_) {
            const util::MutexLock lock(mutex_);
            free_.push_back(std::move(state));
        }

    private:
        util::Mutex mutex_;
        std::vector<std::unique_ptr<WorkerState>> free_ HDLOCK_GUARDED_BY(mutex_);
    };

    class ScratchLease {
    public:
        explicit ScratchLease(ScratchFreeList& list) : list_(list), state_(list.acquire()) {}
        ~ScratchLease() { list_.release(std::move(state_)); }
        ScratchLease(const ScratchLease&) = delete;
        ScratchLease& operator=(const ScratchLease&) = delete;

        WorkerState& operator*() noexcept { return *state_; }

    private:
        ScratchFreeList& list_;
        std::unique_ptr<WorkerState> state_;
    };

    // Pool first / async last: the async dispatcher drives batches through
    // the pool, so reverse destruction order shuts the dispatcher down
    // before the workers go away.
    std::unique_ptr<util::ThreadPool> pool;
    std::vector<std::unique_ptr<WorkerState>> slots;  // indexed by pool slot ID
    ScratchFreeList caller_scratch;

    struct AsyncCore {
        const InferenceSession* session;
        SubmitQueue queue;
        /// Effective coalescing delay in µs, read by the dispatcher each
        /// cycle and rewritten by the adaptive governor (atomic so tests
        /// and current_queue_delay() may read it from other threads).
        std::atomic<std::int64_t> queue_delay_us;
        // Governor state below is touched by the dispatcher thread only.
        double arrival_rate = 0.0;  // EWMA, rows per µs
        bool governor_primed = false;
        util::SteadyTime last_pop{};
        util::Thread dispatcher;

        AsyncCore(const InferenceSession* owner, std::size_t max_rows)
            : session(owner), queue(max_rows), queue_delay_us(owner->max_queue_delay_.count()) {
            dispatcher = util::Thread([this] { run(); });
        }

        ~AsyncCore() {
            queue.close();
            dispatcher.join();
        }

        void run() {
            for (;;) {
                const std::chrono::microseconds delay(
                    queue_delay_us.load(std::memory_order_relaxed));
                std::vector<AsyncRequest> batch = queue.pop_batch(session->max_batch_, delay);
                if (batch.empty()) return;  // closed and drained
                if (queue.closed()) {
                    // Shutdown leftovers: the session is being destroyed, so
                    // serving now would race teardown.  Fail every queued
                    // future with a typed broken-promise error instead of
                    // hanging or abandoning it.
                    fail_shutdown(batch);
                    continue;
                }
                if (session->adaptive_queue_delay_) update_governor(batch);
                serve(batch);
            }
        }

        void fail_shutdown(std::vector<AsyncRequest>& batch) {
            for (auto& request : batch) {
                resolve_error(request,
                              std::make_exception_ptr(ShutdownError(
                                  "InferenceSession: destroyed with queued predict_async "
                                  "work; the request was never served")));
            }
        }

        /// Adaptive max_queue_delay: estimate the request arrival rate from
        /// rows popped per dispatch cycle (EWMA), then wait only as long as
        /// coalescing can actually pay — zero when arrivals are too sparse
        /// for a second request to join the window, otherwise just long
        /// enough to fill a batch at the measured rate, capped at the
        /// configured maximum.  Shapes batching/latency only, never labels.
        void update_governor(const std::vector<AsyncRequest>& batch) {
            std::size_t rows = 0;
            for (const auto& request : batch) rows += request.rows.rows();
            const util::SteadyTime now = util::steady_now();
            if (!governor_primed) {
                governor_primed = true;
                last_pop = now;
                return;
            }
            const double elapsed_us = std::max(
                std::chrono::duration<double, std::micro>(now - last_pop).count(), 1.0);
            last_pop = now;
            const double rate = static_cast<double>(rows) / elapsed_us;
            arrival_rate = arrival_rate == 0.0 ? rate : 0.8 * arrival_rate + 0.2 * rate;
            const double max_us = static_cast<double>(session->max_queue_delay_.count());
            double target_us = 0.0;
            if (arrival_rate * max_us >= 1.0) {
                target_us = std::min(
                    max_us, static_cast<double>(session->max_batch_) / arrival_rate);
            }
            queue_delay_us.store(static_cast<std::int64_t>(target_us),
                                 std::memory_order_relaxed);
        }

        /// Settles the in-flight accounting for a request.  Called *before*
        /// the promise is resolved in every resolve_* path, so a caller that
        /// has observed the response also observes the decremented counter
        /// (the router's watermark and tests rely on that ordering).
        void finish(const AsyncRequest& request) {
            session->inflight_rows_.fetch_sub(static_cast<std::int64_t>(request.rows.rows()),
                                              std::memory_order_relaxed);
        }

        void resolve_labels(AsyncRequest& request, std::vector<int> labels, util::SteadyTime now,
                            std::uint64_t epoch) {
            finish(request);
            if (request.typed) {
                Response response;
                response.labels = std::move(labels);
                response.status = Status::ok;
                response.shard_id = request.shard_id;
                response.epoch = epoch;
                response.queue_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - request.enqueued_at);
                request.typed_promise.set_value(std::move(response));
            } else {
                request.promise.set_value(std::move(labels));
            }
        }

        void resolve_status(AsyncRequest& request, Status status, util::SteadyTime now,
                            std::uint64_t epoch) {
            finish(request);
            Response response;
            response.status = status;
            response.shard_id = request.shard_id;
            response.epoch = epoch;
            response.queue_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - request.enqueued_at);
            request.typed_promise.set_value(std::move(response));
        }

        void resolve_error(AsyncRequest& request, std::exception_ptr error) {
            finish(request);
            if (request.typed) {
                request.typed_promise.set_exception(std::move(error));
            } else {
                request.promise.set_exception(std::move(error));
            }
        }

        void serve_one(AsyncRequest& request, util::SteadyTime now, const ServingState& state) {
            try {
                resolve_labels(request, session->predict_with_(state, request.rows), now,
                               state.epoch);
            } catch (...) {
                resolve_error(request, std::current_exception());
            }
        }

        void serve(std::vector<AsyncRequest>& batch) {
            // One snapshot per dispatched batch: every request in the batch
            // is served — and its Response::epoch stamped — by the same
            // epoch, even when swap_bundle() installs a new one mid-batch.
            // The snapshot pins the epoch's state (mmap included) until the
            // batch resolves.
            const std::shared_ptr<const ServingState> state = session->serving_state();
            // Pre-encode drop: cancelled or expired requests resolve here,
            // before any discretize/encode work is spent on rows whose
            // answer nobody is waiting for.
            const util::SteadyTime now = util::steady_now();
            std::vector<AsyncRequest> live;
            live.reserve(batch.size());
            for (auto& request : batch) {
                if (request.typed && request.cancel.cancelled()) {
                    resolve_status(request, Status::cancelled, now, state->epoch);
                } else if (request.typed && request.deadline.expired_at(now)) {
                    resolve_status(request, Status::deadline_exceeded, now, state->epoch);
                } else {
                    live.push_back(std::move(request));
                }
            }
            if (live.empty()) return;
            if (live.size() == 1) {
                serve_one(live.front(), now, *state);
                return;
            }
            std::size_t resolved = 0;
            try {
                // Fuse the micro-batch into one matrix so dispatch, scratch
                // reuse and worker fan-out amortise across every caller.
                std::size_t total = 0;
                for (const auto& request : live) total += request.rows.rows();
                util::Matrix<float> fused(total, state->encoder->n_features());
                const std::span<float> fused_values = fused.data();
                std::size_t at = 0;
                for (const auto& request : live) {
                    const auto source = request.rows.data();
                    std::copy(source.begin(), source.end(),
                              fused_values.begin() +
                                  static_cast<std::ptrdiff_t>(at * fused.cols()));
                    at += request.rows.rows();
                }
                const std::vector<int> labels = session->predict_with_(*state, fused);
                at = 0;
                for (auto& request : live) {
                    const std::size_t rows = request.rows.rows();
                    resolve_labels(
                        request,
                        std::vector<int>(labels.begin() + static_cast<std::ptrdiff_t>(at),
                                         labels.begin() + static_cast<std::ptrdiff_t>(at + rows)),
                        now, state->epoch);
                    ++resolved;
                    at += rows;
                }
            } catch (...) {
                // Failure scoping: a fused batch mixes independent callers,
                // so one poisoned request must not fail its peers.  Retry
                // each not-yet-resolved request individually — the failure
                // lands only on whichever request reproduces it, and the
                // innocent ones pay a re-encode (the cheap side of the
                // trade).
                for (std::size_t r = resolved; r < live.size(); ++r) {
                    serve_one(live[r], now, *state);
                }
            }
        }
    };

    // `async` is set exactly once (first predict_async call) and never
    // reset; the guard makes the lazy start race-free and lets the move
    // constructor re-point a live dispatcher safely.
    util::Mutex async_init;
    std::unique_ptr<AsyncCore> async HDLOCK_GUARDED_BY(async_init);
};

// ---------------------------------------------------------------------------
// InferenceSession
// ---------------------------------------------------------------------------

InferenceSession::InferenceSession(std::shared_ptr<const hdc::Encoder> encoder,
                                   hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                                   SessionOptions options)
    : min_rows_per_thread_(std::max<std::size_t>(options.min_rows_per_thread, 1)),
      dispatch_(options.dispatch),
      max_batch_(std::max<std::size_t>(options.max_batch, 1)),
      max_queue_delay_(options.max_queue_delay),
      max_queue_rows_(std::max<std::size_t>(options.max_queue_rows, 1)),
      adaptive_queue_delay_(options.adaptive_queue_delay),
      fused_mode_(options.fused_predict),
      use_product_cache_(options.use_product_cache),
      product_cache_max_bytes_(options.product_cache_max_bytes),
      runtime_(std::make_unique<Runtime>()) {
    if (options.kernel_backend) util::kernels::set_backend(*options.kernel_backend);
    n_threads_ = options.n_threads != 0 ? options.n_threads : util::hardware_concurrency();
    serving_.store(build_serving_state_(options.epoch, std::move(encoder),
                                        std::move(discretizer), std::move(model), nullptr),
                   std::memory_order_release);
    if (dispatch_ == DispatchMode::pooled && n_threads_ > 1) {
        runtime_->pool = std::make_unique<util::ThreadPool>(n_threads_);
        runtime_->slots.reserve(n_threads_);
        for (std::size_t slot = 0; slot < n_threads_; ++slot) {
            runtime_->slots.push_back(std::make_unique<WorkerState>());
        }
    }
}

InferenceSession::InferenceSession(InferenceSession&& other) noexcept
    : n_threads_(other.n_threads_),
      min_rows_per_thread_(other.min_rows_per_thread_),
      dispatch_(other.dispatch_),
      max_batch_(other.max_batch_),
      max_queue_delay_(other.max_queue_delay_),
      max_queue_rows_(other.max_queue_rows_),
      adaptive_queue_delay_(other.adaptive_queue_delay_),
      fused_mode_(other.fused_mode_),
      use_product_cache_(other.use_product_cache_),
      product_cache_max_bytes_(other.product_cache_max_bytes_),
      serving_(other.serving_.load(std::memory_order_acquire)),
      runtime_(std::move(other.runtime_)),
      rows_served_(other.rows_served_.load()),
      inflight_rows_(other.inflight_rows_.load()) {
    // Re-point a (contract-violating but easy to be robust about) live
    // dispatcher at the new address; legal moves happen before serving.
    if (runtime_ != nullptr) {
        const util::MutexLock lock(runtime_->async_init);
        if (runtime_->async != nullptr) runtime_->async->session = this;
    }
}

InferenceSession::~InferenceSession() = default;

std::shared_ptr<const InferenceSession::ServingState> InferenceSession::build_serving_state_(
    std::uint64_t epoch, std::shared_ptr<const hdc::Encoder> encoder,
    hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
    std::shared_ptr<const void> backing) const {
    HDLOCK_EXPECTS(encoder != nullptr, "InferenceSession: null encoder");
    HDLOCK_EXPECTS(model.n_classes() > 0, "InferenceSession: untrained model");
    HDLOCK_EXPECTS(model.dim() == encoder->dim(),
                   "InferenceSession: model dimensionality does not match encoder");
    HDLOCK_EXPECTS(discretizer.n_levels() == encoder->n_levels(),
                   "InferenceSession: discretizer levels do not match encoder");
    auto state = std::make_shared<ServingState>();
    state->epoch = epoch;
    state->encoder = std::move(encoder);
    state->discretizer = std::move(discretizer);
    state->model = std::move(model);
    state->backing = std::move(backing);
    if (use_product_cache_) {
        state->product_cache = state->encoder->make_product_cache(product_cache_max_bytes_);
    }
    const bool fusable = state->model.kind() == hdc::ModelKind::binary &&
                         state->encoder->n_features() <= util::kernels::kMaxFusedRows;
    switch (fused_mode_) {
        case FusedPredict::auto_detect:
            state->fused_predict = fusable;
            break;
        case FusedPredict::on:
            if (!fusable) {
                throw ConfigError(
                    "InferenceSession: fused_predict=on requires a binary model with at most " +
                    std::to_string(util::kernels::kMaxFusedRows) + " features");
            }
            state->fused_predict = true;
            break;
        case FusedPredict::off:
            state->fused_predict = false;
            break;
    }
    return state;
}

std::uint64_t InferenceSession::swap_bundle(BundleSnapshot snapshot) const {
    const std::uint64_t epoch = snapshot.epoch;
    const std::shared_ptr<const ServingState> current = serving_state();
    // Validate before touching anything: every refusal below leaves the
    // current epoch serving exactly as it was.
    if (snapshot.encoder == nullptr) {
        throw RotationError("swap_bundle: snapshot has no encoder; epoch " +
                            std::to_string(current->epoch) + " keeps serving");
    }
    if (!snapshot.discretizer.has_value() || !snapshot.model.has_value()) {
        throw RotationError(
            "swap_bundle: snapshot cannot serve (no discretizer/model); epoch " +
            std::to_string(current->epoch) + " keeps serving");
    }
    if (snapshot.encoder->n_features() != current->encoder->n_features()) {
        throw RotationError("swap_bundle: snapshot has " +
                            std::to_string(snapshot.encoder->n_features()) +
                            " features but epoch " + std::to_string(current->epoch) +
                            " serves " + std::to_string(current->encoder->n_features()) +
                            "; queued requests would be torn — old epoch keeps serving");
    }
    std::shared_ptr<const ServingState> next;
    try {
        next = build_serving_state_(epoch, std::move(snapshot.encoder),
                                    std::move(*snapshot.discretizer),
                                    std::move(*snapshot.model), std::move(snapshot.backing));
    } catch (const Error& error) {
        throw RotationError("swap_bundle: validation failed; epoch " +
                            std::to_string(current->epoch) +
                            " keeps serving: " + error.what());
    }
    if (util::fault::should_fail(util::fault::kSwapValidate)) {
        throw RotationError("swap_bundle: fault-injected validation failure; epoch " +
                            std::to_string(current->epoch) + " keeps serving");
    }
    // The RCU install: one release store.  Readers that already snapshotted
    // finish on the old state (their shared_ptr pins it, and through it the
    // old mmap); the state frees itself after the last reader drops it.
    serving_.store(std::move(next), std::memory_order_release);
    return epoch;
}

std::size_t planned_workers(std::size_t n_rows, std::size_t n_threads,
                            std::size_t min_rows_per_thread) noexcept {
    min_rows_per_thread = std::max<std::size_t>(min_rows_per_thread, 1);
    const std::size_t workers =
        std::min(n_threads, std::max<std::size_t>(n_rows / min_rows_per_thread, 1));
    if (workers <= 1) return 1;
    // Re-derive the fan-out from the chunk size: with chunk =
    // ceil(n/workers), only ceil(n/chunk) workers receive a non-empty
    // [begin, end) range — the remainder would start past the last row.
    const std::size_t chunk = (n_rows + workers - 1) / workers;
    return (n_rows + chunk - 1) / chunk;
}

int InferenceSession::predict_one_(const ServingState& state, std::span<const float> row,
                                   WorkerState& worker) const {
    const bool binary = state.model.kind() == hdc::ModelKind::binary;
    const hdc::BoundProductCache* cache = state.product_cache.get();
    std::vector<int>& levels = worker.scratch.levels(state.encoder->n_features());
    state.discretizer.transform_row(row, levels);
    if (binary) {
        if (state.fused_predict) {
            // Fused encode→distance: one kernel pass scores every class
            // while the count planes are register/L1-resident; the query
            // hypervector never exists.  Bit-identical labels to the
            // two-step path below on every backend.
            return state.model.predict_fused(*state.encoder, levels, worker.scratch, cache);
        }
        state.encoder->encode_binary_into(levels, worker.scratch, worker.query, cache);
        return state.model.predict(worker.query);
    }
    state.encoder->encode_into(levels, worker.scratch, worker.sums, cache);
    return state.model.predict(worker.sums);
}

void InferenceSession::predict_range_(const ServingState& state, const util::Matrix<float>& rows,
                                      std::size_t begin, std::size_t end, std::span<int> out,
                                      WorkerState& worker) const {
    worker.refresh(state.epoch);  // first touch of a new epoch rebuilds scratch
    for (std::size_t r = begin; r < end; ++r) out[r] = predict_one_(state, rows.row(r), worker);
}

void InferenceSession::predict_into_(const ServingState& state, const util::Matrix<float>& rows,
                                     std::span<int> out) const {
    const std::size_t n = rows.rows();
    const std::size_t workers = planned_workers(n, n_threads_, min_rows_per_thread_);

    if (workers <= 1) {
        // Single-worker fast path: no dispatch at all, just a leased scratch
        // on the calling thread (concurrent callers each lease their own).
        Runtime::ScratchLease lease(runtime_->caller_scratch);
        predict_range_(state, rows, 0, n, out, *lease);
        return;
    }

    if (dispatch_ == DispatchMode::pooled && runtime_->pool != nullptr) {
        util::parallel_for(*runtime_->pool, n, workers,
                           [&](std::size_t begin, std::size_t end, std::size_t slot) {
                               predict_range_(state, rows, begin, end, out,
                                              *runtime_->slots[slot]);
                           });
        return;
    }

    // Legacy spawn dispatch: fresh threads and fresh scratch per batch (the
    // measured baseline the pooled path is benchmarked against).
    std::vector<util::Thread> threads;
    std::vector<std::exception_ptr> failures(workers);
    threads.reserve(workers);
    const std::size_t chunk = (n + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        threads.emplace_back(util::Thread([this, &state, &rows, &out, &failures, w, begin, end] {
            try {
                WorkerState worker;
                predict_range_(state, rows, begin, end, out, worker);
            } catch (...) {
                failures[w] = std::current_exception();
            }
        }));
    }
    for (auto& thread : threads) thread.join();
    for (const auto& failure : failures) {
        if (failure) std::rethrow_exception(failure);
    }
}

std::vector<int> InferenceSession::predict_with_(const ServingState& state,
                                                 const util::Matrix<float>& rows) const {
    if (rows.rows() == 0) return {};
    HDLOCK_EXPECTS(rows.cols() == state.encoder->n_features(),
                   "InferenceSession::predict: batch has wrong feature count");
    std::vector<int> out(rows.rows());
    predict_into_(state, rows, out);
    rows_served_.fetch_add(rows.rows(), std::memory_order_relaxed);
    return out;
}

std::vector<int> InferenceSession::predict(const util::Matrix<float>& rows) const {
    // One snapshot per call: the whole batch — including its worker fan-out
    // — serves a single epoch even if swap_bundle() lands mid-batch.
    const std::shared_ptr<const ServingState> state = serving_state();
    return predict_with_(*state, rows);
}

std::future<std::vector<int>> InferenceSession::predict_async(util::Matrix<float> rows) const {
    std::promise<std::vector<int>> ready;
    if (rows.rows() == 0) {
        ready.set_value({});
        return ready.get_future();
    }
    HDLOCK_EXPECTS(rows.cols() == n_features(),
                   "InferenceSession::predict_async: batch has wrong feature count");
    Runtime::AsyncCore* core = nullptr;
    {
        const util::MutexLock lock(runtime_->async_init);
        if (runtime_->async == nullptr) {
            runtime_->async = std::make_unique<Runtime::AsyncCore>(this, max_queue_rows_);
        }
        core = runtime_->async.get();
    }
    const std::int64_t n = static_cast<std::int64_t>(rows.rows());
    AsyncRequest request;
    request.rows = std::move(rows);
    std::future<std::vector<int>> future = request.promise.get_future();
    inflight_rows_.fetch_add(n, std::memory_order_relaxed);
    try {
        core->queue.push(std::move(request));
    } catch (...) {
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        throw;
    }
    return future;
}

std::future<Response> InferenceSession::predict_async(Request request,
                                                      std::uint32_t shard_id) const {
    return submit_async_(std::move(request), shard_id, /*blocking=*/true);
}

std::future<Response> InferenceSession::try_predict_async(Request request,
                                                          std::uint32_t shard_id) const {
    return submit_async_(std::move(request), shard_id, /*blocking=*/false);
}

std::future<Response> InferenceSession::submit_async_(Request request, std::uint32_t shard_id,
                                                      bool blocking) const {
    if (request.rows.rows() != 0) {
        HDLOCK_EXPECTS(request.rows.cols() == n_features(),
                       "InferenceSession::predict_async: request has wrong feature count");
    }
    // Outcomes decidable at submit time resolve immediately — an empty
    // batch, a withdrawn request, or one whose budget is already spent
    // never touches the queue.
    Response early;
    early.shard_id = shard_id;
    if (request.rows.rows() == 0) return resolved_response(std::move(early));
    if (request.cancel.cancelled()) {
        early.status = Status::cancelled;
        return resolved_response(std::move(early));
    }
    if (request.deadline.expired()) {
        early.status = Status::deadline_exceeded;
        return resolved_response(std::move(early));
    }

    Runtime::AsyncCore* core = nullptr;
    {
        const util::MutexLock lock(runtime_->async_init);
        if (runtime_->async == nullptr) {
            runtime_->async = std::make_unique<Runtime::AsyncCore>(this, max_queue_rows_);
        }
        core = runtime_->async.get();
    }

    const std::int64_t n = static_cast<std::int64_t>(request.rows.rows());
    AsyncRequest queued{.rows = std::move(request.rows),
                        .promise = {},
                        .typed = true,
                        .typed_promise = {},
                        .deadline = request.deadline,
                        .cancel = std::move(request.cancel),
                        .shard_id = shard_id,
                        .enqueued_at = util::steady_now()};
    std::future<Response> future = queued.typed_promise.get_future();
    inflight_rows_.fetch_add(n, std::memory_order_relaxed);
    Status admitted = Status::ok;
    try {
        if (blocking) {
            core->queue.push(std::move(queued));
        } else {
            admitted = core->queue.try_submit(std::move(queued));
        }
    } catch (...) {
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        throw;
    }
    if (admitted == Status::overloaded) {
        // try_submit refused without consuming the request, so its promise
        // is still ours to resolve with the shed outcome.
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        Response shed;
        shed.status = Status::overloaded;
        shed.shard_id = shard_id;
        queued.typed_promise.set_value(std::move(shed));
    }
    return future;
}

std::chrono::microseconds InferenceSession::current_queue_delay() const {
    const util::MutexLock lock(runtime_->async_init);
    if (runtime_->async != nullptr) {
        return std::chrono::microseconds(
            runtime_->async->queue_delay_us.load(std::memory_order_relaxed));
    }
    return max_queue_delay_;
}

double InferenceSession::evaluate(const data::Dataset& dataset) const {
    dataset.validate();
    if (dataset.n_samples() == 0) return 0.0;
    const auto predictions = predict(dataset.X);
    std::size_t correct = 0;
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        correct += predictions[s] == dataset.y[s] ? 1u : 0u;
    }
    return static_cast<double>(correct) / static_cast<double>(dataset.n_samples());
}

int InferenceSession::predict_row(std::span<const float> row) const {
    const std::shared_ptr<const ServingState> state = serving_state();
    HDLOCK_EXPECTS(row.size() == state->encoder->n_features(),
                   "InferenceSession::predict_row: wrong feature count");
    Runtime::ScratchLease lease(runtime_->caller_scratch);
    (*lease).refresh(state->epoch);
    const int label = predict_one_(*state, row, *lease);
    rows_served_.fetch_add(1, std::memory_order_relaxed);
    return label;
}

}  // namespace hdlock::api
