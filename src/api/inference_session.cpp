#include "api/inference_session.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace hdlock::api {

// ---------------------------------------------------------------------------
// SubmitQueue
// ---------------------------------------------------------------------------

SubmitQueue::SubmitQueue(std::size_t max_rows) : max_rows_(std::max<std::size_t>(max_rows, 1)) {}

void SubmitQueue::push(AsyncRequest request) {
    const std::size_t rows = request.rows.rows();
    const util::MutexLock lock(mutex_);
    // An oversized request is admitted once the queue is empty — it could
    // never satisfy the cap, and the dispatcher takes whole requests, so
    // admitting it alone keeps FIFO order and bounds.
    while (!closed_ && queued_rows_ + rows > max_rows_ && !requests_.empty()) {
        not_full_.wait(mutex_);
    }
    if (closed_) throw Error("SubmitQueue: session is shutting down");
    queued_rows_ += rows;
    requests_.push_back(std::move(request));
    not_empty_.notify_one();
}

Status SubmitQueue::try_submit(AsyncRequest&& request) {
    const std::size_t rows = request.rows.rows();
    const util::MutexLock lock(mutex_);
    if (closed_) throw Error("SubmitQueue: session is shutting down");
    // Same admission rule as push() (oversized requests go in alone once
    // the queue is empty), but a full queue refuses instead of blocking —
    // the request is left untouched for the caller to resolve as shed.
    if (queued_rows_ + rows > max_rows_ && !requests_.empty()) return Status::overloaded;
    queued_rows_ += rows;
    requests_.push_back(std::move(request));
    not_empty_.notify_one();
    return Status::ok;
}

std::vector<AsyncRequest> SubmitQueue::pop_batch(std::size_t max_batch,
                                                 std::chrono::microseconds delay) {
    max_batch = std::max<std::size_t>(max_batch, 1);
    const util::MutexLock lock(mutex_);
    while (!closed_ && requests_.empty()) not_empty_.wait(mutex_);
    if (requests_.empty()) return {};  // closed and drained

    // Coalescing window: give concurrent small callers `delay` to pile on,
    // cut short as soon as a full micro-batch is queued.
    if (delay.count() > 0 && queued_rows_ < max_batch && !closed_) {
        // hdlock-lint: allow(nondeterminism) — the coalescing deadline is a
        // wall-clock latency bound; it shapes batching, never per-row labels.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!closed_ && queued_rows_ < max_batch) {
            if (not_empty_.wait_until(mutex_, deadline) == std::cv_status::timeout) break;
        }
    }

    std::vector<AsyncRequest> batch;
    std::size_t rows = 0;
    while (!requests_.empty()) {
        const std::size_t next = requests_.front().rows.rows();
        if (!batch.empty() && rows + next > max_batch) break;
        rows += next;
        queued_rows_ -= next;
        batch.push_back(std::move(requests_.front()));
        requests_.pop_front();
        if (rows >= max_batch) break;
    }
    not_full_.notify_all();
    return batch;
}

void SubmitQueue::close() {
    {
        const util::MutexLock lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
}

std::size_t SubmitQueue::queued_rows() const {
    const util::MutexLock lock(mutex_);
    return queued_rows_;
}

// ---------------------------------------------------------------------------
// Internal serving state
// ---------------------------------------------------------------------------

/// Per-worker pinned buffers: reused across every batch the session serves,
/// so the steady-state row performs zero heap allocations.
struct InferenceSession::WorkerState {
    hdc::EncoderScratch scratch;
    hdc::IntHV sums;
    hdc::BinaryHV query;
};

/// Everything mutable behind the serving fast path, kept behind one stable
/// pointer: the persistent pool with its slot-pinned scratch, the caller
/// free-list, and the lazily-started async core.
struct InferenceSession::ServingState {
    /// Free-list of WorkerStates for the inline paths (predict_row, small
    /// batches) where the caller thread does the work itself: concurrent
    /// callers each lease their own scratch for one mutex handoff — far
    /// cheaper than the per-call allocations the old cold path made.
    class ScratchFreeList {
    public:
        std::unique_ptr<WorkerState> acquire() HDLOCK_EXCLUDES(mutex_) {
            {
                const util::MutexLock lock(mutex_);
                if (!free_.empty()) {
                    auto state = std::move(free_.back());
                    free_.pop_back();
                    return state;
                }
            }
            return std::make_unique<WorkerState>();
        }

        void release(std::unique_ptr<WorkerState> state) HDLOCK_EXCLUDES(mutex_) {
            const util::MutexLock lock(mutex_);
            free_.push_back(std::move(state));
        }

    private:
        util::Mutex mutex_;
        std::vector<std::unique_ptr<WorkerState>> free_ HDLOCK_GUARDED_BY(mutex_);
    };

    class ScratchLease {
    public:
        explicit ScratchLease(ScratchFreeList& list) : list_(list), state_(list.acquire()) {}
        ~ScratchLease() { list_.release(std::move(state_)); }
        ScratchLease(const ScratchLease&) = delete;
        ScratchLease& operator=(const ScratchLease&) = delete;

        WorkerState& operator*() noexcept { return *state_; }

    private:
        ScratchFreeList& list_;
        std::unique_ptr<WorkerState> state_;
    };

    // Pool first / async last: the async dispatcher drives batches through
    // the pool, so reverse destruction order shuts the dispatcher down
    // before the workers go away.
    std::unique_ptr<util::ThreadPool> pool;
    std::vector<std::unique_ptr<WorkerState>> slots;  // indexed by pool slot ID
    ScratchFreeList caller_scratch;

    struct AsyncCore {
        const InferenceSession* session;
        SubmitQueue queue;
        /// Effective coalescing delay in µs, read by the dispatcher each
        /// cycle and rewritten by the adaptive governor (atomic so tests
        /// and current_queue_delay() may read it from other threads).
        std::atomic<std::int64_t> queue_delay_us;
        // Governor state below is touched by the dispatcher thread only.
        double arrival_rate = 0.0;  // EWMA, rows per µs
        bool governor_primed = false;
        util::SteadyTime last_pop{};
        util::Thread dispatcher;

        AsyncCore(const InferenceSession* owner, std::size_t max_rows)
            : session(owner), queue(max_rows), queue_delay_us(owner->max_queue_delay_.count()) {
            dispatcher = util::Thread([this] { run(); });
        }

        ~AsyncCore() {
            queue.close();
            dispatcher.join();
        }

        void run() {
            for (;;) {
                const std::chrono::microseconds delay(
                    queue_delay_us.load(std::memory_order_relaxed));
                std::vector<AsyncRequest> batch = queue.pop_batch(session->max_batch_, delay);
                if (batch.empty()) return;  // closed and drained
                if (session->adaptive_queue_delay_) update_governor(batch);
                serve(batch);
            }
        }

        /// Adaptive max_queue_delay: estimate the request arrival rate from
        /// rows popped per dispatch cycle (EWMA), then wait only as long as
        /// coalescing can actually pay — zero when arrivals are too sparse
        /// for a second request to join the window, otherwise just long
        /// enough to fill a batch at the measured rate, capped at the
        /// configured maximum.  Shapes batching/latency only, never labels.
        void update_governor(const std::vector<AsyncRequest>& batch) {
            std::size_t rows = 0;
            for (const auto& request : batch) rows += request.rows.rows();
            const util::SteadyTime now = util::steady_now();
            if (!governor_primed) {
                governor_primed = true;
                last_pop = now;
                return;
            }
            const double elapsed_us = std::max(
                std::chrono::duration<double, std::micro>(now - last_pop).count(), 1.0);
            last_pop = now;
            const double rate = static_cast<double>(rows) / elapsed_us;
            arrival_rate = arrival_rate == 0.0 ? rate : 0.8 * arrival_rate + 0.2 * rate;
            const double max_us = static_cast<double>(session->max_queue_delay_.count());
            double target_us = 0.0;
            if (arrival_rate * max_us >= 1.0) {
                target_us = std::min(
                    max_us, static_cast<double>(session->max_batch_) / arrival_rate);
            }
            queue_delay_us.store(static_cast<std::int64_t>(target_us),
                                 std::memory_order_relaxed);
        }

        /// Settles the in-flight accounting for a request.  Called *before*
        /// the promise is resolved in every resolve_* path, so a caller that
        /// has observed the response also observes the decremented counter
        /// (the router's watermark and tests rely on that ordering).
        void finish(const AsyncRequest& request) {
            session->inflight_rows_.fetch_sub(static_cast<std::int64_t>(request.rows.rows()),
                                              std::memory_order_relaxed);
        }

        void resolve_labels(AsyncRequest& request, std::vector<int> labels,
                            util::SteadyTime now) {
            finish(request);
            if (request.typed) {
                Response response;
                response.labels = std::move(labels);
                response.status = Status::ok;
                response.shard_id = request.shard_id;
                response.queue_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - request.enqueued_at);
                request.typed_promise.set_value(std::move(response));
            } else {
                request.promise.set_value(std::move(labels));
            }
        }

        void resolve_status(AsyncRequest& request, Status status, util::SteadyTime now) {
            finish(request);
            Response response;
            response.status = status;
            response.shard_id = request.shard_id;
            response.queue_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - request.enqueued_at);
            request.typed_promise.set_value(std::move(response));
        }

        void resolve_error(AsyncRequest& request, std::exception_ptr error) {
            finish(request);
            if (request.typed) {
                request.typed_promise.set_exception(std::move(error));
            } else {
                request.promise.set_exception(std::move(error));
            }
        }

        void serve_one(AsyncRequest& request, util::SteadyTime now) {
            try {
                resolve_labels(request, session->predict(request.rows), now);
            } catch (...) {
                resolve_error(request, std::current_exception());
            }
        }

        void serve(std::vector<AsyncRequest>& batch) {
            // Pre-encode drop: cancelled or expired requests resolve here,
            // before any discretize/encode work is spent on rows whose
            // answer nobody is waiting for.
            const util::SteadyTime now = util::steady_now();
            std::vector<AsyncRequest> live;
            live.reserve(batch.size());
            for (auto& request : batch) {
                if (request.typed && request.cancel.cancelled()) {
                    resolve_status(request, Status::cancelled, now);
                } else if (request.typed && request.deadline.expired_at(now)) {
                    resolve_status(request, Status::deadline_exceeded, now);
                } else {
                    live.push_back(std::move(request));
                }
            }
            if (live.empty()) return;
            if (live.size() == 1) {
                serve_one(live.front(), now);
                return;
            }
            std::size_t resolved = 0;
            try {
                // Fuse the micro-batch into one matrix so dispatch, scratch
                // reuse and worker fan-out amortise across every caller.
                std::size_t total = 0;
                for (const auto& request : live) total += request.rows.rows();
                util::Matrix<float> fused(total, session->n_features());
                const std::span<float> fused_values = fused.data();
                std::size_t at = 0;
                for (const auto& request : live) {
                    const auto source = request.rows.data();
                    std::copy(source.begin(), source.end(),
                              fused_values.begin() +
                                  static_cast<std::ptrdiff_t>(at * fused.cols()));
                    at += request.rows.rows();
                }
                const std::vector<int> labels = session->predict(fused);
                at = 0;
                for (auto& request : live) {
                    const std::size_t rows = request.rows.rows();
                    resolve_labels(
                        request,
                        std::vector<int>(labels.begin() + static_cast<std::ptrdiff_t>(at),
                                         labels.begin() + static_cast<std::ptrdiff_t>(at + rows)),
                        now);
                    ++resolved;
                    at += rows;
                }
            } catch (...) {
                // Failure scoping: a fused batch mixes independent callers,
                // so one poisoned request must not fail its peers.  Retry
                // each not-yet-resolved request individually — the failure
                // lands only on whichever request reproduces it, and the
                // innocent ones pay a re-encode (the cheap side of the
                // trade).
                for (std::size_t r = resolved; r < live.size(); ++r) serve_one(live[r], now);
            }
        }
    };

    // `async` is set exactly once (first predict_async call) and never
    // reset; the guard makes the lazy start race-free and lets the move
    // constructor re-point a live dispatcher safely.
    util::Mutex async_init;
    std::unique_ptr<AsyncCore> async HDLOCK_GUARDED_BY(async_init);
};

// ---------------------------------------------------------------------------
// InferenceSession
// ---------------------------------------------------------------------------

InferenceSession::InferenceSession(std::shared_ptr<const hdc::Encoder> encoder,
                                   hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                                   SessionOptions options)
    : encoder_(std::move(encoder)),
      discretizer_(std::move(discretizer)),
      model_(std::move(model)),
      min_rows_per_thread_(std::max<std::size_t>(options.min_rows_per_thread, 1)),
      dispatch_(options.dispatch),
      max_batch_(std::max<std::size_t>(options.max_batch, 1)),
      max_queue_delay_(options.max_queue_delay),
      max_queue_rows_(std::max<std::size_t>(options.max_queue_rows, 1)),
      adaptive_queue_delay_(options.adaptive_queue_delay),
      state_(std::make_unique<ServingState>()) {
    HDLOCK_EXPECTS(encoder_ != nullptr, "InferenceSession: null encoder");
    HDLOCK_EXPECTS(model_.n_classes() > 0, "InferenceSession: untrained model");
    HDLOCK_EXPECTS(model_.dim() == encoder_->dim(),
                   "InferenceSession: model dimensionality does not match encoder");
    HDLOCK_EXPECTS(discretizer_.n_levels() == encoder_->n_levels(),
                   "InferenceSession: discretizer levels do not match encoder");
    if (options.kernel_backend) util::kernels::set_backend(*options.kernel_backend);
    n_threads_ = options.n_threads != 0 ? options.n_threads : util::hardware_concurrency();
    if (options.use_product_cache) {
        product_cache_ = encoder_->make_product_cache(options.product_cache_max_bytes);
    }
    const bool fusable = model_.kind() == hdc::ModelKind::binary &&
                         encoder_->n_features() <= util::kernels::kMaxFusedRows;
    switch (options.fused_predict) {
        case FusedPredict::auto_detect:
            fused_predict_ = fusable;
            break;
        case FusedPredict::on:
            if (!fusable) {
                throw ConfigError(
                    "InferenceSession: fused_predict=on requires a binary model with at most " +
                    std::to_string(util::kernels::kMaxFusedRows) + " features");
            }
            fused_predict_ = true;
            break;
        case FusedPredict::off:
            fused_predict_ = false;
            break;
    }
    if (dispatch_ == DispatchMode::pooled && n_threads_ > 1) {
        state_->pool = std::make_unique<util::ThreadPool>(n_threads_);
        state_->slots.reserve(n_threads_);
        for (std::size_t slot = 0; slot < n_threads_; ++slot) {
            state_->slots.push_back(std::make_unique<WorkerState>());
        }
    }
}

InferenceSession::InferenceSession(InferenceSession&& other) noexcept
    : encoder_(std::move(other.encoder_)),
      discretizer_(std::move(other.discretizer_)),
      model_(std::move(other.model_)),
      product_cache_(std::move(other.product_cache_)),
      n_threads_(other.n_threads_),
      min_rows_per_thread_(other.min_rows_per_thread_),
      dispatch_(other.dispatch_),
      fused_predict_(other.fused_predict_),
      max_batch_(other.max_batch_),
      max_queue_delay_(other.max_queue_delay_),
      max_queue_rows_(other.max_queue_rows_),
      adaptive_queue_delay_(other.adaptive_queue_delay_),
      state_(std::move(other.state_)),
      rows_served_(other.rows_served_.load()),
      inflight_rows_(other.inflight_rows_.load()) {
    // Re-point a (contract-violating but easy to be robust about) live
    // dispatcher at the new address; legal moves happen before serving.
    if (state_ != nullptr) {
        const util::MutexLock lock(state_->async_init);
        if (state_->async != nullptr) state_->async->session = this;
    }
}

InferenceSession::~InferenceSession() = default;

std::size_t planned_workers(std::size_t n_rows, std::size_t n_threads,
                            std::size_t min_rows_per_thread) noexcept {
    min_rows_per_thread = std::max<std::size_t>(min_rows_per_thread, 1);
    const std::size_t workers =
        std::min(n_threads, std::max<std::size_t>(n_rows / min_rows_per_thread, 1));
    if (workers <= 1) return 1;
    // Re-derive the fan-out from the chunk size: with chunk =
    // ceil(n/workers), only ceil(n/chunk) workers receive a non-empty
    // [begin, end) range — the remainder would start past the last row.
    const std::size_t chunk = (n_rows + workers - 1) / workers;
    return (n_rows + chunk - 1) / chunk;
}

int InferenceSession::predict_one_(std::span<const float> row, WorkerState& state) const {
    const bool binary = model_.kind() == hdc::ModelKind::binary;
    const hdc::BoundProductCache* cache = product_cache_.get();
    std::vector<int>& levels = state.scratch.levels(encoder_->n_features());
    discretizer_.transform_row(row, levels);
    if (binary) {
        if (fused_predict_) {
            // Fused encode→distance: one kernel pass scores every class
            // while the count planes are register/L1-resident; the query
            // hypervector never exists.  Bit-identical labels to the
            // two-step path below on every backend.
            return model_.predict_fused(*encoder_, levels, state.scratch, cache);
        }
        encoder_->encode_binary_into(levels, state.scratch, state.query, cache);
        return model_.predict(state.query);
    }
    encoder_->encode_into(levels, state.scratch, state.sums, cache);
    return model_.predict(state.sums);
}

void InferenceSession::predict_range_(const util::Matrix<float>& rows, std::size_t begin,
                                      std::size_t end, std::span<int> out,
                                      WorkerState& state) const {
    for (std::size_t r = begin; r < end; ++r) out[r] = predict_one_(rows.row(r), state);
}

void InferenceSession::predict_into_(const util::Matrix<float>& rows, std::span<int> out) const {
    const std::size_t n = rows.rows();
    const std::size_t workers = planned_workers(n, n_threads_, min_rows_per_thread_);

    if (workers <= 1) {
        // Single-worker fast path: no dispatch at all, just a leased scratch
        // on the calling thread (concurrent callers each lease their own).
        ServingState::ScratchLease lease(state_->caller_scratch);
        predict_range_(rows, 0, n, out, *lease);
        return;
    }

    if (dispatch_ == DispatchMode::pooled && state_->pool != nullptr) {
        util::parallel_for(*state_->pool, n, workers,
                           [&](std::size_t begin, std::size_t end, std::size_t slot) {
                               predict_range_(rows, begin, end, out, *state_->slots[slot]);
                           });
        return;
    }

    // Legacy spawn dispatch: fresh threads and fresh scratch per batch (the
    // measured baseline the pooled path is benchmarked against).
    std::vector<util::Thread> threads;
    std::vector<std::exception_ptr> failures(workers);
    threads.reserve(workers);
    const std::size_t chunk = (n + workers - 1) / workers;
    for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t begin = w * chunk;
        const std::size_t end = std::min(begin + chunk, n);
        threads.emplace_back(util::Thread([this, &rows, &out, &failures, w, begin, end] {
            try {
                WorkerState state;
                predict_range_(rows, begin, end, out, state);
            } catch (...) {
                failures[w] = std::current_exception();
            }
        }));
    }
    for (auto& thread : threads) thread.join();
    for (const auto& failure : failures) {
        if (failure) std::rethrow_exception(failure);
    }
}

std::vector<int> InferenceSession::predict(const util::Matrix<float>& rows) const {
    if (rows.rows() == 0) return {};
    HDLOCK_EXPECTS(rows.cols() == encoder_->n_features(),
                   "InferenceSession::predict: batch has wrong feature count");
    std::vector<int> out(rows.rows());
    predict_into_(rows, out);
    rows_served_.fetch_add(rows.rows(), std::memory_order_relaxed);
    return out;
}

std::future<std::vector<int>> InferenceSession::predict_async(util::Matrix<float> rows) const {
    std::promise<std::vector<int>> ready;
    if (rows.rows() == 0) {
        ready.set_value({});
        return ready.get_future();
    }
    HDLOCK_EXPECTS(rows.cols() == encoder_->n_features(),
                   "InferenceSession::predict_async: batch has wrong feature count");
    ServingState::AsyncCore* core = nullptr;
    {
        const util::MutexLock lock(state_->async_init);
        if (state_->async == nullptr) {
            state_->async = std::make_unique<ServingState::AsyncCore>(this, max_queue_rows_);
        }
        core = state_->async.get();
    }
    const std::int64_t n = static_cast<std::int64_t>(rows.rows());
    AsyncRequest request;
    request.rows = std::move(rows);
    std::future<std::vector<int>> future = request.promise.get_future();
    inflight_rows_.fetch_add(n, std::memory_order_relaxed);
    try {
        core->queue.push(std::move(request));
    } catch (...) {
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        throw;
    }
    return future;
}

std::future<Response> InferenceSession::predict_async(Request request,
                                                      std::uint32_t shard_id) const {
    return submit_async_(std::move(request), shard_id, /*blocking=*/true);
}

std::future<Response> InferenceSession::try_predict_async(Request request,
                                                          std::uint32_t shard_id) const {
    return submit_async_(std::move(request), shard_id, /*blocking=*/false);
}

std::future<Response> InferenceSession::submit_async_(Request request, std::uint32_t shard_id,
                                                      bool blocking) const {
    if (request.rows.rows() != 0) {
        HDLOCK_EXPECTS(request.rows.cols() == encoder_->n_features(),
                       "InferenceSession::predict_async: request has wrong feature count");
    }
    // Outcomes decidable at submit time resolve immediately — an empty
    // batch, a withdrawn request, or one whose budget is already spent
    // never touches the queue.
    Response early;
    early.shard_id = shard_id;
    if (request.rows.rows() == 0) return resolved_response(std::move(early));
    if (request.cancel.cancelled()) {
        early.status = Status::cancelled;
        return resolved_response(std::move(early));
    }
    if (request.deadline.expired()) {
        early.status = Status::deadline_exceeded;
        return resolved_response(std::move(early));
    }

    ServingState::AsyncCore* core = nullptr;
    {
        const util::MutexLock lock(state_->async_init);
        if (state_->async == nullptr) {
            state_->async = std::make_unique<ServingState::AsyncCore>(this, max_queue_rows_);
        }
        core = state_->async.get();
    }

    const std::int64_t n = static_cast<std::int64_t>(request.rows.rows());
    AsyncRequest queued{.rows = std::move(request.rows),
                        .promise = {},
                        .typed = true,
                        .typed_promise = {},
                        .deadline = request.deadline,
                        .cancel = std::move(request.cancel),
                        .shard_id = shard_id,
                        .enqueued_at = util::steady_now()};
    std::future<Response> future = queued.typed_promise.get_future();
    inflight_rows_.fetch_add(n, std::memory_order_relaxed);
    Status admitted = Status::ok;
    try {
        if (blocking) {
            core->queue.push(std::move(queued));
        } else {
            admitted = core->queue.try_submit(std::move(queued));
        }
    } catch (...) {
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        throw;
    }
    if (admitted == Status::overloaded) {
        // try_submit refused without consuming the request, so its promise
        // is still ours to resolve with the shed outcome.
        inflight_rows_.fetch_sub(n, std::memory_order_relaxed);
        Response shed;
        shed.status = Status::overloaded;
        shed.shard_id = shard_id;
        queued.typed_promise.set_value(std::move(shed));
    }
    return future;
}

std::chrono::microseconds InferenceSession::current_queue_delay() const {
    const util::MutexLock lock(state_->async_init);
    if (state_->async != nullptr) {
        return std::chrono::microseconds(
            state_->async->queue_delay_us.load(std::memory_order_relaxed));
    }
    return max_queue_delay_;
}

double InferenceSession::evaluate(const data::Dataset& dataset) const {
    dataset.validate();
    if (dataset.n_samples() == 0) return 0.0;
    const auto predictions = predict(dataset.X);
    std::size_t correct = 0;
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        correct += predictions[s] == dataset.y[s] ? 1u : 0u;
    }
    return static_cast<double>(correct) / static_cast<double>(dataset.n_samples());
}

int InferenceSession::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(row.size() == encoder_->n_features(),
                   "InferenceSession::predict_row: wrong feature count");
    ServingState::ScratchLease lease(state_->caller_scratch);
    const int label = predict_one_(row, *lease);
    rows_served_.fetch_add(1, std::memory_order_relaxed);
    return label;
}

}  // namespace hdlock::api
