#include "api/inference_session.hpp"

#include <algorithm>
#include <exception>
#include <thread>

namespace hdlock::api {

InferenceSession::InferenceSession(std::shared_ptr<const hdc::Encoder> encoder,
                                   hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                                   SessionOptions options)
    : encoder_(std::move(encoder)),
      discretizer_(std::move(discretizer)),
      model_(std::move(model)),
      min_rows_per_thread_(std::max<std::size_t>(options.min_rows_per_thread, 1)) {
    HDLOCK_EXPECTS(encoder_ != nullptr, "InferenceSession: null encoder");
    HDLOCK_EXPECTS(model_.n_classes() > 0, "InferenceSession: untrained model");
    HDLOCK_EXPECTS(model_.dim() == encoder_->dim(),
                   "InferenceSession: model dimensionality does not match encoder");
    HDLOCK_EXPECTS(discretizer_.n_levels() == encoder_->n_levels(),
                   "InferenceSession: discretizer levels do not match encoder");
    if (options.kernel_backend) util::kernels::set_backend(*options.kernel_backend);
    n_threads_ = options.n_threads != 0
                     ? options.n_threads
                     : std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
    if (options.use_product_cache) {
        product_cache_ = encoder_->make_product_cache(options.product_cache_max_bytes);
    }
}

std::size_t planned_workers(std::size_t n_rows, std::size_t n_threads,
                            std::size_t min_rows_per_thread) noexcept {
    min_rows_per_thread = std::max<std::size_t>(min_rows_per_thread, 1);
    const std::size_t workers =
        std::min(n_threads, std::max<std::size_t>(n_rows / min_rows_per_thread, 1));
    if (workers <= 1) return 1;
    // Re-derive the spawn count from the chunk size: with chunk =
    // ceil(n/workers), only ceil(n/chunk) workers receive a non-empty
    // [begin, end) range — the remainder would start past the last row.
    const std::size_t chunk = (n_rows + workers - 1) / workers;
    return (n_rows + chunk - 1) / chunk;
}

void InferenceSession::predict_range(const util::Matrix<float>& rows, std::size_t begin,
                                     std::size_t end, std::span<int> out) const {
    const bool binary = model_.kind() == hdc::ModelKind::binary;
    const hdc::BoundProductCache* cache = product_cache_.get();
    // Per-worker scratch: everything below is reused across the whole range,
    // so the steady-state row does zero heap allocations.
    hdc::EncoderScratch scratch;
    std::vector<int>& levels = scratch.levels(encoder_->n_features());
    hdc::IntHV sums;
    hdc::BinaryHV query;
    for (std::size_t r = begin; r < end; ++r) {
        discretizer_.transform_row(rows.row(r), levels);
        if (binary) {
            encoder_->encode_binary_into(levels, scratch, query, cache);
            out[r] = model_.predict(query);
        } else {
            encoder_->encode_into(levels, scratch, sums, cache);
            out[r] = model_.predict(sums);
        }
    }
}

std::vector<int> InferenceSession::predict(const util::Matrix<float>& rows) const {
    if (rows.rows() == 0) return {};
    HDLOCK_EXPECTS(rows.cols() == encoder_->n_features(),
                   "InferenceSession::predict: batch has wrong feature count");

    const std::size_t n = rows.rows();
    std::vector<int> out(n);
    const std::size_t workers = planned_workers(n, n_threads_, min_rows_per_thread_);

    if (workers <= 1) {
        predict_range(rows, 0, n, out);
    } else {
        std::vector<std::thread> threads;
        std::vector<std::exception_ptr> failures(workers);
        threads.reserve(workers);
        const std::size_t chunk = (n + workers - 1) / workers;
        for (std::size_t w = 0; w < workers; ++w) {
            const std::size_t begin = w * chunk;
            const std::size_t end = std::min(begin + chunk, n);
            threads.emplace_back([this, &rows, &out, &failures, w, begin, end] {
                try {
                    predict_range(rows, begin, end, out);
                } catch (...) {
                    failures[w] = std::current_exception();
                }
            });
        }
        for (auto& thread : threads) thread.join();
        for (const auto& failure : failures) {
            if (failure) std::rethrow_exception(failure);
        }
    }

    rows_served_.fetch_add(n, std::memory_order_relaxed);
    return out;
}

double InferenceSession::evaluate(const data::Dataset& dataset) const {
    dataset.validate();
    if (dataset.n_samples() == 0) return 0.0;
    const auto predictions = predict(dataset.X);
    std::size_t correct = 0;
    for (std::size_t s = 0; s < dataset.n_samples(); ++s) {
        correct += predictions[s] == dataset.y[s] ? 1u : 0u;
    }
    return static_cast<double>(correct) / static_cast<double>(dataset.n_samples());
}

int InferenceSession::predict_row(std::span<const float> row) const {
    HDLOCK_EXPECTS(row.size() == encoder_->n_features(),
                   "InferenceSession::predict_row: wrong feature count");
    const bool binary = model_.kind() == hdc::ModelKind::binary;
    const std::vector<int> levels = discretizer_.transform_row(row);
    rows_served_.fetch_add(1, std::memory_order_relaxed);
    return binary ? model_.predict(encoder_->encode_binary(levels))
                  : model_.predict(encoder_->encode(levels));
}

}  // namespace hdlock::api
