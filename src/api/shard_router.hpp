#pragma once

/// \file shard_router.hpp
/// In-process shard router over N InferenceSession replicas.
///
/// The "millions of users" serving layer: one router owns N sessions built
/// from the same shared encoder (for mapped bundles the encoder's
/// hypervectors are views into one mmap, so N shards cost ~1x model
/// memory), places each typed Request on a shard, and refuses work past a
/// load watermark instead of letting queues grow without bound.
///
///   Placement   round-robin (uniform), least-loaded (by in-flight rows),
///               or consistent-hash on Request::shard_key (session
///               affinity; keys stay on their shard as long as the fleet
///               shape is fixed).
///   Admission   submit() never blocks.  Past `shed_watermark_rows`
///               aggregate in-flight rows the request resolves immediately
///               with Status::overloaded (priority > 0 rides through up to
///               `priority_headroom` x the watermark); an individually full
///               shard queue likewise refuses via try_predict_async.
///   Deadlines   ride the Request into the shard's dispatcher, which drops
///               expired work before encode (see inference_session.hpp).
///
/// Labels are bit-identical across shard counts and placement policies —
/// per-row results are a pure function of the input, so sharding is purely
/// a throughput/latency decision.  The router is immutable after
/// construction and safe to share across caller threads; moving is only
/// legal before it starts serving (same contract as InferenceSession).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "api/inference_session.hpp"
#include "api/request.hpp"
#include "util/matrix.hpp"

namespace hdlock::api {

/// How submit() picks a shard for each request.
enum class Placement : std::uint8_t {
    /// Uniform rotation; cheapest, ignores load and keys.
    round_robin = 0,
    /// The shard with the fewest in-flight rows at submit time (ties go to
    /// the lowest index).  The default: tracks real load, no keys needed.
    least_loaded = 1,
    /// Virtual-node hash ring over Request::shard_key — equal keys land on
    /// the same shard.  Keyless requests fall back to round-robin.
    consistent_hash = 2,
};

constexpr const char* placement_name(Placement placement) noexcept {
    switch (placement) {
        case Placement::round_robin: return "round-robin";
        case Placement::least_loaded: return "least-loaded";
        case Placement::consistent_hash: return "consistent-hash";
    }
    return "unknown";
}

/// Parses the CLI/eval spelling of a placement policy (the names
/// placement_name() produces); nullopt for anything else.
std::optional<Placement> parse_placement(std::string_view name) noexcept;

struct RouterOptions {
    /// Session replicas to own; 0 clamps to 1.
    std::size_t n_shards = 1;
    Placement placement = Placement::least_loaded;
    /// Options each shard's InferenceSession is built with.
    SessionOptions session{};
    /// The router overwrites session.adaptive_queue_delay with this: under
    /// a router the arrival-rate governor is the right default (each shard
    /// sees a slice of the offered load, so a fixed coalescing delay is
    /// wrong at both extremes).
    bool adaptive_queue_delay = true;
    /// Aggregate in-flight rows past which submit() sheds with
    /// Status::overloaded.  0 derives n_shards * session.max_queue_rows
    /// (i.e. "every queue full").
    std::size_t shed_watermark_rows = 0;
    /// Requests with priority > 0 are admitted up to this multiple of the
    /// watermark (>= 1; gives paid/critical traffic headroom while bulk
    /// traffic sheds first).
    double priority_headroom = 2.0;
    /// Virtual nodes per shard on the consistent-hash ring; more nodes,
    /// smoother key spread (and less movement when the fleet resizes).
    std::size_t hash_virtual_nodes = 64;
};

/// Router-side counters (monotonic; approximate ordering under
/// concurrency).  Response-level outcomes (deadline_exceeded, cancelled)
/// resolve inside shard dispatchers and are tallied by callers from the
/// Response stream, not here.
struct RouterStats {
    /// Requests admitted and routed to a shard.
    std::uint64_t accepted = 0;
    /// Requests refused at the router watermark.
    std::uint64_t shed = 0;
    /// Aggregate rows currently queued or being served across shards.
    std::size_t inflight_rows = 0;
    /// Requests routed to each shard (placement skew diagnostics).
    std::vector<std::uint64_t> routed_per_shard;
};

class ShardRouter {
public:
    /// Builds n_shards sessions over one shared encoder; discretizer and
    /// model are copied per shard (they are small next to the encoder's
    /// hypervector arrays, which are shared — and for mapped bundles are
    /// views into one mmap).
    ShardRouter(std::shared_ptr<const hdc::Encoder> encoder, hdc::MinMaxDiscretizer discretizer,
                hdc::HdcModel model, RouterOptions options = {});

    /// Movable so factories can return routers by value; only legal before
    /// serving starts.  Not copyable.
    ShardRouter(ShardRouter&& other) noexcept;
    ShardRouter(const ShardRouter&) = delete;
    ShardRouter& operator=(const ShardRouter&) = delete;
    ShardRouter& operator=(ShardRouter&&) = delete;

    /// The router front door: admission-checks, places, and forwards the
    /// request.  Never blocks — shed outcomes come back as an already
    /// resolved future with Status::overloaded.  Response::shard_id names
    /// the serving shard.
    std::future<Response> submit(Request request) const;

    /// Synchronous conveniences routed through placement (keyless), for
    /// callers that want the fleet but not the async contract.  Same
    /// predict-surface convention as InferenceSession.
    std::vector<int> predict(const util::Matrix<float>& rows) const;
    int predict_row(std::span<const float> row) const;

    /// Rolls an epoch hot swap across every shard (see
    /// InferenceSession::swap_bundle): each shard validates and installs the
    /// snapshot in turn, old-epoch work finishing undisturbed.  If any
    /// shard's validation fails, the shards already swapped are rolled back
    /// to their previous serving state and RotationError (naming the
    /// failing shard) is thrown — the fleet is never left serving a mix of
    /// epochs after the call returns or throws.  During the roll itself a
    /// brief mix of the two epochs is expected and safe (responses carry
    /// Response::epoch).  Returns the installed epoch.
    std::uint64_t swap_all(const BundleSnapshot& snapshot) const;

    std::size_t n_shards() const noexcept { return shards_.size(); }
    Placement placement() const noexcept { return options_.placement; }
    std::size_t shed_watermark_rows() const noexcept { return watermark_; }
    /// Aggregate in-flight rows across every shard (the admission signal).
    std::size_t inflight_rows() const noexcept;
    const InferenceSession& shard(std::size_t index) const { return *shards_[index]; }
    RouterStats stats() const;

private:
    std::uint32_t pick_shard_(const std::optional<std::uint64_t>& shard_key) const;
    std::uint32_t ring_lookup_(std::uint64_t key) const;

    RouterOptions options_;
    std::size_t watermark_ = 0;
    std::vector<std::unique_ptr<InferenceSession>> shards_;
    /// Sorted (point, shard) pairs; empty unless placement is
    /// consistent_hash.  Immutable after construction.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
    mutable std::atomic<std::uint64_t> round_robin_{0};
    mutable std::atomic<std::uint64_t> accepted_{0};
    mutable std::atomic<std::uint64_t> shed_{0};
    mutable std::vector<std::atomic<std::uint64_t>> routed_;
};

}  // namespace hdlock::api
