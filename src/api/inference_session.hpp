#pragma once

/// \file inference_session.hpp
/// Thread-safe batched serving over any encoder + trained model.
///
/// The repo-wide pattern used to be row-at-a-time predict_row() loops; this
/// session owns the whole discretize -> encode -> classify chain for a batch
/// and partitions it across a *persistent* util::ThreadPool it owns for its
/// lifetime.  Dispatching a batch is one lock + notify — no thread is ever
/// created on the hot path (DispatchMode::spawn keeps the legacy
/// thread-per-batch dispatch alive purely as the A/B baseline).
///
/// Scratch is pinned per pool slot: each worker keeps its own
/// hdc::EncoderScratch (levels buffer, bit-sliced counter, sums buffer) plus
/// reused output hypervectors across every batch the session ever serves,
/// so the steady-state row does no heap allocation and no state is shared
/// between rows.  Single-row and small-batch calls skip pool dispatch
/// entirely and run on the calling thread against a pooled caller scratch —
/// predict_row() costs one mutex handoff, not an allocation.
///
/// predict_async() is the micro-batching front door: requests enter a
/// bounded SubmitQueue and a dispatcher thread coalesces whatever arrives
/// within `max_queue_delay` (up to `max_batch` rows) into one fused batch,
/// so many independent small callers amortise dispatch the way one big
/// batch does.  Results come back through std::future and are bit-identical
/// to predict() — per-row results are a pure function of the input
/// regardless of thread count, dispatch mode, coalescing, or whether the
/// optional bound-product cache is active (see hdc::Encoder on tie
/// breaking).
///
/// Epochs and hot swap (DESIGN.md §12): everything a served row reads —
/// encoder, discretizer, model, bound-product cache, fused flag, the mmap
/// anchor — lives in one immutable epoch-tagged ServingState behind an
/// atomic shared_ptr.  Every predict call takes ONE snapshot at entry, so a
/// batch is epoch-consistent even while swap_bundle() installs a rotated
/// bundle concurrently: in-flight work finishes on the old state (whose
/// aliasing anchors pin the old mmap), new work sees the new epoch, and the
/// old state frees itself when its last reader drops the snapshot.  Per-slot
/// scratch is rebuilt lazily on first touch of a new epoch.  A swap that
/// fails validation throws RotationError and leaves the old epoch serving.
///
/// Outside of the explicit swap_bundle() mutation the session is safe to
/// share across caller threads; concurrent predict()/predict_async() calls
/// only touch slot-pinned or leased scratch and atomic counters.  Moving a
/// session is only legal before it starts serving.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "api/request.hpp"
#include "data/dataset.hpp"
#include "hdc/discretize.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "util/deadline.hpp"
#include "util/kernels.hpp"
#include "util/matrix.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace hdlock::api {

enum class DispatchMode : std::uint8_t {
    /// Persistent worker pool owned by the session (the default).
    pooled = 0,
    /// Legacy fresh-std::thread-per-batch dispatch.  Kept as the measured
    /// baseline for the serving-core benchmarks and the cross-mode
    /// bit-identity tests; not intended for production serving.
    spawn = 1
};

/// SessionOptions::fused_predict states.
enum class FusedPredict : std::uint8_t {
    auto_detect = 0,  ///< fused when the model is binary and the shape fits
    on = 1,           ///< required — construction throws when unsupported
    off = 2           ///< always the two-step encode+predict baseline
};

struct SessionOptions {
    /// Worker threads for batch predict(); 0 picks the hardware concurrency.
    std::size_t n_threads = 1;
    /// Lower bound on rows per worker: a batch of R rows fans out to at
    /// most R / this workers (capped by n_threads), and when that yields a
    /// single worker the batch stays on the calling thread — dispatching a
    /// handful of rows costs more than it saves.
    std::size_t min_rows_per_thread = 16;
    /// Opt-in hdc::BoundProductCache: precompute all N x M bound products at
    /// session construction so every served row is pure counter adds (no
    /// XORs).  Trades N * M * D bits of memory for encode throughput;
    /// silently skipped when the table would exceed the cap below (the
    /// session falls back to the fused-XOR path).  Results are bit-identical
    /// either way.
    bool use_product_cache = false;
    /// Byte cap on the product cache (default 256 MiB).
    std::size_t product_cache_max_bytes = std::size_t{256} << 20;
    /// Pins the SIMD kernel backend before the session serves anything.
    /// Dispatch lives at the word-kernel layer and is process-global, so the
    /// pin configures the whole process, not just this session — intended
    /// for reproducibility pins ("this deployment serves on portable") and
    /// A/B measurement, where one process serves one configuration anyway.
    /// Unset keeps whatever is active (auto-detection or a previous pin).
    /// Construction throws ConfigError when the backend is not available on
    /// this host; results are bit-identical across backends either way.
    std::optional<util::kernels::Backend> kernel_backend = std::nullopt;
    /// Fused encode→distance predict for binary models: the per-row body
    /// calls hdc::HdcModel::predict_fused, which scores every class inside
    /// the kernel backend without materializing the query hypervector.
    /// auto_detect (default) enables it whenever the model is binary and
    /// the feature count fits the fused-path cap; `off` keeps the two-step
    /// encode+predict path (the A/B baseline); `on` insists — construction
    /// throws ConfigError when the session cannot honor it (non-binary
    /// model, or n_features() > util::kernels::kMaxFusedRows).  Labels are
    /// bit-identical either way, on every backend.
    FusedPredict fused_predict = FusedPredict::auto_detect;
    /// How batches reach the workers (see DispatchMode).
    DispatchMode dispatch = DispatchMode::pooled;
    /// predict_async() micro-batching: the dispatcher fuses queued requests
    /// into batches of at most this many rows.
    std::size_t max_batch = 256;
    /// How long the dispatcher waits for more requests to coalesce after
    /// the first one arrives.  0 serves every request immediately.
    std::chrono::microseconds max_queue_delay{200};
    /// Row capacity of the bounded submit queue; predict_async() blocks
    /// (backpressure) while the queue is full.
    std::size_t max_queue_rows = 8192;
    /// Opt-in adaptive coalescing governor: the dispatcher measures the
    /// request arrival rate (EWMA of rows/µs across pop cycles) and scales
    /// the effective queue delay between 0 and `max_queue_delay` — waiting
    /// only helps when arrivals actually overlap, so an idle session serves
    /// immediately while a saturated one coalesces just long enough to fill
    /// a batch.  Off by default (fixed `max_queue_delay`); the shard router
    /// turns it on.  Affects batching/latency only, never labels.
    bool adaptive_queue_delay = false;
    /// Epoch stamp of the initial serving state.  Bundle-derived factories
    /// (api::Device, api::Owner) pass the bundle's epoch; hand-built
    /// sessions start at 0.  Response::epoch reports the epoch that served.
    std::uint64_t epoch = 0;
};

/// The serving-facing contents of one epoch of a deployment bundle,
/// decoupled from DeploymentBundle itself so the device serving layer never
/// includes the owner-side bundle header (DeploymentBundle::make_snapshot()
/// and api::Owner/Device build these).  `backing` pins the mmap for
/// zero-copy bundles; null for owned state.
struct BundleSnapshot {
    std::uint64_t epoch = 0;
    std::shared_ptr<const hdc::Encoder> encoder;
    std::optional<hdc::MinMaxDiscretizer> discretizer;
    std::optional<hdc::HdcModel> model;
    std::shared_ptr<const void> backing;
};

/// Number of worker threads predict() fans a batch of `n_rows` out to —
/// clamped so no worker ever receives an empty range (a fixed
/// ceil(n/workers) chunking can strand trailing workers past the end, e.g.
/// 13 rows over 6 workers -> chunk 3 -> worker 5 would start at row 15).
/// Exposed for testability.
std::size_t planned_workers(std::size_t n_rows, std::size_t n_threads,
                            std::size_t min_rows_per_thread) noexcept;

/// One queued predict_async() request.  Two transports share the queue:
/// the legacy path resolves `promise` with bare labels, the typed path
/// (predict_async(Request)) resolves `typed_promise` with a full Response —
/// `typed` discriminates (std::promise cannot be type-erased after the
/// future is handed out).  Deadline/cancel/enqueue metadata ride along so
/// the dispatcher can drop doomed requests before paying for encode.
struct AsyncRequest {
    util::Matrix<float> rows;
    std::promise<std::vector<int>> promise;
    bool typed = false;
    std::promise<Response> typed_promise;
    util::Deadline deadline{};
    CancelToken cancel{};
    std::uint32_t shard_id = 0;
    util::SteadyTime enqueued_at{};
};

/// Bounded MPSC hand-off between predict_async() callers and the session's
/// dispatcher thread.  push() applies backpressure (blocks while `max_rows`
/// are queued); pop_batch() coalesces concurrent small requests into one
/// micro-batch.  close() wakes everyone: producers get an error, the
/// consumer drains what is left and then sees "done".
///
/// Lock discipline (checked under -Wthread-safety): one mutex guards every
/// mutable field; `not_empty_` wakes the dispatcher, `not_full_` wakes
/// backpressured producers.  `max_rows_` is immutable after construction
/// and deliberately unguarded.
class SubmitQueue {
public:
    explicit SubmitQueue(std::size_t max_rows);

    /// Blocks while the queue is full.  A request larger than the whole
    /// queue is admitted alone (it could never fit otherwise).  Throws
    /// ShutdownError when the queue is closed.
    void push(AsyncRequest request) HDLOCK_EXCLUDES(mutex_);

    /// Non-blocking admission: returns Status::ok and consumes the request
    /// when it fits under the row cap (same oversized-alone rule as push),
    /// or Status::overloaded leaving `request` untouched so the caller can
    /// resolve its promise with a shed response instead of blocking.  This
    /// is the refusal path admission control needs.  Throws ShutdownError
    /// when the queue is closed.
    Status try_submit(AsyncRequest&& request) HDLOCK_EXCLUDES(mutex_);

    /// Blocks until a request arrives, then keeps collecting whole requests
    /// for up to `delay` or until `max_batch` rows are gathered.  Returns
    /// an empty vector once closed and drained.
    std::vector<AsyncRequest> pop_batch(std::size_t max_batch, std::chrono::microseconds delay)
        HDLOCK_EXCLUDES(mutex_);

    void close() HDLOCK_EXCLUDES(mutex_);

    /// True once close() has been called.  The dispatcher checks this after
    /// every pop: batches popped after close are shutdown leftovers whose
    /// futures must be *failed* (ShutdownError), not served — the session
    /// is being destroyed out from under them.
    bool closed() const HDLOCK_EXCLUDES(mutex_);

    /// Rows currently queued (for tests / introspection).
    std::size_t queued_rows() const HDLOCK_EXCLUDES(mutex_);

private:
    mutable util::Mutex mutex_;
    util::CondVar not_empty_;
    util::CondVar not_full_;
    std::deque<AsyncRequest> requests_ HDLOCK_GUARDED_BY(mutex_);
    std::size_t queued_rows_ HDLOCK_GUARDED_BY(mutex_) = 0;
    std::size_t max_rows_;
    bool closed_ HDLOCK_GUARDED_BY(mutex_) = false;
};

/// Predict-surface convention (shared by InferenceSession, Owner, Device
/// and ShardRouter — see DESIGN.md §10):
///   predict(Matrix)        -> vector<int>        synchronous batch
///   predict_row(span)      -> int                synchronous single row
///   predict_async(Matrix)  -> future<vector<int>> legacy async transport
///   predict_async(Request) -> future<Response>    typed async transport
///   try_predict_async(Request) -> future<Response> non-blocking admission
/// Inputs are spans/matrices of raw feature values; typed results carry a
/// Status instead of smuggling control flow through exceptions.  The legacy
/// Matrix overload stays as a thin wrapper over the typed path and remains
/// byte-identical — nothing is silently deprecated.
class InferenceSession {
public:
    /// One immutable epoch of serving state: everything a served row reads,
    /// installed and replaced atomically as a unit (RCU).  Snapshots taken
    /// at predict entry keep an epoch (and its mmap, via the shared encoder
    /// anchors and `backing`) alive until the last in-flight batch on it
    /// finishes.
    struct ServingState {
        std::uint64_t epoch = 0;
        std::shared_ptr<const hdc::Encoder> encoder;
        hdc::MinMaxDiscretizer discretizer;
        hdc::HdcModel model;
        /// Rebuilt per epoch when SessionOptions::use_product_cache was
        /// taken (built off the hot path, before install — the old epoch
        /// serves while this epoch precomputes).
        std::shared_ptr<const hdc::BoundProductCache> product_cache;
        bool fused_predict = false;
        /// Pins the mmap behind a zero-copy bundle epoch; null when owned.
        std::shared_ptr<const void> backing;
    };

    /// The encoder is shared (it is immutable); discretizer and model are
    /// copied so the session's lifetime is independent of its maker.
    InferenceSession(std::shared_ptr<const hdc::Encoder> encoder,
                     hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                     SessionOptions options = {});

    /// Movable so factories can return sessions by value; moving is only
    /// legal before the session starts serving (a live dispatcher or an
    /// in-flight predict() call holds internal pointers).  Not copyable.
    InferenceSession(InferenceSession&& other) noexcept;
    ~InferenceSession();
    InferenceSession(const InferenceSession&) = delete;
    InferenceSession& operator=(const InferenceSession&) = delete;
    InferenceSession& operator=(InferenceSession&&) = delete;

    /// Predicts every row of the batch. Rows are raw feature values with
    /// exactly n_features() columns; the result is one class label per row,
    /// in row order.
    std::vector<int> predict(const util::Matrix<float>& rows) const;

    /// Queues the batch for the micro-batching dispatcher and returns a
    /// future resolving to the same labels predict() would produce.  Small
    /// concurrent requests are fused into one pooled batch; backpressure
    /// blocks the caller while `max_queue_rows` are already queued.  The
    /// first call lazily starts the dispatcher thread.
    std::future<std::vector<int>> predict_async(util::Matrix<float> rows) const;

    /// Typed async serving: queues the request and resolves a Response
    /// carrying labels plus Status.  Deadline and cancellation are checked
    /// at submit and again by the dispatcher *before* encode, so a doomed
    /// request never pays for inference; an Ok response's labels are
    /// byte-identical to predict() on the same rows.  Blocks for
    /// backpressure like the Matrix overload.  Genuine internal failures
    /// still surface as exceptions through the future (they are bugs, not
    /// load).  `shard_id` is stamped into Response::shard_id verbatim (the
    /// router passes the chosen shard's index; direct callers leave it 0).
    std::future<Response> predict_async(Request request, std::uint32_t shard_id = 0) const;

    /// Like predict_async(Request) but never blocks: when the submit queue
    /// is full the returned future is already resolved with
    /// Status::overloaded.  This is the admission-control entry the shard
    /// router uses.
    std::future<Response> try_predict_async(Request request, std::uint32_t shard_id = 0) const;

    /// Single-row inference: same output as predict() on a 1-row batch, but
    /// skips dispatch entirely — it runs on the calling thread against a
    /// leased scratch and consults the bound-product cache when active.
    int predict_row(std::span<const float> row) const;

    /// RCU hot swap: validates the rotated bundle's serving state (trained
    /// model, matching shapes, same feature count as the current epoch, the
    /// configured fused/product-cache options still satisfiable), builds the
    /// new immutable ServingState — product cache precomputed here, while
    /// the old epoch still serves — and installs it with one atomic
    /// exchange.  In-flight requests finish on the old epoch's snapshot;
    /// requests submitted after the swap serve the new epoch; per-slot
    /// scratch rebuilds lazily on first touch of the new epoch.  Throws
    /// RotationError on any validation failure, leaving the old epoch
    /// serving untouched.  Returns the installed epoch.
    std::uint64_t swap_bundle(BundleSnapshot snapshot) const;

    /// The current epoch's immutable serving state (one atomic load).  The
    /// returned snapshot stays valid — old mmap included — for as long as
    /// the caller holds it, even across concurrent swaps.
    std::shared_ptr<const ServingState> serving_state() const noexcept {
        return serving_.load(std::memory_order_acquire);
    }

    /// Epoch currently being served (new submissions land here).
    std::uint64_t epoch() const noexcept { return serving_state()->epoch; }

    /// Fraction of the labeled dataset classified correctly (batched
    /// through predict()); 0 for an empty dataset.
    double evaluate(const data::Dataset& dataset) const;

    std::size_t n_features() const noexcept { return serving_state()->encoder->n_features(); }
    std::size_t n_threads() const noexcept { return n_threads_; }
    DispatchMode dispatch_mode() const noexcept { return dispatch_; }
    /// True when the current epoch holds a materialized bound-product cache
    /// (the opt-in was taken and the table fit under the byte cap).
    bool product_cache_active() const noexcept {
        return serving_state()->product_cache != nullptr;
    }
    /// True when binary rows are served through the fused encode→distance
    /// kernel path (see SessionOptions::fused_predict).
    bool fused_predict_active() const noexcept { return serving_state()->fused_predict; }
    /// Current epoch's model/discretizer.  The references read through the
    /// installed state: valid until the next swap_bundle() (hold
    /// serving_state() instead when swaps may race).
    const hdc::HdcModel& model() const noexcept { return serving_.load()->model; }
    const hdc::MinMaxDiscretizer& discretizer() const noexcept {
        return serving_.load()->discretizer;
    }

    /// Total rows served by this session across all predict calls (atomic;
    /// approximate ordering under concurrency).
    std::uint64_t rows_served() const noexcept { return rows_served_.load(); }

    /// Rows admitted to the async path and not yet resolved (queued or
    /// being served).  The router's least-loaded placement and watermark
    /// admission read this; approximate under concurrency.
    std::size_t inflight_rows() const noexcept {
        const std::int64_t rows = inflight_rows_.load(std::memory_order_relaxed);
        return rows > 0 ? static_cast<std::size_t>(rows) : 0;
    }

    /// The coalescing delay the dispatcher is currently using: the
    /// configured `max_queue_delay` until the adaptive governor (when
    /// enabled) has measured an arrival rate, then its scaled value.
    std::chrono::microseconds current_queue_delay() const;

private:
    friend class ShardRouter;  // swap_all rollback re-installs captured states

    struct WorkerState;
    struct Runtime;

    /// Validates and assembles one epoch of serving state under this
    /// session's options (fused mode honored, product cache precomputed).
    /// Throws ConfigError naming the violation; swap_bundle wraps that in
    /// RotationError, the constructor lets it surface as-is.
    std::shared_ptr<const ServingState> build_serving_state_(
        std::uint64_t epoch, std::shared_ptr<const hdc::Encoder> encoder,
        hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
        std::shared_ptr<const void> backing) const;
    /// Installs an already-built state (the router's rollback path).
    void install_serving_state_(std::shared_ptr<const ServingState> state) const noexcept {
        serving_.store(std::move(state), std::memory_order_release);
    }

    std::future<Response> submit_async_(Request request, std::uint32_t shard_id,
                                        bool blocking) const;
    std::vector<int> predict_with_(const ServingState& state,
                                   const util::Matrix<float>& rows) const;
    void predict_into_(const ServingState& state, const util::Matrix<float>& rows,
                       std::span<int> out) const;
    /// The one serving inner body (discretize -> encode -> classify) every
    /// path funnels through — predict_range_ per batch row, predict_row via
    /// a leased scratch — so they cannot diverge.
    int predict_one_(const ServingState& state, std::span<const float> row,
                     WorkerState& worker) const;
    void predict_range_(const ServingState& state, const util::Matrix<float>& rows,
                        std::size_t begin, std::size_t end, std::span<int> out,
                        WorkerState& worker) const;

    std::size_t n_threads_ = 1;
    std::size_t min_rows_per_thread_ = 16;
    DispatchMode dispatch_ = DispatchMode::pooled;
    std::size_t max_batch_ = 256;
    std::chrono::microseconds max_queue_delay_{200};
    std::size_t max_queue_rows_ = 8192;
    bool adaptive_queue_delay_ = false;
    /// Options a swap must re-apply when building the next epoch's state.
    FusedPredict fused_mode_ = FusedPredict::auto_detect;
    bool use_product_cache_ = false;
    std::size_t product_cache_max_bytes_ = std::size_t{256} << 20;
    /// The RCU cell: the current epoch's immutable serving state.  Readers
    /// snapshot once per predict call; swap_bundle exchanges the pointer.
    mutable std::atomic<std::shared_ptr<const ServingState>> serving_;
    /// Pool, slot-pinned worker scratch, leased caller scratch and the lazy
    /// async core live behind one stable pointer so moves stay cheap.
    mutable std::unique_ptr<Runtime> runtime_;
    mutable std::atomic<std::uint64_t> rows_served_{0};
    mutable std::atomic<std::int64_t> inflight_rows_{0};
};

}  // namespace hdlock::api
