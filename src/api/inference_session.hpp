#pragma once

/// \file inference_session.hpp
/// Thread-safe batched serving over any encoder + trained model.
///
/// The repo-wide pattern used to be row-at-a-time predict_row() loops; this
/// session owns the whole discretize -> encode -> classify chain for a batch
/// and partitions it across worker threads.  Each worker keeps its own
/// hdc::EncoderScratch (levels buffer, bit-sliced counter, sums buffer) plus
/// reused output hypervectors, so no heap allocation happens per row and no
/// state is shared between rows — the per-row results are bit-identical to a
/// sequential predict_row() loop regardless of the thread count or of
/// whether the optional bound-product cache is active (every row's encoding
/// is a pure function of its input; see hdc::Encoder on tie breaking).
///
/// The session is immutable after construction and safe to share across
/// caller threads; concurrent predict() calls only touch local scratch and
/// an atomic served-rows counter.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/discretize.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "util/kernels.hpp"
#include "util/matrix.hpp"

namespace hdlock::api {

struct SessionOptions {
    /// Worker threads for batch predict(); 0 picks the hardware concurrency.
    std::size_t n_threads = 1;
    /// Lower bound on rows per spawned worker: a batch of R rows fans out
    /// to at most R / this workers (capped by n_threads), and when that
    /// yields a single worker the batch stays on the calling thread —
    /// spawning threads for a handful of rows costs more than it saves.
    std::size_t min_rows_per_thread = 16;
    /// Opt-in hdc::BoundProductCache: precompute all N x M bound products at
    /// session construction so every served row is pure counter adds (no
    /// XORs).  Trades N * M * D bits of memory for encode throughput;
    /// silently skipped when the table would exceed the cap below (the
    /// session falls back to the fused-XOR path).  Results are bit-identical
    /// either way.
    bool use_product_cache = false;
    /// Byte cap on the product cache (default 256 MiB).
    std::size_t product_cache_max_bytes = std::size_t{256} << 20;
    /// Pins the SIMD kernel backend before the session serves anything.
    /// Dispatch lives at the word-kernel layer and is process-global, so the
    /// pin configures the whole process, not just this session — intended
    /// for reproducibility pins ("this deployment serves on portable") and
    /// A/B measurement, where one process serves one configuration anyway.
    /// Unset keeps whatever is active (auto-detection or a previous pin).
    /// Construction throws ConfigError when the backend is not available on
    /// this host; results are bit-identical across backends either way.
    std::optional<util::kernels::Backend> kernel_backend = std::nullopt;
};

/// Number of worker threads predict() fans a batch of `n_rows` out to —
/// clamped so no spawned worker ever receives an empty range (a fixed
/// ceil(n/workers) chunking can strand trailing workers past the end, e.g.
/// 13 rows over 6 workers -> chunk 3 -> worker 5 would start at row 15).
/// Exposed for testability.
std::size_t planned_workers(std::size_t n_rows, std::size_t n_threads,
                            std::size_t min_rows_per_thread) noexcept;

class InferenceSession {
public:
    /// The encoder is shared (it is immutable); discretizer and model are
    /// copied so the session's lifetime is independent of its maker.
    InferenceSession(std::shared_ptr<const hdc::Encoder> encoder,
                     hdc::MinMaxDiscretizer discretizer, hdc::HdcModel model,
                     SessionOptions options = {});

    /// Movable (the atomic counter's value carries over) so factories can
    /// return sessions by value; not copyable.
    InferenceSession(InferenceSession&& other) noexcept
        : encoder_(std::move(other.encoder_)),
          discretizer_(std::move(other.discretizer_)),
          model_(std::move(other.model_)),
          product_cache_(std::move(other.product_cache_)),
          n_threads_(other.n_threads_),
          min_rows_per_thread_(other.min_rows_per_thread_),
          rows_served_(other.rows_served_.load()) {}
    InferenceSession(const InferenceSession&) = delete;
    InferenceSession& operator=(const InferenceSession&) = delete;
    InferenceSession& operator=(InferenceSession&&) = delete;

    /// Predicts every row of the batch. Rows are raw feature values with
    /// exactly n_features() columns; the result is one class label per row,
    /// in row order.
    std::vector<int> predict(const util::Matrix<float>& rows) const;

    /// Single-row inference (the classic predict_row path, same output).
    int predict_row(std::span<const float> row) const;

    /// Fraction of the labeled dataset classified correctly (batched
    /// through predict()); 0 for an empty dataset.
    double evaluate(const data::Dataset& dataset) const;

    std::size_t n_features() const noexcept { return encoder_->n_features(); }
    std::size_t n_threads() const noexcept { return n_threads_; }
    /// True when the session holds a materialized bound-product cache (the
    /// opt-in was taken and the table fit under the byte cap).
    bool product_cache_active() const noexcept { return product_cache_ != nullptr; }
    const hdc::HdcModel& model() const noexcept { return model_; }
    const hdc::MinMaxDiscretizer& discretizer() const noexcept { return discretizer_; }

    /// Total rows served by this session across all predict calls (atomic;
    /// approximate ordering under concurrency).
    std::uint64_t rows_served() const noexcept { return rows_served_.load(); }

private:
    void predict_range(const util::Matrix<float>& rows, std::size_t begin, std::size_t end,
                       std::span<int> out) const;

    std::shared_ptr<const hdc::Encoder> encoder_;
    hdc::MinMaxDiscretizer discretizer_;
    hdc::HdcModel model_;
    std::shared_ptr<const hdc::BoundProductCache> product_cache_;
    std::size_t n_threads_ = 1;
    std::size_t min_rows_per_thread_ = 16;
    mutable std::atomic<std::uint64_t> rows_served_{0};
};

}  // namespace hdlock::api
