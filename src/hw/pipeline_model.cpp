#include "hw/pipeline_model.hpp"

namespace hdlock::hw {

namespace {

void validate(const HwConfig& config) {
    HDLOCK_EXPECTS(config.datapath_width > 0, "HwConfig: datapath_width must be positive");
    HDLOCK_EXPECTS(config.memory_ports > 0, "HwConfig: memory_ports must be positive");
    HDLOCK_EXPECTS(config.accumulate_beats > 0, "HwConfig: accumulate_beats must be positive");
}

}  // namespace

EncoderPipelineModel::EncoderPipelineModel(const HwConfig& config, std::size_t dim,
                                           std::size_t n_features, std::size_t n_layers)
    : config_(config), dim_(dim), n_features_(n_features), n_layers_(n_layers) {
    validate(config);
    HDLOCK_EXPECTS(dim > 0, "EncoderPipelineModel: dim must be positive");
    HDLOCK_EXPECTS(n_features > 0, "EncoderPipelineModel: n_features must be positive");
}

EncodeCost EncoderPipelineModel::encode_cost() const {
    const std::uint64_t segments =
        (dim_ + config_.datapath_width - 1) / config_.datapath_width;

    // Operands streamed per feature-segment: the ValHV plus max(1, L)
    // base/feature hypervectors.  Rotation is absorbed into the read address
    // (fact 1 in the file comment), and the XOR is fused into the stream.
    const std::uint64_t operands = 1 + (n_layers_ == 0 ? 1 : n_layers_);
    const std::uint64_t fetch_per_segment =
        (operands + config_.memory_ports - 1) / config_.memory_ports;

    EncodeCost cost;
    cost.fetch_beats = n_features_ * segments * fetch_per_segment;
    cost.accumulate_beats = n_features_ * segments * config_.accumulate_beats;
    cost.binarize_beats = segments;
    cost.fill_beats = config_.pipeline_fill;
    cost.cycles =
        cost.fetch_beats + cost.accumulate_beats + cost.binarize_beats + cost.fill_beats;
    return cost;
}

double EncoderPipelineModel::relative_to_baseline() const {
    const EncoderPipelineModel baseline(config_, dim_, n_features_, 0);
    return static_cast<double>(cycles()) / static_cast<double>(baseline.cycles());
}

std::vector<double> relative_time_curve(const HwConfig& config, std::size_t dim,
                                        std::size_t n_features, std::size_t max_layers) {
    HDLOCK_EXPECTS(max_layers >= 1, "relative_time_curve: need at least one layer");
    std::vector<double> curve;
    curve.reserve(max_layers);
    for (std::size_t layers = 1; layers <= max_layers; ++layers) {
        curve.push_back(
            EncoderPipelineModel(config, dim, n_features, layers).relative_to_baseline());
    }
    return curve;
}

}  // namespace hdlock::hw
