#pragma once

/// \file pipeline_model.hpp
/// Clock-cycle cost model of the HDC encoder datapath (Fig. 9 substrate).
///
/// The paper measures encoding time in clock cycles on a Zynq UltraScale+
/// FPGA with the computation "segmented, pipelined and paralleled as tree
/// structure" [QuantHD].  That hardware is replaced here by a parametric
/// model (DESIGN.md §2) built around three structural facts the paper
/// reports:
///
///  1. A permutation rho_k is a shifted memory access — free.  Hence L = 1
///     costs exactly as much as the unprotected baseline (both stream two
///     operands per feature-segment: one ValHV and one base/FeaHV).
///  2. Every additional layer streams one more base hypervector through the
///     fused fetch+XOR datapath, so cycles grow linearly from L = 2.
///  3. Both locked and baseline cost scale with N * D / datapath_width, so
///     their *ratio* is dataset-independent — the paper's observation that
///     the relative-time curves of all five benchmarks coincide.
///
/// Per feature-segment the initiation interval is
///     II(L) = ceil((1 + max(1, L)) / memory_ports) + accumulate_beats
/// and a whole sample costs
///     cycles = pipeline_fill + N * segments * II(L) + segments(binarize).
///
/// The defaults (one memory port, 3 accumulate beats) are calibrated so the
/// two-layer overhead matches the paper's headline 1.21x: II(2)/II(1) =
/// 6/5 = 1.20.

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace hdlock::hw {

/// Parametric description of the encoder datapath.
struct HwConfig {
    /// Bits processed per beat (the segment width of the segmented design).
    std::size_t datapath_width = 512;
    /// Concurrent hypervector-memory reads per beat.
    std::size_t memory_ports = 1;
    /// Adder-tree beats to fold one product segment into the accumulator.
    std::size_t accumulate_beats = 3;
    /// One-time pipeline priming latency in beats.
    std::size_t pipeline_fill = 16;
    /// Clock frequency used by microseconds().
    double clock_mhz = 200.0;
};

/// Cycle breakdown for encoding one input sample.
struct EncodeCost {
    std::uint64_t cycles = 0;
    std::uint64_t fetch_beats = 0;       ///< operand streaming (incl. fused XOR)
    std::uint64_t accumulate_beats = 0;  ///< adder-tree folding
    std::uint64_t binarize_beats = 0;    ///< final sign() pass
    std::uint64_t fill_beats = 0;        ///< pipeline priming

    double microseconds(double clock_mhz) const {
        HDLOCK_EXPECTS(clock_mhz > 0.0, "EncodeCost: clock must be positive");
        return static_cast<double>(cycles) / clock_mhz;
    }
};

/// Cycle-cost model for one encoder configuration.
class EncoderPipelineModel {
public:
    /// \param n_layers HDLock layers; 0 = unprotected baseline.
    EncoderPipelineModel(const HwConfig& config, std::size_t dim, std::size_t n_features,
                         std::size_t n_layers);

    /// Cost of encoding one sample.
    EncodeCost encode_cost() const;
    std::uint64_t cycles() const { return encode_cost().cycles; }

    /// Encoding time of this configuration relative to the same device
    /// running the unprotected (L = 0) module — the y-axis of Fig. 9.
    double relative_to_baseline() const;

    std::size_t dim() const noexcept { return dim_; }
    std::size_t n_features() const noexcept { return n_features_; }
    std::size_t n_layers() const noexcept { return n_layers_; }
    const HwConfig& config() const noexcept { return config_; }

private:
    HwConfig config_;
    std::size_t dim_;
    std::size_t n_features_;
    std::size_t n_layers_;
};

/// Convenience: the relative-time curve for L = 1..max_layers on one device
/// (one line of Fig. 9).
std::vector<double> relative_time_curve(const HwConfig& config, std::size_t dim,
                                        std::size_t n_features, std::size_t max_layers);

}  // namespace hdlock::hw
