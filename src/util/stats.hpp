#pragma once

/// \file stats.hpp
/// Small statistics helpers used by experiments and tests.

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hdlock::util {

/// Numerically stable running mean / variance (Welford).
class OnlineStats {
public:
    void add(double x) noexcept;

    std::size_t count() const noexcept { return count_; }
    double mean() const noexcept { return mean_; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Confusion matrix over a fixed number of classes.
class ConfusionMatrix {
public:
    explicit ConfusionMatrix(int n_classes);

    void add(int truth, int predicted);

    int n_classes() const noexcept { return n_classes_; }
    std::int64_t total() const noexcept { return total_; }
    std::int64_t at(int truth, int predicted) const;
    double accuracy() const noexcept;
    /// Recall of one class; 0 when the class has no samples.
    double recall(int cls) const;

private:
    int n_classes_;
    std::int64_t total_ = 0;
    std::int64_t correct_ = 0;
    std::vector<std::int64_t> cells_;  // row = truth, col = predicted
};

/// Fraction of positions where the two label sequences agree.
double agreement(std::span<const int> a, std::span<const int> b);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);
double median(std::vector<double> values);  // by value: it must partially sort

}  // namespace hdlock::util
