#pragma once

/// \file bitvec.hpp
/// Packed-bit kernels underlying all hypervector arithmetic.
///
/// A logical bit array of n_bits is stored little-endian in 64-bit words:
/// logical bit i lives in word i/64 at bit position i%64.  All routines keep
/// the invariant that bits past n_bits in the last word are zero — callers
/// that produce words directly must re-mask with tail_mask().
///
/// The bipolar mapping used by the HDC layer is: stored bit 1 represents the
/// value -1 and stored bit 0 represents +1, so that element-wise bipolar
/// multiplication is exactly word-wise XOR.
///
/// The word-loop kernels here (xor_into, popcount, hamming) execute through
/// the runtime-dispatched SIMD backend layer of util/kernels.hpp; every
/// backend is bit-identical to the portable reference, so callers never
/// observe which ISA ran.

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace hdlock::util::bits {

using Word = std::uint64_t;
inline constexpr std::size_t kWordBits = 64;

/// Number of words needed to hold n_bits.
constexpr std::size_t word_count(std::size_t n_bits) noexcept {
    return (n_bits + kWordBits - 1) / kWordBits;
}

/// Mask of the valid bits in the last word (all ones when n_bits % 64 == 0).
constexpr Word tail_mask(std::size_t n_bits) noexcept {
    const std::size_t rem = n_bits % kWordBits;
    return rem == 0 ? ~Word{0} : (Word{1} << rem) - 1;
}

inline bool get_bit(std::span<const Word> words, std::size_t i) noexcept {
    return ((words[i / kWordBits] >> (i % kWordBits)) & Word{1}) != 0;
}

inline void set_bit(std::span<Word> words, std::size_t i, bool value) noexcept {
    const Word mask = Word{1} << (i % kWordBits);
    if (value) {
        words[i / kWordBits] |= mask;
    } else {
        words[i / kWordBits] &= ~mask;
    }
}

/// Sets all words to zero.
void clear(std::span<Word> words) noexcept;

/// Fills with uniform random bits; the tail beyond n_bits is masked to zero.
void fill_random(std::span<Word> words, std::size_t n_bits, Xoshiro256ss& rng) noexcept;

/// dst = a ^ b. All spans must have equal size; dst may alias a or b.
void xor_into(std::span<Word> dst, std::span<const Word> a, std::span<const Word> b) noexcept;

/// dst = ~src with the tail re-masked. dst may alias src.
void not_into(std::span<Word> dst, std::span<const Word> src, std::size_t n_bits) noexcept;

/// Number of set bits across all words.
std::size_t popcount(std::span<const Word> words) noexcept;

/// Number of positions where a and b differ (unnormalized Hamming distance).
std::size_t hamming(std::span<const Word> a, std::span<const Word> b) noexcept;

/// Appends the indices of all set bits of `words` (restricted to n_bits) to `out`.
void collect_set_bits(std::span<const Word> words, std::size_t n_bits,
                      std::vector<std::uint32_t>& out);

/// Copies `len` bits from src starting at bit src_off into dst starting at
/// bit dst_off.  The bit ranges must lie within the respective spans and the
/// arrays must not overlap.
void copy_bits(std::span<Word> dst, std::size_t dst_off, std::span<const Word> src,
               std::size_t src_off, std::size_t len);

/// Circular rotation with the paper's semantics (Sec. 2):
///   rho_k(v)[i] = v[(i + k) mod n_bits]
/// i.e. the first k logical elements wrap to the end.  dst must not alias
/// src; k may be any non-negative value (it is reduced mod n_bits).
void rotate(std::span<Word> dst, std::span<const Word> src, std::size_t n_bits, std::size_t k);

/// True when all words compare equal.
bool equal(std::span<const Word> a, std::span<const Word> b) noexcept;

}  // namespace hdlock::util::bits
