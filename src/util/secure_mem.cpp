#include "util/secure_mem.hpp"

namespace hdlock::util {

void secure_zero(void* data, std::size_t bytes) noexcept {
    if (data == nullptr || bytes == 0) return;
    // Volatile qualification forces every store to happen; the barrier stops
    // the optimizer from proving the buffer dead across the call boundary
    // (this function is deliberately out of line for the same reason).
    volatile unsigned char* p = static_cast<volatile unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) p[i] = 0;
#if defined(__GNUC__) || defined(__clang__)
    __asm__ __volatile__("" : : "r"(data) : "memory");
#endif
}

}  // namespace hdlock::util
