#include "util/fault_inject.hpp"

#include <atomic>
#include <cstdlib>
#include <map>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace hdlock::util::fault {

namespace {

struct Failpoint {
    int skip = 0;      // hits to let pass before firing
    int remaining = 0; // shots left once skipping is done
    std::uint64_t hits = 0;
};

struct Registry {
    util::Mutex mutex;
    std::map<std::string, Failpoint, std::less<>> points HDLOCK_GUARDED_BY(mutex);
};

Registry& registry() {
    static Registry instance;
    return instance;
}

/// -1 = follow the environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_forced{-1};

/// Number of armed failpoints; the disabled/idle fast path in should_fail
/// is this load plus the enable check — no lock, no lookup.
std::atomic<int> g_armed{0};

bool env_enabled() {
    static const bool value = [] {
        // hdlock-lint: allow(nondeterminism) — a process-lifetime test-seam
        // gate, read once; it can only turn failure injection on, never
        // alter a served label.
        const char* raw = std::getenv("HDLOCK_FAULT_INJECTION");
        if (raw == nullptr) return false;
        const std::string_view v(raw);
        return v == "1" || v == "on" || v == "ON" || v == "true" || v == "TRUE";
    }();
    return value;
}

}  // namespace

bool enabled() noexcept {
    const int forced = g_forced.load(std::memory_order_relaxed);
    if (forced >= 0) return forced != 0;
    return env_enabled();
}

void force_enable(bool on) noexcept {
    g_forced.store(on ? 1 : 0, std::memory_order_relaxed);
}

void arm(std::string_view point, int count, int skip) {
    Registry& reg = registry();
    const util::MutexLock lock(reg.mutex);
    auto [it, inserted] = reg.points.insert_or_assign(
        std::string(point), Failpoint{skip, count < 0 ? 0 : count, 0});
    (void)it;
    if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void disarm(std::string_view point) {
    Registry& reg = registry();
    const util::MutexLock lock(reg.mutex);
    auto it = reg.points.find(point);
    if (it != reg.points.end()) {
        reg.points.erase(it);
        g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
}

void reset() noexcept {
    Registry& reg = registry();
    const util::MutexLock lock(reg.mutex);
    g_armed.fetch_sub(static_cast<int>(reg.points.size()), std::memory_order_relaxed);
    reg.points.clear();
}

bool should_fail(std::string_view point) noexcept {
    if (g_armed.load(std::memory_order_relaxed) == 0) return false;
    if (!enabled()) return false;
    Registry& reg = registry();
    const util::MutexLock lock(reg.mutex);
    auto it = reg.points.find(point);
    if (it == reg.points.end()) return false;
    Failpoint& fp = it->second;
    if (fp.skip > 0) {
        --fp.skip;
        return false;
    }
    if (fp.remaining <= 0) return false;
    --fp.remaining;
    ++fp.hits;
    return true;
}

std::uint64_t hit_count(std::string_view point) {
    Registry& reg = registry();
    const util::MutexLock lock(reg.mutex);
    auto it = reg.points.find(point);
    return it == reg.points.end() ? 0 : it->second.hits;
}

ScopedFault::ScopedFault(std::string_view point, int count, int skip)
    : point_(point), was_forced_(g_forced.load(std::memory_order_relaxed) >= 0) {
    force_enable(true);
    arm(point_, count, skip);
}

ScopedFault::~ScopedFault() {
    disarm(point_);
    if (!was_forced_) g_forced.store(-1, std::memory_order_relaxed);
}

std::uint64_t ScopedFault::hits() const {
    return hit_count(point_);
}

}  // namespace hdlock::util::fault
