#pragma once

/// \file thread_pool.hpp
/// Reusable worker pool behind the serving hot path.
///
/// api::InferenceSession used to spawn and join fresh std::threads on every
/// predict() call; at small batch sizes the clone/join syscalls dominated the
/// actual encode work.  ThreadPool keeps a fixed worker set parked on a
/// condition variable, so batch dispatch is one lock + notify instead of N
/// thread creations.
///
/// Each worker owns a stable *slot ID* in [0, size()), passed to every task
/// it runs.  That is the contract callers key per-worker pinned state on
/// (e.g. the session's per-slot EncoderScratch): a slot's state is only ever
/// touched by the one thread owning the slot, so no locking is needed around
/// it even when several caller threads share the pool.
///
/// parallel_for() is the blocking fan-out helper: it partitions an index
/// range into contiguous chunks, runs them across the pool, waits for
/// completion on the caller thread, and rethrows the first exception a
/// worker captured.  Identical chunking to the old spawn path, so results
/// and coverage semantics are unchanged — only the dispatch cost moved.
///
/// Lock discipline (checked under -Wthread-safety, see DESIGN.md §8):
/// `mutex_` guards the task queue and the stop flag; `wake_` parks idle
/// workers.  The worker vector itself is unguarded on purpose — it is
/// written only by the constructor (before any worker can observe it) and
/// the destructor (after every worker has been woken for shutdown).

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace hdlock::util {

class ThreadPool {
public:
    /// A task receives the slot ID of the worker running it.
    using Task = std::function<void(std::size_t slot)>;

    /// Spawns `n_workers` parked workers (at least one).
    explicit ThreadPool(std::size_t n_workers);

    /// Drains nothing: pending tasks are still executed before the workers
    /// exit (parallel_for callers are blocked until their tasks finish, so a
    /// destructor overtaking live work cannot happen in that idiom).
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueues a task; some parked worker picks it up.  Fire-and-forget:
    /// completion and exception transport are the caller's protocol
    /// (parallel_for implements the blocking variant).
    void submit(Task task) HDLOCK_EXCLUDES(mutex_);

private:
    void worker_loop_(std::size_t slot) HDLOCK_EXCLUDES(mutex_);

    std::vector<Thread> workers_;
    Mutex mutex_;
    CondVar wake_;
    std::deque<Task> queue_ HDLOCK_GUARDED_BY(mutex_);
    bool stop_ HDLOCK_GUARDED_BY(mutex_) = false;
};

/// Runs `body(begin, end, slot)` over [0, n) split into `n_chunks` contiguous
/// ranges of ceil(n / n_chunks) (trailing chunks clamped; callers pass a
/// chunk count derived so no range is empty, e.g. api::planned_workers).
/// Blocks until every chunk completed; rethrows the first captured worker
/// exception.  The calling thread only waits — total concurrency is
/// pool.size(), matching the old one-thread-per-chunk spawn dispatch.
void parallel_for(ThreadPool& pool, std::size_t n, std::size_t n_chunks,
                  const std::function<void(std::size_t begin, std::size_t end,
                                           std::size_t slot)>& body);

}  // namespace hdlock::util
