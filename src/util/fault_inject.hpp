#pragma once

/// \file fault_inject.hpp
/// Registry-driven failpoints: the test seam that proves failure paths.
///
/// Production code asks `should_fail("name")` at the few places where an
/// external failure can strike (a short write, a failed fsync, a rename
/// refused by the filesystem, a swap validation) and raises exactly the
/// error a real failure would raise.  Tests arm the named failpoint, drive
/// the operation, and assert the degraded-but-correct outcome — the old
/// epoch keeps serving, the on-disk bundle stays intact, the error is typed.
///
/// Two gates keep this free in production:
///   - the whole subsystem is off unless the HDLOCK_FAULT_INJECTION
///     environment variable is set truthy ("1"/"on"/"ON"/"true") at first
///     use, or a test calls force_enable(true);
///   - `should_fail` is two relaxed atomic loads on the disabled path — no
///     lock, no map lookup, no string hashing.
///
/// Failpoints are process-global (like the kernel-backend pin): one test
/// process arms and fires them serially.  Deterministic eval scenarios must
/// NOT arm failpoints — trials run concurrently and a name armed by one
/// trial could fire in another; they provoke failures with invalid inputs
/// instead.

#include <cstdint>
#include <string>
#include <string_view>

namespace hdlock::util::fault {

/// True when the subsystem is active (env opt-in or force_enable(true)).
bool enabled() noexcept;

/// Test hook: overrides the environment gate for this process.  Pass true
/// in a failpoint test's setup so the suite passes with or without
/// HDLOCK_FAULT_INJECTION exported; pass false to restore the env verdict.
void force_enable(bool on) noexcept;

/// Arms `point` to fail `count` times after first letting `skip` hits pass
/// through — skip targets "the Nth call", e.g. shard 2 of a rolling swap.
void arm(std::string_view point, int count = 1, int skip = 0);

/// Disarms one failpoint (no-op when it is not armed).
void disarm(std::string_view point);

/// Disarms everything and clears hit counters.
void reset() noexcept;

/// The production-side probe: true when the subsystem is enabled and
/// `point` is armed with shots remaining.  Counts every call against the
/// skip/count budget and records hits.
bool should_fail(std::string_view point) noexcept;

/// Times `point` fired (returned true) since the last reset().
std::uint64_t hit_count(std::string_view point);

/// RAII arm: enables the subsystem, arms the failpoint for the scope, and
/// disarms + restores the enable override on destruction.  The unit-test
/// idiom — a throwing assertion cannot leave the process armed.
class ScopedFault {
public:
    explicit ScopedFault(std::string_view point, int count = 1, int skip = 0);
    ~ScopedFault();
    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

    /// Times the guarded failpoint fired so far.
    std::uint64_t hits() const;

private:
    std::string point_;
    bool was_forced_;
};

// The failpoint registry: every probe site spells its name from here, so a
// test arming a point cannot drift from the code that checks it.
inline constexpr std::string_view kBundleShortWrite = "bundle.save_atomic.short_write";
inline constexpr std::string_view kBundleFsync = "bundle.save_atomic.fsync";
inline constexpr std::string_view kBundleRename = "bundle.save_atomic.rename";
inline constexpr std::string_view kBundleCorruptHeader = "bundle.load.corrupt_header";
inline constexpr std::string_view kSwapValidate = "session.swap.validate";

}  // namespace hdlock::util::fault
