#pragma once

/// \file sync.hpp
/// Annotated synchronisation primitives: the only place in the repo that
/// touches std::mutex / std::condition_variable / std::thread directly.
///
/// Every other layer locks through these wrappers so Clang Thread Safety
/// Analysis (util/thread_annotations.hpp, -Wthread-safety) can check lock
/// discipline at compile time: util::Mutex is a `capability`, util::MutexLock
/// a `scoped_lockable`, and util::CondVar::wait declares REQUIRES(mutex) so
/// a wait outside the lock is a build error.  hdlock_lint's
/// `raw-sync-primitive` rule enforces the funnel: raw std primitives outside
/// the util layer fail the lint gate.
///
/// Waiting is deliberately loop-shaped (`while (!pred) cv.wait(mutex);`)
/// rather than predicate-lambda-shaped: the analysis treats a lambda body as
/// a separate unannotated function, so a predicate lambda reading guarded
/// fields would need suppressions — the explicit loop keeps every guarded
/// access inside the function that visibly holds the lock.
///
/// util::Thread joins in its destructor and has no detach() at all — the
/// lint `thread-detach` rule bans detaching repo-wide, and a joining type
/// makes the safe thing the only expressible thing.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>

#include "util/thread_annotations.hpp"

namespace hdlock::util {

/// Annotated exclusive mutex over std::mutex.  Prefer MutexLock; the raw
/// lock()/unlock() exist for the RAII types and the rare adopt cases.
class HDLOCK_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() HDLOCK_ACQUIRE() {
        raw_.lock();  // hdlock-lint: allow(manual-lock) — the wrapper implementation itself
    }
    void unlock() HDLOCK_RELEASE() {
        raw_.unlock();  // hdlock-lint: allow(manual-lock) — the wrapper implementation itself
    }

private:
    friend class CondVar;
    std::mutex raw_;
};

/// RAII lock over util::Mutex (the repo's std::lock_guard).  Scoped
/// acquisition is the only locking idiom the lint gate admits.
class HDLOCK_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) HDLOCK_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();  // hdlock-lint: allow(manual-lock) — the RAII scope implementation itself
    }
    ~MutexLock() HDLOCK_RELEASE() {
        mutex_.unlock();  // hdlock-lint: allow(manual-lock) — the RAII scope implementation itself
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Condition variable bound to util::Mutex.  wait/wait_until require the
/// mutex to be held (checked); they adopt it into a std::unique_lock for the
/// underlying std primitive and hand it straight back, so the fast
/// std::condition_variable is used rather than condition_variable_any.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Atomically releases `mutex`, blocks, and re-acquires before
    /// returning.  Spurious wakeups happen: always wait in a predicate loop.
    void wait(Mutex& mutex) HDLOCK_REQUIRES(mutex) {
        std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();  // the caller's MutexLock still owns the mutex
    }

    /// wait() with a deadline; returns std::cv_status::timeout when the
    /// deadline passed (the mutex is re-acquired either way).
    template <typename Clock, typename Duration>
    std::cv_status wait_until(Mutex& mutex,
                              const std::chrono::time_point<Clock, Duration>& deadline)
        HDLOCK_REQUIRES(mutex) {
        std::unique_lock<std::mutex> lock(mutex.raw_, std::adopt_lock);
        const std::cv_status status = cv_.wait_until(lock, deadline);
        lock.release();
        return status;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

/// Joining thread wrapper (std::jthread without the stop-token machinery):
/// the destructor joins, and there is deliberately no detach() — a detached
/// thread outliving the state it captured is exactly the bug class the
/// lint `thread-detach` rule exists to prevent.
class Thread {
public:
    Thread() noexcept = default;

    template <typename Fn, typename = std::enable_if_t<std::is_invocable_v<Fn&&> &&
                                                       !std::is_same_v<std::decay_t<Fn>, Thread>>>
    explicit Thread(Fn&& fn) : thread_(std::forward<Fn>(fn)) {}

    Thread(Thread&& other) noexcept = default;
    Thread& operator=(Thread&& other) noexcept {
        join();
        thread_ = std::move(other.thread_);
        return *this;
    }
    Thread(const Thread&) = delete;
    Thread& operator=(const Thread&) = delete;

    ~Thread() { join(); }

    /// Joins if joinable; a no-op on an empty or already-joined thread.
    void join() {
        if (thread_.joinable()) thread_.join();
    }

    bool joinable() const noexcept { return thread_.joinable(); }

private:
    std::thread thread_;
};

/// Thread identity for tests ("did this run inline or on a worker?").
using ThreadId = std::thread::id;
inline ThreadId this_thread_id() noexcept { return std::this_thread::get_id(); }

/// Polite spin-wait helper for tests.
inline void yield_now() noexcept { std::this_thread::yield(); }

/// Sleep wrapper so layers above util never touch std::this_thread directly.
inline void sleep_for(std::chrono::microseconds duration) {
    std::this_thread::sleep_for(duration);
}

/// std::thread::hardware_concurrency clamped to at least 1 (the standard
/// allows it to return 0) — the one place that query lives, so layers above
/// util never need the raw std::thread type.
inline std::size_t hardware_concurrency() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace hdlock::util
