/// \file kernels_avx2.cpp
/// The AVX2 kernel backend.  This translation unit is the only code in the
/// library compiled with -mavx2 (set per-file by CMakeLists.txt), so every
/// definition with external linkage below must be AVX2-clean to call — which
/// is just avx2_backend(), whose body never executes a vector instruction.
/// All actual kernels live behind function pointers that dispatch only after
/// runtime CPUID confirmation (kernels.cpp), and everything else is kept in
/// an anonymous namespace so no inline/template instantiation built with
/// AVX2 codegen can be merged into other translation units by the linker.
///
/// When the toolchain cannot target AVX2 (no -mavx2 support, non-x86) the
/// file degrades to `return nullptr` and dispatch skips the backend.

#include "util/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hdlock::util::kernels {

namespace {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_xor_si256(va, vb));
    }
    for (; w < n; ++w) dst[w] = a[w] ^ b[w];
}

/// Per-byte popcount via the nibble-lookup (Muła) scheme, folded to four
/// 64-bit partial sums by SAD against zero.
__m256i popcount_bytes_sad(__m256i v) noexcept {
    const __m256i lookup =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo), _mm256_shuffle_epi8(lookup, hi));
    return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

std::size_t reduce_epi64(__m256i acc) noexcept {
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    return static_cast<std::size_t>(static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
                                    static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1)));
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
        acc = _mm256_add_epi64(acc, popcount_bytes_sad(v));
    }
    std::size_t total = reduce_epi64(acc);
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        acc = _mm256_add_epi64(acc, popcount_bytes_sad(_mm256_xor_si256(va, vb)));
    }
    std::size_t total = reduce_epi64(acc);
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    return total;
}

/// Loads the row operand: ya[w..w+4) or the fused bind ya ^ yb.
template <bool Fused>
__m256i load_y(const Word* ya, const Word* yb, std::size_t w) noexcept {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ya + w));
    if constexpr (!Fused) return a;
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(yb + w));
    return _mm256_xor_si256(a, b);
}

template <bool Fused>
void csa_pair_impl(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                   std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(carry + w),
                            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    yb == nullptr ? csa_pair_impl<false>(ones, carry, x, ya, yb, n)
                  : csa_pair_impl<true>(ones, carry, x, ya, yb, n);
}

template <bool Fused>
void csa_quad_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                   const Word* ya, const Word* yb, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        const __m256i twos_b =
            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
        const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos + w));
        const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos_a + w));
        const __m256i u2 = _mm256_xor_si256(t, ta);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fours_a + w),
                            _mm256_or_si256(_mm256_and_si256(t, ta), _mm256_and_si256(u2, twos_b)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(twos + w), _mm256_xor_si256(u2, twos_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    yb == nullptr ? csa_quad_impl<false>(ones, twos, twos_a, fours_a, x, ya, yb, n)
                  : csa_quad_impl<true>(ones, twos, twos_a, fours_a, x, ya, yb, n);
}

template <bool Fused>
void csa_oct_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                  Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                  std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        const __m256i twos_b =
            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
        const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos + w));
        const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos_a + w));
        const __m256i u2 = _mm256_xor_si256(t, ta);
        const __m256i fours_b =
            _mm256_or_si256(_mm256_and_si256(t, ta), _mm256_and_si256(u2, twos_b));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(twos + w), _mm256_xor_si256(u2, twos_b));
        const __m256i f = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fours + w));
        const __m256i fa = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fours_a + w));
        const __m256i u3 = _mm256_xor_si256(f, fa);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(carry_out + w),
            _mm256_or_si256(_mm256_and_si256(f, fa), _mm256_and_si256(u3, fours_b)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fours + w), _mm256_xor_si256(u3, fours_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    yb == nullptr
        ? csa_oct_impl<false>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n)
        : csa_oct_impl<true>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n);
}

/// Dense plane unpack: per 64-column word, spread each plane word's bits
/// across eight 8-lane int32 vectors with a variable right shift, mask to
/// the bit, weight by the plane, and accumulate.  Unlike the portable
/// set-bit iteration this is branch-free and independent of plane density —
/// which is what makes it faster on the ~half-dense low planes the encoder
/// produces.
void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i lane_shift = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        __m256i counts[8];
        for (int v = 0; v < 8; ++v) counts[v] = _mm256_setzero_si256();
        for (std::size_t p = 0; p < n_planes; ++p) {
            const Word word = plane[p];
            if (word == 0) continue;
            const __m256i lo = _mm256_set1_epi32(static_cast<std::int32_t>(word));
            const __m256i hi = _mm256_set1_epi32(static_cast<std::int32_t>(word >> 32));
            const int weight_shift = static_cast<int>(p);
            for (int v = 0; v < 4; ++v) {
                const __m256i shift =
                    _mm256_add_epi32(lane_shift, _mm256_set1_epi32(v * 8));
                const __m256i bits_lo =
                    _mm256_and_si256(_mm256_srlv_epi32(lo, shift), one);
                const __m256i bits_hi =
                    _mm256_and_si256(_mm256_srlv_epi32(hi, shift), one);
                counts[v] = _mm256_add_epi32(counts[v], _mm256_slli_epi32(bits_lo, weight_shift));
                counts[v + 4] =
                    _mm256_add_epi32(counts[v + 4], _mm256_slli_epi32(bits_hi, weight_shift));
            }
        }
        std::int32_t* out = accumulator + w * 64;
        for (int v = 0; v < 8; ++v) {
            __m256i* slot = reinterpret_cast<__m256i*>(out + v * 8);
            _mm256_storeu_si256(slot, _mm256_add_epi32(_mm256_loadu_si256(slot), counts[v]));
        }
    }
}

constexpr KernelBackend kBackend{
    Backend::avx2, "avx2",   &xor_into, &popcount,      &hamming,
    &csa_pair,     &csa_quad, &csa_oct,  &unpack_planes,
};

}  // namespace

const KernelBackend* avx2_backend() noexcept { return &kBackend; }

}  // namespace hdlock::util::kernels

#else  // !defined(__AVX2__)

namespace hdlock::util::kernels {

const KernelBackend* avx2_backend() noexcept { return nullptr; }

}  // namespace hdlock::util::kernels

#endif
