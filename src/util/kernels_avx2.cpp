/// \file kernels_avx2.cpp
/// The AVX2 kernel backend.  This translation unit is the only code in the
/// library compiled with -mavx2 (set per-file by CMakeLists.txt), so every
/// definition with external linkage below must be AVX2-clean to call — which
/// is just avx2_backend(), whose body never executes a vector instruction.
/// All actual kernels live behind function pointers that dispatch only after
/// runtime CPUID confirmation (kernels.cpp), and everything else is kept in
/// an anonymous namespace so no inline/template instantiation built with
/// AVX2 codegen can be merged into other translation units by the linker.
///
/// When the toolchain cannot target AVX2 (no -mavx2 support, non-x86) the
/// file degrades to `return nullptr` and dispatch skips the backend.

#include "util/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hdlock::util::kernels {

namespace {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), _mm256_xor_si256(va, vb));
    }
    for (; w < n; ++w) dst[w] = a[w] ^ b[w];
}

/// Per-byte popcount via the nibble-lookup (Muła) scheme, folded to four
/// 64-bit partial sums by SAD against zero.
__m256i popcount_bytes_sad(__m256i v) noexcept {
    const __m256i lookup =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    const __m256i counts =
        _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo), _mm256_shuffle_epi8(lookup, hi));
    return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

std::size_t reduce_epi64(__m256i acc) noexcept {
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i sum = _mm_add_epi64(lo, hi);
    return static_cast<std::size_t>(static_cast<std::uint64_t>(_mm_extract_epi64(sum, 0)) +
                                    static_cast<std::uint64_t>(_mm_extract_epi64(sum, 1)));
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
        acc = _mm256_add_epi64(acc, popcount_bytes_sad(v));
    }
    std::size_t total = reduce_epi64(acc);
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    __m256i acc = _mm256_setzero_si256();
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
        const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
        acc = _mm256_add_epi64(acc, popcount_bytes_sad(_mm256_xor_si256(va, vb)));
    }
    std::size_t total = reduce_epi64(acc);
    for (; w < n; ++w) total += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    return total;
}

/// Loads the row operand: ya[w..w+4) or the fused bind ya ^ yb.
template <bool Fused>
__m256i load_y(const Word* ya, const Word* yb, std::size_t w) noexcept {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ya + w));
    if constexpr (!Fused) return a;
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(yb + w));
    return _mm256_xor_si256(a, b);
}

template <bool Fused>
void csa_pair_impl(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
                   std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(carry + w),
                            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    yb == nullptr ? csa_pair_impl<false>(ones, carry, x, ya, yb, n)
                  : csa_pair_impl<true>(ones, carry, x, ya, yb, n);
}

template <bool Fused>
void csa_quad_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
                   const Word* ya, const Word* yb, std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        const __m256i twos_b =
            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
        const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos + w));
        const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos_a + w));
        const __m256i u2 = _mm256_xor_si256(t, ta);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fours_a + w),
                            _mm256_or_si256(_mm256_and_si256(t, ta), _mm256_and_si256(u2, twos_b)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(twos + w), _mm256_xor_si256(u2, twos_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    yb == nullptr ? csa_quad_impl<false>(ones, twos, twos_a, fours_a, x, ya, yb, n)
                  : csa_quad_impl<true>(ones, twos, twos_a, fours_a, x, ya, yb, n);
}

template <bool Fused>
void csa_oct_impl(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
                  Word* carry_out, const Word* x, const Word* ya, const Word* yb,
                  std::size_t n) noexcept {
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ones + w));
        const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
        const __m256i y = load_y<Fused>(ya, yb, w);
        const __m256i u = _mm256_xor_si256(o, vx);
        const __m256i twos_b =
            _mm256_or_si256(_mm256_and_si256(o, vx), _mm256_and_si256(u, y));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), _mm256_xor_si256(u, y));
        const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos + w));
        const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twos_a + w));
        const __m256i u2 = _mm256_xor_si256(t, ta);
        const __m256i fours_b =
            _mm256_or_si256(_mm256_and_si256(t, ta), _mm256_and_si256(u2, twos_b));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(twos + w), _mm256_xor_si256(u2, twos_b));
        const __m256i f = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fours + w));
        const __m256i fa = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fours_a + w));
        const __m256i u3 = _mm256_xor_si256(f, fa);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(carry_out + w),
            _mm256_or_si256(_mm256_and_si256(f, fa), _mm256_and_si256(u3, fours_b)));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fours + w), _mm256_xor_si256(u3, fours_b));
    }
    for (; w < n; ++w) {
        const Word y = Fused ? ya[w] ^ yb[w] : ya[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    yb == nullptr
        ? csa_oct_impl<false>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n)
        : csa_oct_impl<true>(ones, twos, twos_a, fours, fours_a, carry_out, x, ya, yb, n);
}

/// Dense plane unpack: per 64-column word, spread each plane word's bits
/// across eight 8-lane int32 vectors with a variable right shift, mask to
/// the bit, weight by the plane, and accumulate.  Unlike the portable
/// set-bit iteration this is branch-free and independent of plane density —
/// which is what makes it faster on the ~half-dense low planes the encoder
/// produces.
void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i lane_shift = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        __m256i counts[8];
        for (int v = 0; v < 8; ++v) counts[v] = _mm256_setzero_si256();
        for (std::size_t p = 0; p < n_planes; ++p) {
            const Word word = plane[p];
            if (word == 0) continue;
            const __m256i lo = _mm256_set1_epi32(static_cast<std::int32_t>(word));
            const __m256i hi = _mm256_set1_epi32(static_cast<std::int32_t>(word >> 32));
            const int weight_shift = static_cast<int>(p);
            for (int v = 0; v < 4; ++v) {
                const __m256i shift =
                    _mm256_add_epi32(lane_shift, _mm256_set1_epi32(v * 8));
                const __m256i bits_lo =
                    _mm256_and_si256(_mm256_srlv_epi32(lo, shift), one);
                const __m256i bits_hi =
                    _mm256_and_si256(_mm256_srlv_epi32(hi, shift), one);
                counts[v] = _mm256_add_epi32(counts[v], _mm256_slli_epi32(bits_lo, weight_shift));
                counts[v + 4] =
                    _mm256_add_epi32(counts[v + 4], _mm256_slli_epi32(bits_hi, weight_shift));
            }
        }
        std::int32_t* out = accumulator + w * 64;
        for (int v = 0; v < 8; ++v) {
            __m256i* slot = reinterpret_cast<__m256i*>(out + v * 8);
            _mm256_storeu_si256(slot, _mm256_add_epi32(_mm256_loadu_si256(slot), counts[v]));
        }
    }
}

/// sum = a ^ b ^ c.
__m256i csa_sum(__m256i a, __m256i b, __m256i c) noexcept {
    return _mm256_xor_si256(_mm256_xor_si256(a, b), c);
}

/// carry = (a&b) | ((a^b)&c) — the CSA carry of the portable kernels.
__m256i csa_carry(__m256i a, __m256i b, __m256i c) noexcept {
    return _mm256_or_si256(_mm256_and_si256(a, b),
                           _mm256_and_si256(_mm256_xor_si256(a, b), c));
}

void csa_rows(Word* ones, Word* twos, Word* fours, Word* carry_out, const Word* const* rows,
              std::size_t n) noexcept {
    const Word* r0 = rows[0];
    const Word* r1 = rows[1];
    const Word* r2 = rows[2];
    const Word* r3 = rows[3];
    const Word* r4 = rows[4];
    const Word* r5 = rows[5];
    const Word* r6 = rows[6];
    const Word* r7 = rows[7];
    const auto load = [](const Word* p, std::size_t w) noexcept {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w));
    };
    std::size_t w = 0;
    for (; w + 4 <= n; w += 4) {
        // Same dataflow as the scalar csa_rows_words tree.
        __m256i o = load(ones, w);
        const __m256i x0 = load(r0, w);
        const __m256i x1 = load(r1, w);
        const __m256i twos_a = csa_carry(o, x0, x1);
        o = csa_sum(o, x0, x1);
        const __m256i x2 = load(r2, w);
        const __m256i x3 = load(r3, w);
        const __m256i twos_b = csa_carry(o, x2, x3);
        o = csa_sum(o, x2, x3);
        __m256i t = load(twos, w);
        const __m256i fours_a = csa_carry(t, twos_a, twos_b);
        t = csa_sum(t, twos_a, twos_b);
        const __m256i x4 = load(r4, w);
        const __m256i x5 = load(r5, w);
        const __m256i twos_c = csa_carry(o, x4, x5);
        o = csa_sum(o, x4, x5);
        const __m256i x6 = load(r6, w);
        const __m256i x7 = load(r7, w);
        const __m256i twos_d = csa_carry(o, x6, x7);
        o = csa_sum(o, x6, x7);
        const __m256i fours_b = csa_carry(t, twos_c, twos_d);
        t = csa_sum(t, twos_c, twos_d);
        const __m256i f = load(fours, w);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(carry_out + w),
                            csa_carry(f, fours_a, fours_b));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(fours + w), csa_sum(f, fours_a, fours_b));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ones + w), o);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(twos + w), t);
    }
    detail::csa_rows_words(ones, twos, fours, carry_out, rows, w, n);
}

template <bool Fused>
__m256i load_row(const Word* const* rows_a, const Word* const* rows_b, std::size_t r,
                 std::size_t w) noexcept {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows_a[r] + w));
    if constexpr (!Fused) return a;
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows_b[r] + w));
    return _mm256_xor_si256(a, b);
}

template <bool Fused>
void fused_hamming_scores_impl(const Word* const* rows_a, const Word* const* rows_b,
                               std::size_t n_rows, const Word* const* class_rows,
                               std::size_t n_classes, std::size_t n_words, TieResolver ties,
                               void* tie_ctx, std::uint64_t* distances) noexcept {
    const auto n_planes = static_cast<std::size_t>(64 - __builtin_clzll(n_rows));
    const Word threshold = n_rows / 2;
    const bool can_tie = (n_rows % 2) == 0 && ties != nullptr;
    std::size_t w = 0;
    for (; w + 4 <= n_words; w += 4) {
        // Per four-word block: planes past the 16-ymm register file spill to
        // the stack, but stay L1-hot — they are touched once per 8 rows.
        __m256i planes[16];
        for (std::size_t p = 0; p < n_planes; ++p) planes[p] = _mm256_setzero_si256();
        __m256i ones = _mm256_setzero_si256();
        __m256i twos = _mm256_setzero_si256();
        __m256i fours = _mm256_setzero_si256();
        std::size_t r = 0;
        for (; r + 8 <= n_rows; r += 8) {
            const __m256i x0 = load_row<Fused>(rows_a, rows_b, r + 0, w);
            const __m256i x1 = load_row<Fused>(rows_a, rows_b, r + 1, w);
            const __m256i twos_a = csa_carry(ones, x0, x1);
            ones = csa_sum(ones, x0, x1);
            const __m256i x2 = load_row<Fused>(rows_a, rows_b, r + 2, w);
            const __m256i x3 = load_row<Fused>(rows_a, rows_b, r + 3, w);
            const __m256i twos_b = csa_carry(ones, x2, x3);
            ones = csa_sum(ones, x2, x3);
            const __m256i fours_a = csa_carry(twos, twos_a, twos_b);
            twos = csa_sum(twos, twos_a, twos_b);
            const __m256i x4 = load_row<Fused>(rows_a, rows_b, r + 4, w);
            const __m256i x5 = load_row<Fused>(rows_a, rows_b, r + 5, w);
            const __m256i twos_c = csa_carry(ones, x4, x5);
            ones = csa_sum(ones, x4, x5);
            const __m256i x6 = load_row<Fused>(rows_a, rows_b, r + 6, w);
            const __m256i x7 = load_row<Fused>(rows_a, rows_b, r + 7, w);
            const __m256i twos_d = csa_carry(ones, x6, x7);
            ones = csa_sum(ones, x6, x7);
            const __m256i fours_b = csa_carry(twos, twos_c, twos_d);
            twos = csa_sum(twos, twos_c, twos_d);
            __m256i carry = csa_carry(fours, fours_a, fours_b);
            fours = csa_sum(fours, fours_a, fours_b);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const __m256i sum = _mm256_xor_si256(planes[p], carry);
                carry = _mm256_and_si256(planes[p], carry);
                planes[p] = sum;
            }
        }
        for (; r < n_rows; ++r) {
            const __m256i x = load_row<Fused>(rows_a, rows_b, r, w);
            __m256i carry = _mm256_and_si256(ones, x);
            ones = _mm256_xor_si256(ones, x);
            const __m256i c2 = _mm256_and_si256(twos, carry);
            twos = _mm256_xor_si256(twos, carry);
            carry = _mm256_and_si256(fours, c2);
            fours = _mm256_xor_si256(fours, c2);
            for (std::size_t p = 3; p < n_planes; ++p) {
                const __m256i sum = _mm256_xor_si256(planes[p], carry);
                carry = _mm256_and_si256(planes[p], carry);
                planes[p] = sum;
            }
        }
        const __m256i carries[3] = {ones, twos, fours};
        for (std::size_t start = 0; start < 3; ++start) {
            __m256i carry = carries[start];
            for (std::size_t p = start; p < n_planes; ++p) {
                const __m256i sum = _mm256_xor_si256(planes[p], carry);
                carry = _mm256_and_si256(planes[p], carry);
                planes[p] = sum;
            }
        }
        // Bit-sliced count > / == threshold, MSB plane first.
        __m256i gt = _mm256_setzero_si256();
        __m256i eq = _mm256_set1_epi64x(-1);
        for (std::size_t p = n_planes; p-- > 0;) {
            if (((threshold >> p) & 1u) != 0) {
                eq = _mm256_and_si256(eq, planes[p]);
            } else {
                gt = _mm256_or_si256(gt, _mm256_and_si256(eq, planes[p]));
                eq = _mm256_andnot_si256(planes[p], eq);
            }
        }
        __m256i query = gt;
        if (can_tie && _mm256_testz_si256(eq, eq) == 0) {
            alignas(32) Word eq_words[4];
            alignas(32) Word tie_words[4];
            _mm256_store_si256(reinterpret_cast<__m256i*>(eq_words), eq);
            for (std::size_t k = 0; k < 4; ++k) {
                tie_words[k] =
                    eq_words[k] == 0 ? 0 : (ties(tie_ctx, eq_words[k], w + k) & eq_words[k]);
            }
            query = _mm256_or_si256(query,
                                    _mm256_load_si256(reinterpret_cast<const __m256i*>(tie_words)));
        }
        for (std::size_t c = 0; c < n_classes; ++c) {
            const __m256i x = _mm256_xor_si256(
                query, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(class_rows[c] + w)));
            distances[c] += static_cast<std::uint64_t>(reduce_epi64(popcount_bytes_sad(x)));
        }
    }
    detail::fused_hamming_words(rows_a, rows_b, n_rows, class_rows, n_classes, w, n_words, ties,
                                tie_ctx, distances);
}

void fused_hamming_scores(const Word* const* rows_a, const Word* const* rows_b,
                          std::size_t n_rows, const Word* const* class_rows,
                          std::size_t n_classes, std::size_t n_words, TieResolver ties,
                          void* tie_ctx, std::uint64_t* distances) noexcept {
    for (std::size_t c = 0; c < n_classes; ++c) distances[c] = 0;
    if (n_rows == 0) return;
    rows_b == nullptr
        ? fused_hamming_scores_impl<false>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                           n_words, ties, tie_ctx, distances)
        : fused_hamming_scores_impl<true>(rows_a, rows_b, n_rows, class_rows, n_classes,
                                          n_words, ties, tie_ctx, distances);
}

constexpr KernelBackend kBackend{
    Backend::avx2, "avx2",   &xor_into, &popcount,      &hamming,  &csa_pair,
    &csa_quad,     &csa_oct, &unpack_planes, &csa_rows, &fused_hamming_scores,
};

}  // namespace

const KernelBackend* avx2_backend() noexcept { return &kBackend; }

}  // namespace hdlock::util::kernels

#else  // !defined(__AVX2__)

namespace hdlock::util::kernels {

const KernelBackend* avx2_backend() noexcept { return nullptr; }

}  // namespace hdlock::util::kernels

#endif
