#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hdlock::util {

void OnlineStats::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const noexcept {
    return std::sqrt(variance());
}

ConfusionMatrix::ConfusionMatrix(int n_classes) : n_classes_(n_classes) {
    HDLOCK_EXPECTS(n_classes > 0, "ConfusionMatrix: n_classes must be positive");
    cells_.assign(static_cast<std::size_t>(n_classes) * static_cast<std::size_t>(n_classes), 0);
}

void ConfusionMatrix::add(int truth, int predicted) {
    HDLOCK_EXPECTS(truth >= 0 && truth < n_classes_, "ConfusionMatrix::add: truth out of range");
    HDLOCK_EXPECTS(predicted >= 0 && predicted < n_classes_,
                   "ConfusionMatrix::add: prediction out of range");
    ++cells_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(n_classes_) +
             static_cast<std::size_t>(predicted)];
    ++total_;
    if (truth == predicted) ++correct_;
}

std::int64_t ConfusionMatrix::at(int truth, int predicted) const {
    HDLOCK_EXPECTS(truth >= 0 && truth < n_classes_, "ConfusionMatrix::at: truth out of range");
    HDLOCK_EXPECTS(predicted >= 0 && predicted < n_classes_,
                   "ConfusionMatrix::at: prediction out of range");
    return cells_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(n_classes_) +
                  static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(correct_) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(int cls) const {
    HDLOCK_EXPECTS(cls >= 0 && cls < n_classes_, "ConfusionMatrix::recall: class out of range");
    std::int64_t row_total = 0;
    for (int p = 0; p < n_classes_; ++p) row_total += at(cls, p);
    return row_total == 0 ? 0.0 : static_cast<double>(at(cls, cls)) / static_cast<double>(row_total);
}

double agreement(std::span<const int> a, std::span<const int> b) {
    HDLOCK_EXPECTS(a.size() == b.size(), "agreement: size mismatch");
    if (a.empty()) return 0.0;
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]) ? 1u : 0u;
    return static_cast<double>(same) / static_cast<double>(a.size());
}

double mean(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
    OnlineStats stats;
    for (const double v : values) stats.add(v);
    return stats.stddev();
}

double median(std::vector<double> values) {
    if (values.empty()) return 0.0;
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid), values.end());
    if (values.size() % 2 == 1) return values[mid];
    const double hi = values[mid];
    const double lo = *std::max_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    return 0.5 * (lo + hi);
}

}  // namespace hdlock::util
