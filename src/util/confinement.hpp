#pragma once

/// \file confinement.hpp
/// Source annotations for the key-confinement boundary.
///
/// HDLock's security argument is privilege separation (DESIGN.md §2, §7):
/// the lock key and everything derived from it live on the owner side only,
/// while the shipped api::Device / SealedEncoder surface is key-free by
/// construction.  These macros make that boundary *visible in the source*:
///
///   HDLOCK_SECRET      marks a declaration that holds or returns key
///                      material (LockKey, SecureStore, the owner bundle
///                      section).  Secret-marked identifiers must never
///                      appear in device-side translation units or in
///                      device serialization / eval-JSON output paths.
///   HDLOCK_OWNER_ONLY  marks owner-side API that is allowed to touch
///                      secrets (api::Owner, LockedEncoder, key tools).
///
/// Under clang each macro also expands to [[clang::annotate]], so the
/// marker survives into the AST for clang-based tooling; under other
/// compilers it expands to nothing.  Either way the macro token itself is
/// the greppable marker that `tools/lint/hdlock_lint` keys on, together
/// with the file-level secret-header marker comment that puts a whole
/// header behind the boundary (see tools/lint/layers.toml for the exact
/// spelling — deliberately not written out here, so this file never
/// self-marks).
///
/// This header carries no secrets itself and may be included from any
/// layer.

#if defined(__clang__)
#define HDLOCK_ANNOTATE(marker) [[clang::annotate(marker)]]
#else
#define HDLOCK_ANNOTATE(marker)
#endif

#define HDLOCK_SECRET HDLOCK_ANNOTATE("hdlock::secret")
#define HDLOCK_OWNER_ONLY HDLOCK_ANNOTATE("hdlock::owner_only")
