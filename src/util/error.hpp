#pragma once

/// \file error.hpp
/// Error hierarchy and contract-checking macro used across the library.
///
/// Every exception thrown by hdlock derives from hdlock::Error, so callers
/// can catch a single type at the boundary.  Documented preconditions are
/// enforced with HDLOCK_EXPECTS, which throws ContractViolation; this keeps
/// misuse observable (and testable) instead of undefined.

#include <stdexcept>
#include <string>

namespace hdlock {

/// Base class of all errors thrown by this library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// An invalid configuration value (dimension, layer count, ...).
class ConfigError : public Error {
public:
    using Error::Error;
};

/// A filesystem / stream failure.
class IoError : public Error {
public:
    using Error::Error;
};

/// Malformed serialized data or an unparsable input file.
class FormatError : public Error {
public:
    using Error::Error;
};

/// A violated precondition of a public API.
class ContractViolation : public Error {
public:
    using Error::Error;
};

/// A key-rotation or epoch-swap step failed.  The contract is that the
/// failure is *contained*: the previously installed epoch keeps serving and
/// any bundle on disk is left intact (save_atomic never tears the target).
class RotationError : public Error {
public:
    using Error::Error;
};

/// Work was refused or abandoned because the owning component is shutting
/// down — e.g. a predict_async future broken by destroying its session with
/// requests still queued.
class ShutdownError : public Error {
public:
    using Error::Error;
};

namespace detail {

[[noreturn]] inline void contract_failure(const char* expr, const char* file, int line,
                                          const std::string& message) {
    throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                            ": precondition `" + expr + "` violated: " + message);
}

}  // namespace detail
}  // namespace hdlock

/// Throws hdlock::ContractViolation when \p cond is false.
#define HDLOCK_EXPECTS(cond, msg)                                                       \
    do {                                                                                \
        if (!(cond)) ::hdlock::detail::contract_failure(#cond, __FILE__, __LINE__, (msg)); \
    } while (false)
