#pragma once

/// \file table.hpp
/// Plain-text table rendering for the benchmark harnesses and examples.
///
/// Every experiment binary in bench/ prints the rows of one paper table or
/// the series of one paper figure; TextTable keeps that output aligned and
/// uniform, and can emit the same rows as CSV for plotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hdlock::util {

/// Column-aligned text table with an optional title and CSV export.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers);

    std::size_t n_columns() const noexcept { return headers_.size(); }
    std::size_t n_rows() const noexcept { return rows_.size(); }

    /// Appends a row; must have exactly n_columns() cells.
    void add_row(std::vector<std::string> cells);

    /// Renders with every column padded to its widest cell, a header rule,
    /// and two spaces between columns.
    std::string to_string() const;

    /// RFC-4180-ish CSV: cells containing the delimiter, quotes or newlines
    /// are quoted, embedded quotes doubled.
    std::string to_csv(char delimiter = ',') const;

    void print(std::ostream& out) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal rendering ("0.8176" for precision 4).
std::string format_fixed(double value, int precision);

/// Scientific rendering with two decimals ("4.81e+16").
std::string format_sci(double value);

/// Renders 10^log10_value in scientific notation without materializing the
/// (possibly astronomically large) value.
std::string format_pow10(double log10_value);

/// Human-readable bit count ("1.2 KiB", "9.8 MiB").
std::string format_bits(std::uint64_t bits);

}  // namespace hdlock::util
