#pragma once

/// \file serialize.hpp
/// Minimal tagged binary serialization.
///
/// Formats are explicit: fixed-width little-endian integers with 4-byte ASCII
/// section tags, so files are stable across platforms and versions can be
/// checked.  Objects implement `void save(BinaryWriter&) const` and
/// `static T load(BinaryReader&)`; save_file()/load_file() wrap streams.

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace hdlock::util {

class BinaryWriter {
public:
    explicit BinaryWriter(std::ostream& out) : out_(out) {}

    /// Bytes written through this writer so far.  The `.hdlk` v2 format
    /// aligns its bulk word sections on this count, so writers must start at
    /// the beginning of the artifact (they always do).
    std::uint64_t offset() const noexcept { return offset_; }

    /// Pads with zero bytes until offset() is a multiple of `alignment`
    /// (a power of two).  Pairs with BinaryReader::align_to.
    void align_to(std::size_t alignment);

    void write_tag(std::string_view tag);
    void write_u8(std::uint8_t v);
    void write_u32(std::uint32_t v);
    void write_u64(std::uint64_t v);
    void write_i32(std::int32_t v);
    void write_i64(std::int64_t v);
    void write_f64(double v);
    void write_string(std::string_view s);

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void write_span(std::span<const T> values) {
        write_u64(values.size());
        write_bytes(std::as_bytes(values));
    }

    void write_bytes(std::span<const std::byte> bytes);

private:
    std::ostream& out_;
    std::uint64_t offset_ = 0;
};

/// Reads the tagged format back from either an istream or an in-memory byte
/// span (a util::MappedFile's contents).  The span backend additionally
/// supports *views*: view_bytes() hands back a pointer into the backing
/// buffer instead of copying, which is what lets `.hdlk` v2 loads alias
/// hypervector words straight out of the mapping.
class BinaryReader {
public:
    explicit BinaryReader(std::istream& in) : in_(&in) {}
    explicit BinaryReader(std::span<const std::byte> data) : data_(data) {}

    /// True when backed by a byte span (view_bytes() is available).
    bool mapped() const noexcept { return in_ == nullptr; }

    /// Bytes consumed so far.
    std::uint64_t offset() const noexcept { return offset_; }

    /// Consumes padding until offset() is a multiple of `alignment`; every
    /// padding byte must be zero (corrupt or misaligned sections are a
    /// FormatError here, before any word data is interpreted).
    void align_to(std::size_t alignment);

    /// Span backend only: returns a pointer to the next `n` bytes inside the
    /// backing buffer and consumes them.  Throws ContractViolation on the
    /// stream backend and FormatError past the end of the buffer.
    const std::byte* view_bytes(std::size_t n);

    /// Throws FormatError when the next four bytes differ from `tag`.
    void expect_tag(std::string_view tag);
    std::uint8_t read_u8();
    std::uint32_t read_u32();
    std::uint64_t read_u64();
    std::int32_t read_i32();
    std::int64_t read_i64();
    double read_f64();
    std::string read_string();

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    std::vector<T> read_vector(std::uint64_t max_elements = (1ULL << 32)) {
        const std::uint64_t n = read_u64();
        if (n > max_elements) {
            throw FormatError("serialized vector length " + std::to_string(n) +
                              " exceeds limit " + std::to_string(max_elements));
        }
        std::vector<T> values(static_cast<std::size_t>(n));
        read_bytes(std::as_writable_bytes(std::span<T>(values)));
        return values;
    }

    void read_bytes(std::span<std::byte> bytes);

private:
    std::istream* in_ = nullptr;
    std::span<const std::byte> data_{};
    std::uint64_t offset_ = 0;
};

/// Serializes `object` to `path`, throwing IoError on filesystem failure.
template <typename T>
void save_file(const T& object, const std::filesystem::path& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open for writing: " + path.string());
    BinaryWriter writer(out);
    object.save(writer);
    out.flush();
    if (!out) throw IoError("write failed: " + path.string());
}

/// Deserializes a T from `path`.
template <typename T>
T load_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open for reading: " + path.string());
    BinaryReader reader(in);
    return T::load(reader);
}

/// Crash-safe replace of `path`: `write_fn` serializes into a sibling
/// temporary (`<path>.tmp`), the temp is flushed and fsync'd, then renamed
/// over `path` and the directory fsync'd — a crash or failure at any point
/// leaves either the old file or the new file, never a torn mix.  On any
/// failure the temp is removed and IoError (with errno detail) is thrown;
/// the target is untouched.  Failpoints (util/fault_inject.hpp):
/// bundle.save_atomic.{short_write,fsync,rename}.
void atomic_file_write(const std::filesystem::path& path,
                       const std::function<void(BinaryWriter&)>& write_fn);

/// atomic_file_write over the save(BinaryWriter&) convention, i.e. the
/// crash-safe sibling of save_file().
template <typename T>
void save_file_atomic(const T& object, const std::filesystem::path& path) {
    atomic_file_write(path, [&object](BinaryWriter& writer) { object.save(writer); });
}

}  // namespace hdlock::util
