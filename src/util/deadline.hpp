#pragma once

/// \file deadline.hpp
/// Monotonic deadlines for the serving request path.
///
/// The serving tier needs wall-clock deadlines (drop a request that can no
/// longer meet its SLO *before* paying for encode), but the repo's
/// determinism lint bans clock tokens in deterministic layers because the
/// eval/report outputs are byte-compared.  This header is the one sanctioned
/// confinement point: every mention of the monotonic clock lives here behind
/// justified allow markers, and the api layer speaks only in terms of
/// util::Deadline / util::steady_now().  Deadlines shape *which* requests
/// are served and how batches coalesce — never the labels a served row gets,
/// which stay a pure function of the input.

#include <chrono>

namespace hdlock::util {

/// Monotonic time point used for request deadlines and queue timing.
// hdlock-lint: allow(nondeterminism) — the deadline clock alias; deadlines
// gate request admission/latency only, never per-row labels, and every
// derived value feeds timing-only report fields.
using SteadyTime = std::chrono::steady_clock::time_point;

/// Current monotonic time.  The only clock read the serving layers use.
inline SteadyTime steady_now() noexcept {
    // hdlock-lint: allow(nondeterminism) — sanctioned monotonic clock read
    // for deadlines and queue-time accounting (timing-only outputs).
    return std::chrono::steady_clock::now();
}

/// A point in monotonic time a request must be dispatched by, or "never".
/// Default-constructed deadlines never expire, so callers that do not care
/// about latency budgets pay nothing.  Value type, trivially copyable.
class Deadline {
public:
    constexpr Deadline() noexcept = default;

    /// The deadline that never expires (same as a default-constructed one).
    static constexpr Deadline never() noexcept { return {}; }

    /// Expires at the given monotonic time point.
    static constexpr Deadline at(SteadyTime when) noexcept {
        Deadline deadline;
        deadline.when_ = when;
        deadline.armed_ = true;
        return deadline;
    }

    /// Expires `budget` from now.  Non-positive budgets are already expired.
    static Deadline after(std::chrono::nanoseconds budget) {
        return at(steady_now() + budget);
    }

    constexpr bool is_never() const noexcept { return !armed_; }

    /// True once the deadline has passed (never true for never()).
    bool expired() const noexcept { return armed_ && steady_now() >= when_; }

    /// Same check against a caller-sampled "now" so a batch of requests can
    /// be tested against one consistent clock read.
    constexpr bool expired_at(SteadyTime now) const noexcept {
        return armed_ && now >= when_;
    }

    /// The expiry point; meaningful only when !is_never().
    constexpr SteadyTime when() const noexcept { return when_; }

private:
    SteadyTime when_{};
    bool armed_ = false;
};

}  // namespace hdlock::util
