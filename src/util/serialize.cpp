#include "util/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <system_error>

#include "util/fault_inject.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace hdlock::util {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host; add byte swapping "
              "before porting to a big-endian target");

void BinaryWriter::write_bytes(std::span<const std::byte> bytes) {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!out_) throw IoError("BinaryWriter: stream write failed");
    offset_ += bytes.size();
}

void BinaryWriter::align_to(std::size_t alignment) {
    HDLOCK_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "BinaryWriter::align_to: alignment must be a power of two");
    static constexpr std::array<std::byte, 64> kZeros{};
    while (offset_ % alignment != 0) {
        const std::size_t pad = std::min<std::size_t>(
            alignment - static_cast<std::size_t>(offset_ % alignment), kZeros.size());
        write_bytes(std::span<const std::byte>(kZeros.data(), pad));
    }
}

void BinaryWriter::write_tag(std::string_view tag) {
    HDLOCK_EXPECTS(tag.size() == 4, "tags must be exactly four bytes");
    write_bytes(std::as_bytes(std::span<const char>(tag.data(), tag.size())));
}

void BinaryWriter::write_u8(std::uint8_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint8_t>(&v, 1)));
}

void BinaryWriter::write_u32(std::uint32_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint32_t>(&v, 1)));
}

void BinaryWriter::write_u64(std::uint64_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint64_t>(&v, 1)));
}

void BinaryWriter::write_i32(std::int32_t v) {
    write_bytes(std::as_bytes(std::span<const std::int32_t>(&v, 1)));
}

void BinaryWriter::write_i64(std::int64_t v) {
    write_bytes(std::as_bytes(std::span<const std::int64_t>(&v, 1)));
}

void BinaryWriter::write_f64(double v) {
    write_bytes(std::as_bytes(std::span<const double>(&v, 1)));
}

void BinaryWriter::write_string(std::string_view s) {
    write_u64(s.size());
    write_bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

void BinaryReader::read_bytes(std::span<std::byte> bytes) {
    if (in_ != nullptr) {
        in_->read(reinterpret_cast<char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (in_->gcount() != static_cast<std::streamsize>(bytes.size())) {
            throw FormatError("BinaryReader: unexpected end of stream");
        }
    } else {
        if (bytes.size() > data_.size() - offset_) {
            throw FormatError("BinaryReader: unexpected end of buffer");
        }
        std::memcpy(bytes.data(), data_.data() + offset_, bytes.size());
    }
    offset_ += bytes.size();
}

const std::byte* BinaryReader::view_bytes(std::size_t n) {
    HDLOCK_EXPECTS(mapped(), "BinaryReader::view_bytes: stream backend cannot hand out views");
    if (n > data_.size() - offset_) {
        throw FormatError("BinaryReader: unexpected end of buffer");
    }
    const std::byte* view = data_.data() + offset_;
    offset_ += n;
    return view;
}

void BinaryReader::align_to(std::size_t alignment) {
    HDLOCK_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "BinaryReader::align_to: alignment must be a power of two");
    while (offset_ % alignment != 0) {
        if (read_u8() != 0) {
            throw FormatError("BinaryReader: non-zero section padding (misaligned or corrupt "
                              "section)");
        }
    }
}

void BinaryReader::expect_tag(std::string_view tag) {
    HDLOCK_EXPECTS(tag.size() == 4, "tags must be exactly four bytes");
    std::array<char, 4> found{};
    read_bytes(std::as_writable_bytes(std::span<char>(found)));
    if (std::string_view(found.data(), 4) != tag) {
        throw FormatError("BinaryReader: expected tag '" + std::string(tag) + "' but found '" +
                          std::string(found.data(), 4) + "'");
    }
}

std::uint8_t BinaryReader::read_u8() {
    std::uint8_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint8_t>(&v, 1)));
    return v;
}

std::uint32_t BinaryReader::read_u32() {
    std::uint32_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint32_t>(&v, 1)));
    return v;
}

std::uint64_t BinaryReader::read_u64() {
    std::uint64_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)));
    return v;
}

std::int32_t BinaryReader::read_i32() {
    std::int32_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::int32_t>(&v, 1)));
    return v;
}

std::int64_t BinaryReader::read_i64() {
    std::int64_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::int64_t>(&v, 1)));
    return v;
}

double BinaryReader::read_f64() {
    double v = 0.0;
    read_bytes(std::as_writable_bytes(std::span<double>(&v, 1)));
    return v;
}

std::string BinaryReader::read_string() {
    const std::uint64_t n = read_u64();
    if (n > (1ULL << 24)) throw FormatError("BinaryReader: unreasonable string length");
    std::string s(static_cast<std::size_t>(n), '\0');
    read_bytes(std::as_writable_bytes(std::span<char>(s.data(), s.size())));
    return s;
}

// ---------------------------------------------------------------------------
// atomic_file_write
// ---------------------------------------------------------------------------

namespace {

std::string errno_detail() {
    const int code = errno;
    return " (errno " + std::to_string(code) + ", " + std::strerror(code) + ")";
}

/// fsync(2) the given path (a file or directory); throws IoError unless the
/// platform has no fsync, where durability falls back to the OS cache.
void fsync_path(const std::filesystem::path& path, bool directory) {
#if defined(__unix__) || defined(__APPLE__)
    const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
    const int fd = ::open(path.c_str(), flags);
    if (fd < 0) {
        throw IoError("atomic_file_write: cannot open for fsync: " + path.string() +
                      errno_detail());
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0 || fault::should_fail(fault::kBundleFsync)) {
        throw IoError("atomic_file_write: fsync failed: " + path.string() +
                      (rc != 0 ? errno_detail() : " (fault injected)"));
    }
#else
    (void)path;
    (void)directory;
    if (fault::should_fail(fault::kBundleFsync)) {
        throw IoError("atomic_file_write: fsync failed: " + path.string() + " (fault injected)");
    }
#endif
}

}  // namespace

void atomic_file_write(const std::filesystem::path& path,
                       const std::function<void(BinaryWriter&)>& write_fn) {
    // Serialize to memory first: the temp file then receives the payload in
    // one write, so a short write is the only mid-file failure mode — and it
    // hits the temp, never `path`.
    std::ostringstream buffer(std::ios::binary);
    BinaryWriter writer(buffer);
    write_fn(writer);
    const std::string payload = std::move(buffer).str();

    const std::filesystem::path temp = path.string() + ".tmp";
    struct TempGuard {
        const std::filesystem::path& temp;
        bool keep = false;
        ~TempGuard() {
            if (!keep) {
                std::error_code discard;
                std::filesystem::remove(temp, discard);
            }
        }
    } guard{temp};

    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw IoError("atomic_file_write: cannot open for writing: " + temp.string() +
                          errno_detail());
        }
        std::size_t n = payload.size();
        if (fault::should_fail(fault::kBundleShortWrite)) n /= 2;  // tear the *temp* only
        out.write(payload.data(), static_cast<std::streamsize>(n));
        out.flush();
        if (!out || n != payload.size()) {
            throw IoError("atomic_file_write: short write: " + temp.string() +
                          (n != payload.size() ? " (fault injected)" : errno_detail()));
        }
    }
    fsync_path(temp, /*directory=*/false);

    if (fault::should_fail(fault::kBundleRename)) {
        throw IoError("atomic_file_write: rename failed: " + temp.string() + " -> " +
                      path.string() + " (fault injected)");
    }
    std::error_code rename_error;
    std::filesystem::rename(temp, path, rename_error);
    if (rename_error) {
        throw IoError("atomic_file_write: rename failed: " + temp.string() + " -> " +
                      path.string() + " (" + rename_error.message() + ")");
    }
    guard.keep = true;
    // Persist the directory entry; the parent of a relative bare filename is
    // the working directory.
    const std::filesystem::path parent =
        path.has_parent_path() ? path.parent_path() : std::filesystem::path(".");
    fsync_path(parent, /*directory=*/true);
}

}  // namespace hdlock::util
