#include "util/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

namespace hdlock::util {

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host; add byte swapping "
              "before porting to a big-endian target");

void BinaryWriter::write_bytes(std::span<const std::byte> bytes) {
    out_.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!out_) throw IoError("BinaryWriter: stream write failed");
    offset_ += bytes.size();
}

void BinaryWriter::align_to(std::size_t alignment) {
    HDLOCK_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "BinaryWriter::align_to: alignment must be a power of two");
    static constexpr std::array<std::byte, 64> kZeros{};
    while (offset_ % alignment != 0) {
        const std::size_t pad = std::min<std::size_t>(
            alignment - static_cast<std::size_t>(offset_ % alignment), kZeros.size());
        write_bytes(std::span<const std::byte>(kZeros.data(), pad));
    }
}

void BinaryWriter::write_tag(std::string_view tag) {
    HDLOCK_EXPECTS(tag.size() == 4, "tags must be exactly four bytes");
    write_bytes(std::as_bytes(std::span<const char>(tag.data(), tag.size())));
}

void BinaryWriter::write_u8(std::uint8_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint8_t>(&v, 1)));
}

void BinaryWriter::write_u32(std::uint32_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint32_t>(&v, 1)));
}

void BinaryWriter::write_u64(std::uint64_t v) {
    write_bytes(std::as_bytes(std::span<const std::uint64_t>(&v, 1)));
}

void BinaryWriter::write_i32(std::int32_t v) {
    write_bytes(std::as_bytes(std::span<const std::int32_t>(&v, 1)));
}

void BinaryWriter::write_i64(std::int64_t v) {
    write_bytes(std::as_bytes(std::span<const std::int64_t>(&v, 1)));
}

void BinaryWriter::write_f64(double v) {
    write_bytes(std::as_bytes(std::span<const double>(&v, 1)));
}

void BinaryWriter::write_string(std::string_view s) {
    write_u64(s.size());
    write_bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

void BinaryReader::read_bytes(std::span<std::byte> bytes) {
    if (in_ != nullptr) {
        in_->read(reinterpret_cast<char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (in_->gcount() != static_cast<std::streamsize>(bytes.size())) {
            throw FormatError("BinaryReader: unexpected end of stream");
        }
    } else {
        if (bytes.size() > data_.size() - offset_) {
            throw FormatError("BinaryReader: unexpected end of buffer");
        }
        std::memcpy(bytes.data(), data_.data() + offset_, bytes.size());
    }
    offset_ += bytes.size();
}

const std::byte* BinaryReader::view_bytes(std::size_t n) {
    HDLOCK_EXPECTS(mapped(), "BinaryReader::view_bytes: stream backend cannot hand out views");
    if (n > data_.size() - offset_) {
        throw FormatError("BinaryReader: unexpected end of buffer");
    }
    const std::byte* view = data_.data() + offset_;
    offset_ += n;
    return view;
}

void BinaryReader::align_to(std::size_t alignment) {
    HDLOCK_EXPECTS(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "BinaryReader::align_to: alignment must be a power of two");
    while (offset_ % alignment != 0) {
        if (read_u8() != 0) {
            throw FormatError("BinaryReader: non-zero section padding (misaligned or corrupt "
                              "section)");
        }
    }
}

void BinaryReader::expect_tag(std::string_view tag) {
    HDLOCK_EXPECTS(tag.size() == 4, "tags must be exactly four bytes");
    std::array<char, 4> found{};
    read_bytes(std::as_writable_bytes(std::span<char>(found)));
    if (std::string_view(found.data(), 4) != tag) {
        throw FormatError("BinaryReader: expected tag '" + std::string(tag) + "' but found '" +
                          std::string(found.data(), 4) + "'");
    }
}

std::uint8_t BinaryReader::read_u8() {
    std::uint8_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint8_t>(&v, 1)));
    return v;
}

std::uint32_t BinaryReader::read_u32() {
    std::uint32_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint32_t>(&v, 1)));
    return v;
}

std::uint64_t BinaryReader::read_u64() {
    std::uint64_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::uint64_t>(&v, 1)));
    return v;
}

std::int32_t BinaryReader::read_i32() {
    std::int32_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::int32_t>(&v, 1)));
    return v;
}

std::int64_t BinaryReader::read_i64() {
    std::int64_t v = 0;
    read_bytes(std::as_writable_bytes(std::span<std::int64_t>(&v, 1)));
    return v;
}

double BinaryReader::read_f64() {
    double v = 0.0;
    read_bytes(std::as_writable_bytes(std::span<double>(&v, 1)));
    return v;
}

std::string BinaryReader::read_string() {
    const std::uint64_t n = read_u64();
    if (n > (1ULL << 24)) throw FormatError("BinaryReader: unreasonable string length");
    std::string s(static_cast<std::size_t>(n), '\0');
    read_bytes(std::as_writable_bytes(std::span<char>(s.data(), s.size())));
    return s;
}

}  // namespace hdlock::util
