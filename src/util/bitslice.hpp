#pragma once

/// \file bitslice.hpp
/// Bit-sliced (carry-save) column accumulation.
///
/// The HDC encoder hot loop needs, for every output dimension j, the count of
/// set bits across N packed product vectors (a column sum of an N x D bit
/// matrix).  Unpacking every word bit-by-bit costs 64 scalar adds per word
/// per row.  ColumnCounter instead accumulates rows into a small stack of
/// "vertical" carry-save bit planes with ~n_planes bitwise ops per word per
/// row, and only unpacks the planes every 2^n_planes - 1 rows.  This is the
/// classic vertical-counter technique used in population-count literature and
/// mirrors how a hardware adder tree would fold the same computation.
///
/// tests/util/bitslice_test.cc asserts exact equality with the naive
/// accumulation; bench/bench_ops.cpp measures the speedup (the ablation
/// called out in DESIGN.md §4).

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"

namespace hdlock::util {

/// Accumulates per-column set-bit counts over a stream of equally sized
/// packed bit rows.
class ColumnCounter {
public:
    /// \param n_bits   logical columns per row
    /// \param n_planes number of carry-save planes (flush period = 2^n_planes - 1)
    explicit ColumnCounter(std::size_t n_bits, std::size_t n_planes = 6);

    /// Adds one packed row. `row` must hold word_count(n_bits) words with a
    /// clean tail.
    void add(std::span<const bits::Word> row);

    /// Number of rows added since the last reset().
    std::size_t rows_added() const noexcept { return rows_added_; }

    /// Writes the per-column set-bit count into `counts` (size n_bits).
    /// The counter remains usable; more rows may be added afterwards.
    void counts_into(std::span<std::int32_t> counts);

    /// Writes the per-column bipolar sum into `sums` (size n_bits), using the
    /// bit convention of bitvec.hpp (bit 1 == value -1):
    ///   sums[j] = rows_added() - 2 * count[j].
    void bipolar_sums_into(std::span<std::int32_t> sums);

    /// Clears all state.
    void reset() noexcept;

    std::size_t n_bits() const noexcept { return n_bits_; }

private:
    void flush_planes_();

    std::size_t n_bits_;
    std::size_t n_words_;
    std::size_t n_planes_;
    std::size_t rows_added_ = 0;
    std::size_t rows_in_planes_ = 0;
    std::vector<bits::Word> planes_;        // n_planes_ consecutive rows of n_words_
    std::vector<std::int32_t> flushed_;     // counts already folded out of the planes
};

/// Reference implementation used by tests and kept as documentation of the
/// semantics: adds each bit of `row` to `counts` individually.
void naive_accumulate(std::span<const bits::Word> row, std::size_t n_bits,
                      std::span<std::int32_t> counts);

}  // namespace hdlock::util
