#pragma once

/// \file bitslice.hpp
/// Bit-sliced (carry-save) column accumulation.
///
/// The HDC encoder hot loop needs, for every output dimension j, the count of
/// set bits across N packed product vectors (a column sum of an N x D bit
/// matrix).  Unpacking every word bit-by-bit costs 64 scalar adds per word
/// per row.  ColumnCounter instead folds rows into "vertical" bit planes
/// (plane p holds bit p of every column's running count) — the classic
/// vertical-counter technique from the population-count literature,
/// mirroring how a hardware adder tree would fold the same computation.
///
/// Rippling every row through the planes costs ~3·log2(rows) bitwise ops per
/// word, because at word granularity some column almost always carries.  With
/// four or more planes the counter therefore runs a Harley–Seal style 8-row
/// reduction instead: incoming rows pool pairwise through ones/twos/fours
/// carry-save registers (5 ops per word per CSA step) and reach the planes
/// only as weight-8 carries, cutting the amortized per-row cost roughly in
/// half.  All of it is exact integer arithmetic — tests assert bit-equality
/// with the naive reference across row counts and plane counts.
///
/// Batch-serving refinements on top:
///  - planes are stored word-major (all planes of a word adjacent), so a
///    carry ripple touches one or two cache lines;
///  - size n_planes to the expected row count (planes_for_rows) and a whole
///    encode fits in the planes: no intermediate flush, and
///    bipolar_sums_into() unpacks the planes straight into the output
///    without materializing the internal count buffer;
///  - add_xor() fuses the encoder's bind step (XOR) into the accumulation so
///    no product row is ever written to memory.
///
/// The per-word CSA steps and the plane unpack execute through the
/// runtime-dispatched SIMD backend layer (util/kernels.hpp): whole word
/// arrays per call, portable/AVX2/AVX-512 implementations, all bit-identical
/// — the counter's exact-arithmetic contract is backend-independent.
///
/// tests/util/bitslice_test.cc asserts exact equality with the naive
/// accumulation (and tests/util/kernels_test.cc across backends);
/// bench/bench_ops.cpp measures the speedup (the ablation called out in
/// DESIGN.md §4).

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"

namespace hdlock::util {

/// Accumulates per-column set-bit counts over a stream of equally sized
/// packed bit rows.
class ColumnCounter {
public:
    /// \param n_bits   logical columns per row
    /// \param n_planes number of carry-save planes; per-column counts up to
    ///                 2^n_planes - 1 live in the planes before being folded
    ///                 into a plain integer buffer
    /// \throws ConfigError when n_planes is outside the supported [1, 16]
    ///         range (0 in particular — the silent-UB footgun this guards)
    explicit ColumnCounter(std::size_t n_bits, std::size_t n_planes = 6);

    /// The plane count that lets `rows` accumulate without any intermediate
    /// flush (clamped to the supported range), including head-room for the
    /// carry-save group residues.
    static std::size_t planes_for_rows(std::size_t rows) noexcept;

    /// Adds one packed row. `row` must hold word_count(n_bits) words with a
    /// clean tail.
    void add(std::span<const bits::Word> row);

    /// Adds the row a ^ b without materializing it: the XOR happens word by
    /// word inside the carry-save pipeline, so the encoder hot path needs no
    /// per-row product buffer.  Exactly equivalent to
    /// `xor_into(tmp, a, b); add(tmp)`.
    void add_xor(std::span<const bits::Word> a, std::span<const bits::Word> b);

    /// Adds a batch of packed rows (each word_count(n_bits) words with clean
    /// tails).  When the 8-row pipeline is active and group-aligned, each
    /// eight-row chunk folds through the single-pass csa_rows backend kernel
    /// — one register-resident Harley–Seal tree per chunk instead of eight
    /// phase steps round-tripping the pending row through memory; this is
    /// the BoundProductCache accumulation path.  Leftover rows take the
    /// per-row pipeline.  Exactly equivalent to add() on each row in order.
    void add_rows(std::span<const bits::Word* const> rows);

    /// Number of rows added since the last reset().
    std::size_t rows_added() const noexcept { return rows_added_; }

    /// Writes the per-column set-bit count into `counts` (size n_bits).
    /// The counter remains usable; more rows may be added afterwards.
    void counts_into(std::span<std::int32_t> counts);

    /// Writes the per-column bipolar sum into `sums` (size n_bits), using the
    /// bit convention of bitvec.hpp (bit 1 == value -1):
    ///   sums[j] = rows_added() - 2 * count[j].
    void bipolar_sums_into(std::span<std::int32_t> sums);

    /// Clears all state.
    void reset() noexcept;

    std::size_t n_bits() const noexcept { return n_bits_; }
    std::size_t n_planes() const noexcept { return n_planes_; }

private:
    /// Accumulates the row ya (or the fused bind ya ^ yb when yb != nullptr)
    /// through the carry-save pipeline.  The whole-array CSA steps run on
    /// the active util::kernels backend; only the strided plane ripple (one
    /// weight-8 carry per 8 rows) stays scalar.
    void accumulate_row_(const bits::Word* ya, const bits::Word* yb);
    /// Folds the group registers (pending rows, ones/twos/fours residues)
    /// into the planes; afterwards planes + flushed_ hold every added row.
    void settle_group_();
    /// Ripples a carry word array into the planes at `start_plane`
    /// (weight 2^start_plane), flushing first when the planes could overflow.
    void push_carry_(std::span<const bits::Word> carry, std::size_t start_plane);
    void flush_planes_();
    /// Adds the planes' content on top of `accumulator` (+= 2^p per set bit).
    void unpack_planes_into_(std::span<std::int32_t> accumulator) const;

    std::size_t n_bits_;
    std::size_t n_words_;
    std::size_t n_planes_;
    bool grouped_;                          // 8-row Harley–Seal pipeline active
    std::size_t rows_added_ = 0;
    std::size_t planes_rows_ = 0;           // upper bound on any column count in planes
    std::size_t phase_ = 0;                 // rows buffered in the current 8-group
    bool flushed_dirty_ = false;            // flushed_ holds non-zero counts
    bool group_dirty_ = false;              // group registers hold non-zero state
    std::vector<bits::Word> planes_;        // word-major: planes_[w * n_planes_ + p]
    std::vector<bits::Word> pending_;       // the odd row awaiting its pair
    std::vector<bits::Word> ones_;          // weight-1 carry-save residue
    std::vector<bits::Word> twos_a_;        // first pair's weight-2 carries
    std::vector<bits::Word> twos_;          // weight-2 residue
    std::vector<bits::Word> fours_a_;       // first quad's weight-4 carries
    std::vector<bits::Word> fours_;         // weight-4 residue
    std::vector<bits::Word> carry_;         // phase-7 weight-8 carry (pure scratch)
    std::vector<std::int32_t> flushed_;     // counts already folded out of the planes
};

/// Reference implementation used by tests and kept as documentation of the
/// semantics: adds each bit of `row` to `counts` individually.
void naive_accumulate(std::span<const bits::Word> row, std::size_t n_bits,
                      std::span<std::int32_t> counts);

}  // namespace hdlock::util
