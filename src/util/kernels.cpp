#include "util/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/error.hpp"

namespace hdlock::util::kernels {

// ---------------------------------------------------------------------------
// Portable backend: the original bitvec/bitslice loops, moved here verbatim.
// GCC/Clang auto-vectorize these at the build's baseline ISA; the explicit
// backends exist because the baseline is usually SSE2-era.
// ---------------------------------------------------------------------------

namespace portable {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) dst[w] = a[w] ^ b[w];
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    std::size_t total = 0;
    for (std::size_t w = 0; w < n; ++w) total += static_cast<std::size_t>(std::popcount(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t total = 0;
    for (std::size_t w = 0; w < n; ++w) {
        total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
    }
    return total;
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    if (yb == nullptr) {
        for (std::size_t w = 0; w < n; ++w) {
            const Word u = ones[w] ^ x[w];
            carry[w] = (ones[w] & x[w]) | (u & ya[w]);
            ones[w] = u ^ ya[w];
        }
        return;
    }
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = yb == nullptr ? ya[w] : ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = yb == nullptr ? ya[w] : ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        const std::size_t base = w * 64;
        for (std::size_t p = 0; p < n_planes; ++p) {
            const auto weight = static_cast<std::int32_t>(1u << p);
            Word word = plane[p];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                accumulator[base + bit] += weight;
                word &= word - 1;  // clear lowest set bit
            }
        }
    }
}

}  // namespace portable

const KernelBackend& portable_backend() noexcept {
    static constexpr KernelBackend backend{
        Backend::portable,     "portable",         &portable::xor_into,
        &portable::popcount,   &portable::hamming, &portable::csa_pair,
        &portable::csa_quad,   &portable::csa_oct, &portable::unpack_planes,
    };
    return backend;
}

// ---------------------------------------------------------------------------
// Detection and dispatch.
// ---------------------------------------------------------------------------

bool cpu_supports(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return true;
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
        case Backend::avx2:
            return __builtin_cpu_supports("avx2") != 0;
        case Backend::avx512:
            // Exactly the features kernels_avx512.cpp is compiled with.
            return __builtin_cpu_supports("avx512f") != 0 &&
                   __builtin_cpu_supports("avx512bw") != 0 &&
                   __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
        case Backend::avx2:
        case Backend::avx512:
            return false;
#endif
    }
    return false;
}

namespace {

const KernelBackend* compiled_backend(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return &portable_backend();
        case Backend::avx2:
            return avx2_backend();
        case Backend::avx512:
            return avx512_backend();
    }
    return nullptr;
}

const KernelBackend* resolve(Backend kind) noexcept {
    return available(kind) ? compiled_backend(kind) : nullptr;
}

const KernelBackend* best_available() noexcept {
    for (const Backend kind : {Backend::avx512, Backend::avx2}) {
        if (const KernelBackend* backend = resolve(kind)) return backend;
    }
    return &portable_backend();
}

std::atomic<const KernelBackend*>& active_slot() noexcept {
    static std::atomic<const KernelBackend*> slot{nullptr};
    return slot;
}

/// What active() resolves on first use: the HDLOCK_KERNEL_BACKEND override
/// when set and available, otherwise the best backend this host offers.
const KernelBackend* default_backend() noexcept {
    const char* env = std::getenv("HDLOCK_KERNEL_BACKEND");
    return compiled_backend(choose_backend(env == nullptr ? "" : env));
}

}  // namespace

bool available(Backend kind) noexcept {
    return compiled_backend(kind) != nullptr && cpu_supports(kind);
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
    if (name == "portable") return Backend::portable;
    if (name == "avx2") return Backend::avx2;
    if (name == "avx512") return Backend::avx512;
    return std::nullopt;
}

const char* backend_name(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return "portable";
        case Backend::avx2:
            return "avx2";
        case Backend::avx512:
            return "avx512";
    }
    return "unknown";
}

std::vector<Backend> available_backends() {
    std::vector<Backend> kinds;
    for (const Backend kind : {Backend::portable, Backend::avx2, Backend::avx512}) {
        if (available(kind)) kinds.push_back(kind);
    }
    return kinds;
}

Backend choose_backend(std::string_view env_value) noexcept {
    if (const auto requested = parse_backend(env_value)) {
        if (const KernelBackend* backend = resolve(*requested)) return backend->kind;
    }
    // Unset, unknown, or unavailable on this host: degrade to the best the
    // hardware offers rather than failing startup.
    return best_available()->kind;
}

const KernelBackend& active() noexcept {
    const KernelBackend* backend = active_slot().load(std::memory_order_acquire);
    if (backend == nullptr) {
        backend = default_backend();
        // First resolution wins on a race; both racers compute the same value.
        active_slot().store(backend, std::memory_order_release);
    }
    return *backend;
}

Backend active_kind() noexcept { return active().kind; }

Backend set_backend(Backend kind) {
    const KernelBackend* backend = compiled_backend(kind);
    if (backend == nullptr) {
        throw ConfigError(std::string("kernel backend '") + backend_name(kind) +
                          "' is not compiled into this build");
    }
    if (!cpu_supports(kind)) {
        throw ConfigError(std::string("kernel backend '") + backend_name(kind) +
                          "' is not supported by this CPU");
    }
    // Swap-and-read-previous must be one atomic step.  The old shape — read
    // active().kind, then store — could interleave with a concurrent
    // set_backend between the two, so a ScopedBackend pair racing on two
    // threads could "restore" a snapshot the other pin had already replaced
    // (and active() itself would publish a resolved default between the
    // racers' reads).  exchange() leaves no such window.
    const KernelBackend* previous = active_slot().exchange(backend, std::memory_order_acq_rel);
    if (previous == nullptr) {
        // The slot was never resolved: report what active() would have
        // picked, so restoring the returned value reproduces the default.
        previous = default_backend();
    }
    return previous->kind;
}

std::string cpu_feature_string() {
    std::string features;
    const auto append = [&features](const char* name) {
        if (!features.empty()) features += ' ';
        features += name;
    };
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) append("avx2");
    if (__builtin_cpu_supports("avx512f")) append("avx512f");
    if (__builtin_cpu_supports("avx512bw")) append("avx512bw");
    if (__builtin_cpu_supports("avx512vpopcntdq")) append("avx512vpopcntdq");
#endif
    return features;
}

}  // namespace hdlock::util::kernels
