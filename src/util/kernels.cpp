#include "util/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace hdlock::util::kernels {

// ---------------------------------------------------------------------------
// Portable backend: the original bitvec/bitslice loops, moved here verbatim.
// GCC/Clang auto-vectorize these at the build's baseline ISA; the explicit
// backends exist because the baseline is usually SSE2-era.
// ---------------------------------------------------------------------------

namespace portable {

void xor_into(Word* dst, const Word* a, const Word* b, std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) dst[w] = a[w] ^ b[w];
}

std::size_t popcount(const Word* words, std::size_t n) noexcept {
    std::size_t total = 0;
    for (std::size_t w = 0; w < n; ++w) total += static_cast<std::size_t>(std::popcount(words[w]));
    return total;
}

std::size_t hamming(const Word* a, const Word* b, std::size_t n) noexcept {
    std::size_t total = 0;
    for (std::size_t w = 0; w < n; ++w) {
        total += static_cast<std::size_t>(std::popcount(a[w] ^ b[w]));
    }
    return total;
}

void csa_pair(Word* ones, Word* carry, const Word* x, const Word* ya, const Word* yb,
              std::size_t n) noexcept {
    if (yb == nullptr) {
        for (std::size_t w = 0; w < n; ++w) {
            const Word u = ones[w] ^ x[w];
            carry[w] = (ones[w] & x[w]) | (u & ya[w]);
            ones[w] = u ^ ya[w];
        }
        return;
    }
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        carry[w] = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
    }
}

void csa_quad(Word* ones, Word* twos, const Word* twos_a, Word* fours_a, const Word* x,
              const Word* ya, const Word* yb, std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = yb == nullptr ? ya[w] : ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        fours_a[w] = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
    }
}

void csa_oct(Word* ones, Word* twos, const Word* twos_a, Word* fours, const Word* fours_a,
             Word* carry_out, const Word* x, const Word* ya, const Word* yb,
             std::size_t n) noexcept {
    for (std::size_t w = 0; w < n; ++w) {
        const Word y = yb == nullptr ? ya[w] : ya[w] ^ yb[w];
        const Word u = ones[w] ^ x[w];
        const Word twos_b = (ones[w] & x[w]) | (u & y);
        ones[w] = u ^ y;
        const Word u2 = twos[w] ^ twos_a[w];
        const Word fours_b = (twos[w] & twos_a[w]) | (u2 & twos_b);
        twos[w] = u2 ^ twos_b;
        const Word u3 = fours[w] ^ fours_a[w];
        carry_out[w] = (fours[w] & fours_a[w]) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
    }
}

void unpack_planes(const Word* planes, std::size_t n_words, std::size_t n_planes,
                   std::int32_t* accumulator) noexcept {
    for (std::size_t w = 0; w < n_words; ++w) {
        const Word* plane = planes + w * n_planes;
        const std::size_t base = w * 64;
        for (std::size_t p = 0; p < n_planes; ++p) {
            const auto weight = static_cast<std::int32_t>(1u << p);
            Word word = plane[p];
            while (word != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(word));
                accumulator[base + bit] += weight;
                word &= word - 1;  // clear lowest set bit
            }
        }
    }
}

void csa_rows(Word* ones, Word* twos, Word* fours, Word* carry_out, const Word* const* rows,
              std::size_t n) noexcept {
    detail::csa_rows_words(ones, twos, fours, carry_out, rows, 0, n);
}

void fused_hamming_scores(const Word* const* rows_a, const Word* const* rows_b,
                          std::size_t n_rows, const Word* const* class_rows,
                          std::size_t n_classes, std::size_t n_words, TieResolver ties,
                          void* tie_ctx, std::uint64_t* distances) noexcept {
    for (std::size_t c = 0; c < n_classes; ++c) distances[c] = 0;
    detail::fused_hamming_words(rows_a, rows_b, n_rows, class_rows, n_classes, 0, n_words, ties,
                                tie_ctx, distances);
}

}  // namespace portable

namespace detail {

void csa_rows_words(Word* ones, Word* twos, Word* fours, Word* carry_out,
                    const Word* const* rows, std::size_t word_begin,
                    std::size_t word_end) noexcept {
    const Word* r0 = rows[0];
    const Word* r1 = rows[1];
    const Word* r2 = rows[2];
    const Word* r3 = rows[3];
    const Word* r4 = rows[4];
    const Word* r5 = rows[5];
    const Word* r6 = rows[6];
    const Word* r7 = rows[7];
    for (std::size_t w = word_begin; w < word_end; ++w) {
        // The exact compression tree of ColumnCounter phases 1/3/5/7 over a
        // fresh group, so add_rows is plane-identical to eight add() calls.
        Word u = ones[w] ^ r0[w];
        const Word twos_a = (ones[w] & r0[w]) | (u & r1[w]);
        Word one = u ^ r1[w];
        u = one ^ r2[w];
        const Word twos_b = (one & r2[w]) | (u & r3[w]);
        one = u ^ r3[w];
        Word u2 = twos[w] ^ twos_a;
        const Word fours_a = (twos[w] & twos_a) | (u2 & twos_b);
        Word two = u2 ^ twos_b;
        u = one ^ r4[w];
        const Word twos_c = (one & r4[w]) | (u & r5[w]);
        one = u ^ r5[w];
        u = one ^ r6[w];
        const Word twos_d = (one & r6[w]) | (u & r7[w]);
        one = u ^ r7[w];
        u2 = two ^ twos_c;
        const Word fours_b = (two & twos_c) | (u2 & twos_d);
        two = u2 ^ twos_d;
        const Word u3 = fours[w] ^ fours_a;
        carry_out[w] = (fours[w] & fours_a) | (u3 & fours_b);
        fours[w] = u3 ^ fours_b;
        ones[w] = one;
        twos[w] = two;
    }
}

namespace {

/// Ripples a carry word of weight 2^start into the bit-sliced count planes.
/// The chain always dies before plane n_planes: column counts never exceed
/// n_rows < 2^n_planes.
inline void ripple(Word* planes, std::size_t n_planes, std::size_t start, Word carry) noexcept {
    for (std::size_t p = start; p < n_planes && carry != 0; ++p) {
        const Word sum = planes[p] ^ carry;
        carry &= planes[p];
        planes[p] = sum;
    }
}

}  // namespace

void fused_hamming_words(const Word* const* rows_a, const Word* const* rows_b,
                         std::size_t n_rows, const Word* const* class_rows,
                         std::size_t n_classes, std::size_t word_begin, std::size_t word_end,
                         TieResolver ties, void* tie_ctx, std::uint64_t* distances) noexcept {
    if (word_begin >= word_end || n_rows == 0) return;
    const auto n_planes = static_cast<std::size_t>(std::bit_width(n_rows));
    const Word threshold = n_rows / 2;
    const bool can_tie = (n_rows % 2) == 0 && ties != nullptr;
    Word planes[16];  // kMaxFusedRows caps counts at 16 bits
    for (std::size_t w = word_begin; w < word_end; ++w) {
        for (std::size_t p = 0; p < n_planes; ++p) planes[p] = 0;
        Word ones = 0;
        Word twos = 0;
        Word fours = 0;
        std::size_t r = 0;
        for (; r + 8 <= n_rows; r += 8) {
            Word x[8];
            for (std::size_t k = 0; k < 8; ++k) {
                x[k] = rows_b == nullptr ? rows_a[r + k][w]
                                         : rows_a[r + k][w] ^ rows_b[r + k][w];
            }
            // Same tree as csa_rows_words, registers only.
            Word u = ones ^ x[0];
            const Word twos_a = (ones & x[0]) | (u & x[1]);
            ones = u ^ x[1];
            u = ones ^ x[2];
            const Word twos_b = (ones & x[2]) | (u & x[3]);
            ones = u ^ x[3];
            Word u2 = twos ^ twos_a;
            const Word fours_a = (twos & twos_a) | (u2 & twos_b);
            twos = u2 ^ twos_b;
            u = ones ^ x[4];
            const Word twos_c = (ones & x[4]) | (u & x[5]);
            ones = u ^ x[5];
            u = ones ^ x[6];
            const Word twos_d = (ones & x[6]) | (u & x[7]);
            ones = u ^ x[7];
            u2 = twos ^ twos_c;
            const Word fours_b = (twos & twos_c) | (u2 & twos_d);
            twos = u2 ^ twos_d;
            const Word u3 = fours ^ fours_a;
            const Word carry = (fours & fours_a) | (u3 & fours_b);
            fours = u3 ^ fours_b;
            ripple(planes, n_planes, 3, carry);
        }
        for (; r < n_rows; ++r) {
            const Word x = rows_b == nullptr ? rows_a[r][w] : rows_a[r][w] ^ rows_b[r][w];
            const Word c1 = ones & x;
            ones ^= x;
            const Word c2 = twos & c1;
            twos ^= c1;
            const Word c3 = fours & c2;
            fours ^= c2;
            ripple(planes, n_planes, 3, c3);
        }
        ripple(planes, n_planes, 0, ones);
        ripple(planes, n_planes, 1, twos);
        ripple(planes, n_planes, 2, fours);
        // Binarize without unpacking: a bit-sliced lexicographic compare of
        // the per-column counts against the threshold, MSB plane first.  A
        // set query bit means count > n_rows/2, i.e. a negative bipolar sum.
        Word gt = 0;
        Word eq = ~Word{0};
        for (std::size_t p = n_planes; p-- > 0;) {
            const Word t = ((threshold >> p) & 1u) != 0 ? ~Word{0} : Word{0};
            gt |= eq & planes[p] & ~t;
            eq &= ~(planes[p] ^ t);
        }
        Word query = gt;
        if (can_tie && eq != 0) query |= ties(tie_ctx, eq, w) & eq;
        for (std::size_t c = 0; c < n_classes; ++c) {
            distances[c] += static_cast<std::uint64_t>(std::popcount(query ^ class_rows[c][w]));
        }
    }
}

}  // namespace detail

const KernelBackend& portable_backend() noexcept {
    static constexpr KernelBackend backend{
        Backend::portable,       "portable",
        &portable::xor_into,     &portable::popcount,
        &portable::hamming,      &portable::csa_pair,
        &portable::csa_quad,     &portable::csa_oct,
        &portable::unpack_planes, &portable::csa_rows,
        &portable::fused_hamming_scores,
    };
    return backend;
}

// ---------------------------------------------------------------------------
// Detection and dispatch.
// ---------------------------------------------------------------------------

bool cpu_supports(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return true;
        case Backend::neon:
#if defined(__aarch64__) && defined(__ARM_NEON)
            // Advanced SIMD is architecturally baseline on AArch64.
            return true;
#else
            return false;
#endif
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
        case Backend::avx2:
            return __builtin_cpu_supports("avx2") != 0;
        case Backend::avx512:
            // Exactly the features kernels_avx512.cpp is compiled with.
            return __builtin_cpu_supports("avx512f") != 0 &&
                   __builtin_cpu_supports("avx512bw") != 0 &&
                   __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
        case Backend::avx2:
        case Backend::avx512:
            return false;
#endif
    }
    return false;
}

namespace {

const KernelBackend* compiled_backend(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return &portable_backend();
        case Backend::neon:
            return neon_backend();
        case Backend::avx2:
            return avx2_backend();
        case Backend::avx512:
            return avx512_backend();
    }
    return nullptr;
}

const KernelBackend* resolve(Backend kind) noexcept {
    return available(kind) ? compiled_backend(kind) : nullptr;
}

const KernelBackend* best_available() noexcept {
    for (const Backend kind : {Backend::avx512, Backend::avx2, Backend::neon}) {
        if (const KernelBackend* backend = resolve(kind)) return backend;
    }
    return &portable_backend();
}

std::atomic<const KernelBackend*>& active_slot() noexcept {
    static std::atomic<const KernelBackend*> slot{nullptr};
    return slot;
}

/// What active() resolves on first use: the HDLOCK_KERNEL_BACKEND override
/// when set and available, otherwise the best backend this host offers.
/// An unusable override degrades (a deployment artifact must not crash on a
/// typo'd env var) but no longer degrades *silently*: one stderr warning
/// names the accepted values and what the process actually runs.
const KernelBackend* default_backend() noexcept {
    const char* env = std::getenv("HDLOCK_KERNEL_BACKEND");
    const std::string_view value = env == nullptr ? std::string_view{} : std::string_view{env};
    const Backend chosen = choose_backend(value);
    if (!value.empty()) {
        const auto requested = parse_backend(value);
        if (!requested.has_value() || *requested != chosen) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true, std::memory_order_relaxed)) {
                std::string roster;
                for (const Backend kind : available_backends()) {
                    if (!roster.empty()) roster += ", ";
                    roster += backend_name(kind);
                }
                std::fprintf(stderr,
                             "hdlock: ignoring HDLOCK_KERNEL_BACKEND='%s' (%s); accepted values: "
                             "portable, neon, avx2, avx512; available here: %s; using '%s'\n",
                             env, requested.has_value() ? "not available on this host"
                                                        : "unknown backend",
                             roster.c_str(), backend_name(chosen));
            }
        }
    }
    return compiled_backend(chosen);
}

}  // namespace

bool compiled(Backend kind) noexcept { return compiled_backend(kind) != nullptr; }

bool available(Backend kind) noexcept {
    return compiled_backend(kind) != nullptr && cpu_supports(kind);
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
    if (name == "portable") return Backend::portable;
    if (name == "neon") return Backend::neon;
    if (name == "avx2") return Backend::avx2;
    if (name == "avx512") return Backend::avx512;
    return std::nullopt;
}

const char* backend_name(Backend kind) noexcept {
    switch (kind) {
        case Backend::portable:
            return "portable";
        case Backend::neon:
            return "neon";
        case Backend::avx2:
            return "avx2";
        case Backend::avx512:
            return "avx512";
    }
    return "unknown";
}

std::vector<Backend> all_backends() {
    return {Backend::portable, Backend::neon, Backend::avx2, Backend::avx512};
}

std::vector<Backend> available_backends() {
    std::vector<Backend> kinds;
    for (const Backend kind : all_backends()) {
        if (available(kind)) kinds.push_back(kind);
    }
    return kinds;
}

Backend choose_backend(std::string_view env_value) noexcept {
    if (const auto requested = parse_backend(env_value)) {
        if (const KernelBackend* backend = resolve(*requested)) return backend->kind;
    }
    // Unset, unknown, or unavailable on this host: degrade to the best the
    // hardware offers rather than failing startup.
    return best_available()->kind;
}

const KernelBackend& active() noexcept {
    const KernelBackend* backend = active_slot().load(std::memory_order_acquire);
    if (backend == nullptr) {
        backend = default_backend();
        // First resolution wins on a race; both racers compute the same value.
        active_slot().store(backend, std::memory_order_release);
    }
    return *backend;
}

Backend active_kind() noexcept { return active().kind; }

Backend set_backend(Backend kind) {
    const KernelBackend* backend = compiled_backend(kind);
    if (backend == nullptr) {
        throw ConfigError(std::string("kernel backend '") + backend_name(kind) +
                          "' is not compiled into this build");
    }
    if (!cpu_supports(kind)) {
        throw ConfigError(std::string("kernel backend '") + backend_name(kind) +
                          "' is not supported by this CPU");
    }
    // Swap-and-read-previous must be one atomic step.  The old shape — read
    // active().kind, then store — could interleave with a concurrent
    // set_backend between the two, so a ScopedBackend pair racing on two
    // threads could "restore" a snapshot the other pin had already replaced
    // (and active() itself would publish a resolved default between the
    // racers' reads).  exchange() leaves no such window.
    const KernelBackend* previous = active_slot().exchange(backend, std::memory_order_acq_rel);
    if (previous == nullptr) {
        // The slot was never resolved: report what active() would have
        // picked, so restoring the returned value reproduces the default.
        previous = default_backend();
    }
    return previous->kind;
}

std::string cpu_feature_string() {
    std::string features;
    const auto append = [&features](const char* name) {
        if (!features.empty()) features += ' ';
        features += name;
    };
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx2")) append("avx2");
    if (__builtin_cpu_supports("avx512f")) append("avx512f");
    if (__builtin_cpu_supports("avx512bw")) append("avx512bw");
    if (__builtin_cpu_supports("avx512vpopcntdq")) append("avx512vpopcntdq");
#elif defined(__aarch64__)
    if (cpu_supports(Backend::neon)) append("asimd");
#endif
    return features;
}

}  // namespace hdlock::util::kernels
